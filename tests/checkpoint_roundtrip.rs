//! Checkpoint round-trip: a model trained by `train_single`, saved to the
//! versioned binary format, loaded back, and served — predictions must be
//! bit-identical to serving the original in-memory parameters. Negative
//! cases (truncation, foreign magic, future format revision, flipped
//! bits) must surface as typed `CheckpointError`s, not panics.

use dgnn_autograd::ParamStore;
use dgnn_core::prelude::*;
use dgnn_core::task::{prepare_task_holdout, TaskOptions};
use dgnn_serve::{Checkpoint, CheckpointError, InferenceSession, ServeModel};
use dgnn_stream::EdgeEvent;
use dgnn_tensor::Dense;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trained() -> (Model, LinkPredHead, ParamStore, usize) {
    let g = dgnn_graph::gen::churn_skewed(40, 6, 150, 0.3, 0.9, 5);
    let cfg = ModelConfig {
        kind: ModelKind::TmGcn,
        input_f: 2,
        hidden: 5,
        mprod_window: 3,
        smoothing_window: 3,
    };
    let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let opts = TrainOptions {
        epochs: 3,
        lr: 0.05,
        nb: 2,
        seed: 3,
        threads: None,
    };
    let _ = train_single(&model, &head, &mut store, &task, &opts);
    (model, head, store, g.n())
}

fn serve_scores(model: ServeModel, n: usize) -> (Vec<f32>, Vec<u32>) {
    let features = Dense::from_fn(n, 2, |r, c| ((r * 19 + c * 7) % 13) as f32 / 13.0);
    let mut session = InferenceSession::new(model, features);
    let events: Vec<EdgeEvent> = (0..n as u32)
        .map(|u| EdgeEvent::add(0, u, (u * 11 + 1) % n as u32, 1.0))
        .collect();
    session.ingest(&events);
    session.advance();
    session.assert_matches_full();
    let pairs: Vec<(u32, u32)> = (0..n as u32).map(|u| (u, (u + 3) % n as u32)).collect();
    let scores = session.score_links(&pairs);
    let emb_bits = session
        .embeddings()
        .data()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    (scores, emb_bits)
}

#[test]
fn save_load_serve_is_bit_identical() {
    let (model, head, store, n) = trained();
    let cp = Checkpoint::from_store(&model, &head, &store);
    let bytes = cp.to_bytes();
    let loaded = Checkpoint::from_bytes(&bytes).expect("decode");

    // Every parameter round-trips bit for bit.
    assert_eq!(loaded.params.len(), store.len());
    for (name, value) in &loaded.params {
        let id = store.id_of(name).expect("name survives");
        let orig = store.value(id);
        assert_eq!(orig.shape(), value.shape(), "{name}");
        assert!(
            orig.data()
                .iter()
                .zip(value.data())
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "{name} changed bits across the roundtrip"
        );
    }

    // Serving the loaded checkpoint equals serving the live parameters.
    let (scores_live, emb_live) = serve_scores(
        ServeModel::from_model(&model, &head, &store).expect("servable"),
        n,
    );
    let (scores_loaded, emb_loaded) = serve_scores(
        ServeModel::from_checkpoint(&loaded).expect("serve model"),
        n,
    );
    assert_eq!(emb_live, emb_loaded, "embeddings diverge after reload");
    assert_eq!(
        scores_live.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
        scores_loaded
            .iter()
            .map(|s| s.to_bits())
            .collect::<Vec<_>>(),
        "link scores diverge after reload"
    );
}

#[test]
fn file_roundtrip_and_load_into_store() {
    let (model, head, store, _) = trained();
    let cp = Checkpoint::from_store(&model, &head, &store);
    let path = std::env::temp_dir().join(format!("dgnn_ckpt_{}.bin", std::process::id()));
    cp.save(&path).expect("save");
    let loaded = Checkpoint::load(&path).expect("load");
    std::fs::remove_file(&path).ok();

    // Import into a freshly initialized store of the same architecture.
    let mut rng = StdRng::seed_from_u64(999); // different init on purpose
    let mut fresh = ParamStore::new();
    let model2 = Model::new(loaded.config, &mut fresh, &mut rng);
    let head2 = LinkPredHead::new(&mut fresh, loaded.head_emb, loaded.head_classes, &mut rng);
    assert_eq!(model2.config().hidden, model.config().hidden);
    assert_eq!(head2.classes(), head.classes());
    loaded.load_into(&mut fresh).expect("import");
    assert_eq!(fresh.values_flat(), store.values_flat());
}

#[test]
fn cdgcn_checkpoints_are_refused_with_a_typed_error() {
    // CD-GCN's gcn1.w consumes `hidden` rows because training interposes a
    // feature LSTM between the layers; a pure spatial stack cannot supply
    // that, so serving must refuse up front — typed, not a shape panic.
    let cfg = ModelConfig {
        kind: ModelKind::CdGcn,
        input_f: 2,
        hidden: 5,
        mprod_window: 3,
        smoothing_window: 3,
    };
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let cp = Checkpoint::from_bytes(&Checkpoint::from_store(&model, &head, &store).to_bytes())
        .expect("the checkpoint itself decodes fine");
    assert!(matches!(
        ServeModel::from_checkpoint(&cp),
        Err(CheckpointError::UnsupportedModel(_))
    ));
    assert!(matches!(
        ServeModel::from_model(&model, &head, &store),
        Err(CheckpointError::UnsupportedModel(_))
    ));
}

#[test]
fn load_into_mismatched_store_is_typed() {
    let (model, head, store, _) = trained();
    let cp = Checkpoint::from_store(&model, &head, &store);
    let mut empty = ParamStore::new();
    assert!(matches!(
        cp.load_into(&mut empty),
        Err(CheckpointError::StoreMismatch(_))
    ));
    // Same names, wrong shape.
    let mut wrong = ParamStore::new();
    for (name, _) in &cp.params {
        wrong.add(name.clone(), Dense::zeros(1, 1));
    }
    assert!(matches!(
        cp.load_into(&mut wrong),
        Err(CheckpointError::StoreMismatch(_))
    ));
}

#[test]
fn truncated_and_corrupt_files_are_typed_errors() {
    let (model, head, store, _) = trained();
    let bytes = Checkpoint::from_store(&model, &head, &store).to_bytes();

    // Truncation at a spread of prefixes, including mid-header and
    // mid-payload.
    for len in [
        0,
        3,
        7,
        9,
        bytes.len() / 3,
        bytes.len() - 5,
        bytes.len() - 1,
    ] {
        assert!(
            matches!(
                Checkpoint::from_bytes(&bytes[..len]),
                Err(CheckpointError::Truncated)
            ),
            "prefix {len}"
        );
    }

    // Foreign magic.
    let mut foreign = bytes.clone();
    foreign[..4].copy_from_slice(b"PNG\0");
    assert!(matches!(
        Checkpoint::from_bytes(&foreign),
        Err(CheckpointError::BadMagic(_))
    ));

    // A future format revision is refused with the found revision.
    let mut future = bytes.clone();
    future[4..8].copy_from_slice(&7u32.to_le_bytes());
    match Checkpoint::from_bytes(&future) {
        Err(CheckpointError::UnsupportedVersion { found }) => assert_eq!(found, 7),
        other => panic!("unexpected {other:?}"),
    }

    // A flipped payload bit fails the checksum.
    let mut corrupt = bytes.clone();
    let idx = corrupt.len() - 16;
    corrupt[idx] ^= 0x01;
    assert!(matches!(
        Checkpoint::from_bytes(&corrupt),
        Err(CheckpointError::ChecksumMismatch { .. })
    ));
}
