//! Vertex classification end to end (paper §2.2): detect laundering
//! accounts on the AML-Sim stand-in from per-timestep labels.

use dgnn_autograd::ParamStore;
use dgnn_core::classification::train_single_classification;
use dgnn_core::prelude::*;
use dgnn_graph::gen::{amlsim_with_labels, AmlSimConfig};
use dgnn_models::ClassificationHead;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(kind: ModelKind) -> ModelConfig {
    ModelConfig {
        kind,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    }
}

fn setup(kind: ModelKind) -> (Task, Vec<Vec<u32>>, Model, ClassificationHead, ParamStore) {
    let aml = AmlSimConfig {
        n: 150,
        t: 11,
        communities: 6,
        transactions_per_step: 500,
        intra_community_prob: 0.9,
        churn: 0.2,
        rings: 8,
        ring_size: 6,
        zipf_s: 0.6,
    };
    let (graph, labels) = amlsim_with_labels(&aml, 77);
    // No holdout needed: classification trains and evaluates per timestep.
    let raw = graph.time_slice(0, graph.t() - 1);
    let next = graph.snapshot(graph.t() - 1).clone();
    let task = prepare_task(&raw, &next, &cfg(kind), &TaskOptions::default());
    let labels = labels[..raw.t()].to_vec();

    let mut rng = StdRng::seed_from_u64(13);
    let mut store = ParamStore::new();
    let model = Model::new(cfg(kind), &mut store, &mut rng);
    let head = ClassificationHead::new(&mut store, cfg(kind).embedding_dim(), 2, &mut rng);
    (task, labels, model, head, store)
}

#[test]
fn laundering_detection_beats_chance() {
    // Ring members transact in cycles over consecutive timesteps — the
    // dynamic GNN should separate them from normal accounts well above the
    // 50% balanced-accuracy chance level.
    // CD-GCN trains on the raw (unsmoothed) snapshots, keeping the burst
    // signature sharp.
    let (task, labels, model, head, mut store) = setup(ModelKind::CdGcn);
    let stats = train_single_classification(
        &model,
        &head,
        &mut store,
        &task,
        &labels,
        &TrainOptions {
            epochs: 80,
            lr: 0.1,
            nb: 2,
            seed: 13,
            threads: None,
        },
    );
    let first = stats.first().unwrap();
    let best = stats
        .iter()
        .map(|s| s.balanced_accuracy)
        .fold(0.0, f64::max);
    assert!(
        stats.last().unwrap().loss < first.loss,
        "loss should fall: {} -> {}",
        first.loss,
        stats.last().unwrap().loss
    );
    assert!(best > 0.6, "balanced accuracy {best}");
}

#[test]
fn classification_works_for_all_models() {
    for kind in ModelKind::all() {
        let (task, labels, model, head, mut store) = setup(kind);
        let stats = train_single_classification(
            &model,
            &head,
            &mut store,
            &task,
            &labels,
            &TrainOptions {
                epochs: 6,
                lr: 0.05,
                nb: 2,
                seed: 13,
                threads: None,
            },
        );
        assert!(
            stats.last().unwrap().loss < stats.first().unwrap().loss,
            "{kind:?}: loss should fall"
        );
        assert!(stats.iter().all(|s| s.loss.is_finite()));
    }
}

#[test]
fn classification_checkpoint_invariance() {
    // The checkpointing guarantee holds for the classification head too.
    let run = |nb: usize| {
        let (task, labels, model, head, mut store) = setup(ModelKind::CdGcn);
        let _ = train_single_classification(
            &model,
            &head,
            &mut store,
            &task,
            &labels,
            &TrainOptions {
                epochs: 1,
                lr: 0.0,
                nb,
                seed: 13,
                threads: None,
            },
        );
        store.grads_flat()
    };
    let a = run(1);
    let b = run(3);
    let norm = a.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-12);
    let diff = a
        .iter()
        .zip(&b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
        / norm;
    assert!(diff < 1e-5, "relative gradient diff {diff}");
}
