//! Property tests for the graph-difference transfer encoding (paper §3.2):
//! exact reconstruction and byte-accounting invariants across generators
//! and smoothings.

use dgnn_graph::diff::{chunk_transfer, diff, naive_transfer_bytes, reconstruct};
use dgnn_graph::gen::{amlsim_like, churn, churn_skewed, uniform_random, AmlSimConfig};
use dgnn_graph::smoothing::{edge_life, m_transform_adj};
use dgnn_graph::DynamicGraph;
use dgnn_tensor::Csr;
use proptest::prelude::*;

fn roundtrip_all(g: &DynamicGraph) {
    for t in 0..g.t() - 1 {
        let prev = g.snapshot(t).adj();
        let next = g.snapshot(t + 1).adj();
        let d = diff(prev, next);
        assert_eq!(&reconstruct(prev, &d), next, "t = {t}");
        // Byte accounting: the diff payload is indices-of-edits plus all
        // values of the new snapshot.
        assert_eq!(
            d.transfer_bytes(),
            16 * (d.ext_prev.len() + d.ext_next.len()) as u64 + 4 * next.nnz() as u64
        );
    }
}

#[test]
fn roundtrip_on_all_generators() {
    roundtrip_all(&churn(80, 8, 300, 0.3, 1));
    roundtrip_all(&churn_skewed(80, 8, 300, 0.3, 0.9, 2));
    roundtrip_all(&uniform_random(80, 6, 3.0, 3));
    roundtrip_all(&amlsim_like(&AmlSimConfig { n: 120, t: 6, ..Default::default() }, 4));
}

#[test]
fn roundtrip_on_smoothed_graphs() {
    let g = churn_skewed(60, 8, 250, 0.4, 0.8, 5);
    roundtrip_all(&edge_life(&g, 3));
    roundtrip_all(&m_transform_adj(&g, 4));
}

#[test]
fn gd_speedup_bounded_by_five() {
    // With 16-byte COO indices and 4-byte values, even a zero-edit diff
    // moves the values: speedup < 20/4 = 5 (paper observes up to 4.1x).
    for rho in [0.0, 0.1, 0.3, 0.7, 1.0] {
        let g = churn(100, 10, 400, rho, 7);
        let slices: Vec<&Csr> = (0..10).map(|t| g.snapshot(t).adj()).collect();
        let acc = chunk_transfer(&slices);
        assert!(acc.speedup() <= 5.0, "rho={rho}: speedup {}", acc.speedup());
        assert!(acc.gd_bytes <= acc.naive_bytes + 16 * 2 * 400 * 10);
    }
}

#[test]
fn static_graph_reaches_near_max_speedup() {
    let g = churn(100, 12, 500, 0.0, 9);
    let slices: Vec<&Csr> = (0..12).map(|t| g.snapshot(t).adj()).collect();
    let acc = chunk_transfer(&slices);
    // First snapshot naive, 11 value-only transfers: speedup -> ~4.2.
    assert!(acc.speedup() > 3.5, "speedup {}", acc.speedup());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reconstruction_exact_for_arbitrary_pairs(
        e1 in proptest::collection::vec((0u32..30, 0u32..30), 0..120),
        e2 in proptest::collection::vec((0u32..30, 0u32..30), 0..120),
    ) {
        let a = Csr::from_edges(30, &e1);
        let b = Csr::from_edges(30, &e2);
        let d = diff(&a, &b);
        prop_assert_eq!(reconstruct(&a, &d), b.clone());
        // Symmetry: swapping the roles swaps the ext sets.
        let back = diff(&b, &a);
        prop_assert_eq!(d.ext_prev.len(), back.ext_next.len());
        prop_assert_eq!(d.ext_next.len(), back.ext_prev.len());
    }

    #[test]
    fn naive_bytes_are_20_per_edge(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 0..80),
    ) {
        let a = Csr::from_edges(20, &edges);
        prop_assert_eq!(naive_transfer_bytes(&a), 20 * a.nnz() as u64);
    }

    #[test]
    fn diff_edit_count_bounds_union(
        e1 in proptest::collection::vec((0u32..25, 0u32..25), 0..100),
        e2 in proptest::collection::vec((0u32..25, 0u32..25), 0..100),
    ) {
        let a = Csr::from_edges(25, &e1);
        let b = Csr::from_edges(25, &e2);
        let d = diff(&a, &b);
        // Edits never exceed the combined sizes.
        prop_assert!(d.ext_prev.len() <= a.nnz());
        prop_assert!(d.ext_next.len() <= b.nnz());
        // Identical inputs produce no edits.
        let d_same = diff(&a, &a);
        prop_assert_eq!(d_same.edits(), 0);
    }
}
