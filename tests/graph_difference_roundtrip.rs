//! Property tests for the graph-difference transfer encoding (paper §3.2):
//! exact reconstruction and byte-accounting invariants across generators
//! and smoothings.

use dgnn_graph::diff::{chunk_transfer, diff, naive_transfer_bytes, reconstruct};
use dgnn_graph::gen::{amlsim_like, churn, churn_skewed, uniform_random, AmlSimConfig};
use dgnn_graph::smoothing::{edge_life, m_transform_adj};
use dgnn_graph::DynamicGraph;
use dgnn_stream::{DeltaBatcher, EdgeEvent, EventKind, StreamingGraph};
use dgnn_tensor::Csr;
use proptest::prelude::*;

fn roundtrip_all(g: &DynamicGraph) {
    for t in 0..g.t() - 1 {
        let prev = g.snapshot(t).adj();
        let next = g.snapshot(t + 1).adj();
        let d = diff(prev, next);
        assert_eq!(&reconstruct(prev, &d), next, "t = {t}");
        // Byte accounting: the diff payload is indices-of-edits plus all
        // values of the new snapshot.
        assert_eq!(
            d.transfer_bytes(),
            16 * (d.ext_prev.len() + d.ext_next.len()) as u64 + 4 * next.nnz() as u64
        );
    }
}

#[test]
fn roundtrip_on_all_generators() {
    roundtrip_all(&churn(80, 8, 300, 0.3, 1));
    roundtrip_all(&churn_skewed(80, 8, 300, 0.3, 0.9, 2));
    roundtrip_all(&uniform_random(80, 6, 3.0, 3));
    roundtrip_all(&amlsim_like(
        &AmlSimConfig {
            n: 120,
            t: 6,
            ..Default::default()
        },
        4,
    ));
}

#[test]
fn roundtrip_on_smoothed_graphs() {
    let g = churn_skewed(60, 8, 250, 0.4, 0.8, 5);
    roundtrip_all(&edge_life(&g, 3));
    roundtrip_all(&m_transform_adj(&g, 4));
}

#[test]
fn gd_speedup_bounded_by_five() {
    // With 16-byte COO indices and 4-byte values, even a zero-edit diff
    // moves the values: speedup < 20/4 = 5 (paper observes up to 4.1x).
    for rho in [0.0, 0.1, 0.3, 0.7, 1.0] {
        let g = churn(100, 10, 400, rho, 7);
        let slices: Vec<&Csr> = (0..10).map(|t| g.snapshot(t).adj()).collect();
        let acc = chunk_transfer(&slices);
        assert!(acc.speedup() <= 5.0, "rho={rho}: speedup {}", acc.speedup());
        assert!(acc.gd_bytes <= acc.naive_bytes + 16 * 2 * 400 * 10);
    }
}

#[test]
fn static_graph_reaches_near_max_speedup() {
    let g = churn(100, 12, 500, 0.0, 9);
    let slices: Vec<&Csr> = (0..12).map(|t| g.snapshot(t).adj()).collect();
    let acc = chunk_transfer(&slices);
    // First snapshot naive, 11 value-only transfers: speedup -> ~4.2.
    assert!(acc.speedup() > 3.5, "speedup {}", acc.speedup());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn reconstruction_exact_for_arbitrary_pairs(
        e1 in proptest::collection::vec((0u32..30, 0u32..30), 0..120),
        e2 in proptest::collection::vec((0u32..30, 0u32..30), 0..120),
    ) {
        let a = Csr::from_edges(30, &e1);
        let b = Csr::from_edges(30, &e2);
        let d = diff(&a, &b);
        prop_assert_eq!(reconstruct(&a, &d), b.clone());
        // Symmetry: swapping the roles swaps the ext sets.
        let back = diff(&b, &a);
        prop_assert_eq!(d.ext_prev.len(), back.ext_next.len());
        prop_assert_eq!(d.ext_next.len(), back.ext_prev.len());
    }

    #[test]
    fn naive_bytes_are_20_per_edge(
        edges in proptest::collection::vec((0u32..20, 0u32..20), 0..80),
    ) {
        let a = Csr::from_edges(20, &edges);
        prop_assert_eq!(naive_transfer_bytes(&a), 20 * a.nnz() as u64);
    }

    #[test]
    fn diff_edit_count_bounds_union(
        e1 in proptest::collection::vec((0u32..25, 0u32..25), 0..100),
        e2 in proptest::collection::vec((0u32..25, 0u32..25), 0..100),
    ) {
        let a = Csr::from_edges(25, &e1);
        let b = Csr::from_edges(25, &e2);
        let d = diff(&a, &b);
        // Edits never exceed the combined sizes.
        prop_assert!(d.ext_prev.len() <= a.nnz());
        prop_assert!(d.ext_next.len() <= b.nnz());
        // Identical inputs produce no edits.
        let d_same = diff(&a, &a);
        prop_assert_eq!(d_same.edits(), 0);
    }
}

// ---- Streaming ingestion invariants (dgnn-stream) -----------------------

const STREAM_N: u32 = 12;

/// Raw generated op: endpoints, op selector, quarter-step weight (quarters
/// keep every f32 accumulation exact, so equality checks are bitwise).
fn event_of(i: usize, raw: (u32, u32, u8, u8)) -> EdgeEvent {
    let (u, v, op, w) = raw;
    let weight = w as f32 * 0.25 + 0.25;
    match op % 3 {
        0 => EdgeEvent::add(i as u64, u, v, weight),
        1 => EdgeEvent::remove(i as u64, u, v),
        _ => EdgeEvent::update(i as u64, u, v, weight),
    }
}

/// Reference model: the same ops applied to a plain map, built as a batch
/// CSR at the end.
fn batch_state(events: &[EdgeEvent]) -> Csr {
    let mut state: std::collections::HashMap<(u32, u32), f32> = std::collections::HashMap::new();
    for ev in events {
        match ev.kind {
            EventKind::Add => {
                *state.entry((ev.src, ev.dst)).or_insert(0.0) += ev.weight;
            }
            EventKind::Remove => {
                state.remove(&(ev.src, ev.dst));
            }
            EventKind::UpdateWeight => {
                state.insert((ev.src, ev.dst), ev.weight);
            }
        }
    }
    let triplets: Vec<(u32, u32, f32)> = state.into_iter().map(|((u, v), w)| (u, v, w)).collect();
    Csr::from_coo(STREAM_N as usize, STREAM_N as usize, &triplets)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For random event sequences, incremental materialization equals
    /// batch snapshot construction bit for bit.
    #[test]
    fn streaming_materialize_equals_batch_construction(
        raw in proptest::collection::vec(
            (0u32..STREAM_N, 0u32..STREAM_N, 0u8..3, 0u8..8),
            0..150,
        ),
    ) {
        let events: Vec<EdgeEvent> =
            raw.into_iter().enumerate().map(|(i, r)| event_of(i, r)).collect();
        let mut sg = StreamingGraph::new(STREAM_N as usize);
        sg.apply_all(&events);
        prop_assert_eq!(sg.materialize(), batch_state(&events));
    }

    /// DeltaBatcher diffs round-trip through `reconstruct`: cutting a
    /// random event sequence at arbitrary flush points and chaining the
    /// diffs over the resident CSR always lands on the live state.
    #[test]
    fn delta_batcher_roundtrips_through_reconstruct(
        raw in proptest::collection::vec(
            (0u32..STREAM_N, 0u32..STREAM_N, 0u8..3, 0u8..8),
            1..150,
        ),
        cut in 1usize..8,
    ) {
        let events: Vec<EdgeEvent> =
            raw.into_iter().enumerate().map(|(i, r)| event_of(i, r)).collect();
        let mut batcher = DeltaBatcher::new(STREAM_N as usize);
        let mut resident = Csr::empty(STREAM_N as usize, STREAM_N as usize);
        for chunk in events.chunks(cut) {
            batcher.apply_all(chunk);
            let d = batcher.flush();
            resident = reconstruct(&resident, &d);
            prop_assert_eq!(&resident, &batcher.graph().materialize());
        }
        prop_assert_eq!(resident, batch_state(&events));
    }
}
