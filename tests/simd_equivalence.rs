//! SIMD-pass equivalence suite: the vectorized kernels (PR 9) against the
//! no-skip serial references, IEEE specials included, plus the SELL pack's
//! cache discipline and in-process SIMD-vs-scalar parity.
//!
//! Conventions follow `parallel_equivalence.rs`: kernels are compared to
//! an *independent* reference modulo NaN payloads (two differently
//! compiled loops may legally keep different payloads when two NaNs
//! combine), and to *themselves* strictly bitwise across thread counts
//! whenever the executed code path is thread-count invariant. `spmm`'s
//! SELL gate is a pure function of the matrix, so `spmm` is held to
//! strict bits at every thread count even on specials; `spmm_transa`
//! switches algorithms (serial scatter vs transpose-then-gather) with the
//! thread count, so on specials it gets payload latitude per thread count
//! instead.

use dgnn_core::prelude::*;
use dgnn_tensor::{pool, simd};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::sync::Mutex;

const THREAD_SWEEP: [usize; 5] = [1, 2, 3, 4, 8];

/// Serializes tests that flip the process-global SIMD dispatch override.
static SIMD_OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// Restores default SIMD dispatch on drop (panic-safe).
struct SimdRestore;
impl Drop for SimdRestore {
    fn drop(&mut self) {
        simd::force_enabled(None);
    }
}

fn bits_eq(a: &Dense, b: &Dense) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Bit equality modulo NaN payloads — see `parallel_equivalence.rs` for
/// why kernel-vs-independent-reference comparisons on specials need this
/// latitude (x86 keeps whichever NaN operand codegen put first).
fn bits_eq_mod_nan_payload(a: &Dense, b: &Dense) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()))
}

fn assert_all_threads_match(name: &str, reference: &Dense, kernel: impl Fn() -> Dense) {
    for threads in THREAD_SWEEP {
        let _g = pool::scoped_threads(Some(threads));
        let got = kernel();
        assert!(
            bits_eq(&got, reference),
            "{name} diverges from the serial reference at {threads} threads \
             (shape {:?} vs {:?})",
            got.shape(),
            reference.shape()
        );
    }
}

/// Reference-mod-payload at every thread count — for kernels whose
/// algorithm legitimately changes with the thread count (`spmm_transa`).
fn assert_all_threads_match_mod_payload(name: &str, reference: &Dense, kernel: impl Fn() -> Dense) {
    for threads in THREAD_SWEEP {
        let _g = pool::scoped_threads(Some(threads));
        let got = kernel();
        assert!(
            bits_eq_mod_nan_payload(&got, reference),
            "{name} diverges from the reference beyond NaN payloads at {threads} threads"
        );
    }
}

// ---- Independent no-skip serial references ------------------------------

fn ref_matmul(a: &Dense, b: &Dense) -> Dense {
    let n = b.cols();
    let mut out = Dense::zeros(a.rows(), n);
    for i in 0..a.rows() {
        for (k, &av) in a.row(i).iter().enumerate() {
            for j in 0..n {
                let cur = out.get(i, j);
                out.set(i, j, cur + av * b.get(k, j));
            }
        }
    }
    out
}

fn ref_spmm(a: &Csr, x: &Dense) -> Dense {
    let f = x.cols();
    let mut out = Dense::zeros(a.rows(), f);
    for r in 0..a.rows() {
        for (c, v) in a.row_iter(r) {
            for j in 0..f {
                let cur = out.get(r, j);
                out.set(r, j, cur + v * x.get(c as usize, j));
            }
        }
    }
    out
}

fn ref_spmm_transa(a: &Csr, x: &Dense) -> Dense {
    let f = x.cols();
    let mut out = Dense::zeros(a.cols(), f);
    for r in 0..a.rows() {
        for (c, v) in a.row_iter(r) {
            for j in 0..f {
                let cur = out.get(c as usize, j);
                out.set(c as usize, j, cur + v * x.get(r, j));
            }
        }
    }
    out
}

/// A value stream mixing finite values with every IEEE special the
/// zero-skip bug class cares about: ±0, ±Inf, NaN.
fn specials_stream(seed: u64) -> impl FnMut() -> f32 {
    let mut rng = StdRng::seed_from_u64(seed);
    move || match rng.gen_range(0.0f32..1.0) {
        x if x < 0.15 => 0.0,
        x if x < 0.30 => -0.0,
        x if x < 0.36 => f32::INFINITY,
        x if x < 0.42 => f32::NEG_INFINITY,
        x if x < 0.48 => f32::NAN,
        x => x * 8.0 - 4.0,
    }
}

/// A matrix big enough to clear the SELL gate (rows ≥ 2·LANES,
/// nnz ≥ 2048): 500 vertices, 6000 distinct edges (the `499`/`500`
/// moduli are coprime-ish so no pair repeats within 6000).
fn sell_sized_csr() -> Csr {
    let edges: Vec<(u32, u32)> = (0..6000u32).map(|i| (i % 499, (i * 37) % 500)).collect();
    Csr::from_edges(500, &edges)
}

// ---- Remainder lanes: widths not divisible by the lane count ------------

#[test]
fn gemm_remainder_lanes_bitwise_equal() {
    // n sweeps every remainder class around the 8-lane vector and the
    // 16-wide micro-tile, at an m × k big enough to hit quad + row tails
    // and multiple k-panels.
    let (m, k) = (37usize, 130usize);
    let mut rng = StdRng::seed_from_u64(9);
    let a = Dense::from_fn(m, k, |_, _| rng.gen_range(-2.0f32..2.0));
    for n in [
        1usize, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 33, 63, 64, 65,
    ] {
        let b = Dense::from_fn(k, n, |r, c| ((r * 31 + c * 7) % 23) as f32 * 0.25 - 2.75);
        assert_all_threads_match(&format!("matmul n={n}"), &ref_matmul(&a, &b), || {
            a.matmul(&b)
        });
    }
}

#[test]
fn spmm_remainder_lanes_bitwise_equal_with_sell_engaged() {
    let a = sell_sized_csr();
    assert!(!a.sell_packed(), "pack must be lazy");
    for f in [
        1usize, 2, 3, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 96,
    ] {
        let x = Dense::from_fn(a.cols(), f, |r, c| {
            ((r * 13 + c * 5) % 19) as f32 * 0.5 - 4.5
        });
        let reference = ref_spmm(&a, &x);
        assert_all_threads_match(&format!("spmm f={f}"), &reference, || a.spmm(&x));
        // The row-subset kernels share the gather core; their rows must
        // match the full product bitwise (finite data — same values, and
        // strictness across the kernels is part of their contract).
        let rows: Vec<u32> = (0..a.rows() as u32).step_by(7).collect();
        let sub = a.spmm_rows(&x, &rows);
        let mut into = Dense::from_fn(a.rows(), f, |r, c| (r + c) as f32 - 1.5);
        a.spmm_rows_into(&x, &rows, &mut into);
        for (i, &r) in rows.iter().enumerate() {
            for j in 0..f {
                assert_eq!(
                    sub.get(i, j).to_bits(),
                    reference.get(r as usize, j).to_bits(),
                    "spmm_rows f={f} row {r} col {j}"
                );
                assert_eq!(
                    into.get(r as usize, j).to_bits(),
                    reference.get(r as usize, j).to_bits(),
                    "spmm_rows_into f={f} row {r} col {j}"
                );
            }
        }
    }
    assert!(a.sell_packed(), "engaged sizes must build the SELL pack");
    let (slabs, padded) = a.sell_stats().unwrap();
    assert_eq!(slabs, 500usize.div_ceil(8));
    assert!(padded < a.nnz(), "padding stays bounded on mild skew");
}

// ---- IEEE specials through the SIMD path --------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// NaN/±Inf/±0 in both the CSR values and x, against the no-skip
    /// reference: the PR-7 zero-skip bug class, now through the
    /// register-chunk gather and the scatter axpy.
    #[test]
    fn sparse_specials_propagate_through_simd_path(
        positions in proptest::collection::vec((0u32..12, 0u32..9), 0..50),
        f in 0usize..11,
        seed in 0u64..1_000_000,
    ) {
        let mut val = specials_stream(seed);
        let triplets: Vec<(u32, u32, f32)> =
            positions.iter().map(|&(r, c)| (r, c, val())).collect();
        let a = Csr::from_coo(12, 9, &triplets);
        let x = Dense::from_fn(9, f, |_, _| val());
        let xt = Dense::from_fn(12, f, |_, _| val());

        // spmm's executed path is a pure function of the matrix, so it
        // must match itself strictly at every thread count…
        let serial = {
            let _g = pool::scoped_threads(Some(1));
            a.spmm(&x)
        };
        prop_assert!(bits_eq_mod_nan_payload(&serial, &ref_spmm(&a, &x)),
            "spmm/specials diverges from the no-skip reference beyond NaN payloads");
        assert_all_threads_match("spmm/specials", &serial, || a.spmm(&x));

        // …while spmm_transa may switch scatter/gather algorithms with
        // the thread count, so specials get payload latitude per count.
        assert_all_threads_match_mod_payload(
            "spmm_transa/specials",
            &ref_spmm_transa(&a, &xt),
            || a.spmm_transa(&xt),
        );
    }
}

#[test]
fn sell_path_specials_bitwise_stable() {
    // Specials at SELL-engaged size, exercising both walkers: narrow f
    // (lockstep panels, where reading a padded slot would corrupt bits —
    // -0.0 + +0.0 flips sign, padded x gathers could inject NaN) and wide
    // f (per-lane register-chunk gather).
    let mut a = sell_sized_csr();
    let mut val = specials_stream(31);
    for v in a.values_mut() {
        *v = val();
    }
    for f in [8usize, 16, 64] {
        let x = Dense::from_fn(a.cols(), f, |_, _| val());
        let serial = {
            let _g = pool::scoped_threads(Some(1));
            a.spmm(&x)
        };
        assert!(
            bits_eq_mod_nan_payload(&serial, &ref_spmm(&a, &x)),
            "SELL spmm f={f} diverges from the no-skip reference beyond NaN payloads"
        );
        assert_all_threads_match(&format!("SELL spmm/specials f={f}"), &serial, || a.spmm(&x));
    }
    assert!(a.sell_packed());
}

#[test]
fn sell_pack_invalidated_by_value_mutation() {
    let mut a = sell_sized_csr();
    let x = Dense::from_fn(a.cols(), 16, |r, c| ((r + 3 * c) % 13) as f32 - 6.0);
    let first = a.spmm(&x);
    assert!(a.sell_packed());
    for v in a.values_mut() {
        *v *= 3.0;
    }
    assert!(!a.sell_packed(), "values_mut must drop the SELL pack");
    let tripled = a.spmm(&x);
    assert!(a.sell_packed(), "next spmm rebuilds the pack");
    // Rebuilt-pack result must be the tripled aggregation, not the stale
    // panels (every entry is 1.0 → 3.0; f32 triples exactly for these).
    assert!(bits_eq(&tripled, &ref_spmm(&a, &x)));
    assert!(!bits_eq(&first, &tripled));
}

#[test]
fn sell_slab_remainder_rows_covered() {
    // Row counts not divisible by the slab width (8): the last slab runs
    // with a short lane set; every row must still be produced exactly once.
    // Wide (rows × 256) shapes push nnz past the SELL gate despite the
    // small row counts (13 is invertible mod 256, so no pair repeats
    // before lcm(rows, 256) ≥ 4352 — every triplet is distinct).
    for rows in [17usize, 23, 31, 33] {
        let triplets: Vec<(u32, u32, f32)> = (0..4352u32)
            .map(|i| (i % rows as u32, (i * 13) % 256, 1.0 + (i % 5) as f32 * 0.25))
            .collect();
        let a = Csr::from_coo(rows, 256, &triplets);
        assert!(a.nnz() >= 2048, "graph must clear the SELL gate");
        let x = Dense::from_fn(a.cols(), 24, |r, c| ((r * 7 + c) % 11) as f32 - 5.0);
        let reference = ref_spmm(&a, &x);
        assert_all_threads_match(&format!("spmm rows={rows}"), &reference, || a.spmm(&x));
        assert!(a.sell_packed(), "rows={rows} must engage SELL");
    }
}

// ---- In-process SIMD vs scalar parity -----------------------------------

#[test]
fn simd_and_scalar_compiles_agree() {
    let _lock = SIMD_OVERRIDE_LOCK.lock().unwrap();
    let _restore = SimdRestore;

    let mut rng = StdRng::seed_from_u64(77);
    let a = Dense::from_fn(61, 45, |_, _| rng.gen_range(-2.0f32..2.0));
    let b = Dense::from_fn(45, 52, |_, _| rng.gen_range(-2.0f32..2.0));
    let csr = sell_sized_csr();
    let x = Dense::from_fn(csr.cols(), 33, |_, _| rng.gen_range(-2.0f32..2.0));
    let xt = Dense::from_fn(csr.rows(), 33, |_, _| rng.gen_range(-2.0f32..2.0));

    simd::force_enabled(Some(false));
    let scalar = (
        a.matmul(&b),
        csr.spmm(&x),
        csr.spmm_transa(&xt),
        csr.spmm_rows(&x, &[0, 7, 400]),
    );
    simd::force_enabled(Some(true));
    let vector = (
        a.matmul(&b),
        csr.spmm(&x),
        csr.spmm_transa(&xt),
        csr.spmm_rows(&x, &[0, 7, 400]),
    );
    // Finite inputs: the two compiles must agree to the bit (CI's
    // DGNN_SIMD=0 leg re-asserts this transitively through the fixed
    // goldens; this test pins it in one process with no env dependence).
    assert!(bits_eq(&scalar.0, &vector.0), "matmul simd/scalar parity");
    assert!(bits_eq(&scalar.1, &vector.1), "spmm simd/scalar parity");
    assert!(
        bits_eq(&scalar.2, &vector.2),
        "spmm_transa simd/scalar parity"
    );
    assert!(
        bits_eq(&scalar.3, &vector.3),
        "spmm_rows simd/scalar parity"
    );

    // Specials: parity modulo NaN payloads (different compiles may keep
    // different payloads when two NaNs meet).
    let mut val = specials_stream(5);
    let sa = Dense::from_fn(20, 9, |_, _| val());
    let sb = Dense::from_fn(9, 17, |_, _| val());
    simd::force_enabled(Some(false));
    let s_scalar = sa.matmul(&sb);
    simd::force_enabled(Some(true));
    let s_vector = sa.matmul(&sb);
    assert!(
        bits_eq_mod_nan_payload(&s_scalar, &s_vector),
        "matmul specials simd/scalar parity beyond NaN payloads"
    );
}
