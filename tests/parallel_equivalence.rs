//! The determinism contract of the parallel tensor backend: every parallel
//! kernel is **bit-identical** to its serial reference at every thread
//! count. The references here are independent re-implementations of the
//! plain serial loops with **no** zero-skip shortcut: since the blocked
//! kernels gate their `a == ±0.0` skip on B being entirely finite (where
//! skipping is provably bit-neutral), the exact IEEE no-skip loop is the
//! semantics for *every* input — including ±0 and non-finite values, which
//! get their own property test below. Equality is checked with
//! `f32::to_bits`, not a tolerance.
//!
//! Coverage: property tests over ragged shapes (including empty matrices
//! and empty rows) at thread counts 1–8, dedicated large-matrix tests that
//! provably engage the pool (sizes above the `PAR_MIN_ROW_WORK` /
//! `PAR_MIN_ELEMS` gates), and a full `train_single` run asserting the
//! per-epoch loss stream and final parameters are bit-identical at any
//! `TrainOptions::threads` setting.

use dgnn_core::prelude::*;
use dgnn_graph::gen::churn_skewed;
use dgnn_tensor::pool;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_SWEEP: [usize; 5] = [1, 2, 3, 4, 8];

fn bits_eq(a: &Dense, b: &Dense) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Bit equality modulo NaN payloads: every element either matches
/// bitwise or both sides are NaN. When two *different* NaN payloads
/// combine (e.g. an input `f32::NAN` meeting the `±Inf · ±0` "real
/// indefinite"), IEEE 754 does not specify which payload `NaN + NaN`
/// returns, and x86 `addss` keeps whichever operand codegen put first —
/// so two differently-compiled but semantically identical loops can
/// legally differ in NaN payload bits. One compiled kernel is still
/// strictly deterministic across thread counts (asserted separately);
/// only kernel-vs-independent-reference comparisons need this latitude.
fn bits_eq_mod_nan_payload(a: &Dense, b: &Dense) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()))
}

/// For inputs containing IEEE specials: the kernel must match the
/// independent reference up to NaN payloads, and must match *itself*
/// strictly bitwise at every thread count.
fn assert_specials_match(name: &str, reference: &Dense, kernel: impl Fn() -> Dense) {
    let serial = {
        let _g = pool::scoped_threads(Some(1));
        kernel()
    };
    assert!(
        bits_eq_mod_nan_payload(&serial, reference),
        "{name} diverges from the serial reference beyond NaN payloads \
         (shape {:?} vs {:?})",
        serial.shape(),
        reference.shape()
    );
    assert_all_threads_match(name, &serial, kernel);
}

fn assert_all_threads_match(name: &str, reference: &Dense, kernel: impl Fn() -> Dense) {
    for threads in THREAD_SWEEP {
        let _g = pool::scoped_threads(Some(threads));
        let got = kernel();
        assert!(
            bits_eq(&got, reference),
            "{name} diverges from the serial reference at {threads} threads \
             (shape {:?} vs {:?})",
            got.shape(),
            reference.shape()
        );
    }
}

// ---- Independent serial references (the original kernel loops) ----------

fn ref_matmul(a: &Dense, b: &Dense) -> Dense {
    let n = b.cols();
    let mut out = Dense::zeros(a.rows(), n);
    for i in 0..a.rows() {
        for (k, &av) in a.row(i).iter().enumerate() {
            for j in 0..n {
                let cur = out.get(i, j);
                out.set(i, j, cur + av * b.get(k, j));
            }
        }
    }
    out
}

fn ref_matmul_transa(a: &Dense, b: &Dense) -> Dense {
    let n = b.cols();
    let mut out = Dense::zeros(a.cols(), n);
    for k in 0..a.rows() {
        for (i, &av) in a.row(k).iter().enumerate() {
            for j in 0..n {
                let cur = out.get(i, j);
                out.set(i, j, cur + av * b.get(k, j));
            }
        }
    }
    out
}

fn ref_matmul_transb(a: &Dense, b: &Dense) -> Dense {
    let mut out = Dense::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            let mut acc = 0.0f32;
            for (&av, &bv) in a.row(i).iter().zip(b.row(j)) {
                acc += av * bv;
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn ref_spmm(a: &Csr, x: &Dense) -> Dense {
    let f = x.cols();
    let mut out = Dense::zeros(a.rows(), f);
    for r in 0..a.rows() {
        for (c, v) in a.row_iter(r) {
            for j in 0..f {
                let cur = out.get(r, j);
                out.set(r, j, cur + v * x.get(c as usize, j));
            }
        }
    }
    out
}

fn ref_spmm_transa(a: &Csr, x: &Dense) -> Dense {
    let f = x.cols();
    let mut out = Dense::zeros(a.cols(), f);
    for r in 0..a.rows() {
        for (c, v) in a.row_iter(r) {
            for j in 0..f {
                let cur = out.get(c as usize, j);
                out.set(c as usize, j, cur + v * x.get(r, j));
            }
        }
    }
    out
}

// ---- Property tests: ragged + empty shapes, thread counts 1-8 -----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn dense_kernels_bitwise_equal_on_ragged_shapes(
        dims in (0usize..9, 0usize..9, 0usize..9),
        seed in 0u64..1_000_000,
    ) {
        let (r, k, n) = dims;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut next = || {
            use rand::Rng;
            rng.gen_range(-4.0f32..4.0)
        };
        let a = Dense::from_fn(r, k, |_, _| next());
        let b = Dense::from_fn(k, n, |_, _| next());
        let bt = Dense::from_fn(n, k, |_, _| next());
        let at = Dense::from_fn(k, r, |_, _| next());
        assert_all_threads_match("matmul", &ref_matmul(&a, &b), || a.matmul(&b));
        assert_all_threads_match("matmul_transa", &ref_matmul_transa(&at, &b), || {
            at.matmul_transa(&b)
        });
        assert_all_threads_match("matmul_transb", &ref_matmul_transb(&a, &bt), || {
            a.matmul_transb(&bt)
        });
    }

    #[test]
    fn dense_kernels_bitwise_equal_with_zeros_and_nonfinite(
        dims in (0usize..24, 0usize..10, 0usize..10),
        seed in 0u64..1_000_000,
    ) {
        // Sprinkle the IEEE specials the zero-skip bug was about: ±0.0 in A
        // (the skipped case) and NaN/±Inf in B (where 0·Inf = NaN must
        // propagate). The gated skip makes every kernel compute the exact
        // no-skip result, so the plain references apply unchanged.
        let (r, k, n) = dims;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut next = || {
            use rand::Rng;
            match rng.gen_range(0.0f32..1.0) {
                x if x < 0.15 => 0.0,
                x if x < 0.30 => -0.0,
                x if x < 0.36 => f32::INFINITY,
                x if x < 0.42 => f32::NEG_INFINITY,
                x if x < 0.48 => f32::NAN,
                x => x * 8.0 - 4.0,
            }
        };
        let a = Dense::from_fn(r, k, |_, _| next());
        let b = Dense::from_fn(k, n, |_, _| next());
        let bt = Dense::from_fn(n, k, |_, _| next());
        let at = Dense::from_fn(k, r, |_, _| next());
        assert_specials_match("matmul/specials", &ref_matmul(&a, &b), || a.matmul(&b));
        assert_specials_match("matmul_transa/specials", &ref_matmul_transa(&at, &b), || {
            at.matmul_transa(&b)
        });
        assert_specials_match("matmul_transb/specials", &ref_matmul_transb(&a, &bt), || {
            a.matmul_transb(&bt)
        });
        // Cross-family consistency: the transposed variants must agree
        // with the explicit-transpose matmul forms even on specials —
        // this is exactly what the old zero-skip broke. Strict bits: both
        // sides run the same compiled GEMM core on the same values.
        assert_all_threads_match("transb-vs-matmul", &{
            let _g = pool::scoped_threads(Some(1));
            a.matmul(&bt.transpose())
        }, || a.matmul_transb(&bt));
        assert_all_threads_match("transa-vs-matmul", &{
            let _g = pool::scoped_threads(Some(1));
            at.transpose().matmul(&b)
        }, || at.matmul_transa(&b));
    }

    #[test]
    fn sparse_kernels_bitwise_equal_on_ragged_shapes(
        triplets in proptest::collection::vec((0u32..10, 0u32..7, -4.0f32..4.0), 0..40),
        f in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        let a = Csr::from_coo(10, 7, &triplets);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut next = || {
            use rand::Rng;
            rng.gen_range(-4.0f32..4.0)
        };
        let x = Dense::from_fn(7, f, |_, _| next());
        let xt = Dense::from_fn(10, f, |_, _| next());
        assert_all_threads_match("spmm", &ref_spmm(&a, &x), || a.spmm(&x));
        assert_all_threads_match("spmm_transa", &ref_spmm_transa(&a, &xt), || {
            a.spmm_transa(&xt)
        });
    }

    #[test]
    fn elementwise_and_reductions_thread_count_invariant(
        rows in 1usize..6,
        cols in 0usize..5,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut next = || {
            use rand::Rng;
            rng.gen_range(-4.0f32..4.0)
        };
        let a = Dense::from_fn(rows, cols, |_, _| next());
        let b = Dense::from_fn(rows, cols, |_, _| next());
        let reference = {
            let _g = pool::scoped_threads(Some(1));
            (a.hadamard(&b), a.map(|v| v.tanh()), a.sum(), a.frob_norm())
        };
        for threads in THREAD_SWEEP {
            let _g = pool::scoped_threads(Some(threads));
            assert!(bits_eq(&a.hadamard(&b), &reference.0));
            assert!(bits_eq(&a.map(|v| v.tanh()), &reference.1));
            assert_eq!(a.sum().to_bits(), reference.2.to_bits());
            assert_eq!(a.frob_norm().to_bits(), reference.3.to_bits());
        }
    }
}

// ---- Large matrices: sizes that provably engage the pool ----------------

#[test]
fn engaged_dense_kernels_match_references_bitwise() {
    // 300·60·50 = 900k work units >> PAR_MIN_ROW_WORK, so the pool engages
    // at every threads > 1 setting.
    let mut rng = StdRng::seed_from_u64(99);
    let mut next = || {
        use rand::Rng;
        rng.gen_range(-2.0f32..2.0)
    };
    let a = Dense::from_fn(300, 60, |_, _| next());
    let b = Dense::from_fn(60, 50, |_, _| next());
    let at = Dense::from_fn(60, 300, |_, _| next());
    let bt = Dense::from_fn(50, 60, |_, _| next());
    assert_all_threads_match("matmul", &ref_matmul(&a, &b), || a.matmul(&b));
    assert_all_threads_match("matmul_transa", &ref_matmul_transa(&at, &b), || {
        at.matmul_transa(&b)
    });
    assert_all_threads_match("matmul_transb", &ref_matmul_transb(&a, &bt), || {
        a.matmul_transb(&bt)
    });

    // Element-wise ops above PAR_MIN_ELEMS (300 * 60 = 18_000 > 8_192).
    let big_b = Dense::from_fn(300, 60, |_, _| next());
    let elem_ref = {
        let _g = pool::scoped_threads(Some(1));
        let mut acc = a.clone();
        acc.add_assign(&big_b);
        acc.scale_assign(0.5);
        (
            a.zip_map(&big_b, |x, y| x * y + 0.25),
            acc,
            a.sum(),
            a.sum_rows(),
        )
    };
    for threads in THREAD_SWEEP {
        let _g = pool::scoped_threads(Some(threads));
        assert!(bits_eq(
            &a.zip_map(&big_b, |x, y| x * y + 0.25),
            &elem_ref.0
        ));
        let mut acc = a.clone();
        acc.add_assign(&big_b);
        acc.scale_assign(0.5);
        assert!(bits_eq(&acc, &elem_ref.1));
        assert_eq!(a.sum().to_bits(), elem_ref.2.to_bits());
        assert!(bits_eq(&a.sum_rows(), &elem_ref.3));
    }
}

#[test]
fn engaged_sparse_kernels_match_references_bitwise() {
    // nnz·f ≈ 3k·96 work units, and f = 96 clears the transpose break-even
    // (f·(1 − 1/threads) > TRANSPOSE_COST_F_UNITS) at every swept thread
    // count ≥ 2: SpMM, its backward via the parallel transpose+gather
    // path, and the partitioned transpose itself all engage.
    let g = churn_skewed(500, 2, 3_000, 0.3, 0.9, 5);
    let lap = g.snapshot(0).laplacian();
    let mut rng = StdRng::seed_from_u64(17);
    let mut next = || {
        use rand::Rng;
        rng.gen_range(-2.0f32..2.0)
    };
    let x = Dense::from_fn(500, 96, |_, _| next());
    assert_all_threads_match("spmm", &ref_spmm(&lap, &x), || lap.spmm(&x));
    assert_all_threads_match("spmm_transa", &ref_spmm_transa(&lap, &x), || {
        lap.spmm_transa(&x)
    });
    let transpose_ref = {
        let _g = pool::scoped_threads(Some(1));
        lap.transpose()
    };
    for threads in THREAD_SWEEP {
        let _g = pool::scoped_threads(Some(threads));
        assert_eq!(
            lap.transpose(),
            transpose_ref,
            "transpose at {threads} threads"
        );
    }
}

// ---- Full-epoch determinism: train_single loss streams ------------------

#[test]
fn train_single_loss_stream_is_bitwise_identical_at_any_thread_count() {
    // Big enough that the GCN SpMM, the LSTM GEMMs, and the element-wise
    // backward all clear the parallel-engage thresholds.
    let g = churn_skewed(600, 5, 2_400, 0.3, 0.9, 11);
    let cfg = ModelConfig {
        kind: ModelKind::TmGcn,
        input_f: 2,
        hidden: 16,
        mprod_window: 3,
        smoothing_window: 3,
    };
    let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
    let run = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let model = Model::new(cfg, &mut store, &mut rng);
        let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
        let opts = TrainOptions {
            epochs: 2,
            lr: 0.05,
            nb: 2,
            seed: 7,
            threads: Some(threads),
        };
        let stats = train_single(&model, &head, &mut store, &task, &opts);
        let losses: Vec<u64> = stats.iter().map(|s| s.loss.to_bits()).collect();
        (losses, store.values_flat())
    };
    let (loss_ref, params_ref) = run(1);
    for threads in [2, 3, 8] {
        let (losses, params) = run(threads);
        assert_eq!(
            losses, loss_ref,
            "loss stream diverges at {threads} threads"
        );
        let identical = params
            .iter()
            .zip(&params_ref)
            .all(|(a, b)| a.to_bits() == b.to_bits());
        assert!(identical, "parameters diverge at {threads} threads");
    }
}
