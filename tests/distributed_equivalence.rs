//! The faithful-simulation claim (paper §6.4, Fig. 6): every distribution
//! scheme — snapshot partitioning, hypergraph vertex partitioning, hybrid
//! row splitting — reproduces the sequential training trajectory; their
//! loss/accuracy curves are identical up to floating-point accumulation
//! order.

use dgnn_autograd::ParamStore;
use dgnn_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(kind: ModelKind) -> ModelConfig {
    ModelConfig {
        kind,
        input_f: 2,
        hidden: 4,
        mprod_window: 3,
        smoothing_window: 3,
    }
}

fn sequential_losses(
    raw: &DynamicGraph,
    next: &Snapshot,
    kind: ModelKind,
    epochs: usize,
    task_opts: &TaskOptions,
) -> Vec<f64> {
    let task = dgnn_core::prepare_task(raw, next, &cfg(kind), task_opts);
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let model = Model::new(cfg(kind), &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg(kind).embedding_dim(), 2, &mut rng);
    train_single(
        &model,
        &head,
        &mut store,
        &task,
        &TrainOptions {
            epochs,
            lr: 0.05,
            nb: 2,
            seed: 3,
            threads: None,
        },
    )
    .into_iter()
    .map(|s| s.loss)
    .collect()
}

#[test]
fn snapshot_partitioning_matches_sequential() {
    let g = dgnn_graph::gen::churn_skewed(30, 7, 120, 0.25, 0.9, 9);
    let raw = g.time_slice(0, 6);
    let next = g.snapshot(6).clone();
    let opts = TaskOptions::default();
    for kind in ModelKind::all() {
        let seq = sequential_losses(&raw, &next, kind, 3, &opts);
        for p in [2usize, 3] {
            let dist = train_distributed(
                &raw,
                &next,
                cfg(kind),
                &opts,
                &TrainOptions {
                    epochs: 3,
                    lr: 0.05,
                    nb: 2,
                    seed: 3,
                    threads: None,
                },
                p,
            );
            for (e, (a, b)) in seq.iter().zip(&dist).enumerate() {
                assert!(
                    (a - b.loss).abs() < 2e-4,
                    "{kind:?} P={p} epoch {e}: sequential {a} vs distributed {}",
                    b.loss
                );
            }
        }
    }
}

#[test]
fn vertex_partitioning_matches_sequential() {
    // Fig. 6's claim: both partitioning schemes faithfully simulate the
    // same sequential algorithm, so their curves coincide.
    let g = dgnn_graph::gen::churn_skewed(30, 6, 120, 0.25, 0.9, 9);
    let raw = g.time_slice(0, 5);
    let next = g.snapshot(5).clone();
    // The vertex trainer does not implement the pre-aggregation shortcut;
    // disable it on both sides (it does not change the math, see the
    // training_convergence suite).
    let opts = TaskOptions {
        precompute_first_layer: false,
        ..Default::default()
    };
    for kind in ModelKind::all() {
        let seq = sequential_losses(&raw, &next, kind, 3, &opts);
        let dist = train_vertex_partitioned(
            &raw,
            &next,
            cfg(kind),
            &opts,
            &TrainOptions {
                epochs: 3,
                lr: 0.05,
                nb: 2,
                seed: 3,
                threads: None,
            },
            2,
        );
        for (e, (a, b)) in seq.iter().zip(&dist).enumerate() {
            assert!(
                (a - b.loss).abs() < 2e-4,
                "{kind:?} epoch {e}: sequential {a} vs vertex {}",
                b.loss
            );
        }
    }
}

#[test]
fn hybrid_matches_sequential() {
    // §6.5: the hybrid scheme "truthfully simulates the sequential
    // execution".
    let g = dgnn_graph::gen::churn_skewed(24, 6, 100, 0.25, 0.9, 9);
    let raw = g.time_slice(0, 5);
    let next = g.snapshot(5).clone();
    let opts = TaskOptions {
        precompute_first_layer: false,
        ..Default::default()
    };
    for kind in ModelKind::all() {
        let seq = sequential_losses(&raw, &next, kind, 3, &opts);
        let dist = train_hybrid(
            &raw,
            &next,
            cfg(kind),
            &opts,
            &TrainOptions {
                epochs: 3,
                lr: 0.05,
                nb: 2,
                seed: 3,
                threads: None,
            },
            2,
        );
        for (e, (a, b)) in seq.iter().zip(&dist).enumerate() {
            assert!(
                (a - b.loss).abs() < 2e-4,
                "{kind:?} epoch {e}: sequential {a} vs hybrid {}",
                b.loss
            );
        }
    }
}

#[test]
fn all_world_sizes_agree_with_each_other() {
    let g = dgnn_graph::gen::churn_skewed(32, 9, 130, 0.25, 0.9, 17);
    let raw = g.time_slice(0, 8);
    let next = g.snapshot(8).clone();
    let opts = TaskOptions::default();
    let kind = ModelKind::CdGcn;
    let run = |p: usize| {
        train_distributed(
            &raw,
            &next,
            cfg(kind),
            &opts,
            &TrainOptions {
                epochs: 2,
                lr: 0.05,
                nb: 2,
                seed: 3,
                threads: None,
            },
            p,
        )
    };
    let r1 = run(1);
    let r2 = run(2);
    let r4 = run(4);
    for e in 0..2 {
        assert!((r1[e].loss - r2[e].loss).abs() < 2e-4);
        assert!((r1[e].loss - r4[e].loss).abs() < 2e-4);
    }
}
