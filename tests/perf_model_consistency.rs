//! Consistency of the analytic performance engine with the functional
//! implementation: the closed-form statistics it consumes match
//! materialised graphs, and its transfer-byte accounting matches the
//! functional trainer's.

use dgnn_autograd::ParamStore;
use dgnn_core::prelude::*;
use dgnn_graph::stats::Smoothing as St;
use dgnn_sim::perf::{estimate_epoch, ModelKind as PerfModel, PerfConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn closed_form_stats_match_materialised_graph() {
    let (n, t, m, rho, w) = (400usize, 14usize, 1600usize, 0.3, 4usize);
    let g = dgnn_graph::gen::churn(n, t, m, rho, 23);
    let smoothed = St::MProduct(w).apply(&g);
    let exact = TemporalStats::from_graph(&smoothed);
    let predicted = TemporalStats::churn_closed_form(n as u64, t, m as f64, rho, St::MProduct(w));
    for ti in 0..t {
        let e = exact.nnz[ti] as f64;
        let p = predicted.nnz[ti] as f64;
        assert!((e - p).abs() / p < 0.1, "nnz[{ti}]: {e} vs {p}");
    }
    // Steady-state diffs within 30% (collision noise at this scale).
    for i in w..t - 1 {
        let e = exact.ext_next[i] as f64;
        let p = predicted.ext_next[i] as f64;
        assert!((e - p).abs() / p < 0.3, "ext_next[{i}]: {e} vs {p}");
    }
}

#[test]
fn perf_engine_transfer_matches_functional_accounting() {
    // Build a materialised graph, feed its EXACT stats to the engine, and
    // compare the engine's transfer bytes (converted back from time) with
    // the functional trainer's byte accounting.
    let g = dgnn_graph::gen::churn_skewed(64, 9, 260, 0.3, 0.9, 31);
    let kind = ModelKind::TmGcn;
    let cfg = ModelConfig {
        kind,
        input_f: 2,
        hidden: 4,
        mprod_window: 3,
        smoothing_window: 3,
    };
    let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());

    // Functional trainer accounting (COO payloads only).
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let nb = 2;
    let stats = train_single(
        &model,
        &head,
        &mut store,
        &task,
        &TrainOptions {
            epochs: 1,
            lr: 0.01,
            nb,
            seed: 7,
            threads: None,
        },
    );
    let functional_gd = stats[0].transfer_gd_bytes;
    let functional_naive = stats[0].transfer_naive_bytes;

    // Engine on the same exact statistics; its transfer_ms component covers
    // exactly the adjacency payload the functional trainer accounts.
    let exact = TemporalStats::from_graph(&task.graph);
    let mk = |gd: bool| PerfConfig {
        gd,
        pinned: true,
        precompute_first_layer: true,
        ..PerfConfig::new(PerfModel::TmGcn, exact.clone(), 1, nb)
    };
    let engine_bytes = |gd: bool| {
        // Invert the time model: bytes = (time - latency) * bandwidth.
        let spec = dgnn_sim::MachineSpec::aimos_like();
        let report = estimate_epoch(&mk(gd));
        let transfers = 2.0 * task.t as f64; // two passes, one call per snapshot
        (report.transfer_ms * 1e3 - transfers * spec.transfer_latency_us) * spec.pcie_gbps * 1e3
    };
    let engine_gd = engine_bytes(true) as u64;
    let engine_naive = engine_bytes(false) as u64;

    let rel = |a: u64, b: u64| (a as f64 - b as f64).abs() / b as f64;
    assert!(
        rel(engine_naive, functional_naive) < 0.02,
        "naive: engine {engine_naive} vs functional {functional_naive}"
    );
    assert!(
        rel(engine_gd, functional_gd) < 0.02,
        "gd: engine {engine_gd} vs functional {functional_gd}"
    );
}

#[test]
fn engine_oom_behaviour_is_monotone_in_p() {
    // If a configuration fits on P GPUs it must also fit on 2P.
    let stats = dgnn_graph::datasets::AMLSIM.stats(St::MProduct(40));
    let mut last_fit = false;
    for p in [1usize, 2, 4, 8, 16] {
        let cfg = PerfConfig::new(PerfModel::TmGcn, stats.clone(), p, 8);
        let report = estimate_epoch(&cfg);
        if last_fit {
            assert!(!report.oom, "P={p} should fit when P/2 already did");
        }
        last_fit = !report.oom;
    }
    assert!(last_fit, "AMLSim should fit by P=16");
}

#[test]
fn engine_speedups_land_in_paper_band() {
    // Strong scaling at paper scale should deliver the paper's order of
    // speedup at 128 GPUs (they report up to 30x, §6.3).
    let spec = dgnn_graph::datasets::AMLSIM;
    let stats = spec.stats(St::MProduct(spec.calibrated_mproduct_window()));
    let time_at = |p: usize| {
        let cfg = PerfConfig::new(PerfModel::TmGcn, stats.clone(), p, 1);
        dgnn_sim::perf::tune_nb(&cfg)
            .expect("feasible")
            .1
            .total_ms()
    };
    let t1 = time_at(1);
    let t128 = time_at(128);
    let speedup = t1 / t128;
    assert!(
        (8.0..80.0).contains(&speedup),
        "speedup at 128 GPUs should be tens, got {speedup:.1}"
    );
}
