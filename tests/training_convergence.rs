//! End-to-end training convergence of all three architectures on the
//! single-rank checkpointed trainer (the sequential reference every
//! distributed scheme must match).

use dgnn_autograd::ParamStore;
use dgnn_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(kind: ModelKind) -> ModelConfig {
    ModelConfig {
        kind,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    }
}

fn build(kind: ModelKind, seed: u64) -> (Model, LinkPredHead, ParamStore) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = ParamStore::new();
    let model = Model::new(cfg(kind), &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg(kind).embedding_dim(), 2, &mut rng);
    (model, head, store)
}

#[test]
fn all_models_reduce_loss_on_skewed_churn() {
    let g = dgnn_graph::gen::churn_skewed(60, 10, 240, 0.3, 0.9, 21);
    for kind in ModelKind::all() {
        let task = prepare_task_holdout(&g, &cfg(kind), &TaskOptions::default());
        let (model, head, mut store) = build(kind, 5);
        let stats = train_single(
            &model,
            &head,
            &mut store,
            &task,
            &TrainOptions {
                epochs: 12,
                lr: 0.05,
                nb: 2,
                seed: 5,
                threads: None,
            },
        );
        let first = stats.first().unwrap().loss;
        let last = stats.last().unwrap().loss;
        assert!(
            last < first - 1e-4,
            "{kind:?}: loss {first:.5} -> {last:.5}"
        );
        assert!(last.is_finite());
    }
}

#[test]
fn link_prediction_beats_chance_on_aml_like_data() {
    // An AML-Sim-style workload: heavy-tailed transactions — the task the
    // paper evaluates (test accuracy 63.8%-65.8% on the large variants,
    // §6.5).
    let g = dgnn_graph::gen::churn_skewed(80, 10, 400, 0.2, 0.95, 33);
    let kind = ModelKind::TmGcn;
    let task = prepare_task_holdout(&g, &cfg(kind), &TaskOptions::default());
    let (model, head, mut store) = build(kind, 9);
    let stats = train_single(
        &model,
        &head,
        &mut store,
        &task,
        &TrainOptions {
            epochs: 50,
            lr: 0.1,
            nb: 1,
            seed: 9,
            threads: None,
        },
    );
    let best_train = stats.iter().map(|s| s.train_acc).fold(0.0, f64::max);
    let best_test = stats.iter().map(|s| s.test_acc).fold(0.0, f64::max);
    assert!(best_train > 0.6, "train accuracy {best_train}");
    assert!(best_test > 0.55, "test accuracy {best_test}");
}

#[test]
fn precompute_does_not_change_the_math() {
    // Paper §5.5: pre-computing Ã·X of the first layer is a pure
    // optimization; training trajectories must be identical.
    let g = dgnn_graph::gen::churn_skewed(40, 6, 160, 0.3, 0.9, 8);
    for kind in ModelKind::all() {
        let run = |pre: bool| {
            let task = prepare_task_holdout(
                &g,
                &cfg(kind),
                &TaskOptions {
                    precompute_first_layer: pre,
                    ..Default::default()
                },
            );
            let (model, head, mut store) = build(kind, 3);
            let stats = train_single(
                &model,
                &head,
                &mut store,
                &task,
                &TrainOptions {
                    epochs: 3,
                    lr: 0.05,
                    nb: 2,
                    seed: 3,
                    threads: None,
                },
            );
            (stats.last().unwrap().loss, store.values_flat())
        };
        let (loss_a, params_a) = run(true);
        let (loss_b, params_b) = run(false);
        assert!(
            (loss_a - loss_b).abs() < 1e-5,
            "{kind:?}: {loss_a} vs {loss_b}"
        );
        let max_diff = params_a
            .iter()
            .zip(&params_b)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_diff < 1e-4, "{kind:?}: params diverge by {max_diff}");
    }
}

#[test]
fn longer_training_does_not_blow_up() {
    // Stability: 40 epochs at a healthy learning rate keeps finite values.
    let g = dgnn_graph::gen::churn_skewed(50, 8, 200, 0.25, 0.9, 13);
    for kind in ModelKind::all() {
        let task = prepare_task_holdout(&g, &cfg(kind), &TaskOptions::default());
        let (model, head, mut store) = build(kind, 11);
        let stats = train_single(
            &model,
            &head,
            &mut store,
            &task,
            &TrainOptions {
                epochs: 40,
                lr: 0.05,
                nb: 2,
                seed: 11,
                threads: None,
            },
        );
        for s in &stats {
            assert!(s.loss.is_finite(), "{kind:?} loss exploded");
        }
        assert!(
            store.values_flat().iter().all(|v| v.is_finite()),
            "{kind:?} params"
        );
    }
}
