//! Cross-checks between the analytic communication-volume formulas
//! (paper §4) and the volumes the functional trainers actually move.

use dgnn_core::prelude::*;
use dgnn_partition::{
    partition, snapshot_epoch_units, vertex_spmm_units, Hypergraph, PartitionerConfig,
};

fn cfg(kind: ModelKind) -> ModelConfig {
    ModelConfig {
        kind,
        input_f: 2,
        hidden: 4,
        mprod_window: 3,
        smoothing_window: 3,
    }
}

#[test]
fn snapshot_trainer_moves_the_predicted_feature_volume() {
    // TM-GCN: every redistribution is `hidden` floats wide, so the epoch
    // feature volume is exactly snapshot_epoch_units * hidden * 4 bytes.
    let g = dgnn_graph::gen::churn_skewed(32, 9, 130, 0.25, 0.9, 4);
    let raw = g.time_slice(0, 8);
    let next = g.snapshot(8).clone();
    let kind = ModelKind::TmGcn;
    for p in [2usize, 4] {
        let stats = train_distributed(
            &raw,
            &next,
            cfg(kind),
            &TaskOptions::default(),
            &TrainOptions {
                epochs: 1,
                lr: 0.01,
                nb: 2,
                seed: 3,
                threads: None,
            },
            p,
        );
        let measured = stats[0].comm_bytes as f64;
        // `comm_bytes` is per-rank. The checkpointed backward re-runs the
        // forward redistributions (paper Fig. 2's rerun segment), so the
        // epoch moves 3/2 of the nominal forward+backward volume.
        let predicted =
            1.5 * snapshot_epoch_units(8, 32, p, 2) as f64 * cfg(kind).hidden as f64 * 4.0
                / p as f64;
        // Measured adds only the small gradient/stat all-reduces on top.
        assert!(
            measured >= predicted,
            "P={p}: measured {measured} below prediction {predicted}"
        );
        assert!(
            measured < predicted * 1.15,
            "P={p}: measured {measured} far above prediction {predicted}"
        );
    }
}

#[test]
fn snapshot_volume_is_independent_of_density() {
    // The paper's headline property: O(T·N), regardless of graph density.
    let run = |m: usize| {
        let g = dgnn_graph::gen::churn_skewed(32, 7, m, 0.25, 0.9, 4);
        let raw = g.time_slice(0, 6);
        let next = g.snapshot(6).clone();
        let stats = train_distributed(
            &raw,
            &next,
            cfg(ModelKind::TmGcn),
            &TaskOptions::default(),
            &TrainOptions {
                epochs: 1,
                lr: 0.01,
                nb: 1,
                seed: 3,
                threads: None,
            },
            2,
        );
        stats[0].comm_bytes
    };
    let sparse = run(60);
    let dense = run(240);
    // Identical redistribution volume; only sampled-loss payloads differ
    // slightly because denser graphs have more training pairs.
    let ratio = dense as f64 / sparse as f64;
    assert!(
        (0.95..1.15).contains(&ratio),
        "volume should not scale with density: {sparse} vs {dense}"
    );
}

#[test]
fn exchange_plan_volume_equals_lambda_formula() {
    // The vertex-partitioned exchange lists are exactly the
    // Σ_t Σ_v (λ_t(v) − 1) units of paper §4.1.
    let g = dgnn_graph::gen::churn_skewed(40, 5, 200, 0.3, 0.7, 11);
    let smoothed = dgnn_graph::Smoothing::MProduct(3).apply(&g);
    let p = 4;
    let hg = Hypergraph::column_net_model(&smoothed);
    let part = partition(&hg, &PartitionerConfig::new(p));
    let units = vertex_spmm_units(&smoothed, &part, p);
    // Volume grows with p and is positive for connected random graphs.
    assert!(units > 0);
    let part2 = partition(&hg, &PartitionerConfig::new(2));
    let units2 = vertex_spmm_units(&smoothed, &part2, 2);
    assert!(
        units > units2,
        "λ volume should grow with P: {units2} -> {units}"
    );
}

#[test]
fn evolvegcn_communicates_orders_less_than_tmgcn() {
    // Paper Table 2: EvolveGCN's only traffic is the parameter all-reduce.
    let g = dgnn_graph::gen::churn_skewed(32, 7, 130, 0.25, 0.9, 4);
    let raw = g.time_slice(0, 6);
    let next = g.snapshot(6).clone();
    let run = |kind: ModelKind| {
        train_distributed(
            &raw,
            &next,
            cfg(kind),
            &TaskOptions::default(),
            &TrainOptions {
                epochs: 1,
                lr: 0.01,
                nb: 1,
                seed: 3,
                threads: None,
            },
            4,
        )[0]
        .comm_bytes
    };
    let egcn = run(ModelKind::EvolveGcn);
    let tmgcn = run(ModelKind::TmGcn);
    assert!(
        (egcn as f64) < 0.5 * tmgcn as f64,
        "EvolveGCN {egcn} should be well below TM-GCN {tmgcn}"
    );
}
