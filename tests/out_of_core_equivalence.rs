//! Out-of-core bit-identity: `train_single_out_of_core` must reproduce
//! `train_single` exactly — same per-epoch loss bit patterns, same final
//! parameter bits — at every store budget (zero: everything faults; half
//! the working set: the Fig. 4/5 regime; unbounded: nothing faults) and
//! at multiple thread counts. The spill frames round-trip raw `f32` bit
//! patterns, so out-of-core placement must be invisible to the
//! arithmetic, exactly like the workspace arena and the thread count.

use dgnn_core::prelude::*;
use dgnn_core::train_single_out_of_core;
use dgnn_store::StoreConfig;
use dgnn_tensor::digest::digest_f32;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(kind: ModelKind) -> (Model, LinkPredHead, ParamStore, Task) {
    let g = dgnn_graph::gen::churn_skewed(60, 8, 240, 0.3, 0.9, 11);
    let cfg = ModelConfig {
        kind,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    };
    let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    (model, head, store, task)
}

fn opts(threads: usize) -> TrainOptions {
    TrainOptions {
        epochs: 3,
        lr: 0.05,
        nb: 3,
        seed: 7,
        threads: Some(threads),
    }
}

/// Reference run: all in memory.
fn golden(kind: ModelKind, threads: usize) -> (Vec<u64>, u64) {
    let (model, head, mut store, task) = setup(kind);
    let stats = train_single(&model, &head, &mut store, &task, &opts(threads));
    (
        stats.iter().map(|s| s.loss.to_bits()).collect(),
        digest_f32(&store.values_flat()),
    )
}

/// Half the spilled working set: forces eviction traffic every epoch.
fn half_budget(task: &Task) -> u64 {
    let lap_bytes: u64 = task
        .laps
        .iter()
        .map(|l| dgnn_store::encode_csr(l).len() as u64)
        .sum();
    let input_bytes: u64 = task
        .preagg
        .as_ref()
        .unwrap_or(&task.features)
        .iter()
        .map(|d| dgnn_store::encode_dense(d).len() as u64)
        .sum();
    (lap_bytes + input_bytes) / 2
}

#[test]
fn out_of_core_is_bit_identical_at_every_budget() {
    for kind in ModelKind::all() {
        for threads in [1usize, 4] {
            let (want_losses, want_params) = golden(kind, threads);
            let budgets = {
                let (_, _, _, task) = setup(kind);
                [0, half_budget(&task), u64::MAX]
            };
            for budget in budgets {
                let (model, head, mut store, task) = setup(kind);
                let (stats, report) = train_single_out_of_core(
                    &model,
                    &head,
                    &mut store,
                    &task,
                    &opts(threads),
                    &StoreConfig::with_budget(budget),
                )
                .expect("out-of-core training must succeed");
                let got_losses: Vec<u64> = stats.iter().map(|s| s.loss.to_bits()).collect();
                assert_eq!(
                    got_losses, want_losses,
                    "{kind:?} threads={threads} budget={budget}: loss stream diverged"
                );
                assert_eq!(
                    digest_f32(&store.values_flat()),
                    want_params,
                    "{kind:?} threads={threads} budget={budget}: parameters diverged"
                );
                // Tier-miss accounting: zero budget must fault, unbounded
                // must not (after the write-through puts), and the epochs
                // must agree with the store totals.
                let epoch_misses: u64 = stats.iter().map(|s| s.store_miss_bytes).sum();
                assert_eq!(
                    epoch_misses, report.miss_bytes,
                    "{kind:?} budget={budget}: per-epoch misses must sum to the store total"
                );
                if budget == 0 {
                    assert!(
                        report.miss_bytes > 0,
                        "{kind:?}: a zero budget must fault the file tier"
                    );
                    assert_eq!(report.resident_bytes, 0);
                } else if budget == u64::MAX {
                    assert_eq!(
                        report.miss_bytes, 0,
                        "{kind:?}: an unbounded budget must never fault"
                    );
                    assert_eq!(report.evictions, 0);
                } else {
                    assert!(
                        report.peak_resident_bytes <= budget,
                        "{kind:?}: memory tier exceeded its budget"
                    );
                    assert!(
                        report.evictions > 0,
                        "{kind:?}: half the working set must evict"
                    );
                }
            }
        }
    }
}

#[test]
fn out_of_core_reports_miss_bytes_per_epoch() {
    let (model, head, mut store, task) = setup(ModelKind::CdGcn);
    let (stats, _) = train_single_out_of_core(
        &model,
        &head,
        &mut store,
        &task,
        &opts(1),
        &StoreConfig::with_budget(0),
    )
    .unwrap();
    // Every epoch reads every block (forward + backward rerun) plus the
    // carries, so each epoch's miss accounting must be non-zero — and the
    // in-memory trainer reports exactly zero.
    for (i, s) in stats.iter().enumerate() {
        assert!(s.store_miss_bytes > 0, "epoch {i} reported no tier misses");
    }
    let (model, head, mut store, task) = setup(ModelKind::CdGcn);
    let in_mem = train_single(&model, &head, &mut store, &task, &opts(1));
    assert!(in_mem.iter().all(|s| s.store_miss_bytes == 0));
}
