//! The gradient-checkpointing guarantee (paper §3.1, Fig. 2): cutting the
//! timeline into blocks changes memory behaviour but NOT the computation.
//! Gradients after one epoch must match across block counts to f32
//! round-off, for every architecture.

use dgnn_autograd::ParamStore;
use dgnn_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn grads_for(kind: ModelKind, nb: usize, t: usize) -> Vec<f32> {
    let g = dgnn_graph::gen::churn_skewed(60, t + 1, 240, 0.3, 0.9, 11);
    let cfg = ModelConfig {
        kind,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    };
    let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    // lr = 0 -> the step is a no-op, so grads survive for inspection.
    let _ = train_single(
        &model,
        &head,
        &mut store,
        &task,
        &TrainOptions {
            epochs: 1,
            lr: 0.0,
            nb,
            seed: 7,
            threads: None,
        },
    );
    store.grads_flat()
}

fn max_rel_diff(a: &[f32], b: &[f32]) -> f32 {
    let norm = a.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-12);
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0f32, f32::max)
        / norm
}

#[test]
fn gradients_identical_across_block_counts() {
    for kind in ModelKind::all() {
        let reference = grads_for(kind, 1, 8);
        for nb in [2usize, 3, 4, 8] {
            let got = grads_for(kind, nb, 8);
            let diff = max_rel_diff(&reference, &got);
            assert!(diff < 1e-5, "{kind:?} nb={nb}: relative diff {diff}");
        }
    }
}

#[test]
fn uneven_blocks_are_handled() {
    // T = 7 does not divide evenly into 2 or 3 blocks.
    for kind in ModelKind::all() {
        let reference = grads_for(kind, 1, 7);
        for nb in [2usize, 3] {
            let got = grads_for(kind, nb, 7);
            let diff = max_rel_diff(&reference, &got);
            assert!(diff < 1e-5, "{kind:?} nb={nb}: relative diff {diff}");
        }
    }
}

#[test]
fn one_block_per_timestep_still_works() {
    // The extreme: every timestep its own block — maximal carry traffic.
    for kind in ModelKind::all() {
        let reference = grads_for(kind, 1, 6);
        let got = grads_for(kind, 6, 6);
        let diff = max_rel_diff(&reference, &got);
        assert!(diff < 1e-5, "{kind:?}: relative diff {diff}");
    }
}
