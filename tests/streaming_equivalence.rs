//! Online-vs-batch training equivalence: the streaming trainer driven
//! over a replayed event log must match `train_single` on the equivalent
//! precomputed snapshot sequence.

use dgnn_autograd::ParamStore;
use dgnn_core::prelude::*;
use dgnn_core::StreamTrainOptions;
use dgnn_graph::gen::churn_skewed;
use dgnn_models::Model;
use dgnn_stream::EventLog;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg() -> ModelConfig {
    ModelConfig {
        kind: ModelKind::TmGcn,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    }
}

fn batch_loss(g: &DynamicGraph, epochs: usize, train: &TrainOptions) -> f64 {
    let task = prepare_task_holdout(g, &cfg(), &TaskOptions::default());
    let mut rng = StdRng::seed_from_u64(train.seed);
    let mut store = ParamStore::new();
    let model = Model::new(cfg(), &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg().embedding_dim(), 2, &mut rng);
    let stats = train_single(
        &model,
        &head,
        &mut store,
        &task,
        &TrainOptions { epochs, ..*train },
    );
    stats.last().unwrap().loss
}

#[test]
fn single_window_stream_matches_batch_trainer() {
    // min_history = T - 1: only the final window trains, from a fresh
    // initialisation — the streaming run must then be the batch run.
    let g = churn_skewed(60, 8, 240, 0.3, 0.9, 11);
    let train = TrainOptions {
        lr: 0.05,
        nb: 2,
        seed: 7,
        ..Default::default()
    };
    let epochs = 8;
    let batch = batch_loss(&g, epochs, &train);

    let log = EventLog::replay(&g);
    let opts = StreamTrainOptions {
        policy: WindowPolicy::Tumbling { width: 1 },
        history: g.t() - 1,
        min_history: g.t() - 1,
        epochs_per_window: epochs,
        train,
        task: TaskOptions::default(),
    };
    let stats = train_streaming(&log, cfg(), &opts);
    assert_eq!(stats.len(), 1, "exactly the final window trains");
    let stream = stats[0].final_loss();
    let rel = (stream - batch).abs() / batch;
    assert!(
        rel < 0.05,
        "stream loss {stream} vs batch loss {batch} (rel {rel})"
    );
    // Identical seeds and data make it bit-close, not merely within 5%.
    assert!(rel < 1e-6, "trajectories should coincide, rel {rel}");
}

#[test]
fn warm_started_stream_reaches_batch_loss() {
    // Continual training across many windows must end at least as well
    // (within 5%) as one batch run over the same timeline.
    let g = churn_skewed(60, 10, 240, 0.2, 0.9, 8);
    let train = TrainOptions {
        lr: 0.05,
        nb: 1,
        seed: 7,
        ..Default::default()
    };
    let epochs = 10;
    let batch = batch_loss(&g, epochs, &train);

    let log = EventLog::replay(&g);
    let opts = StreamTrainOptions {
        policy: WindowPolicy::Tumbling { width: 1 },
        history: g.t() - 1,
        min_history: 2,
        epochs_per_window: 5,
        train,
        task: TaskOptions::default(),
    };
    let stats = train_streaming(&log, cfg(), &opts);
    assert!(stats.len() > 3, "multiple windows should train");
    let stream = stats.last().unwrap().final_loss();
    assert!(
        stream <= batch * 1.05,
        "warm-started stream loss {stream} should reach batch loss {batch}"
    );
}

#[test]
fn streamed_windows_feed_identical_tasks() {
    // The bridge guarantee behind both tests above: collecting the
    // tumbling windows of a replayed log yields the original graph.
    let g = churn_skewed(40, 6, 120, 0.3, 0.7, 3);
    let log = EventLog::replay(&g);
    let back = dgnn_stream::collect_dynamic_graph(&log, WindowPolicy::Tumbling { width: 1 });
    assert_eq!(back.t(), g.t());
    for t in 0..g.t() {
        assert_eq!(back.snapshot(t).adj(), g.snapshot(t).adj(), "t = {t}");
    }
}
