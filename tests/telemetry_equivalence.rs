//! The observability contract: tracing can never perturb results.
//!
//! Probes only read the clock and append to thread-local buffers, so a
//! run with `DGNN_TRACE` on must be **bit-identical** to the same run
//! with it off — same loss bits, same final parameters, same served
//! embedding bits. These tests pin that for the training engine and the
//! incremental serving path, and pin the flip side of the satellite
//! contract: the per-epoch phase breakdown is all zeros when tracing is
//! off (the engine pays for no clock reads it was not asked for) and
//! populated when it is on.
//!
//! The trace switch is process-global, so the tests serialize on a mutex
//! and restore the off state before releasing it.

use std::sync::Mutex;

use dgnn_autograd::ParamStore;
use dgnn_core::metrics::PhaseBreakdown;
use dgnn_core::prelude::*;
use dgnn_serve::{Checkpoint, InferenceSession, ServeModel};
use dgnn_stream::EdgeEvent;
use dgnn_telemetry::trace;
use dgnn_tensor::digest::digest_f32;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serializes the tests that flip the process-global trace switch.
static TRACE_TOGGLE: Mutex<()> = Mutex::new(());

fn lock_toggle() -> std::sync::MutexGuard<'static, ()> {
    TRACE_TOGGLE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn small_cfg(kind: ModelKind) -> ModelConfig {
    ModelConfig {
        kind,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    }
}

/// One deterministic training run: loss-stream bits, final-parameter
/// digest, and the raw per-epoch stats.
fn train_run() -> (Vec<u64>, u64, Vec<EpochStats>) {
    let cfg = small_cfg(ModelKind::CdGcn);
    let g = dgnn_graph::gen::churn_skewed(96, 7, 420, 0.25, 0.9, 23);
    let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
    let mut rng = StdRng::seed_from_u64(9);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let opts = TrainOptions {
        epochs: 3,
        lr: 0.05,
        nb: 2,
        seed: 9,
        threads: None,
    };
    let stats = train_single(&model, &head, &mut store, &task, &opts);
    let losses = stats.iter().map(|s| s.loss.to_bits()).collect();
    (losses, digest_f32(&store.values_flat()), stats)
}

/// One deterministic incremental-serving run: per-window versions and the
/// final embedding-bit digest.
fn serve_run() -> (Vec<u64>, u64) {
    let cfg = small_cfg(ModelKind::EvolveGcn);
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let cp = Checkpoint::from_store(&model, &head, &store);
    let serve_model = ServeModel::from_checkpoint(&cp).expect("serve model");
    let features = Dense::from_fn(48, 2, |r, c| ((r * 17 + c * 3) % 13) as f32 / 13.0);
    let mut session = InferenceSession::new(serve_model, features);
    let mut versions = Vec::new();
    for w in 0..4u64 {
        let evs: Vec<EdgeEvent> = (0..6u32)
            .map(|i| EdgeEvent::add(w, (w as u32 * 6 + i) % 48, (i * 11 + 2) % 48, 1.0))
            .collect();
        session.ingest(&evs);
        versions.push(session.advance().version);
    }
    (versions, digest_f32(session.embeddings().data()))
}

#[test]
fn training_is_bit_identical_with_tracing_on() {
    let _guard = lock_toggle();
    trace::set_enabled(false);
    let (losses_off, params_off, stats_off) = train_run();
    trace::set_enabled(true);
    let (losses_on, params_on, stats_on) = train_run();
    trace::set_enabled(false);
    trace::clear();

    assert_eq!(losses_off, losses_on, "tracing changed the loss stream");
    assert_eq!(params_off, params_on, "tracing changed the parameters");

    // Off: no clock reads, so the breakdown is exactly zero.
    for s in &stats_off {
        assert_eq!(
            s.phase,
            PhaseBreakdown::default(),
            "phase breakdown must be all zeros when tracing is off"
        );
    }
    // On: the same run reports where its time went.
    for s in &stats_on {
        assert!(
            s.phase.busy_us() > 0,
            "phase breakdown must be populated when tracing is on, got {:?}",
            s.phase
        );
    }
}

#[test]
fn serve_incremental_is_bit_identical_with_tracing_on() {
    let _guard = lock_toggle();
    trace::set_enabled(false);
    let off = serve_run();
    trace::set_enabled(true);
    let on = serve_run();
    trace::set_enabled(false);
    trace::clear();
    assert_eq!(off, on, "tracing changed the served embeddings");
}
