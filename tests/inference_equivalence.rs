//! The incremental-recompute contract of `dgnn-serve`: for arbitrary
//! event streams cut into arbitrary windows, the cached per-layer
//! activations maintained by frontier recompute are **bit-identical** to a
//! from-scratch forward over the materialized graph — at every thread
//! count (`DGNN_THREADS` 1 and 4 are the CI matrix; both are swept here
//! explicitly as well).

use dgnn_serve::{InferenceSession, ServeLayer, ServeModel};
use dgnn_stream::{EdgeEvent, EventKind};
use dgnn_tensor::{pool, Dense};
use proptest::prelude::*;

/// A deterministic two-layer serve model over `input_f` features.
fn model(input_f: usize, hidden: usize, skip: bool) -> ServeModel {
    let mat = |rows: usize, cols: usize, salt: usize| {
        Dense::from_fn(rows, cols, |r, c| {
            ((r * 29 + c * 13 + salt * 11) % 19) as f32 / 19.0 - 0.5
        })
    };
    let l0 = ServeLayer {
        w: mat(input_f, hidden, 1),
        b: Dense::full(1, hidden, 0.03),
        skip_concat: skip,
    };
    let l1 = ServeLayer {
        w: mat(l0.out_width(), hidden, 2),
        b: Dense::full(1, hidden, -0.02),
        skip_concat: skip,
    };
    let emb = l1.out_width();
    ServeModel::from_parts(vec![l0, l1], mat(2 * emb, 2, 3), Dense::zeros(1, 2))
}

fn features(n: usize, f: usize) -> Dense {
    Dense::from_fn(n, f, |r, c| ((r * 37 + c * 23) % 29) as f32 / 29.0 - 0.4)
}

/// Decodes a raw `(op, src, dst, weight)` tuple into an event at `time`.
fn event(time: u64, op: u8, src: u32, dst: u32, w: f32) -> EdgeEvent {
    let kind = match op % 3 {
        0 => EventKind::Add,
        1 => EventKind::Remove,
        _ => EventKind::UpdateWeight,
    };
    EdgeEvent {
        time,
        src,
        dst,
        kind,
        weight: w,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random streams, random window cuts, both skip-concat variants:
    /// after every advance the session equals the full forward bitwise,
    /// and at every swept thread count the recompute lands on the same
    /// bits.
    #[test]
    fn incremental_equals_full_forward(
        n in 8usize..24,
        raw in proptest::collection::vec(
            (0u8..6, 0u32..24, 0u32..24, 0.25f32..4.0),
            1..120,
        ),
        windows in 1usize..6,
        skip in any::<bool>(),
    ) {
        let events: Vec<EdgeEvent> = raw
            .iter()
            .enumerate()
            .map(|(i, &(op, s, d, w))| {
                event(i as u64, op, s % n as u32, d % n as u32, w)
            })
            .collect();
        let mut per_thread_bits: Vec<Vec<u32>> = Vec::new();
        for threads in [1usize, 4] {
            let _g = pool::scoped_threads(Some(threads));
            let mut session = InferenceSession::new(model(3, 5, skip), features(n, 3));
            let per = events.len().div_ceil(windows);
            for chunk in events.chunks(per) {
                session.ingest(chunk);
                session.advance();
                session.assert_matches_full();
            }
            per_thread_bits.push(
                session
                    .embeddings()
                    .data()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect(),
            );
        }
        // The embeddings are a pure function of the stream, independent of
        // the thread count.
        prop_assert_eq!(&per_thread_bits[0], &per_thread_bits[1]);
    }
}

/// An engaged-size deterministic run: large enough that the pool actually
/// splits the kernels at 4 threads, advancing several windows with mixed
/// churn, checked bitwise against the full forward each window.
#[test]
fn engaged_size_stream_stays_bitwise_equal() {
    let n = 600usize;
    for threads in [1usize, 4] {
        let _g = pool::scoped_threads(Some(threads));
        let mut session = InferenceSession::new(model(8, 32, false), features(n, 8));
        // Bulk load: a ring plus long-range chords.
        let bulk: Vec<EdgeEvent> = (0..n as u32)
            .flat_map(|u| {
                [
                    EdgeEvent::add(0, u, (u + 1) % n as u32, 1.0),
                    EdgeEvent::add(0, u, (u * 7 + 3) % n as u32, 0.5),
                ]
            })
            .collect();
        session.ingest(&bulk);
        session.advance();
        session.assert_matches_full();
        // Churn windows: removals, weight updates, inserts.
        for w in 1..4u64 {
            let evs: Vec<EdgeEvent> = (0..20u32)
                .flat_map(|i| {
                    let u = (i * 37 + w as u32 * 101) % n as u32;
                    let v = (u + 1) % n as u32;
                    [
                        EdgeEvent::remove(w, u, v),
                        EdgeEvent::add(w, u, (u * 13 + 5) % n as u32, 2.0),
                        EdgeEvent::update(w, u, (u * 7 + 3) % n as u32, 0.25),
                    ]
                })
                .collect();
            session.ingest(&evs);
            let report = session.advance();
            assert!(report.touched > 0);
            // The frontier stays a strict subset of the graph on gradual
            // churn — that locality is the whole point.
            assert!(
                report.frontier_rows.iter().all(|&f| f < n),
                "frontier covered the whole graph"
            );
            session.assert_matches_full();
        }
    }
}
