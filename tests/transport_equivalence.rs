//! The PR-10 transport contract: every distributed entry point produces
//! **bit-identical** results on [`SharedMemComm`] and [`SimComm`] — loss
//! streams, transfer/comm accounting, and final parameters — at every
//! rank count and intra-rank thread count, and the shared-memory
//! transport reproduces the pre-engine golden captures exactly.
//!
//! `TrainOptions::threads` is the programmatic form of `DGNN_THREADS`
//! (the pool resolves them through the same override chain), so the
//! {1, 4} sweep here covers the env-var matrix CI also runs; the
//! transport sweep here likewise covers the `DGNN_COMM={sim,shm}` CI
//! dimension from inside one process.
//!
//! [`SimComm`]: dgnn_sim::SimComm
//! [`SharedMemComm`]: dgnn_sim::SharedMemComm

use dgnn_core::prelude::*;
use dgnn_graph::DynamicGraph;
use dgnn_graph::Snapshot;
use dgnn_sim::{scoped_transport, CommTransport};
use dgnn_tensor::digest::fnv1a as fnv;
use proptest::prelude::*;

/// Digest over the full per-epoch stat stream: loss, train/test accuracy,
/// transfer accounting, comm volume (same layout as the golden captures
/// in `engine_equivalence.rs`).
fn digest_stats(stats: &[EpochStats]) -> u64 {
    fnv(stats.iter().flat_map(|s| {
        let mut b = Vec::new();
        b.extend(s.loss.to_bits().to_le_bytes());
        b.extend(s.train_acc.to_bits().to_le_bytes());
        b.extend(s.test_acc.to_bits().to_le_bytes());
        b.extend(s.transfer_naive_bytes.to_le_bytes());
        b.extend(s.transfer_gd_bytes.to_le_bytes());
        b.extend(s.comm_bytes.to_le_bytes());
        b
    }))
}

fn small_cfg(kind: ModelKind) -> ModelConfig {
    ModelConfig {
        kind,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    }
}

const KINDS: [ModelKind; 3] = [ModelKind::CdGcn, ModelKind::EvolveGcn, ModelKind::TmGcn];

#[derive(Clone, Copy, Debug, PartialEq)]
enum Strategy {
    Time,
    Vertex,
    Hybrid,
}

impl Strategy {
    /// The same workload shapes the golden captures in
    /// `engine_equivalence.rs` were taken on.
    fn workload(self) -> (DynamicGraph, Snapshot, TaskOptions) {
        let (g, task_opts) = match self {
            Strategy::Time => (
                dgnn_graph::gen::churn(30, 6, 120, 0.25, 9),
                TaskOptions::default(),
            ),
            Strategy::Vertex => (
                dgnn_graph::gen::churn(24, 6, 100, 0.3, 5),
                TaskOptions {
                    precompute_first_layer: false,
                    ..Default::default()
                },
            ),
            Strategy::Hybrid => (
                dgnn_graph::gen::churn(20, 6, 80, 0.3, 5),
                TaskOptions {
                    precompute_first_layer: false,
                    ..Default::default()
                },
            ),
        };
        let raw = g.time_slice(0, 5);
        let next = g.snapshot(5).clone();
        (raw, next, task_opts)
    }

    fn run(self, kind: ModelKind, p: usize, opts: &TrainOptions) -> (Vec<EpochStats>, Vec<u64>) {
        let (raw, next, task_opts) = self.workload();
        let cfg = small_cfg(kind);
        match self {
            Strategy::Time => train_distributed_digest(&raw, &next, cfg, &task_opts, opts, p),
            Strategy::Vertex => {
                train_vertex_partitioned_digest(&raw, &next, cfg, &task_opts, opts, p)
            }
            Strategy::Hybrid => train_hybrid_digest(&raw, &next, cfg, &task_opts, opts, p),
        }
    }
}

/// One strategy run on one transport, reduced to comparable fingerprints:
/// (loss bits, stat-stream digest, per-rank final-parameter digests).
fn fingerprint(
    strategy: Strategy,
    kind: ModelKind,
    transport: CommTransport,
    p: usize,
    opts: &TrainOptions,
) -> (Vec<u64>, u64, Vec<u64>) {
    let _t = scoped_transport(transport);
    let (stats, params) = strategy.run(kind, p, opts);
    let losses = stats.iter().map(|s| s.loss.to_bits()).collect();
    (losses, digest_stats(&stats), params)
}

fn sweep_strategy(strategy: Strategy) {
    for p in [1usize, 2, 4] {
        for threads in [1usize, 4] {
            let opts = TrainOptions {
                epochs: 2,
                lr: 0.02,
                nb: 2,
                seed: 3,
                threads: Some(threads),
            };
            let sim = fingerprint(strategy, ModelKind::TmGcn, CommTransport::Sim, p, &opts);
            let shm = fingerprint(
                strategy,
                ModelKind::TmGcn,
                CommTransport::SharedMem,
                p,
                &opts,
            );
            assert_eq!(
                sim, shm,
                "{strategy:?} p={p} threads={threads}: transports diverge"
            );
            // Every rank's final parameter replica must agree bitwise.
            assert_eq!(shm.2.len(), p);
            for (rank, d) in shm.2.iter().enumerate() {
                assert_eq!(
                    d, &shm.2[0],
                    "{strategy:?} p={p} threads={threads}: rank {rank} replica diverged"
                );
            }
        }
    }
}

#[test]
fn time_partitioned_is_transport_invariant() {
    sweep_strategy(Strategy::Time);
}

#[test]
fn vertex_partitioned_is_transport_invariant() {
    sweep_strategy(Strategy::Vertex);
}

#[test]
fn hybrid_is_transport_invariant() {
    sweep_strategy(Strategy::Hybrid);
}

/// The shared-memory transport must reproduce the pre-engine golden
/// captures bit-for-bit — the same constants `engine_equivalence.rs`
/// asserts (there under the ambient transport, here pinned to `shm`).
#[test]
fn golden_captures_hold_on_shared_mem_transport() {
    let _t = scoped_transport(CommTransport::SharedMem);
    let opts = TrainOptions {
        epochs: 3,
        lr: 0.02,
        nb: 2,
        seed: 3,
        threads: None,
    };
    let golden: [(Strategy, [u64; 3]); 3] = [
        (
            Strategy::Time,
            [0x3f832a00f28ff769, 0x1c8234d8381b2806, 0x6a32960d085bff8c],
        ),
        (
            Strategy::Hybrid,
            [0x19ed0bd3486cabb5, 0xbd53c8f8744e1e9f, 0x9ecf106bd6e00018],
        ),
        (
            Strategy::Vertex,
            [0x798d7d35f10ddf54, 0x5e6e22d0d545c874, 0x7b3dd9cf16952f00],
        ),
    ];
    for (strategy, streams) in golden {
        for (kind, stream) in KINDS.into_iter().zip(streams) {
            let (stats, params) = strategy.run(kind, 2, &opts);
            assert_eq!(
                digest_stats(&stats),
                stream,
                "{strategy:?}/{kind:?}: shared-mem transport drifted from the golden capture"
            );
            assert_eq!(
                params[0], params[1],
                "{strategy:?}/{kind:?}: replicas diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Randomized sweep: graph shape, model kind, rank count, and thread
    /// count are all drawn at random; the two transports must still agree
    /// bit-for-bit on every fingerprint component.
    #[test]
    fn random_workloads_are_transport_invariant(
        seed in 0u64..1_000,
        rho in 0.05f64..0.45,
        kind_idx in 0usize..3,
        p_idx in 0usize..3,
        threads_idx in 0usize..2,
    ) {
        let kind = KINDS[kind_idx];
        let p = [1usize, 2, 4][p_idx];
        let threads = [1usize, 4][threads_idx];
        let g = dgnn_graph::gen::churn(28, 5, 110, rho, seed);
        let raw = g.time_slice(0, 4);
        let next = g.snapshot(4).clone();
        let cfg = small_cfg(kind);
        let task_opts = TaskOptions::default();
        let opts = TrainOptions { epochs: 2, lr: 0.02, nb: 2, seed, threads: Some(threads) };
        let run = |transport| {
            let _t = scoped_transport(transport);
            let (stats, params) =
                train_distributed_digest(&raw, &next, cfg, &task_opts, &opts, p);
            let losses: Vec<u64> = stats.iter().map(|s| s.loss.to_bits()).collect();
            (losses, digest_stats(&stats), params)
        };
        let sim = run(CommTransport::Sim);
        let shm = run(CommTransport::SharedMem);
        prop_assert_eq!(sim, shm, "kind {:?} p {} threads {}", kind, p, threads);
    }
}
