//! The engine-refactor contract: every strategy's per-epoch loss stream
//! and final parameters are **bit-identical** to the pre-engine trainers.
//!
//! The golden values below were captured from the six standalone trainers
//! at the commit before they collapsed onto the shared execution engine
//! (verified identical under `DGNN_THREADS=1` and `=4` — the parallel
//! kernels are thread-count invariant by construction, and CI runs this
//! suite under both settings). Any drift in the engine, a strategy, the
//! workspace reuse path, or the kernels that changes a single output bit
//! fails here.

use dgnn_autograd::ParamStore;
use dgnn_core::classification::train_single_classification;
use dgnn_core::prelude::*;
use dgnn_models::ClassificationHead;
use dgnn_tensor::digest::{digest_f32, fnv1a as fnv};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Digest over the full per-epoch stat stream: loss, train/test accuracy,
/// transfer accounting, comm volume.
fn digest_stats(stats: &[EpochStats]) -> u64 {
    fnv(stats.iter().flat_map(|s| {
        let mut b = Vec::new();
        b.extend(s.loss.to_bits().to_le_bytes());
        b.extend(s.train_acc.to_bits().to_le_bytes());
        b.extend(s.test_acc.to_bits().to_le_bytes());
        b.extend(s.transfer_naive_bytes.to_le_bytes());
        b.extend(s.transfer_gd_bytes.to_le_bytes());
        b.extend(s.comm_bytes.to_le_bytes());
        b
    }))
}

fn losses(stats: &[EpochStats]) -> Vec<u64> {
    stats.iter().map(|s| s.loss.to_bits()).collect()
}

fn small_cfg(kind: ModelKind) -> ModelConfig {
    ModelConfig {
        kind,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    }
}

#[test]
fn single_rank_matches_pre_engine_trainer() {
    // (loss-stream bits, stat-stream digest, final-parameter digest)
    let golden: [(&[u64; 3], u64, u64); 3] = [
        (
            &[
                4604441065729032192,
                4604335990504573221,
                4604519952620491337,
            ],
            0x477c4238e9e35cb1,
            0x1d42982e89030442,
        ),
        (
            &[
                4604706710913510839,
                4604584094965919159,
                4604326391559450039,
            ],
            0x161a6038b7592034,
            0xf0db5e0c8d0e8c72,
        ),
        (
            &[
                4604361452527924955,
                4604282163980327790,
                4604218665343123456,
            ],
            0x8a077fe53f0976cb,
            0xaa3ef13f06ba9519,
        ),
    ];
    for (kind, (loss_bits, stream, params)) in ModelKind::all().into_iter().zip(golden) {
        let g = dgnn_graph::gen::churn_skewed(60, 8, 240, 0.3, 0.9, 11);
        let cfg = small_cfg(kind);
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let model = Model::new(cfg, &mut store, &mut rng);
        let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
        let opts = TrainOptions {
            epochs: 3,
            lr: 0.05,
            nb: 2,
            seed: 7,
            threads: None,
        };
        let stats = train_single(&model, &head, &mut store, &task, &opts);
        assert_eq!(losses(&stats), loss_bits, "{kind:?}: loss stream drifted");
        assert_eq!(
            digest_stats(&stats),
            stream,
            "{kind:?}: stat stream drifted"
        );
        assert_eq!(
            digest_f32(&store.values_flat()),
            params,
            "{kind:?}: final parameters drifted"
        );
    }
}

#[test]
fn time_partitioned_matches_pre_engine_trainer() {
    let golden = [
        0x3f832a00f28ff769u64, // CdGcn
        0x1c8234d8381b2806,    // EvolveGcn
        0x6a32960d085bff8c,    // TmGcn
    ];
    for (kind, stream) in ModelKind::all().into_iter().zip(golden) {
        let g = dgnn_graph::gen::churn(30, 6, 120, 0.25, 9);
        let raw = g.time_slice(0, 5);
        let next = g.snapshot(5).clone();
        let stats = train_distributed(
            &raw,
            &next,
            small_cfg(kind),
            &TaskOptions::default(),
            &TrainOptions {
                epochs: 3,
                lr: 0.02,
                nb: 2,
                seed: 3,
                threads: None,
            },
            2,
        );
        assert_eq!(
            digest_stats(&stats),
            stream,
            "{kind:?}: distributed stat stream drifted"
        );
    }
}

#[test]
fn hybrid_matches_pre_engine_trainer() {
    let golden = [
        0x19ed0bd3486cabb5u64, // CdGcn
        0xbd53c8f8744e1e9f,    // EvolveGcn
        0x9ecf106bd6e00018,    // TmGcn
    ];
    for (kind, stream) in ModelKind::all().into_iter().zip(golden) {
        let g = dgnn_graph::gen::churn(20, 6, 80, 0.3, 5);
        let raw = g.time_slice(0, 5);
        let next = g.snapshot(5).clone();
        let stats = train_hybrid(
            &raw,
            &next,
            small_cfg(kind),
            &TaskOptions {
                precompute_first_layer: false,
                ..Default::default()
            },
            &TrainOptions {
                epochs: 3,
                lr: 0.02,
                nb: 2,
                seed: 3,
                threads: None,
            },
            2,
        );
        assert_eq!(
            digest_stats(&stats),
            stream,
            "{kind:?}: hybrid stat stream drifted"
        );
    }
}

#[test]
fn vertex_partitioned_matches_pre_engine_trainer() {
    let golden = [
        0x798d7d35f10ddf54u64, // CdGcn
        0x5e6e22d0d545c874,    // EvolveGcn
        0x7b3dd9cf16952f00,    // TmGcn
    ];
    for (kind, stream) in ModelKind::all().into_iter().zip(golden) {
        let g = dgnn_graph::gen::churn(24, 6, 100, 0.3, 5);
        let raw = g.time_slice(0, 5);
        let next = g.snapshot(5).clone();
        let stats = train_vertex_partitioned(
            &raw,
            &next,
            small_cfg(kind),
            &TaskOptions {
                precompute_first_layer: false,
                ..Default::default()
            },
            &TrainOptions {
                epochs: 3,
                lr: 0.02,
                nb: 2,
                seed: 3,
                threads: None,
            },
            2,
        );
        assert_eq!(
            digest_stats(&stats),
            stream,
            "{kind:?}: vertex-partitioned stat stream drifted"
        );
    }
}

#[test]
fn classification_matches_pre_engine_trainer() {
    let aml = dgnn_graph::gen::AmlSimConfig {
        n: 80,
        t: 7,
        communities: 4,
        transactions_per_step: 240,
        intra_community_prob: 0.9,
        churn: 0.2,
        rings: 4,
        ring_size: 5,
        zipf_s: 0.6,
    };
    let (graph, labels) = dgnn_graph::gen::amlsim_with_labels(&aml, 77);
    let raw = graph.time_slice(0, graph.t() - 1);
    let next = graph.snapshot(graph.t() - 1).clone();
    let cfg = small_cfg(ModelKind::CdGcn);
    let task = prepare_task(&raw, &next, &cfg, &TaskOptions::default());
    let labels = labels[..raw.t()].to_vec();
    let mut rng = StdRng::seed_from_u64(13);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = ClassificationHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let stats = train_single_classification(
        &model,
        &head,
        &mut store,
        &task,
        &labels,
        &TrainOptions {
            epochs: 2,
            lr: 0.05,
            nb: 2,
            seed: 13,
            threads: None,
        },
    );
    let stream = fnv(stats.iter().flat_map(|s| {
        let mut b = Vec::new();
        b.extend(s.loss.to_bits().to_le_bytes());
        b.extend(s.accuracy.to_bits().to_le_bytes());
        b.extend(s.balanced_accuracy.to_bits().to_le_bytes());
        b
    }));
    assert_eq!(stream, 0x6963dcf93d212b9d, "classification stream drifted");
    assert_eq!(
        digest_f32(&store.values_flat()),
        0x1988984808c6c9e5,
        "classification final parameters drifted"
    );
}

#[test]
fn streaming_matches_pre_engine_trainer() {
    let g = dgnn_graph::gen::churn_skewed(50, 7, 180, 0.3, 0.9, 4);
    let log = EventLog::replay(&g);
    let opts = StreamTrainOptions {
        history: 3,
        min_history: 2,
        epochs_per_window: 2,
        ..Default::default()
    };
    let stats = dgnn_core::train_streaming(&log, small_cfg(ModelKind::TmGcn), &opts);
    let stream = fnv(stats.iter().flat_map(|s| {
        let mut b = Vec::new();
        b.extend(s.final_loss().to_bits().to_le_bytes());
        b.extend(s.auc.to_bits().to_le_bytes());
        b.extend(s.test_acc.to_bits().to_le_bytes());
        b.extend((s.t as u64).to_le_bytes());
        b.extend((s.events as u64).to_le_bytes());
        b
    }));
    assert_eq!(stream, 0xedc6b227f1c68ea4, "streaming stream drifted");
}

#[test]
fn workspace_reuse_does_not_change_bits() {
    // The same run with buffer reuse suppressed must produce the same
    // stream — reuse is a pure allocation optimisation.
    let run = || {
        let g = dgnn_graph::gen::churn_skewed(60, 8, 240, 0.3, 0.9, 11);
        let cfg = small_cfg(ModelKind::CdGcn);
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let model = Model::new(cfg, &mut store, &mut rng);
        let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
        let opts = TrainOptions {
            epochs: 2,
            lr: 0.05,
            nb: 2,
            seed: 7,
            threads: None,
        };
        let stats = train_single(&model, &head, &mut store, &task, &opts);
        (digest_stats(&stats), digest_f32(&store.values_flat()))
    };
    let with_ws = run();
    let without_ws = {
        let _off = dgnn_tensor::workspace::disable();
        run()
    };
    assert_eq!(with_ws, without_ws);
}
