//! Bit-identity of the cross-snapshot pre-aggregation reuse cache
//! (`dgnn_graph::preagg`, `TaskOptions::reuse_preagg`).
//!
//! The incremental build — each timestep's `Ã_t·X_t` block carried
//! forward from its predecessor with only the dirty rows recomputed —
//! must be invisible to everything downstream: same preagg bits as the
//! from-scratch build at every churn rate, thread count, and workspace
//! setting; same engine loss stream and final parameters with the knob
//! on or off; and the same bits again when the blocks round-trip the
//! out-of-core tiered store at half the working-set budget.

use dgnn_core::prelude::*;
use dgnn_core::train_single_out_of_core;
use dgnn_store::StoreConfig;
use dgnn_tensor::digest::digest_f32;
use dgnn_tensor::{pool, workspace};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const KINDS: [ModelKind; 3] = [ModelKind::CdGcn, ModelKind::EvolveGcn, ModelKind::TmGcn];

fn small_cfg(kind: ModelKind) -> ModelConfig {
    ModelConfig {
        kind,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    }
}

fn preagg_bits(task: &Task) -> Vec<Vec<u32>> {
    task.preagg
        .as_ref()
        .expect("preagg is on by default")
        .iter()
        .map(|d| d.data().iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn scratch_opts() -> TaskOptions {
    TaskOptions {
        reuse_preagg: false,
        ..TaskOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Incremental == from-scratch, bitwise, across churn rates ×
    /// `DGNN_THREADS={1,4}` × `DGNN_WORKSPACE={0,1}` × all model kinds
    /// (each kind exercises a different smoothing, i.e. a different
    /// dirty-row path: raw journal-eligible, edge-life, M-product).
    #[test]
    fn incremental_preagg_is_bitwise_across_configs(
        rho in 0.01f64..0.5,
        seed in 0u64..1_000,
        kind_idx in 0usize..3,
    ) {
        let kind = KINDS[kind_idx];
        let g = dgnn_graph::gen::churn(90, 6, 270, rho, seed);
        let cfg = small_cfg(kind);
        // Every (threads, workspace) combination must produce the same
        // bits, and match the from-scratch build under the same setting.
        let mut golden: Option<Vec<Vec<u32>>> = None;
        for threads in [1usize, 4] {
            let _t = pool::scoped_threads(Some(threads));
            for ws_on in [false, true] {
                let (inc, scratch) = if ws_on {
                    let _w = workspace::engage();
                    (
                        preagg_bits(&prepare_task_holdout(&g, &cfg, &TaskOptions::default())),
                        preagg_bits(&prepare_task_holdout(&g, &cfg, &scratch_opts())),
                    )
                } else {
                    let _w = workspace::disable();
                    (
                        preagg_bits(&prepare_task_holdout(&g, &cfg, &TaskOptions::default())),
                        preagg_bits(&prepare_task_holdout(&g, &cfg, &scratch_opts())),
                    )
                };
                prop_assert_eq!(
                    &inc, &scratch,
                    "kind {:?}, threads {}, workspace {}", kind, threads, ws_on
                );
                match &golden {
                    Some(g0) => prop_assert_eq!(
                        g0, &inc,
                        "kind {:?}, threads {}, workspace {}", kind, threads, ws_on
                    ),
                    None => golden = Some(inc),
                }
            }
        }
    }
}

/// Engine-level knob gate: a full training run must not see the knob at
/// all — identical per-epoch loss bits and final parameter digest with
/// reuse on and off, for every model kind.
#[test]
fn engine_runs_are_bit_identical_with_knob_on_and_off() {
    let g = dgnn_graph::gen::churn_skewed(60, 8, 240, 0.3, 0.9, 11);
    let run = |task_opts: &TaskOptions, kind: ModelKind| -> (Vec<u64>, u64) {
        let cfg = small_cfg(kind);
        let task = prepare_task_holdout(&g, &cfg, task_opts);
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let model = Model::new(cfg, &mut store, &mut rng);
        let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
        let opts = TrainOptions {
            epochs: 3,
            lr: 0.05,
            nb: 3,
            seed: 7,
            threads: Some(1),
        };
        let stats = train_single(&model, &head, &mut store, &task, &opts);
        (
            stats.iter().map(|s| s.loss.to_bits()).collect(),
            digest_f32(&store.values_flat()),
        )
    };
    for kind in KINDS {
        let on = run(&TaskOptions::default(), kind);
        let off = run(&scratch_opts(), kind);
        assert_eq!(on.0, off.0, "loss stream moved for {kind:?}");
        assert_eq!(on.1, off.1, "parameters moved for {kind:?}");
    }
}

/// Streaming end-to-end: `train_streaming` now feeds each window's
/// touched-vertex journal into task preparation; the whole warm-started
/// trajectory must match a run with the reuse cache disabled.
#[test]
fn streaming_journal_path_matches_scratch_builds() {
    let g = dgnn_graph::gen::churn_skewed(50, 7, 180, 0.25, 0.9, 4);
    let log = EventLog::replay(&g);
    let run = |task: TaskOptions| -> Vec<Vec<u64>> {
        let opts = StreamTrainOptions {
            history: 3,
            min_history: 2,
            epochs_per_window: 2,
            task,
            ..Default::default()
        };
        // CD-GCN applies no smoothing, so this exercises the journal
        // (not the scan) dirty-row path.
        train_streaming(&log, small_cfg(ModelKind::CdGcn), &opts)
            .iter()
            .map(|w| w.epochs.iter().map(|e| e.loss.to_bits()).collect())
            .collect()
    };
    let with_journal = run(TaskOptions::default());
    let scratch = run(scratch_opts());
    assert!(!with_journal.is_empty());
    assert_eq!(with_journal, scratch, "journaled reuse changed the stream");
}

/// Out-of-core at half the working-set budget with reuse on: the
/// incrementally built blocks spill to the tiered store (revision-keyed)
/// and fault back in, and the run must still reproduce the in-memory
/// scratch-built run bit for bit.
#[test]
fn out_of_core_half_budget_run_with_reuse_is_bit_identical() {
    let g = dgnn_graph::gen::churn_skewed(60, 8, 240, 0.3, 0.9, 11);
    let cfg = small_cfg(ModelKind::CdGcn);
    let reuse_task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
    assert!(
        reuse_task.preagg_reuse.incremental_builds > 0
            || reuse_task.preagg_reuse.full_builds == reuse_task.t,
        "reuse stats must account for every timestep"
    );
    let scratch_task = prepare_task_holdout(&g, &cfg, &scratch_opts());
    let working_set: u64 = reuse_task
        .laps
        .iter()
        .map(|l| dgnn_store::encode_csr(l).len() as u64)
        .chain(
            reuse_task
                .preagg
                .as_ref()
                .unwrap()
                .iter()
                .map(|d| dgnn_store::encode_dense(d).len() as u64),
        )
        .sum();
    let opts = TrainOptions {
        epochs: 3,
        lr: 0.05,
        nb: 4,
        seed: 7,
        threads: Some(1),
    };
    let run_mem = |task: &Task| -> (Vec<u64>, u64) {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let model = Model::new(cfg, &mut store, &mut rng);
        let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
        let stats = train_single(&model, &head, &mut store, task, &opts);
        (
            stats.iter().map(|s| s.loss.to_bits()).collect(),
            digest_f32(&store.values_flat()),
        )
    };
    let golden = run_mem(&scratch_task);

    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let scfg = StoreConfig::with_budget(working_set / 2);
    let (stats, report) =
        train_single_out_of_core(&model, &head, &mut store, &reuse_task, &opts, &scfg)
            .expect("out-of-core run");
    let ooc: Vec<u64> = stats.iter().map(|s| s.loss.to_bits()).collect();
    assert_eq!(golden.0, ooc, "loss stream moved out of core");
    assert_eq!(
        golden.1,
        digest_f32(&store.values_flat()),
        "parameters moved out of core"
    );
    assert!(
        report.miss_bytes > 0,
        "half the working set must fault the file tier"
    );
}
