//! Umbrella crate: re-exports the full training stack so examples and
//! integration tests can reach every layer through one dependency.
//!
//! See `README.md` for the crate map and `ROADMAP.md` for direction.

pub use dgnn_autograd as autograd;
pub use dgnn_core as core;
pub use dgnn_graph as graph;
pub use dgnn_models as models;
pub use dgnn_partition as partition;
pub use dgnn_serve as serve;
pub use dgnn_sim as sim;
pub use dgnn_stream as stream;
pub use dgnn_telemetry as telemetry;
pub use dgnn_tensor as tensor;
