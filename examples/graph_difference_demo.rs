//! Graph-difference transfer in action (paper §3.2): watch the payloads of
//! naive vs difference-encoded snapshot shipping on a real evolving graph,
//! and see how the paper's smoothing preprocessing magnifies the gains.
//!
//! Run with: `cargo run --release --example graph_difference_demo`

use dgnn_graph::diff::{chunk_transfer, diff, naive_transfer_bytes};
use dgnn_graph::gen::churn_skewed;
use dgnn_graph::smoothing::{edge_life, m_transform_adj};
use dgnn_graph::DynamicGraph;
use dgnn_tensor::Csr;

fn report(label: &str, g: &DynamicGraph) {
    let slices: Vec<&Csr> = (0..g.t()).map(|t| g.snapshot(t).adj()).collect();
    println!("\n== {label} ==");
    println!(
        "{:>4} {:>9} {:>9} {:>9} {:>11} {:>11}",
        "t", "edges", "dropped", "added", "naive", "graph-diff"
    );
    for t in 0..g.t().min(6) {
        let adj = g.snapshot(t).adj();
        if t == 0 {
            println!(
                "{t:>4} {:>9} {:>9} {:>9} {:>10.1}KB {:>10.1}KB   (first: shipped whole)",
                adj.nnz(),
                "-",
                "-",
                naive_transfer_bytes(adj) as f64 / 1e3,
                naive_transfer_bytes(adj) as f64 / 1e3,
            );
        } else {
            let d = diff(g.snapshot(t - 1).adj(), adj);
            println!(
                "{t:>4} {:>9} {:>9} {:>9} {:>10.1}KB {:>10.1}KB",
                adj.nnz(),
                d.ext_prev.len(),
                d.ext_next.len(),
                naive_transfer_bytes(adj) as f64 / 1e3,
                d.transfer_bytes() as f64 / 1e3,
            );
        }
    }
    let acc = chunk_transfer(&slices);
    println!(
        "whole timeline: naive {:.2} MB vs GD {:.2} MB  ->  {:.2}x speedup",
        acc.naive_bytes as f64 / 1e6,
        acc.gd_bytes as f64 / 1e6,
        acc.speedup()
    );
}

fn main() {
    // A heavy-tailed evolving graph: 30% of edges replaced per snapshot.
    let g = churn_skewed(2_000, 12, 10_000, 0.3, 0.9, 7);

    report("raw snapshots (what CD-GCN trains on)", &g);
    report(
        "edge-life smoothed, l=4 (what EvolveGCN trains on)",
        &edge_life(&g, 4),
    );
    report(
        "M-product smoothed, w=4 (what TM-GCN trains on)",
        &m_transform_adj(&g, 4),
    );

    println!(
        "\nWhy smoothing helps: each smoothed snapshot unions a window of raw snapshots, so\n\
         consecutive smoothed snapshots share most structure — the difference encoding then\n\
         ships only the window boundary. With 16-byte COO indices + 4-byte values the\n\
         speedup is bounded by 5x; the paper reports up to 4.1x on its datasets."
    );
}
