//! End-to-end serving scenario: train on a churning transaction graph,
//! checkpoint the model, load it back, and serve link queries while the
//! graph keeps evolving — each window advance recomputes only the frontier
//! of touched vertices, bit-identical to a full forward.
//!
//! Run with: `cargo run --release --example serving`

use dgnn_core::prelude::*;
use dgnn_serve::{Checkpoint, InferenceServer, InferenceSession, ServeModel};
use dgnn_stream::EdgeEvent;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    // ---- Train (the existing pipeline, unchanged) -------------------
    let g = dgnn_graph::gen::churn_skewed(200, 10, 1000, 0.2, 0.9, 17);
    let cfg = ModelConfig {
        kind: ModelKind::EvolveGcn,
        input_f: 2,
        hidden: 8,
        mprod_window: 3,
        smoothing_window: 3,
    };
    let task = dgnn_core::prepare_task_holdout(&g, &cfg, &Default::default());
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let opts = TrainOptions {
        epochs: 12,
        lr: 0.05,
        nb: 2,
        seed: 7,
        threads: None,
    };
    let stats = train_single(&model, &head, &mut store, &task, &opts);
    println!(
        "trained {} epochs: loss {:.4} -> {:.4}, test acc {:.2}",
        stats.len(),
        stats.first().unwrap().loss,
        stats.last().unwrap().loss,
        stats.last().unwrap().test_acc
    );

    // ---- Checkpoint: save, reload, verify ---------------------------
    let path = std::env::temp_dir().join("dgnn_serving_example.ckpt");
    Checkpoint::from_store(&model, &head, &store)
        .save(&path)
        .expect("save checkpoint");
    let loaded = Checkpoint::load(&path).expect("load checkpoint");
    std::fs::remove_file(&path).ok();
    println!(
        "checkpoint round-trip: {} params, kind {:?}, hidden {}",
        loaded.params.len(),
        loaded.config.kind,
        loaded.config.hidden
    );

    // ---- Serve: evolving graph, incremental window advances ---------
    let serve_model = ServeModel::from_checkpoint(&loaded).expect("serve model");
    let n = g.n();
    // Degree features like training uses, frozen at serving start.
    let feats = dgnn_tensor::Dense::from_fn(n, 2, |r, c| {
        let s = g.snapshot(g.t() - 1);
        let deg = if c == 0 {
            s.adj().row_degrees()[r]
        } else {
            s.adj().col_degrees()[r]
        };
        (deg as f32 + 1.0).ln()
    });
    let mut session = InferenceSession::new(serve_model, feats);
    // Seed the serving graph with the last training snapshot's edges.
    let seed_events: Vec<EdgeEvent> = g
        .snapshot(g.t() - 1)
        .adj()
        .to_coo()
        .into_iter()
        .map(|(u, v, w)| EdgeEvent::add(0, u, v, w))
        .collect();
    session.ingest(&seed_events);
    session.advance();
    session.assert_matches_full();
    let server = InferenceServer::new(session);

    let mut rng = StdRng::seed_from_u64(99);
    for w in 1..=5u64 {
        // Live traffic: a few new interactions and dropped ones.
        let evs: Vec<EdgeEvent> = (0..12)
            .map(|_| {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if rng.gen_bool(0.75) {
                    EdgeEvent::add(w, u, v, 1.0)
                } else {
                    EdgeEvent::remove(w, u, v)
                }
            })
            .collect();
        let report = server.ingest_and_advance(&evs);
        let snap = server.snapshot();
        // Score a mix of live edges and random non-edges.
        let live: Vec<(u32, u32)> = evs.iter().take(3).map(|e| (e.src, e.dst)).collect();
        let scores = snap.score_links(&live);
        println!(
            "window {w}: touched {:>2} vertices, recomputed {:?} rows of {n}, \
             version {} | sample scores {:?}",
            report.touched,
            report.frontier_rows,
            snap.version,
            scores
                .iter()
                .map(|s| (s * 100.0).round() / 100.0)
                .collect::<Vec<_>>()
        );
    }
    println!("serving stayed bit-identical to full recompute throughout");
}
