//! Streaming anti-money-laundering scenario: the transaction graph of
//! `examples/fraud_detection.rs` replayed as a timestamped event stream
//! and learned *online* — windows close as transactions arrive, snapshots
//! materialize incrementally, and the model warm-starts from the previous
//! window instead of retraining from scratch.
//!
//! Run with: `cargo run --release --example streaming_fraud`

use dgnn_core::prelude::*;
use dgnn_graph::gen::{amlsim_like, AmlSimConfig};
use dgnn_stream::EventLog;

fn main() {
    // The same bank network as the batch example: 300 accounts in 8
    // communities, 1200 transactions per step with a fifth churning, plus
    // planted laundering rings.
    let aml = AmlSimConfig {
        n: 300,
        t: 16,
        communities: 8,
        transactions_per_step: 1200,
        intra_community_prob: 0.9,
        churn: 0.2,
        rings: 10,
        ring_size: 5,
        zipf_s: 0.9,
    };
    let graph = amlsim_like(&aml, 2024);
    let log = EventLog::replay(&graph);
    println!(
        "event stream: {} accounts, {} events over {} timesteps \
         ({:.0}% of the full per-snapshot volume)",
        graph.n(),
        log.len(),
        graph.t(),
        100.0 * log.len() as f64 / graph.total_nnz() as f64
    );

    // EvolveGCN, as in the batch fraud example; each closed window trains
    // a few epochs on the trailing history with the newest snapshot held
    // out as the prediction target.
    let cfg = ModelConfig::paper_defaults(ModelKind::EvolveGcn);
    let opts = StreamTrainOptions {
        policy: WindowPolicy::Tumbling { width: 1 },
        history: 6,
        min_history: 3,
        epochs_per_window: 6,
        train: TrainOptions {
            lr: 0.05,
            nb: 2,
            seed: 11,
            ..Default::default()
        },
        ..Default::default()
    };
    println!(
        "online training: tumbling windows, history {} snapshots, {} epochs/window\n",
        opts.history, opts.epochs_per_window
    );

    let stats = train_streaming(&log, cfg, &opts);
    println!(
        "{:>6} {:>7} {:>8} {:>10} {:>10} {:>8}",
        "window", "events", "history", "loss", "test acc", "AUC"
    );
    for s in &stats {
        println!(
            "{:>6} {:>7} {:>8} {:>10.4} {:>9.1}% {:>8.3}",
            s.window,
            s.events,
            s.t,
            s.final_loss(),
            s.test_acc * 100.0,
            s.auc
        );
    }
    let first = stats.first().expect("stream produced no trained windows");
    let last = stats.last().unwrap();
    println!(
        "\nwarm start across {} windows: first-epoch loss {:.4} (window {}) -> {:.4} (window {})",
        stats.len(),
        first.epochs.first().unwrap().loss,
        first.window,
        last.epochs.first().unwrap().loss,
        last.window,
    );
    println!("each window trained on events alone — no snapshot was ever rebuilt from scratch.");
}
