//! Quickstart: train a dynamic GNN on a synthetic evolving graph with the
//! gradient-checkpointed trainer and watch loss and link-prediction
//! accuracy.
//!
//! Run with: `cargo run --release --example quickstart`

use dgnn_autograd::ParamStore;
use dgnn_core::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // An evolving graph: 200 vertices, 16 snapshots, 800 edges each, 20% of
    // edges replaced per step, heavy-tailed endpoints (like real data).
    let graph = dgnn_graph::gen::churn_skewed(200, 16, 800, 0.2, 0.9, 42);
    println!(
        "dynamic graph: N={} T={} ({} edges total)",
        graph.n(),
        graph.t(),
        graph.total_nnz()
    );

    // TM-GCN with the paper's two-layer GCN + M-product architecture.
    let cfg = ModelConfig::paper_defaults(ModelKind::TmGcn);

    // Hold out the last snapshot: the task is to predict its edges.
    let task = prepare_task_holdout(&graph, &cfg, &TaskOptions::default());
    println!(
        "task: link prediction over {} training timesteps, {} test pairs\n",
        task.t,
        task.test.len()
    );

    // Build the model and train with 4 checkpoint blocks.
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let opts = TrainOptions {
        epochs: 30,
        lr: 0.05,
        nb: 4,
        seed: 7,
        threads: None,
    };

    println!(
        "{:>5} {:>10} {:>11} {:>10}",
        "epoch", "loss", "train acc", "test acc"
    );
    let stats = train_single(&model, &head, &mut store, &task, &opts);
    for (e, s) in stats.iter().enumerate() {
        if e % 3 == 0 || e + 1 == stats.len() {
            println!(
                "{e:>5} {:>10.4} {:>10.1}% {:>9.1}%",
                s.loss,
                s.train_acc * 100.0,
                s.test_acc * 100.0
            );
        }
    }
    let s = stats.last().unwrap();
    println!(
        "\ngraph-difference transfer would move {:.1} MB/epoch instead of {:.1} MB ({:.2}x)",
        s.transfer_gd_bytes as f64 / 1e6,
        s.transfer_naive_bytes as f64 / 1e6,
        s.gd_speedup()
    );
}
