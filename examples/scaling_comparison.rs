//! What-if scaling explorer: project per-epoch time, memory, and the
//! snapshot-vs-vertex partitioning trade-off for a paper-scale dataset on
//! the simulated cluster — the tool a practitioner would use to size a job
//! before buying GPU hours.
//!
//! Run with: `cargo run --release --example scaling_comparison [dataset]`
//! where dataset is one of: epinions, flickr, youtube, amlsim (default).

use dgnn_graph::datasets::{paper_datasets, AMLSIM};
use dgnn_graph::Smoothing;
use dgnn_sim::perf::{tune_nb, ModelKind, PerfConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "amlsim".into());
    let spec = paper_datasets()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(&name))
        .unwrap_or(AMLSIM);
    println!(
        "dataset {}: N={} T={} nnz={}  (stand-in calibrated to the paper's Table 1)",
        spec.name, spec.n, spec.t, spec.nnz
    );

    for model in ModelKind::all() {
        let smoothing = match model {
            ModelKind::CdGcn => Smoothing::None,
            ModelKind::EvolveGcn => Smoothing::EdgeLife(spec.calibrated_edge_life()),
            ModelKind::TmGcn => Smoothing::MProduct(spec.calibrated_mproduct_window()),
        };
        let stats = spec.stats(smoothing);
        println!(
            "\n== {} (training graph: {:.2}B edges after smoothing) ==",
            model.name(),
            stats.total_nnz() as f64 / 1e9
        );
        println!(
            "{:>5} {:>4} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9}",
            "GPUs", "nb", "transfer", "compute", "comm", "epoch", "memory", "speedup"
        );
        let mut reference: Option<f64> = None;
        for p in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let cfg = PerfConfig::new(model, stats.clone(), p, 1);
            match tune_nb(&cfg) {
                Some((nb, r)) => {
                    let total = r.total_ms();
                    let base = *reference.get_or_insert(total * p as f64);
                    println!(
                        "{p:>5} {nb:>4} {:>9.0}ms {:>9.0}ms {:>9.0}ms {:>9.0}ms {:>8.1}GB {:>8.1}x",
                        r.all_transfer_ms(),
                        r.compute_ms,
                        r.comm_ms,
                        total,
                        r.peak_mem_bytes as f64 / 1e9,
                        base / total
                    );
                }
                None => println!("{p:>5}   - (exceeds GPU memory at every block count)"),
            }
        }
    }
    println!(
        "\nRule of thumb from the paper: snapshot partitioning keeps communication fixed at\n\
         O(T·N) feature vectors regardless of GPU count or graph density; checkpoint blocks\n\
         trade transfer time for memory; graph-difference transfer pays off most on the\n\
         smoothed inputs of TM-GCN and EvolveGCN."
    );
}
