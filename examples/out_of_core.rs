//! Out-of-core training walkthrough: train a dynamic GNN whose snapshot
//! working set does not fit the configured memory budget.
//!
//! ```sh
//! cargo run --release --example out_of_core
//! ```
//!
//! The paper's central constraint is that snapshot working sets outgrow
//! device memory — its Figures 4/5 leave blanks where configurations
//! "did not execute". `dgnn-store` turns that wall into a tier: snapshot
//! Laplacians, feature blocks and checkpoint carries spill to CRC-sealed
//! files, an LRU memory tier holds whatever fits a byte budget, and a
//! background thread prefetches the next checkpoint block of the §3.1
//! schedule while the current one computes.
//!
//! This example deliberately squeezes the budget to ~15% of the working
//! set, so almost every block read faults the file tier — and then
//! verifies the result is **bit-identical** to the all-in-memory run.
//! (The budget can also come from the `DGNN_STORE_BUDGET` environment
//! variable; an explicit `StoreConfig` wins.)

use dgnn_core::prelude::*;
use dgnn_core::train_single_out_of_core;
use dgnn_store::StoreConfig;
use dgnn_tensor::digest::digest_f32;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // A synthetic churning interaction graph: 4096 vertices, 9 snapshots
    // (8 train + 1 held out), ~24k edges per snapshot.
    let (n, t, m) = (4096, 9, 24000);
    let cfg = ModelConfig {
        kind: ModelKind::CdGcn,
        input_f: 2,
        hidden: 6,
        mprod_window: 3,
        smoothing_window: 3,
    };
    let g = dgnn_graph::gen::churn_skewed(n, t, m, 0.3, 0.9, 11);
    let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());

    // How many bytes would the spilled timeline occupy? That is what the
    // memory tier would need to keep everything resident.
    let working_set: u64 = task
        .laps
        .iter()
        .map(|l| dgnn_store::encode_csr(l).len() as u64)
        .chain(
            task.preagg
                .as_ref()
                .unwrap_or(&task.features)
                .iter()
                .map(|d| dgnn_store::encode_dense(d).len() as u64),
        )
        .sum();
    let budget = working_set / 7; // ~15%: most blocks cannot stay resident
    println!(
        "snapshot working set {:.2} MiB, memory-tier budget {:.2} MiB",
        working_set as f64 / (1 << 20) as f64,
        budget as f64 / (1 << 20) as f64
    );

    let opts = TrainOptions {
        epochs: 4,
        lr: 0.05,
        nb: 4, // four checkpoint blocks -> the prefetcher has a schedule to walk
        seed: 7,
        threads: None,
    };

    // ---- The out-of-core run. ----
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let (stats, report) = train_single_out_of_core(
        &model,
        &head,
        &mut store,
        &task,
        &opts,
        &StoreConfig::with_budget(budget),
    )
    .expect("spill I/O failed");

    for (e, s) in stats.iter().enumerate() {
        println!(
            "epoch {e}: loss {:.4}, test acc {:.3}, tier misses {:.2} MiB",
            s.loss,
            s.test_acc,
            s.store_miss_bytes as f64 / (1 << 20) as f64
        );
    }
    println!(
        "store: {} evictions, {} prefetch hits, {} demand misses, peak resident {:.2} MiB (<= budget)",
        report.evictions,
        report.prefetch_hits,
        report.demand_misses,
        report.peak_resident_bytes as f64 / (1 << 20) as f64
    );
    assert!(report.peak_resident_bytes <= budget);
    assert!(
        report.miss_bytes > 0,
        "this budget must fault the file tier"
    );

    // ---- The same training, all in memory — and the bit-identity check. ----
    let mut rng = StdRng::seed_from_u64(7);
    let mut mem_store = ParamStore::new();
    let mem_model = Model::new(cfg, &mut mem_store, &mut rng);
    let mem_head = LinkPredHead::new(&mut mem_store, cfg.embedding_dim(), 2, &mut rng);
    let mem_stats = train_single(&mem_model, &mem_head, &mut mem_store, &task, &opts);

    assert_eq!(
        stats.iter().map(|s| s.loss.to_bits()).collect::<Vec<u64>>(),
        mem_stats
            .iter()
            .map(|s| s.loss.to_bits())
            .collect::<Vec<u64>>(),
        "loss streams must match bit for bit"
    );
    assert_eq!(
        digest_f32(&store.values_flat()),
        digest_f32(&mem_store.values_flat()),
        "final parameters must match bit for bit"
    );
    println!("out-of-core run is bit-identical to the in-memory run ✓");
}
