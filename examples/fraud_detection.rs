//! Anti-money-laundering scenario (the paper's AML-Sim motivation): learn
//! to predict transactions on a community-structured transaction graph
//! with planted laundering rings, trained *distributed* with snapshot
//! partitioning across simulated GPUs.
//!
//! Run with: `cargo run --release --example fraud_detection`

use dgnn_core::prelude::*;
use dgnn_graph::gen::{amlsim_like, AmlSimConfig};

fn main() {
    // A small bank network: 300 accounts in 8 communities, 1200
    // transactions per step, a fifth of them churning, plus laundering
    // rings cycling money over consecutive timesteps.
    let aml = AmlSimConfig {
        n: 300,
        t: 13,
        communities: 8,
        transactions_per_step: 1200,
        intra_community_prob: 0.9,
        churn: 0.2,
        rings: 10,
        ring_size: 5,
        zipf_s: 0.9,
    };
    let graph = amlsim_like(&aml, 2024);
    println!(
        "transaction graph: {} accounts, {} timesteps, {} transactions",
        graph.n(),
        graph.t(),
        graph.total_nnz()
    );

    let raw = graph.time_slice(0, graph.t() - 1);
    let next = graph.snapshot(graph.t() - 1).clone();

    // EvolveGCN: the weights evolve over time to track regime changes —
    // and its distributed training is communication-free (paper §5.5).
    let cfg = ModelConfig::paper_defaults(ModelKind::EvolveGcn);
    let p = 2; // simulated GPUs
    println!("training EvolveGCN on {p} simulated GPUs (snapshot partitioning)\n");

    let stats = train_distributed(
        &raw,
        &next,
        cfg,
        &TaskOptions::default(),
        &TrainOptions {
            epochs: 25,
            lr: 0.05,
            nb: 2,
            seed: 11,
            threads: None,
        },
        p,
    );

    println!(
        "{:>5} {:>10} {:>11} {:>10} {:>12}",
        "epoch", "loss", "train acc", "test acc", "comm/epoch"
    );
    for (e, s) in stats.iter().enumerate() {
        if e % 3 == 0 || e + 1 == stats.len() {
            println!(
                "{e:>5} {:>10.4} {:>10.1}% {:>9.1}% {:>10.1}KB",
                s.loss,
                s.train_acc * 100.0,
                s.test_acc * 100.0,
                s.comm_bytes as f64 / 1e3
            );
        }
    }
    println!(
        "\nEvolveGCN's only traffic is the parameter all-reduce — compare the KB/epoch above\n\
         with the MB-scale feature redistributions TM-GCN/CD-GCN would move."
    );
}
