//! Delta batching: turning a run of events directly into a §3.2
//! [`GraphDiff`] — no prev/next CSR comparison required.
//!
//! `dgnn_graph::diff` derives the edit lists by merging two *finished*
//! snapshots, an `O(nnz)` scan per pair. The batcher instead watches the
//! events as they stream in and classifies every touched edge against its
//! state at the last flush, so the edit lists cost `O(Δ log Δ)` — paid
//! only for what actually changed. The emitted diff feeds the existing
//! [`dgnn_graph::reconstruct`] unchanged, which is what keeps the window
//! advance `O(Δ + nnz)` (a linear merge) instead of a full
//! `O(nnz log nnz)` rebuild.

use std::cell::RefCell;

use dgnn_graph::GraphDiff;
use dgnn_tensor::Csr;

use crate::event::EdgeEvent;
use crate::streaming::StreamingGraph;

/// Row-major sorted `(src, dst)` pairs — one side of a diff's edit lists.
type EditList = Vec<(u32, u32)>;

/// Accumulates events and emits [`GraphDiff`]s against the last flush.
#[derive(Clone, Debug)]
pub struct DeltaBatcher {
    graph: StreamingGraph,
    /// Append-only journal of touches since the last flush: `(src, dst,
    /// weight before the event)` (`None` = absent). Appending is O(1) per
    /// event; flush stable-sorts once and keeps each edge's *first* entry
    /// — its state at the last flush.
    touched: Vec<((u32, u32), Option<f32>)>,
    events_since_flush: usize,
    /// Memoized [`DeltaBatcher::touched_vertices`] result, valid until
    /// the next [`DeltaBatcher::apply`] or flush. The method is a
    /// per-window hot-path probe (the pre-aggregation reuse cache and the
    /// serve engine both call it), and re-sorting the full journal on
    /// every call was `O(Δ log Δ)` per probe instead of per batch.
    touched_cache: RefCell<Option<Vec<u32>>>,
}

impl DeltaBatcher {
    /// An empty batcher over `n` vertices; the first flush diffs against
    /// the empty graph.
    pub fn new(n: usize) -> Self {
        Self {
            graph: StreamingGraph::new(n),
            touched: Vec::new(),
            events_since_flush: 0,
            touched_cache: RefCell::new(None),
        }
    }

    /// Seeds the batcher with a resident snapshot (already transferred),
    /// so the first flush only ships changes against it.
    pub fn from_snapshot(s: &dgnn_graph::Snapshot) -> Self {
        Self {
            graph: StreamingGraph::from_snapshot(s),
            touched: Vec::new(),
            events_since_flush: 0,
            touched_cache: RefCell::new(None),
        }
    }

    /// The live graph state.
    pub fn graph(&self) -> &StreamingGraph {
        &self.graph
    }

    /// Events absorbed since the last flush.
    pub fn pending_events(&self) -> usize {
        self.events_since_flush
    }

    /// Absorbs one event.
    pub fn apply(&mut self, ev: &EdgeEvent) {
        let before = self.graph.apply(ev);
        self.touched.push(((ev.src, ev.dst), before));
        self.events_since_flush += 1;
        // `get_mut`: no runtime borrow on the ingest hot path.
        self.touched_cache.get_mut().take();
    }

    /// Absorbs a slice of events in order.
    pub fn apply_all(&mut self, events: &[EdgeEvent]) {
        for ev in events {
            self.apply(ev);
        }
    }

    /// The vertices incident to any edge touched since the last flush,
    /// sorted and deduplicated — the seed set a diff subscriber (e.g. the
    /// `dgnn-serve` incremental inference engine) expands into its
    /// per-layer recompute frontier. Call before [`DeltaBatcher::flush`] /
    /// [`DeltaBatcher::advance`], which clear the journal. Memoized: the
    /// set is computed once per batch state and served from cache until
    /// the next [`DeltaBatcher::apply`] or flush invalidates it.
    pub fn touched_vertices(&self) -> Vec<u32> {
        let mut cache = self.touched_cache.borrow_mut();
        if let Some(cached) = cache.as_ref() {
            return cached.clone();
        }
        let mut out: Vec<u32> = self
            .touched
            .iter()
            .flat_map(|&((u, v), _)| [u, v])
            .collect();
        out.sort_unstable();
        out.dedup();
        *cache = Some(out.clone());
        out
    }

    /// Emits the accumulated changes as a [`GraphDiff`] relative to the
    /// state at the previous flush and clears the batch.
    ///
    /// `reconstruct(prev, &diff)` over the previously emitted CSR yields
    /// bit-identically the CSR [`StreamingGraph::materialize`] would build.
    pub fn flush(&mut self) -> GraphDiff {
        let (ext_prev, ext_next) = self.flush_structural();
        GraphDiff {
            ext_prev,
            ext_next,
            next_values: self.graph.values_in_csr_order(),
        }
    }

    /// The window-advance hot path: flushes and materializes the next
    /// resident snapshot in one `O(Δ log Δ + nnz)` step. The materialized
    /// value buffer doubles as the diff's `next_values`, so the values are
    /// walked once, not twice, and no receiver-side `reconstruct` merge is
    /// paid on the sender.
    pub fn advance(&mut self) -> (Csr, GraphDiff) {
        let (ext_prev, ext_next) = self.flush_structural();
        let next = self.graph.materialize();
        let diff = GraphDiff {
            ext_prev,
            ext_next,
            next_values: next.values().to_vec(),
        };
        (next, diff)
    }

    /// Sorts the touch journal and derives the structural edit lists,
    /// clearing the batch.
    fn flush_structural(&mut self) -> (EditList, EditList) {
        // Stable sort: the first entry per key is the edge's state at the
        // last flush, and keys come out in the row-major order the diff
        // edit lists require. An edge added and removed inside one batch
        // cancels out naturally.
        self.touched.sort_by_key(|&(key, _)| key);
        let mut ext_prev = Vec::new();
        let mut ext_next = Vec::new();
        let mut i = 0;
        while i < self.touched.len() {
            let ((u, v), baseline) = self.touched[i];
            while i < self.touched.len() && self.touched[i].0 == (u, v) {
                i += 1;
            }
            let now = self.graph.weight(u, v);
            match (baseline, now) {
                (Some(_), None) => ext_prev.push((u, v)),
                (None, Some(_)) => ext_next.push((u, v)),
                // Present on both sides (value-only change, covered by
                // next_values) or touched-and-reverted: no structural edit.
                _ => {}
            }
        }
        self.touched.clear();
        self.events_since_flush = 0;
        self.touched_cache.get_mut().take();
        (ext_prev, ext_next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventLog;
    use dgnn_graph::gen::churn;
    use dgnn_graph::{diff, reconstruct};

    #[test]
    fn flush_matches_snapshot_pair_diff() {
        let g = churn(50, 6, 150, 0.25, 7);
        let log = EventLog::replay(&g);
        let mut batcher = DeltaBatcher::new(g.n());
        let mut cursor = 0usize;
        let mut prev = Csr::empty(g.n(), g.n());
        for t in 0..g.t() {
            let events = log.events();
            while cursor < events.len() && events[cursor].time <= t as u64 {
                batcher.apply(&events[cursor]);
                cursor += 1;
            }
            let (next, d) = batcher.advance();
            assert_eq!(&next, g.snapshot(t).adj(), "t = {t}");
            // Receiver side: the diff applied to the previous resident
            // snapshot reconstructs the same CSR bit for bit.
            assert_eq!(reconstruct(&prev, &d), next, "t = {t}");
            if t > 0 {
                // Structural edit lists equal the offline snapshot diff.
                let offline = diff(g.snapshot(t - 1).adj(), g.snapshot(t).adj());
                assert_eq!(d.ext_prev, offline.ext_prev, "t = {t}");
                assert_eq!(d.ext_next, offline.ext_next, "t = {t}");
                assert_eq!(d.next_values, offline.next_values, "t = {t}");
            }
            prev = next;
        }
    }

    #[test]
    fn add_then_remove_in_one_batch_cancels() {
        let mut b = DeltaBatcher::new(3);
        b.apply(&EdgeEvent::add(0, 0, 1, 1.0));
        b.apply(&EdgeEvent::add(0, 1, 2, 1.0));
        b.apply(&EdgeEvent::remove(0, 0, 1));
        let d = b.flush();
        assert!(d.ext_prev.is_empty());
        assert_eq!(d.ext_next, vec![(1, 2)]);
        let next = reconstruct(&Csr::empty(3, 3), &d);
        assert_eq!(next.to_coo(), vec![(1, 2, 1.0)]);
    }

    #[test]
    fn touched_vertices_covers_both_endpoints_and_clears_on_flush() {
        let mut b = DeltaBatcher::new(6);
        b.apply(&EdgeEvent::add(0, 4, 1, 1.0));
        b.apply(&EdgeEvent::add(0, 1, 2, 1.0));
        b.apply(&EdgeEvent::remove(0, 4, 1));
        // Sorted, deduplicated, and covering reverted touches too.
        assert_eq!(b.touched_vertices(), vec![1, 2, 4]);
        let _ = b.flush();
        assert!(b.touched_vertices().is_empty());
        b.apply(&EdgeEvent::update(1, 5, 5, 2.0));
        assert_eq!(b.touched_vertices(), vec![5]);
    }

    #[test]
    fn touched_vertices_memoization_matches_fresh_recompute() {
        // Reference: the pre-memoization implementation, recomputed from
        // the journal on every call.
        fn reference(journal: &[((u32, u32), Option<f32>)]) -> Vec<u32> {
            let mut out: Vec<u32> = journal.iter().flat_map(|&((u, v), _)| [u, v]).collect();
            out.sort_unstable();
            out.dedup();
            out
        }
        let g = churn(40, 5, 120, 0.3, 17);
        let log = EventLog::replay(&g);
        let mut b = DeltaBatcher::new(g.n());
        for (i, ev) in log.events().iter().enumerate() {
            b.apply(ev);
            if i % 7 == 0 {
                // Probe mid-batch: the first call fills the cache, the
                // second is served from it; both must pin the reference.
                let expect = reference(&b.touched);
                assert_eq!(b.touched_vertices(), expect, "event {i}, cold");
                assert_eq!(b.touched_vertices(), expect, "event {i}, cached");
            }
            if i % 11 == 0 {
                let _ = b.flush();
                assert!(b.touched_vertices().is_empty(), "flush must invalidate");
            }
        }
    }

    #[test]
    fn remove_then_readd_is_value_only() {
        let s = dgnn_graph::Snapshot::from_edges(3, &[(0, 1), (1, 2)]);
        let mut b = DeltaBatcher::from_snapshot(&s);
        b.apply(&EdgeEvent::remove(1, 0, 1));
        b.apply(&EdgeEvent::add(1, 0, 1, 5.0));
        let d = b.flush();
        assert_eq!(d.edits(), 0, "reverted structure ships as values only");
        let next = reconstruct(s.adj(), &d);
        assert_eq!(next.to_coo(), vec![(0, 1, 5.0), (1, 2, 1.0)]);
    }
}
