//! The mutable streaming graph: sorted adjacency under event application,
//! with CSR materialization bit-identical to batch construction.

use dgnn_graph::Snapshot;
use dgnn_tensor::Csr;

use crate::event::{EdgeEvent, EventKind};

/// A dynamic graph state maintained incrementally from edge events.
///
/// Per-row adjacency is a column-sorted `Vec<(col, weight)>`: one event
/// costs a binary search plus an `O(deg)` shift — effectively constant at
/// real-world degrees, and far cheaper in practice than tree nodes — and
/// a full materialization is a contiguous `O(N + nnz)` copy with no
/// global sort, against the `O(nnz log nnz)` of building a CSR from an
/// unsorted edge list.
#[derive(Clone, Debug)]
pub struct StreamingGraph {
    rows: Vec<Vec<(u32, f32)>>,
    nnz: usize,
    clock: u64,
}

impl StreamingGraph {
    /// An empty graph over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            rows: vec![Vec::new(); n],
            nnz: 0,
            clock: 0,
        }
    }

    /// Seeds the state from an existing snapshot.
    pub fn from_snapshot(s: &Snapshot) -> Self {
        let mut g = Self::new(s.n());
        for r in 0..s.n() {
            g.rows[r].extend(s.adj().row_iter(r));
        }
        g.nnz = s.nnz();
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.rows.len()
    }

    /// Number of stored (directed) edges.
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Timestamp of the latest applied event.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// The column-sorted `(column, weight)` adjacency of row `u` — direct
    /// row access for consumers that rebuild derived per-row state (e.g.
    /// normalized-Laplacian rows) incrementally.
    pub fn row(&self, u: u32) -> &[(u32, f32)] {
        &self.rows[u as usize]
    }

    /// Current weight of `(u, v)`, if the edge is present.
    pub fn weight(&self, u: u32, v: u32) -> Option<f32> {
        let row = &self.rows[u as usize];
        row.binary_search_by_key(&v, |&(c, _)| c)
            .ok()
            .map(|i| row[i].1)
    }

    /// True when `(u, v)` is stored.
    pub fn contains(&self, u: u32, v: u32) -> bool {
        self.rows[u as usize]
            .binary_search_by_key(&v, |&(c, _)| c)
            .is_ok()
    }

    /// Applies one event. Returns the weight the edge held before the
    /// event (`None` when it was absent) — what delta batching needs to
    /// classify the touch.
    pub fn apply(&mut self, ev: &EdgeEvent) -> Option<f32> {
        debug_assert!(
            ev.time >= self.clock,
            "events must arrive in time order ({} < {})",
            ev.time,
            self.clock
        );
        self.clock = self.clock.max(ev.time);
        let row = &mut self.rows[ev.src as usize];
        let slot = row.binary_search_by_key(&ev.dst, |&(c, _)| c);
        match ev.kind {
            EventKind::Add => match slot {
                // Duplicate adds accumulate, matching `Csr::from_coo`.
                Ok(i) => {
                    let prev = row[i].1;
                    row[i].1 = prev + ev.weight;
                    Some(prev)
                }
                Err(i) => {
                    row.insert(i, (ev.dst, ev.weight));
                    self.nnz += 1;
                    None
                }
            },
            EventKind::Remove => match slot {
                Ok(i) => {
                    self.nnz -= 1;
                    Some(row.remove(i).1)
                }
                Err(_) => None,
            },
            EventKind::UpdateWeight => match slot {
                Ok(i) => {
                    let prev = row[i].1;
                    row[i].1 = ev.weight;
                    Some(prev)
                }
                Err(i) => {
                    row.insert(i, (ev.dst, ev.weight));
                    self.nnz += 1;
                    None
                }
            },
        }
    }

    /// Applies a slice of events in order.
    pub fn apply_all(&mut self, events: &[EdgeEvent]) {
        for ev in events {
            self.apply(ev);
        }
    }

    /// The current state as a CSR adjacency — indptr, indices, and values
    /// equal to what batch construction over the same edge set produces.
    pub fn materialize(&self) -> Csr {
        let n = self.n();
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices = Vec::with_capacity(self.nnz);
        let mut values = Vec::with_capacity(self.nnz);
        indptr.push(0);
        for row in &self.rows {
            indices.extend(row.iter().map(|&(c, _)| c));
            values.extend(row.iter().map(|&(_, v)| v));
            indptr.push(indices.len());
        }
        Csr::from_parts(n, n, indptr, indices, values)
    }

    /// [`StreamingGraph::materialize`] wrapped as a [`Snapshot`].
    pub fn materialize_snapshot(&self) -> Snapshot {
        Snapshot::new(self.materialize())
    }

    /// The current values in CSR (row-major, column-sorted) order — the
    /// `next_values` payload of a graph-difference transfer.
    pub fn values_in_csr_order(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.nnz);
        for row in &self.rows {
            out.extend(row.iter().map(|&(_, v)| v));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventLog;
    use dgnn_graph::gen::{churn, uniform_random};

    #[test]
    fn apply_tracks_nnz_and_weights() {
        let mut g = StreamingGraph::new(4);
        assert_eq!(g.apply(&EdgeEvent::add(0, 0, 1, 2.0)), None);
        assert_eq!(g.apply(&EdgeEvent::add(0, 0, 1, 0.5)), Some(2.0));
        assert_eq!(g.weight(0, 1), Some(2.5));
        assert_eq!(g.nnz(), 1);
        assert_eq!(g.apply(&EdgeEvent::update(1, 0, 1, 7.0)), Some(2.5));
        assert_eq!(g.weight(0, 1), Some(7.0));
        assert_eq!(g.apply(&EdgeEvent::update(1, 2, 3, 1.0)), None);
        assert_eq!(g.nnz(), 2);
        assert_eq!(g.apply(&EdgeEvent::remove(2, 0, 1)), Some(7.0));
        assert_eq!(g.apply(&EdgeEvent::remove(2, 0, 1)), None);
        assert_eq!(g.nnz(), 1);
        assert_eq!(g.clock(), 2);
    }

    #[test]
    fn replay_materializes_every_snapshot_exactly() {
        let g = churn(60, 8, 200, 0.3, 11);
        let log = EventLog::replay(&g);
        let mut sg = StreamingGraph::new(g.n());
        let mut cursor = 0usize;
        for t in 0..g.t() {
            let events = log.events();
            while cursor < events.len() && events[cursor].time <= t as u64 {
                sg.apply(&events[cursor]);
                cursor += 1;
            }
            assert_eq!(&sg.materialize(), g.snapshot(t).adj(), "t = {t}");
        }
    }

    #[test]
    fn materialize_matches_batch_construction_bitwise() {
        let g = uniform_random(50, 3, 4.0, 3);
        let sg = StreamingGraph::from_snapshot(g.snapshot(1));
        let batch = g.snapshot(1).adj();
        let inc = sg.materialize();
        assert_eq!(&inc, batch);
        assert_eq!(inc.values(), sg.values_in_csr_order());
    }
}
