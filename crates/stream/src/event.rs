//! Timestamped edge events and the ordered event log.
//!
//! Two adapters turn every existing dataset/generator into a streaming
//! workload:
//!
//! * [`EventLog::replay`] — a *delta log*: the first snapshot arrives as
//!   `Add` events, every later snapshot as the minimal `Add` / `Remove` /
//!   `UpdateWeight` set against its predecessor. Applying the events of
//!   time `t` to the state at `t - 1` reproduces snapshot `t` exactly —
//!   the event-stream analogue of the paper's §3.2 graph difference.
//! * [`EventLog::occurrences`] — an *occurrence log*: every stored edge of
//!   every snapshot becomes an `Add` at its timestep, the shape of raw
//!   interaction streams (each transaction observed once). Occurrence logs
//!   feed sliding windows, where old interactions age out.

use dgnn_graph::{DynamicGraph, Snapshot};
use dgnn_tensor::Csr;

/// What an event does to its edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Inserts the edge with the event's weight (accumulates if present).
    Add,
    /// Deletes the edge (no-op when absent).
    Remove,
    /// Sets the edge's weight (upserts when absent).
    UpdateWeight,
}

/// One timestamped change to a directed edge.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EdgeEvent {
    /// Logical timestamp (a snapshot index for replayed graphs).
    pub time: u64,
    /// Source vertex.
    pub src: u32,
    /// Destination vertex.
    pub dst: u32,
    /// The operation.
    pub kind: EventKind,
    /// Weight payload (`Add` / `UpdateWeight`; ignored by `Remove`).
    pub weight: f32,
}

impl EdgeEvent {
    /// An `Add` event.
    pub fn add(time: u64, src: u32, dst: u32, weight: f32) -> Self {
        Self {
            time,
            src,
            dst,
            kind: EventKind::Add,
            weight,
        }
    }

    /// A `Remove` event.
    pub fn remove(time: u64, src: u32, dst: u32) -> Self {
        Self {
            time,
            src,
            dst,
            kind: EventKind::Remove,
            weight: 0.0,
        }
    }

    /// An `UpdateWeight` event.
    pub fn update(time: u64, src: u32, dst: u32, weight: f32) -> Self {
        Self {
            time,
            src,
            dst,
            kind: EventKind::UpdateWeight,
            weight,
        }
    }
}

/// A time-ordered stream of edge events over a fixed vertex set.
#[derive(Clone, Debug, Default)]
pub struct EventLog {
    n: usize,
    events: Vec<EdgeEvent>,
}

impl EventLog {
    /// Wraps events, sorting them by timestamp (stable, so same-time events
    /// keep their arrival order — `Remove` before `Add` matters).
    pub fn new(n: usize, mut events: Vec<EdgeEvent>) -> Self {
        assert!(
            events
                .iter()
                .all(|e| (e.src as usize) < n && (e.dst as usize) < n),
            "event endpoint out of range"
        );
        events.sort_by_key(|e| e.time);
        Self { n, events }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the log holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events in time order.
    pub fn events(&self) -> &[EdgeEvent] {
        &self.events
    }

    /// Largest timestamp in the log (`None` when empty).
    pub fn max_time(&self) -> Option<u64> {
        self.events.last().map(|e| e.time)
    }

    /// Delta log of a snapshot sequence: snapshot `0` as `Add`s at time 0,
    /// snapshot `t > 0` as the minimal edit set against snapshot `t - 1`
    /// at time `t`. Event count is `nnz(A_0) + Σ_t |Δ_t|`, not `Σ_t nnz` —
    /// gradual graphs stream cheaply.
    pub fn replay(g: &DynamicGraph) -> Self {
        let mut events = Vec::new();
        for (t, s) in g.snapshots().iter().enumerate() {
            if t == 0 {
                push_full_snapshot(&mut events, 0, s);
            } else {
                push_delta(&mut events, t as u64, g.snapshot(t - 1).adj(), s.adj());
            }
        }
        Self { n: g.n(), events }
    }

    /// Occurrence log of a snapshot sequence: every stored edge of snapshot
    /// `t` becomes one `Add` at time `t` carrying its value. The natural
    /// encoding of interaction data (transactions, messages, calls), and
    /// the input sliding windows expect.
    pub fn occurrences(g: &DynamicGraph) -> Self {
        let mut events = Vec::new();
        for (t, s) in g.snapshots().iter().enumerate() {
            push_full_snapshot(&mut events, t as u64, s);
        }
        Self { n: g.n(), events }
    }
}

fn push_full_snapshot(out: &mut Vec<EdgeEvent>, time: u64, s: &Snapshot) {
    for r in 0..s.n() {
        for (c, v) in s.adj().row_iter(r) {
            out.push(EdgeEvent::add(time, r as u32, c, v));
        }
    }
}

/// Minimal event set turning `prev` into `next`: a sorted row merge, like
/// `dgnn_graph::diff` but value-aware (shared edges whose value changed
/// become `UpdateWeight`).
fn push_delta(out: &mut Vec<EdgeEvent>, time: u64, prev: &Csr, next: &Csr) {
    assert_eq!(prev.rows(), next.rows(), "snapshot shape mismatch");
    for r in 0..prev.rows() {
        let r32 = r as u32;
        let mut pa = prev.row_iter(r).peekable();
        let mut pb = next.row_iter(r).peekable();
        loop {
            match (pa.peek(), pb.peek()) {
                (Some(&(ca, va)), Some(&(cb, vb))) => {
                    if ca == cb {
                        if va != vb {
                            out.push(EdgeEvent::update(time, r32, ca, vb));
                        }
                        pa.next();
                        pb.next();
                    } else if ca < cb {
                        out.push(EdgeEvent::remove(time, r32, ca));
                        pa.next();
                    } else {
                        out.push(EdgeEvent::add(time, r32, cb, vb));
                        pb.next();
                    }
                }
                (Some(&(ca, _)), None) => {
                    out.push(EdgeEvent::remove(time, r32, ca));
                    pa.next();
                }
                (None, Some(&(cb, vb))) => {
                    out.push(EdgeEvent::add(time, r32, cb, vb));
                    pb.next();
                }
                (None, None) => break,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::gen::churn;

    #[test]
    fn replay_is_much_smaller_than_occurrences_on_gradual_graphs() {
        let g = churn(100, 10, 400, 0.1, 1);
        let delta = EventLog::replay(&g);
        let occ = EventLog::occurrences(&g);
        assert_eq!(occ.len() as u64, g.total_nnz());
        // ~400 initial adds + 9 * (40 removes + 40 adds) ≈ 1120 vs 4000.
        assert!(
            delta.len() < occ.len() / 2,
            "delta {} occ {}",
            delta.len(),
            occ.len()
        );
    }

    #[test]
    fn new_sorts_by_time_stably() {
        let events = vec![
            EdgeEvent::add(3, 0, 1, 1.0),
            EdgeEvent::remove(1, 0, 1),
            EdgeEvent::add(1, 0, 2, 1.0),
        ];
        let log = EventLog::new(4, events);
        assert_eq!(log.events()[0].time, 1);
        assert_eq!(log.events()[0].kind, EventKind::Remove);
        assert_eq!(log.events()[1].kind, EventKind::Add);
        assert_eq!(log.events()[2].time, 3);
        assert_eq!(log.max_time(), Some(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_endpoints() {
        EventLog::new(2, vec![EdgeEvent::add(0, 0, 5, 1.0)]);
    }
}
