//! # dgnn-stream
//!
//! Event-driven graph ingestion: turns a live stream of timestamped edge
//! events into training-ready snapshots *incrementally*, without full
//! rebuilds. This is the subsystem that takes the repository beyond the
//! paper's precomputed snapshot sequences toward continuously-arriving
//! traffic (ROADMAP north star).
//!
//! ## Concepts → paper sections
//!
//! | This crate | Paper concept |
//! |---|---|
//! | [`EdgeEvent`], [`EventLog`] | the *input* the paper assumes away: §2.1's DTDG snapshots arise here as views over an event stream |
//! | [`EventLog::replay`] | §3.2 graph differences, recast as the *source* encoding: the minimal edit stream between consecutive snapshots |
//! | [`StreamingGraph::materialize`] | §2.1 snapshot `G_t` — bit-identical to batch CSR construction, so every downstream consumer (Laplacians, partitioners, trainers) is unchanged |
//! | [`DeltaBatcher`] | §3.2's `A_i^ext`/`A_{i+1}^ext` edit lists, emitted directly from accumulated events in `O(Δ log Δ)` instead of an `O(nnz)` snapshot-pair merge |
//! | [`WindowPolicy::Tumbling`] | the DTDG snapshot cadence (§2.1) |
//! | [`WindowPolicy::Sliding`] | §5.4 edge-life smoothing as a streaming aggregate: interactions age out of the trailing window |
//! | `dgnn_core::train_streaming` | §3's checkpointed trainer driven online: each closed window warm-starts from the previous window's parameters |
//!
//! ## Data flow
//!
//! ```text
//! events ──► EventLog ──► windows(log, policy) ──► StreamWindow { snapshot, diff }
//!                │                                        │
//!                │ (adapters: replay / occurrences        │ snapshots feed prepare_task /
//!                │  of any DynamicGraph or generator)     │ train_streaming; diffs feed the
//!                └────────────────────────────────────────┴ §3.2 transfer accounting
//! ```
//!
//! The pipeline invariant, asserted by the property tests: for any event
//! sequence, applying events then [`StreamingGraph::materialize`] equals
//! building the CSR from the final edge set in one batch, and every
//! [`StreamWindow::diff`] round-trips through `dgnn_graph::reconstruct`
//! onto the previous window's snapshot.

pub mod batcher;
pub mod event;
pub mod streaming;
pub mod window;

pub use batcher::DeltaBatcher;
pub use event::{EdgeEvent, EventKind, EventLog};
pub use streaming::StreamingGraph;
pub use window::{collect_dynamic_graph, windows, StreamWindow, WindowIter, WindowPolicy};
