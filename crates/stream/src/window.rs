//! Window policies turning an event stream into a snapshot sequence.
//!
//! * **Tumbling** windows consume a *delta log*: each window applies its
//!   events to the running cumulative state and emits the state at the
//!   window boundary — the streaming analogue of DTDG snapshots. With
//!   width 1 over [`EventLog::replay`], the emitted sequence equals the
//!   original `DynamicGraph` snapshot for snapshot.
//! * **Sliding** windows consume an *occurrence log*: the emitted graph
//!   aggregates the interactions whose timestamps fall in the trailing
//!   window, old interactions aging out as the window slides — the
//!   streaming analogue of the §5.4 edge-life smoothing (width `l`,
//!   slide 1 reproduces `edge_life(g, l)` structure exactly and values up
//!   to f32 rounding).
//!
//! Every emitted [`StreamWindow`] carries both the materialized
//! [`Snapshot`] and the [`GraphDiff`] against the previously emitted
//! window, so downstream consumers (trainers, transfer accounting) get the
//! §3.2 encoding for free.

use std::collections::BTreeMap;

use dgnn_graph::{GraphDiff, Snapshot};
use dgnn_tensor::Csr;

use crate::batcher::DeltaBatcher;
use crate::event::{EventKind, EventLog};

/// How the event stream is cut into snapshots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WindowPolicy {
    /// Cumulative state emitted every `width` time units.
    Tumbling {
        /// Window width in time units (≥ 1).
        width: u64,
    },
    /// Trailing aggregate of the last `width` time units, emitted every
    /// `slide` time units. Only `Add` (occurrence) events are meaningful;
    /// `Remove`/`UpdateWeight` are rejected.
    Sliding {
        /// Window width in time units (≥ 1).
        width: u64,
        /// Emission period in time units (≥ 1).
        slide: u64,
    },
}

/// One closed window of the stream.
#[derive(Clone, Debug)]
pub struct StreamWindow {
    /// 0-based window index.
    pub index: usize,
    /// First timestamp covered (inclusive). Tumbling windows report their
    /// own span even though the emitted state is cumulative.
    pub start: u64,
    /// One past the last timestamp covered (exclusive).
    pub end: u64,
    /// Events consumed while advancing to this window.
    pub events: usize,
    /// The materialized graph at window close.
    pub snapshot: Snapshot,
    /// Difference against the previously emitted window (against the
    /// empty graph for the first window) — ready for §3.2 transfer.
    pub diff: GraphDiff,
    /// Vertices incident to any edge touched (structure *or* weight)
    /// since the previously emitted window, sorted and deduplicated —
    /// the journal the training-side pre-aggregation reuse cache
    /// ([`dgnn_graph::preagg`]) expands into its dirty rows. Unlike
    /// `diff`, this also covers weight-only changes.
    pub touched: Vec<u32>,
}

/// Iterator over the closed windows of an [`EventLog`].
pub struct WindowIter<'a> {
    log: &'a EventLog,
    cursor: usize,
    index: usize,
    resident: Csr,
    state: WindowState,
}

enum WindowState {
    Tumbling {
        width: u64,
        batcher: DeltaBatcher,
    },
    Sliding {
        width: u64,
        slide: u64,
        /// `(weight sum, occurrence count)` per live edge. The sum is
        /// kept in f64: it is maintained by running add/subtract as
        /// occurrences enter and age out, and f32 cancellation would
        /// drift on hot edges over long streams.
        agg: BTreeMap<(u32, u32), (f64, u32)>,
        /// Events inside the current window, oldest first (a cursor range
        /// into the log — occurrences expire in arrival order).
        live_lo: usize,
        /// Edges touched while advancing, with presence at last emission.
        touched: BTreeMap<(u32, u32), bool>,
    },
}

/// Cuts `log` into windows under `policy`.
pub fn windows(log: &EventLog, policy: WindowPolicy) -> WindowIter<'_> {
    let state = match policy {
        WindowPolicy::Tumbling { width } => {
            assert!(width >= 1, "window width must be positive");
            WindowState::Tumbling {
                width,
                batcher: DeltaBatcher::new(log.n()),
            }
        }
        WindowPolicy::Sliding { width, slide } => {
            assert!(
                width >= 1 && slide >= 1,
                "window parameters must be positive"
            );
            WindowState::Sliding {
                width,
                slide,
                agg: BTreeMap::new(),
                live_lo: 0,
                touched: BTreeMap::new(),
            }
        }
    };
    WindowIter {
        log,
        cursor: 0,
        index: 0,
        resident: Csr::empty(log.n(), log.n()),
        state,
    }
}

impl<'a> Iterator for WindowIter<'a> {
    type Item = StreamWindow;

    fn next(&mut self) -> Option<StreamWindow> {
        let events = self.log.events();
        let (start, end) = match &self.state {
            WindowState::Tumbling { width, .. } => {
                let start = self.index as u64 * width;
                (start, start + width)
            }
            WindowState::Sliding { width, slide, .. } => {
                let end = self.index as u64 * slide + 1;
                (end.saturating_sub(*width), end)
            }
        };
        // Tumbling windows run until every timestamp is covered (the tail
        // may be a partial window); sliding windows stop once the window
        // end passes the final timestamp — later emissions would only
        // replay expiries of a frozen stream.
        let max_time = self.log.max_time()?;
        let done = match &self.state {
            WindowState::Tumbling { .. } => start > max_time,
            WindowState::Sliding { .. } => end > max_time + 1,
        };
        if done {
            return None;
        }

        let consumed_before = self.cursor;
        match &mut self.state {
            WindowState::Tumbling { batcher, .. } => {
                while self.cursor < events.len() && events[self.cursor].time < end {
                    batcher.apply(&events[self.cursor]);
                    self.cursor += 1;
                }
                let touched = batcher.touched_vertices();
                let (next, diff) = batcher.advance();
                self.index += 1;
                Some(StreamWindow {
                    index: self.index - 1,
                    start,
                    end,
                    events: self.cursor - consumed_before,
                    snapshot: Snapshot::new(next),
                    diff,
                    touched,
                })
            }
            WindowState::Sliding {
                agg,
                live_lo,
                touched,
                ..
            } => {
                // Ingest occurrences up to the window end.
                while self.cursor < events.len() && events[self.cursor].time < end {
                    let ev = &events[self.cursor];
                    assert_eq!(
                        ev.kind,
                        EventKind::Add,
                        "sliding windows aggregate occurrence logs; \
                         Remove/UpdateWeight events are delta-log constructs"
                    );
                    let key = (ev.src, ev.dst);
                    // First touch this advance == presence at last emission.
                    let was_present = agg.contains_key(&key);
                    touched.entry(key).or_insert(was_present);
                    let slot = agg.entry(key).or_insert((0.0, 0));
                    slot.0 += f64::from(ev.weight);
                    slot.1 += 1;
                    self.cursor += 1;
                }
                // Expire occurrences older than the window start.
                while *live_lo < self.cursor && events[*live_lo].time < start {
                    let ev = &events[*live_lo];
                    let key = (ev.src, ev.dst);
                    let slot = agg.get_mut(&key).expect("expiring unknown edge");
                    slot.0 -= f64::from(ev.weight);
                    slot.1 -= 1;
                    let emptied = slot.1 == 0;
                    if emptied {
                        agg.remove(&key);
                    }
                    touched.entry(key).or_insert(true);
                    *live_lo += 1;
                }
                // Structural edits against the previous emission. Every
                // ingested or expired occurrence lands a key in `touched`,
                // so its endpoints are exactly the vertices whose incident
                // aggregate (structure or value) may have moved.
                let mut ext_prev = Vec::new();
                let mut ext_next = Vec::new();
                let mut touched_vertices: Vec<u32> = Vec::with_capacity(touched.len() * 2);
                for (&(u, v), &was_present) in touched.iter() {
                    touched_vertices.extend([u, v]);
                    let present = agg.contains_key(&(u, v));
                    match (was_present, present) {
                        (true, false) => ext_prev.push((u, v)),
                        (false, true) => ext_next.push((u, v)),
                        _ => {}
                    }
                }
                touched_vertices.sort_unstable();
                touched_vertices.dedup();
                touched.clear();
                let next_values: Vec<f32> = agg.values().map(|&(w, _)| w as f32).collect();
                let diff = GraphDiff {
                    ext_prev,
                    ext_next,
                    next_values,
                };
                let next = dgnn_graph::reconstruct(&self.resident, &diff);
                self.resident = next.clone();
                self.index += 1;
                Some(StreamWindow {
                    index: self.index - 1,
                    start,
                    end,
                    events: self.cursor - consumed_before,
                    snapshot: Snapshot::new(next),
                    diff,
                    touched: touched_vertices,
                })
            }
        }
    }
}

/// Materializes the whole stream into a [`dgnn_graph::DynamicGraph`] —
/// the bridge from streaming ingestion to the batch trainers.
pub fn collect_dynamic_graph(log: &EventLog, policy: WindowPolicy) -> dgnn_graph::DynamicGraph {
    let snaps: Vec<Snapshot> = windows(log, policy).map(|w| w.snapshot).collect();
    dgnn_graph::DynamicGraph::new(log.n(), snaps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventLog;
    use dgnn_graph::gen::{churn, churn_skewed};
    use dgnn_graph::smoothing::edge_life;

    #[test]
    fn tumbling_width_one_reproduces_snapshots() {
        let g = churn(70, 9, 250, 0.3, 3);
        let log = EventLog::replay(&g);
        let wins: Vec<StreamWindow> = windows(&log, WindowPolicy::Tumbling { width: 1 }).collect();
        assert_eq!(wins.len(), g.t());
        for (t, w) in wins.iter().enumerate() {
            assert_eq!(w.index, t);
            assert_eq!((w.start, w.end), (t as u64, t as u64 + 1));
            assert_eq!(w.snapshot.adj(), g.snapshot(t).adj(), "t = {t}");
        }
    }

    #[test]
    fn tumbling_width_two_merges_deltas() {
        let g = churn(40, 6, 120, 0.4, 5);
        let log = EventLog::replay(&g);
        let wins: Vec<StreamWindow> = windows(&log, WindowPolicy::Tumbling { width: 2 }).collect();
        // Windows close after times {0,1}, {2,3}, {4,5}: cumulative state
        // equals snapshots 1, 3, 5.
        assert_eq!(wins.len(), 3);
        for (k, w) in wins.iter().enumerate() {
            assert_eq!(w.snapshot.adj(), g.snapshot(2 * k + 1).adj(), "k = {k}");
        }
    }

    #[test]
    fn sliding_matches_edge_life_structure_and_values() {
        let g = churn_skewed(50, 8, 150, 0.35, 0.8, 9);
        let log = EventLog::occurrences(&g);
        let l = 3usize;
        let wins: Vec<StreamWindow> = windows(
            &log,
            WindowPolicy::Sliding {
                width: l as u64,
                slide: 1,
            },
        )
        .collect();
        let smoothed = edge_life(&g, l);
        assert_eq!(wins.len(), g.t());
        for (t, w) in wins.iter().enumerate() {
            let expect = smoothed.snapshot(t).adj();
            let got = w.snapshot.adj();
            assert_eq!(got.indptr(), expect.indptr(), "t = {t}");
            assert_eq!(got.indices(), expect.indices(), "t = {t}");
            for (a, b) in got.values().iter().zip(expect.values()) {
                assert!((a - b).abs() < 1e-4, "t = {t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn window_diffs_chain_through_reconstruct() {
        let g = churn(60, 7, 200, 0.2, 13);
        let log = EventLog::replay(&g);
        let mut resident = dgnn_tensor::Csr::empty(g.n(), g.n());
        for w in windows(&log, WindowPolicy::Tumbling { width: 1 }) {
            resident = dgnn_graph::reconstruct(&resident, &w.diff);
            assert_eq!(&resident, w.snapshot.adj(), "window {}", w.index);
        }
    }

    #[test]
    fn windows_carry_touched_vertex_journals() {
        use dgnn_graph::preagg::journal_from_diff;
        let g = churn(60, 6, 180, 0.25, 7);
        let log = EventLog::replay(&g);
        for w in windows(&log, WindowPolicy::Tumbling { width: 1 }) {
            assert!(w.touched.is_sorted(), "window {}", w.index);
            // The journal must cover at least the structural-diff
            // endpoints (it additionally covers weight-only touches).
            for v in journal_from_diff(&w.diff) {
                assert!(
                    w.touched.binary_search(&v).is_ok(),
                    "window {}: diff endpoint {v} missing from journal",
                    w.index
                );
            }
        }
        let occ = EventLog::occurrences(&churn_skewed(50, 7, 140, 0.3, 0.8, 3));
        for w in windows(&occ, WindowPolicy::Sliding { width: 3, slide: 1 }) {
            assert!(w.touched.is_sorted(), "window {}", w.index);
            for v in journal_from_diff(&w.diff) {
                assert!(
                    w.touched.binary_search(&v).is_ok(),
                    "window {}: diff endpoint {v} missing from journal",
                    w.index
                );
            }
        }
    }

    #[test]
    fn collect_dynamic_graph_bridges_to_batch() {
        let g = churn(30, 5, 80, 0.3, 1);
        let log = EventLog::replay(&g);
        let back = collect_dynamic_graph(&log, WindowPolicy::Tumbling { width: 1 });
        assert_eq!(back.t(), g.t());
        for t in 0..g.t() {
            assert_eq!(back.snapshot(t).adj(), g.snapshot(t).adj());
        }
    }
}
