//! Property tests on graph-side invariants: relabeling, smoothing algebra,
//! generator guarantees, and closed-form statistics.

use dgnn_graph::gen::{amlsim_with_labels, churn, churn_skewed, AmlSimConfig, ZipfSampler};
use dgnn_graph::smoothing::{edge_life, m_transform_adj};
use dgnn_graph::stats::{Smoothing, TemporalStats};
use dgnn_graph::DynamicGraph;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Relabeling is structure-preserving: degree multisets are invariant.
    #[test]
    fn relabel_preserves_degree_multiset(seed in 0u64..500) {
        let g = churn(30, 3, 90, 0.3, seed);
        // A deterministic permutation: reverse order.
        let perm: Vec<u32> = (0..30u32).rev().collect();
        let renamed = g.relabel(&perm);
        for t in 0..3 {
            let mut a: Vec<usize> = g.snapshot(t).adj().row_degrees();
            let mut b: Vec<usize> = renamed.snapshot(t).adj().row_degrees();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
            prop_assert_eq!(g.snapshot(t).nnz(), renamed.snapshot(t).nnz());
        }
    }

    /// Relabeling twice with a permutation and its inverse is the identity.
    #[test]
    fn relabel_roundtrip(seed in 0u64..500) {
        let g = churn(25, 2, 60, 0.4, seed);
        let perm: Vec<u32> = (0..25u32).map(|v| (v * 7 + 3) % 25).collect();
        let mut inv = vec![0u32; 25];
        for (old, &new) in perm.iter().enumerate() {
            inv[new as usize] = old as u32;
        }
        let back = g.relabel(&perm).relabel(&inv);
        for t in 0..2 {
            prop_assert_eq!(back.snapshot(t).adj(), g.snapshot(t).adj());
        }
    }

    /// Edge-life of l is the union of the last l raw structures.
    #[test]
    fn edge_life_structure_is_window_union(seed in 0u64..200, l in 1usize..5) {
        let g = churn(40, 6, 100, 0.4, seed);
        let s = edge_life(&g, l);
        for t in 0..6usize {
            let lo = t.saturating_sub(l - 1);
            let mut union = std::collections::HashSet::new();
            for i in lo..=t {
                union.extend(g.snapshot(i).edges());
            }
            let got: std::collections::HashSet<_> =
                s.snapshot(t).edges().into_iter().collect();
            prop_assert_eq!(got, union);
        }
    }

    /// M-transform and edge-life share structure for matching windows.
    #[test]
    fn m_transform_structure_equals_edge_life(seed in 0u64..200, w in 1usize..5) {
        let g = churn(30, 5, 80, 0.5, seed);
        let a = m_transform_adj(&g, w);
        let b = edge_life(&g, w);
        for t in 0..5 {
            prop_assert_eq!(a.snapshot(t).nnz(), b.snapshot(t).nnz(), "t={}", t);
        }
    }

    /// The churn generator honours its size contract exactly and its churn
    /// contract up to same-step re-collisions (a fresh edge may re-add a
    /// victim removed earlier in the same step — the approximation the
    /// closed-form statistics document).
    #[test]
    fn churn_replacement_counts_within_collision_tolerance(
        rho in 0.0f64..=1.0,
        seed in 0u64..200,
    ) {
        let m = 120usize;
        let g = churn(60, 4, m, rho, seed);
        let replace = (rho * m as f64).round() as usize;
        // Expected re-collisions: each of `replace` fresh draws hits one of
        // the `replace` removed victims with probability ~replace/(n(n-1)).
        let slack = 3 + replace * replace / (60 * 59) * 3;
        for t in 0..3 {
            prop_assert_eq!(g.snapshot(t).nnz(), m);
            let a: std::collections::HashSet<_> =
                g.snapshot(t).edges().into_iter().collect();
            let b: std::collections::HashSet<_> =
                g.snapshot(t + 1).edges().into_iter().collect();
            let departures = a.difference(&b).count();
            prop_assert!(departures <= replace);
            prop_assert!(
                departures + slack >= replace,
                "departures {} vs replace {} (slack {})",
                departures, replace, slack
            );
        }
    }

    /// Zipf sampling is properly normalised and monotone in popularity.
    #[test]
    fn zipf_sampler_is_monotone(s in 0.2f64..1.5) {
        let sampler = ZipfSampler::new(50, s);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 50];
        for _ in 0..20_000 {
            counts[sampler.sample(&mut rng) as usize] += 1;
        }
        // Vertex 0 is the most popular by a clear margin.
        prop_assert!(counts[0] > counts[25]);
        prop_assert!(counts[0] > counts[49]);
    }
}

#[test]
fn closed_form_total_matches_series_sum() {
    for (t, m, rho, w) in [(20usize, 500.0, 0.3, 4usize), (50, 1000.0, 0.7, 12)] {
        let stats = TemporalStats::churn_closed_form(1000, t, m, rho, Smoothing::MProduct(w));
        let total = TemporalStats::closed_form_total(t, m, rho, w);
        assert!(
            (stats.total_nnz() as f64 - total).abs() < t as f64,
            "series sum and closed form disagree"
        );
    }
}

#[test]
fn aml_labels_mark_exactly_ring_members() {
    let cfg = AmlSimConfig {
        n: 100,
        t: 8,
        rings: 4,
        ..Default::default()
    };
    let (g, labels) = amlsim_with_labels(&cfg, 3);
    assert_eq!(labels.len(), g.t());
    // Some account is labelled at some timestep, and labels are binary.
    let positives: usize = labels
        .iter()
        .map(|l| l.iter().filter(|&&x| x == 1).count())
        .sum();
    assert!(positives > 0, "rings should label accounts");
    assert!(labels.iter().flatten().all(|&x| x <= 1));
}

#[test]
fn skewed_and_uniform_share_counting_statistics() {
    // The closed-form stats consumed by the perf engine hold for the skewed
    // generator too (sizes and departure counts are exact by construction).
    let (n, t, m, rho) = (200usize, 8usize, 700usize, 0.25);
    let g = churn_skewed(n, t, m, rho, 0.9, 13);
    let stats = TemporalStats::from_graph(&g);
    let predicted = TemporalStats::churn_closed_form(n as u64, t, m as f64, rho, Smoothing::None);
    for ti in 0..t {
        assert_eq!(stats.nnz[ti], predicted.nnz[ti]);
    }
    // Zipf endpoints collide more, so departures fall a few percent short
    // of the closed form.
    for i in 0..t - 1 {
        let e = stats.ext_prev[i] as f64;
        let p = predicted.ext_prev[i] as f64;
        assert!((e - p).abs() / p < 0.1, "ext_prev[{i}]: {e} vs {p}");
    }
}

#[test]
fn smoothing_never_shrinks_snapshots() {
    let g = churn(50, 6, 150, 0.5, 21);
    for smoothing in [Smoothing::EdgeLife(3), Smoothing::MProduct(4)] {
        let s = smoothing.apply(&g);
        for t in 0..g.t() {
            assert!(s.snapshot(t).nnz() >= g.snapshot(t).nnz());
        }
    }
    let id = Smoothing::None.apply(&g);
    for t in 0..g.t() {
        assert_eq!(id.snapshot(t).adj(), g.snapshot(t).adj());
    }
}

/// Helper used by the doc: DynamicGraph invariants after generation.
#[test]
fn generators_produce_consistent_graphs() {
    for g in [
        churn(40, 5, 100, 0.2, 1),
        churn_skewed(40, 5, 100, 0.2, 1.2, 2),
        dgnn_graph::gen::uniform_random(40, 5, 2.0, 3),
    ] {
        let _: DynamicGraph = g.clone();
        assert_eq!(g.t(), 5);
        assert_eq!(g.n(), 40);
        for t in 0..g.t() {
            // No self loops from the generators.
            for (u, v) in g.snapshot(t).edges() {
                assert_ne!(u, v);
            }
        }
    }
}
