//! # dgnn-graph
//!
//! Discrete-time dynamic graphs (DTDG) for the SC'21 reproduction:
//! snapshot sequences, temporal generators (including churn-model stand-ins
//! for the paper's datasets), the edge-life and M-transform smoothing of
//! §5.4, the graph-difference transfer encoding of §3.2, incremental
//! cross-snapshot pre-aggregation reuse ([`preagg`]), degree features,
//! link-prediction sampling, exact/closed-form temporal statistics, and
//! the snapshot byte codec ([`snapshot_io`]) the out-of-core store frames.

#![warn(missing_docs)]

pub mod datasets;
pub mod diff;
pub mod features;
pub mod gen;
pub mod linkpred;
pub mod preagg;
pub mod smoothing;
pub mod snapshot;
pub mod snapshot_io;
pub mod stats;

pub use datasets::DatasetSpec;
pub use diff::{chunk_transfer, diff, naive_transfer_bytes, reconstruct, GraphDiff};
pub use features::degree_features;
pub use linkpred::{build_linkpred, EdgeSamples, LinkPredData};
pub use preagg::{incremental_preagg, ReuseStats};
pub use smoothing::{edge_life, m_transform_adj, m_transform_features};
pub use snapshot::{DynamicGraph, Snapshot};
pub use snapshot_io::{snapshot_from_bytes, snapshot_to_bytes, CodecError};
pub use stats::{Smoothing, TemporalStats};
