//! Temporal statistics of a dynamic graph: per-snapshot sizes and
//! consecutive-snapshot differences.
//!
//! Two constructions exist:
//!
//! * [`TemporalStats::from_graph`] measures a materialised graph exactly —
//!   used for functional runs and for validating the closed form.
//! * [`TemporalStats::churn_closed_form`] predicts the same quantities for
//!   the churn model analytically, which lets the performance engine reason
//!   about paper-scale (billion-edge) datasets without materialising them.

use crate::diff::diff;
use crate::smoothing::{edge_life, m_transform_adj};
use crate::snapshot::DynamicGraph;

/// The smoothing applied to the adjacency tensor before training.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Smoothing {
    /// No smoothing (CD-GCN).
    None,
    /// Edge-life transformation with life `l` (EvolveGCN).
    EdgeLife(usize),
    /// M-transform with window `w` (TM-GCN).
    MProduct(usize),
}

impl Smoothing {
    /// Applies the smoothing to a materialised graph.
    pub fn apply(&self, g: &DynamicGraph) -> DynamicGraph {
        match *self {
            Smoothing::None => g.clone(),
            Smoothing::EdgeLife(l) => edge_life(g, l),
            Smoothing::MProduct(w) => m_transform_adj(g, w),
        }
    }

    /// The structural union window: how many consecutive raw snapshots
    /// contribute structure to one smoothed snapshot.
    pub fn window(&self) -> usize {
        match *self {
            Smoothing::None => 1,
            Smoothing::EdgeLife(l) => l,
            Smoothing::MProduct(w) => w,
        }
    }
}

/// Per-snapshot size and difference statistics of a (possibly smoothed)
/// dynamic graph.
#[derive(Clone, Debug)]
pub struct TemporalStats {
    /// Number of vertices.
    pub n: u64,
    /// Number of timesteps.
    pub t: usize,
    /// Stored edges of each snapshot.
    pub nnz: Vec<u64>,
    /// `|A_i \ A_{i+1}|` for `i = 0..t-1`.
    pub ext_prev: Vec<u64>,
    /// `|A_{i+1} \ A_i|` for `i = 0..t-1`.
    pub ext_next: Vec<u64>,
}

impl TemporalStats {
    /// Total stored edges across the timeline.
    pub fn total_nnz(&self) -> u64 {
        self.nnz.iter().sum()
    }

    /// Measures a materialised graph exactly.
    pub fn from_graph(g: &DynamicGraph) -> Self {
        let t = g.t();
        let nnz = g.nnz_series();
        let mut ext_prev = Vec::with_capacity(t.saturating_sub(1));
        let mut ext_next = Vec::with_capacity(t.saturating_sub(1));
        for i in 0..t.saturating_sub(1) {
            let d = diff(g.snapshot(i).adj(), g.snapshot(i + 1).adj());
            ext_prev.push(d.ext_prev.len() as u64);
            ext_next.push(d.ext_next.len() as u64);
        }
        Self {
            n: g.n() as u64,
            t,
            nnz,
            ext_prev,
            ext_next,
        }
    }

    /// Predicts the statistics of a churn-model graph (per-snapshot size
    /// `m`, per-step replacement fraction `rho`) after `smoothing`, without
    /// materialising anything.
    ///
    /// Model: `R = rho * m` edges are replaced per step. A smoothed snapshot
    /// at timestep `t` unions the last `k(t) = min(window, t+1)` raw
    /// snapshots, so it holds `m + (k(t)-1) * R` edges. Between consecutive
    /// smoothed snapshots, `R` edges leave (those whose last appearance was
    /// the step that fell out of the window — zero while the window is still
    /// growing) and `R` edges enter (fresh births). Random re-collisions are
    /// negligible when `m << N²`.
    pub fn churn_closed_form(n: u64, t: usize, m: f64, rho: f64, smoothing: Smoothing) -> Self {
        let window = smoothing.window();
        let r = rho * m;
        let k = |ti: usize| window.min(ti + 1) as f64;
        let nnz: Vec<u64> = (0..t)
            .map(|ti| (m + (k(ti) - 1.0) * r).round() as u64)
            .collect();
        let mut ext_prev = Vec::with_capacity(t.saturating_sub(1));
        let mut ext_next = Vec::with_capacity(t.saturating_sub(1));
        for i in 0..t.saturating_sub(1) {
            // Window still growing at i+1: nothing falls out.
            let leaving = if i + 1 < window { 0.0 } else { r };
            ext_prev.push(leaving.round() as u64);
            ext_next.push(r.round() as u64);
        }
        Self {
            n,
            t,
            nnz,
            ext_prev,
            ext_next,
        }
    }

    /// Total smoothed edges predicted by the closed form (used to calibrate
    /// smoothing windows against the paper's Table 1).
    pub fn closed_form_total(t: usize, m: f64, rho: f64, window: usize) -> f64 {
        let r = rho * m;
        (0..t)
            .map(|ti| m + (window.min(ti + 1) as f64 - 1.0) * r)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::churn;

    #[test]
    fn exact_stats_on_tiny_graph() {
        use crate::snapshot::Snapshot;
        let g = DynamicGraph::new(
            3,
            vec![
                Snapshot::from_edges(3, &[(0, 1), (1, 2)]),
                Snapshot::from_edges(3, &[(0, 1), (2, 0)]),
            ],
        );
        let s = TemporalStats::from_graph(&g);
        assert_eq!(s.nnz, vec![2, 2]);
        assert_eq!(s.ext_prev, vec![1]); // (1,2) leaves
        assert_eq!(s.ext_next, vec![1]); // (2,0) enters
    }

    #[test]
    fn closed_form_matches_materialised_raw() {
        let (n, t, m, rho) = (500usize, 12usize, 2000usize, 0.25);
        let g = churn(n, t, m, rho, 17);
        let exact = TemporalStats::from_graph(&g);
        let predicted =
            TemporalStats::churn_closed_form(n as u64, t, m as f64, rho, Smoothing::None);
        for ti in 0..t {
            assert_eq!(exact.nnz[ti], predicted.nnz[ti]);
        }
        for i in 0..t - 1 {
            let e = exact.ext_next[i] as f64;
            let p = predicted.ext_next[i] as f64;
            assert!(
                (e - p).abs() / p < 0.15,
                "ext_next[{i}]: exact {e}, predicted {p}"
            );
        }
    }

    #[test]
    fn closed_form_matches_materialised_smoothed() {
        let (n, t, m, rho) = (600usize, 16usize, 1500usize, 0.3);
        let g = churn(n, t, m, rho, 23);
        let w = 5;
        let smoothing = Smoothing::MProduct(w);
        let exact = TemporalStats::from_graph(&smoothing.apply(&g));
        let predicted = TemporalStats::churn_closed_form(n as u64, t, m as f64, rho, smoothing);
        for ti in 0..t {
            let e = exact.nnz[ti] as f64;
            let p = predicted.nnz[ti] as f64;
            assert!(
                (e - p).abs() / p < 0.1,
                "nnz[{ti}]: exact {e}, predicted {p}"
            );
        }
        // In the steady state both ext series hover around R = rho * m.
        let r = rho * m as f64;
        for i in w..t - 1 {
            let e = exact.ext_prev[i] as f64;
            assert!((e - r).abs() / r < 0.3, "ext_prev[{i}]: exact {e}, R {r}");
        }
    }

    #[test]
    fn closed_form_total_monotone_in_window() {
        let mut prev = 0.0;
        for w in 1..20 {
            let total = TemporalStats::closed_form_total(50, 1000.0, 0.2, w);
            assert!(total > prev);
            prev = total;
        }
    }

    #[test]
    fn ramp_up_has_no_departures() {
        let s = TemporalStats::churn_closed_form(100, 10, 100.0, 0.5, Smoothing::MProduct(4));
        // Windows are still growing for i+1 < 4.
        assert_eq!(&s.ext_prev[0..3], &[0, 0, 0]);
        assert!(s.ext_prev[4] > 0);
    }
}
