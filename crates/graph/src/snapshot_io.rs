//! Snapshot serialization: the byte-level codec for CSR adjacency /
//! operator matrices and the [`Snapshot`]s wrapping them.
//!
//! This is the *payload* layer of the out-of-core spill format: the
//! `dgnn-store` crate frames these bytes (magic, format revision, kind
//! tag, CRC-32) and owns the files; the graph crate owns what a
//! serialized snapshot *is*, so the encoding cannot drift from the CSR
//! invariants it must uphold (monotone row pointers, in-bounds column
//! indices). Layout, all integers little-endian:
//!
//! ```text
//! rows u64, cols u64, nnz u64
//! indptr   (rows+1) × u64
//! indices  nnz × u32
//! values   nnz × f32 raw bit patterns
//! ```
//!
//! Values round-trip bit-exactly, and decoding draws its backing buffers
//! (row pointers, indices, values) from the per-thread
//! [`dgnn_tensor::workspace`] arena when one is engaged, so a
//! steady-state out-of-core block read allocates nothing.

use dgnn_tensor::{workspace, Csr};

use crate::snapshot::Snapshot;

/// Why CSR payload bytes could not be decoded. The storage layer wraps
/// these in its own typed error (alongside framing failures like bad
/// magic or checksum mismatch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ends before the structure it declares.
    Truncated,
    /// Structurally inconsistent content (implausible dimensions,
    /// non-monotone row pointers, out-of-bounds column indices …).
    Malformed(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "csr payload is truncated"),
            CodecError::Malformed(what) => write!(f, "malformed csr payload: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Dimension cap per axis — a corrupt header must not drive a
/// multi-gigabyte allocation before validation can reject it.
const MAX_DIM: u64 = 1 << 32;

/// Appends the CSR payload of `m` to `out`.
pub fn encode_csr_payload(m: &Csr, out: &mut Vec<u8>) {
    out.reserve(24 + m.indptr().len() * 8 + m.nnz() * 8);
    for dim in [m.rows() as u64, m.cols() as u64, m.nnz() as u64] {
        out.extend_from_slice(&dim.to_le_bytes());
    }
    for &p in m.indptr() {
        out.extend_from_slice(&(p as u64).to_le_bytes());
    }
    for &c in m.indices() {
        out.extend_from_slice(&c.to_le_bytes());
    }
    for &v in m.values() {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Encoded payload size of `m` in bytes (what [`encode_csr_payload`]
/// appends) — lets storage budgets be computed without encoding.
pub fn csr_payload_bytes(m: &Csr) -> usize {
    24 + m.indptr().len() * 8 + m.nnz() * 8
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let end = pos.checked_add(8).ok_or(CodecError::Truncated)?;
    let slice = bytes.get(*pos..end).ok_or(CodecError::Truncated)?;
    *pos = end;
    Ok(u64::from_le_bytes(slice.try_into().unwrap()))
}

fn read_dim(bytes: &[u8], pos: &mut usize) -> Result<usize, CodecError> {
    let v = read_u64(bytes, pos)?;
    if v > MAX_DIM {
        return Err(CodecError::Malformed("dimension implausible"));
    }
    Ok(v as usize)
}

/// Decodes a CSR payload starting at `bytes[*pos]`, advancing `pos` past
/// it. Validates every structural invariant [`Csr::from_parts`] assumes,
/// so corrupt bytes surface as a typed error, never a panic.
pub fn decode_csr_payload(bytes: &[u8], pos: &mut usize) -> Result<Csr, CodecError> {
    let rows = read_dim(bytes, pos)?;
    let cols = read_dim(bytes, pos)?;
    let nnz = read_dim(bytes, pos)?;

    // The declared structure must fit the buffer BEFORE any allocation is
    // sized from it: a corrupt rows/nnz header must surface as a typed
    // error, not a multi-gigabyte allocation attempt.
    let declared = (rows as u64 + 1)
        .checked_mul(8)
        .and_then(|p| p.checked_add(nnz as u64 * 8))
        .ok_or(CodecError::Truncated)?;
    if (bytes.len() as u64).saturating_sub(*pos as u64) < declared {
        return Err(CodecError::Truncated);
    }

    let mut indptr = workspace::take_scratch_usize(rows + 1);
    for slot in indptr.iter_mut() {
        let v = read_u64(bytes, pos)?;
        if v as usize > nnz {
            return Err(CodecError::Malformed("row pointer exceeds nnz"));
        }
        *slot = v as usize;
    }
    if indptr.first() != Some(&0)
        || indptr.last() != Some(&nnz)
        || indptr.windows(2).any(|w| w[0] > w[1])
    {
        return Err(CodecError::Malformed("row pointers not monotone"));
    }

    let idx_end = pos
        .checked_add(nnz.checked_mul(4).ok_or(CodecError::Truncated)?)
        .ok_or(CodecError::Truncated)?;
    let raw = bytes.get(*pos..idx_end).ok_or(CodecError::Truncated)?;
    *pos = idx_end;
    let mut indices = workspace::take_scratch_u32(nnz);
    for (dst, src) in indices.iter_mut().zip(raw.chunks_exact(4)) {
        *dst = u32::from_le_bytes(src.try_into().unwrap());
    }
    if nnz > 0 && indices.iter().any(|&c| c as usize >= cols) {
        return Err(CodecError::Malformed("column index out of bounds"));
    }

    let val_end = pos.checked_add(nnz * 4).ok_or(CodecError::Truncated)?;
    let raw = bytes.get(*pos..val_end).ok_or(CodecError::Truncated)?;
    *pos = val_end;
    let mut values = workspace::take_scratch(nnz);
    for (dst, src) in values.iter_mut().zip(raw.chunks_exact(4)) {
        *dst = f32::from_bits(u32::from_le_bytes(src.try_into().unwrap()));
    }

    Ok(Csr::from_parts(rows, cols, indptr, indices, values))
}

/// Serializes a snapshot's adjacency matrix (payload only — see the
/// module docs for who owns the framing).
pub fn snapshot_to_bytes(s: &Snapshot) -> Vec<u8> {
    let mut out = Vec::new();
    encode_csr_payload(s.adj(), &mut out);
    out
}

/// Deserializes a snapshot serialized by [`snapshot_to_bytes`]. Rejects
/// trailing bytes and non-square adjacencies.
pub fn snapshot_from_bytes(bytes: &[u8]) -> Result<Snapshot, CodecError> {
    let mut pos = 0;
    let adj = decode_csr_payload(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(CodecError::Malformed("trailing bytes after payload"));
    }
    if adj.rows() != adj.cols() {
        return Err(CodecError::Malformed("snapshot adjacency must be square"));
    }
    Ok(Snapshot::new(adj))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_coo(
            4,
            4,
            &[
                (0, 1, 1.5),
                (0, 3, -0.25),
                (2, 0, f32::MIN_POSITIVE),
                (3, 3, 3e7),
            ],
        )
    }

    #[test]
    fn csr_payload_roundtrips_every_bit() {
        let m = sample();
        let mut bytes = Vec::new();
        encode_csr_payload(&m, &mut bytes);
        assert_eq!(bytes.len(), csr_payload_bytes(&m));
        let mut pos = 0;
        let back = decode_csr_payload(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len());
        assert_eq!(back, m);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(back.values()), bits(m.values()));
    }

    #[test]
    fn snapshot_roundtrips_and_rejects_trailing() {
        let s = Snapshot::new(sample());
        let bytes = snapshot_to_bytes(&s);
        let back = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(back.adj(), s.adj());

        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            snapshot_from_bytes(&padded),
            Err(CodecError::Malformed("trailing bytes after payload"))
        );
    }

    #[test]
    fn truncation_at_every_length_is_typed() {
        let bytes = snapshot_to_bytes(&Snapshot::new(sample()));
        for len in 0..bytes.len() {
            match snapshot_from_bytes(&bytes[..len]) {
                Err(CodecError::Truncated) => {}
                // A prefix that happens to parse as a shorter structure is
                // rejected as trailing/malformed instead — still typed.
                Err(CodecError::Malformed(_)) => {}
                other => panic!("prefix of {len} bytes: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn rectangular_payload_is_not_a_snapshot() {
        let m = Csr::from_coo(2, 3, &[(0, 2, 1.0)]);
        let mut bytes = Vec::new();
        encode_csr_payload(&m, &mut bytes);
        // The payload itself decodes …
        let mut pos = 0;
        assert_eq!(decode_csr_payload(&bytes, &mut pos).unwrap(), m);
        // … but a snapshot requires a square adjacency.
        assert_eq!(
            snapshot_from_bytes(&bytes),
            Err(CodecError::Malformed("snapshot adjacency must be square"))
        );
    }

    #[test]
    fn implausible_header_is_rejected_before_allocating() {
        let mut bytes = snapshot_to_bytes(&Snapshot::new(sample()));
        // Claim 2^31 rows in a ~100-byte payload: must be a typed error,
        // not a giant indptr allocation attempt.
        bytes[0..8].copy_from_slice(&(1u64 << 31).to_le_bytes());
        assert_eq!(snapshot_from_bytes(&bytes), Err(CodecError::Truncated));
    }

    #[test]
    fn corrupt_structure_is_typed() {
        let mut bytes = snapshot_to_bytes(&Snapshot::new(sample()));
        // Make the first row pointer nonzero: not monotone from 0.
        bytes[24..32].copy_from_slice(&9u64.to_le_bytes());
        assert!(matches!(
            snapshot_from_bytes(&bytes),
            Err(CodecError::Malformed(_))
        ));
    }
}
