//! Graph-difference based snapshot transfer (paper §3.2).
//!
//! Instead of shipping a snapshot `A_{i+1}` to the GPU as a full COO payload
//! (indices + values), only three things are transferred:
//!
//! * the indices of `A_i^ext` — edges of `A_i` absent from `A_{i+1}`,
//! * the indices of `A_{i+1}^ext` — edges of `A_{i+1}` absent from `A_i`,
//! * all values of `A_{i+1}`.
//!
//! The receiver removes `A_i^ext` from the resident `A_i`, inserts
//! `A_{i+1}^ext`, and attaches the fresh values — reconstructing `A_{i+1}`
//! exactly. With int64 COO indices (16 B/edge) and f32 values (4 B/edge) the
//! per-edge naive cost is 20 B, so the achievable speedup is bounded by 5x;
//! the paper observes up to 4.1x on smoothed inputs.

use dgnn_tensor::Csr;

/// Bytes per COO index pair: two int64 coordinates, as PyTorch sparse uses.
pub const COO_INDEX_BYTES: u64 = 16;
/// Bytes per f32 value.
pub const VALUE_BYTES: u64 = 4;

/// The difference between two consecutive snapshots.
#[derive(Clone, Debug)]
pub struct GraphDiff {
    /// Edges present in `prev` but not in `next` (indices to drop).
    pub ext_prev: Vec<(u32, u32)>,
    /// Edges present in `next` but not in `prev` (indices to insert).
    pub ext_next: Vec<(u32, u32)>,
    /// Every value of `next`, in the CSR order of `next`.
    pub next_values: Vec<f32>,
}

impl GraphDiff {
    /// Number of structural edits (dropped + inserted edges).
    pub fn edits(&self) -> usize {
        self.ext_prev.len() + self.ext_next.len()
    }

    /// Bytes transferred by the graph-difference method.
    pub fn transfer_bytes(&self) -> u64 {
        self.edits() as u64 * COO_INDEX_BYTES + self.next_values.len() as u64 * VALUE_BYTES
    }
}

/// Bytes transferred by the naive method for a snapshot: full COO indices
/// plus values.
pub fn naive_transfer_bytes(snapshot: &Csr) -> u64 {
    snapshot.nnz() as u64 * (COO_INDEX_BYTES + VALUE_BYTES)
}

/// Computes the structural difference between two same-shape snapshots.
///
/// Both matrices keep per-row column indices sorted, so the difference is a
/// linear merge over each row pair.
pub fn diff(prev: &Csr, next: &Csr) -> GraphDiff {
    assert_eq!(prev.rows(), next.rows(), "snapshot shape mismatch");
    assert_eq!(prev.cols(), next.cols(), "snapshot shape mismatch");
    let mut ext_prev = Vec::new();
    let mut ext_next = Vec::new();
    for r in 0..prev.rows() {
        let mut pa = prev.row_iter(r).peekable();
        let mut pb = next.row_iter(r).peekable();
        loop {
            match (pa.peek(), pb.peek()) {
                (Some(&(ca, _)), Some(&(cb, _))) => {
                    if ca == cb {
                        pa.next();
                        pb.next();
                    } else if ca < cb {
                        ext_prev.push((r as u32, ca));
                        pa.next();
                    } else {
                        ext_next.push((r as u32, cb));
                        pb.next();
                    }
                }
                (Some(&(ca, _)), None) => {
                    ext_prev.push((r as u32, ca));
                    pa.next();
                }
                (None, Some(&(cb, _))) => {
                    ext_next.push((r as u32, cb));
                    pb.next();
                }
                (None, None) => break,
            }
        }
    }
    GraphDiff {
        ext_prev,
        ext_next,
        next_values: next.values().to_vec(),
    }
}

/// Reconstructs `next` from the resident `prev` and a [`GraphDiff`].
///
/// The reconstruction is exact: structure = `(prev \ ext_prev) ∪ ext_next`
/// in sorted CSR order, values = `next_values`.
pub fn reconstruct(prev: &Csr, d: &GraphDiff) -> Csr {
    let rows = prev.rows();
    let cols = prev.cols();
    // Group the edit lists by row. Both are produced in row-major sorted
    // order by `diff`, so a cursor walk suffices; each row is a single
    // three-way merge (kept ∪ inserted, drops skipped) written straight
    // into the output arrays — no per-row scratch allocations, which is
    // what keeps the streaming window advance linear in practice.
    let mut drop_cursor = 0usize;
    let mut ins_cursor = 0usize;
    let mut indptr = Vec::with_capacity(rows + 1);
    let mut indices: Vec<u32> = Vec::with_capacity(d.next_values.len());
    indptr.push(0);
    let prev_indices = prev.indices();
    let prev_indptr = prev.indptr();
    for r in 0..rows {
        let r32 = r as u32;
        let row = &prev_indices[prev_indptr[r]..prev_indptr[r + 1]];
        let ins_start = ins_cursor;
        while ins_cursor < d.ext_next.len() && d.ext_next[ins_cursor].0 == r32 {
            ins_cursor += 1;
        }
        let inserted = &d.ext_next[ins_start..ins_cursor];
        let mut i = 0;
        let mut j = 0;
        loop {
            // Next surviving column of prev's row (drops skipped).
            let kept = loop {
                if i >= row.len() {
                    break None;
                }
                let c = row[i];
                if drop_cursor < d.ext_prev.len() && d.ext_prev[drop_cursor] == (r32, c) {
                    drop_cursor += 1;
                    i += 1;
                } else {
                    break Some(c);
                }
            };
            match (kept, inserted.get(j)) {
                (Some(c), Some(&(_, ci))) => {
                    if c < ci {
                        indices.push(c);
                        i += 1;
                    } else {
                        indices.push(ci);
                        j += 1;
                    }
                }
                (Some(c), None) => {
                    indices.push(c);
                    i += 1;
                }
                (None, Some(&(_, ci))) => {
                    indices.push(ci);
                    j += 1;
                }
                (None, None) => break,
            }
        }
        indptr.push(indices.len());
    }
    assert_eq!(drop_cursor, d.ext_prev.len(), "unapplied drops");
    assert_eq!(ins_cursor, d.ext_next.len(), "unapplied inserts");
    assert_eq!(indices.len(), d.next_values.len(), "value count mismatch");
    Csr::from_parts(rows, cols, indptr, indices, d.next_values.clone())
}

/// Transfer plan for a run of consecutive snapshots (one checkpoint-block
/// chunk owned by one rank): the first snapshot ships naively, the rest ship
/// as differences (paper §6.2's `(bsize_p − 1)/bsize_p` benefit fraction).
#[derive(Clone, Debug, Default)]
pub struct ChunkTransfer {
    /// Bytes under the naive method.
    pub naive_bytes: u64,
    /// Bytes under the graph-difference method.
    pub gd_bytes: u64,
    /// Number of snapshots in the chunk.
    pub snapshots: usize,
}

impl ChunkTransfer {
    /// Transfer-byte ratio naive/GD (the transfer-time speedup when the link
    /// bandwidth dominates).
    pub fn speedup(&self) -> f64 {
        if self.gd_bytes == 0 {
            1.0
        } else {
            self.naive_bytes as f64 / self.gd_bytes as f64
        }
    }
}

/// Accounts the transfer bytes for a run of snapshots under both methods.
pub fn chunk_transfer(snapshots: &[&Csr]) -> ChunkTransfer {
    let mut out = ChunkTransfer {
        snapshots: snapshots.len(),
        ..Default::default()
    };
    for (i, s) in snapshots.iter().enumerate() {
        out.naive_bytes += naive_transfer_bytes(s);
        if i == 0 {
            out.gd_bytes += naive_transfer_bytes(s);
        } else {
            out.gd_bytes += diff(snapshots[i - 1], s).transfer_bytes();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::churn;
    use crate::smoothing::m_transform_adj;

    #[test]
    fn diff_of_identical_is_values_only() {
        let a = Csr::from_edges(4, &[(0, 1), (1, 2), (3, 0)]);
        let d = diff(&a, &a);
        assert!(d.ext_prev.is_empty());
        assert!(d.ext_next.is_empty());
        assert_eq!(d.transfer_bytes(), 3 * VALUE_BYTES);
        assert_eq!(reconstruct(&a, &d), a);
    }

    #[test]
    fn diff_of_disjoint_is_full_rewrite() {
        let a = Csr::from_edges(3, &[(0, 1)]);
        let b = Csr::from_edges(3, &[(1, 2), (2, 0)]);
        let d = diff(&a, &b);
        assert_eq!(d.ext_prev, vec![(0, 1)]);
        assert_eq!(d.ext_next, vec![(1, 2), (2, 0)]);
        assert_eq!(reconstruct(&a, &d), b);
    }

    #[test]
    fn reconstruct_preserves_weighted_values() {
        let a = Csr::from_coo(3, 3, &[(0, 1, 1.0), (1, 2, 1.0)]);
        let b = Csr::from_coo(3, 3, &[(0, 1, 0.25), (2, 2, 0.75)]);
        let d = diff(&a, &b);
        assert_eq!(reconstruct(&a, &d), b);
    }

    #[test]
    fn roundtrip_on_churn_sequence() {
        let g = churn(120, 8, 400, 0.3, 13);
        for t in 0..7 {
            let d = diff(g.snapshot(t).adj(), g.snapshot(t + 1).adj());
            let rec = reconstruct(g.snapshot(t).adj(), &d);
            assert_eq!(&rec, g.snapshot(t + 1).adj(), "t = {t}");
        }
    }

    #[test]
    fn roundtrip_on_smoothed_sequence() {
        let g = m_transform_adj(&churn(80, 6, 250, 0.4, 3), 3);
        for t in 0..5 {
            let d = diff(g.snapshot(t).adj(), g.snapshot(t + 1).adj());
            let rec = reconstruct(g.snapshot(t).adj(), &d);
            assert_eq!(&rec, g.snapshot(t + 1).adj(), "t = {t}");
        }
    }

    #[test]
    fn gd_beats_naive_on_overlapping_sequences() {
        let g = churn(200, 10, 800, 0.1, 21);
        let slices: Vec<&Csr> = (0..10).map(|t| g.snapshot(t).adj()).collect();
        let acc = chunk_transfer(&slices);
        assert!(acc.speedup() > 2.0, "speedup {}", acc.speedup());
        assert!(acc.speedup() < 5.0, "speedup bounded by 20/4");
    }

    #[test]
    fn smoothing_improves_gd_speedup() {
        let raw = churn(150, 10, 500, 0.4, 2);
        let smoothed = m_transform_adj(&raw, 5);
        let ratio = |g: &crate::snapshot::DynamicGraph| {
            let slices: Vec<&Csr> = (0..g.t()).map(|t| g.snapshot(t).adj()).collect();
            chunk_transfer(&slices).speedup()
        };
        assert!(
            ratio(&smoothed) > ratio(&raw),
            "smoothed {} should beat raw {}",
            ratio(&smoothed),
            ratio(&raw)
        );
    }

    #[test]
    fn first_snapshot_dominates_small_chunks() {
        // With a single snapshot GD degenerates to the naive transfer.
        let g = churn(60, 1, 150, 0.2, 5);
        let slices: Vec<&Csr> = vec![g.snapshot(0).adj()];
        let acc = chunk_transfer(&slices);
        assert_eq!(acc.naive_bytes, acc.gd_bytes);
        assert!((acc.speedup() - 1.0).abs() < 1e-9);
    }
}
