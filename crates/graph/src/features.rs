//! Input features. The paper uses the in- and out-degrees of each vertex as
//! the input features for every model-dataset configuration (§6.1).

use dgnn_tensor::{Dense, Tensor3};

use crate::snapshot::DynamicGraph;

/// Feature dimension produced by the degree featurizers.
pub const DEGREE_FEATURE_DIM: usize = 2;

/// Per-timestep `N x 2` features: `[log1p(out_deg), log1p(in_deg)]`.
///
/// The paper feeds raw degrees; a `log1p` squash is applied here because the
/// from-scratch f32 training stack has no batch normalisation to absorb
/// heavy-tailed magnitudes. [`raw_degree_features`] provides the unsquashed
/// variant.
pub fn degree_features(g: &DynamicGraph) -> Tensor3 {
    build(g, |d| (1.0 + d as f32).ln())
}

/// Per-timestep `N x 2` features with raw degree counts.
pub fn raw_degree_features(g: &DynamicGraph) -> Tensor3 {
    build(g, |d| d as f32)
}

fn build(g: &DynamicGraph, f: impl Fn(usize) -> f32) -> Tensor3 {
    let n = g.n();
    let frames = g
        .snapshots()
        .iter()
        .map(|s| {
            let out_deg = s.adj().row_degrees();
            let in_deg = s.adj().col_degrees();
            Dense::from_fn(n, DEGREE_FEATURE_DIM, |r, c| {
                if c == 0 {
                    f(out_deg[r])
                } else {
                    f(in_deg[r])
                }
            })
        })
        .collect();
    Tensor3::new(frames)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;

    #[test]
    fn degrees_counted_per_direction() {
        let g = DynamicGraph::new(3, vec![Snapshot::from_edges(3, &[(0, 1), (0, 2), (1, 2)])]);
        let x = raw_degree_features(&g);
        let f = x.frame(0);
        assert_eq!(f.shape(), (3, 2));
        assert_eq!(f.get(0, 0), 2.0); // out-degree of 0
        assert_eq!(f.get(0, 1), 0.0); // in-degree of 0
        assert_eq!(f.get(2, 0), 0.0);
        assert_eq!(f.get(2, 1), 2.0);
    }

    #[test]
    fn log_features_are_squashed() {
        let g = DynamicGraph::new(3, vec![Snapshot::from_edges(3, &[(0, 1), (0, 2)])]);
        let x = degree_features(&g);
        assert!((x.frame(0).get(0, 0) - (3.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn one_frame_per_timestep() {
        let g = DynamicGraph::new(
            2,
            vec![
                Snapshot::from_edges(2, &[(0, 1)]),
                Snapshot::from_edges(2, &[(1, 0)]),
            ],
        );
        assert_eq!(degree_features(&g).t(), 2);
    }
}
