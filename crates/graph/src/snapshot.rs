//! Discrete-time dynamic graphs (DTDG): a sequence of snapshots over a fixed
//! vertex set (paper §2.1).

use std::rc::Rc;

use dgnn_tensor::{normalized_laplacian, Csr, SparseTensor3};

/// One snapshot `G_t = (V, E_t)` stored as a (possibly weighted) adjacency
/// matrix in CSR form.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot {
    adj: Csr,
}

impl Snapshot {
    /// Wraps an adjacency matrix.
    pub fn new(adj: Csr) -> Self {
        assert_eq!(adj.rows(), adj.cols(), "snapshot adjacency must be square");
        Self { adj }
    }

    /// Builds an unweighted snapshot over `n` vertices from directed edges.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        Self::new(Csr::from_edges(n, edges))
    }

    /// The adjacency matrix.
    pub fn adj(&self) -> &Csr {
        &self.adj
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.adj.rows()
    }

    /// Number of stored (directed) edges.
    pub fn nnz(&self) -> usize {
        self.adj.nnz()
    }

    /// The edge structure as `(u, v)` pairs in CSR order.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        self.adj
            .to_coo()
            .into_iter()
            .map(|(u, v, _)| (u, v))
            .collect()
    }

    /// The symmetric-normalized Laplacian `Ã` of paper Eq. (1).
    pub fn laplacian(&self) -> Csr {
        normalized_laplacian(&self.adj, true)
    }

    /// Renames vertices: edge `(u, v)` becomes `(perm[u], perm[v])`,
    /// preserving values. Used to make hypergraph parts contiguous
    /// (paper §6.4).
    pub fn relabel(&self, perm: &[u32]) -> Snapshot {
        assert_eq!(perm.len(), self.n(), "permutation length mismatch");
        let triplets: Vec<(u32, u32, f32)> = self
            .adj
            .to_coo()
            .into_iter()
            .map(|(u, v, w)| (perm[u as usize], perm[v as usize], w))
            .collect();
        Snapshot::new(Csr::from_coo(self.n(), self.n(), &triplets))
    }
}

/// A dynamic graph `G = G_1, ..., G_T` over a shared vertex set.
#[derive(Clone, Debug)]
pub struct DynamicGraph {
    n: usize,
    snapshots: Vec<Snapshot>,
}

impl DynamicGraph {
    /// Wraps a snapshot sequence; all snapshots must share the vertex count.
    pub fn new(n: usize, snapshots: Vec<Snapshot>) -> Self {
        assert!(
            snapshots.iter().all(|s| s.n() == n),
            "snapshots must share the vertex set"
        );
        Self { n, snapshots }
    }

    /// Number of vertices `N`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of timesteps `T`.
    pub fn t(&self) -> usize {
        self.snapshots.len()
    }

    /// Snapshot at timestep `t`.
    pub fn snapshot(&self, t: usize) -> &Snapshot {
        &self.snapshots[t]
    }

    /// All snapshots.
    pub fn snapshots(&self) -> &[Snapshot] {
        &self.snapshots
    }

    /// Total stored edges across all snapshots (Table 1's `nnz`).
    pub fn total_nnz(&self) -> u64 {
        self.snapshots.iter().map(|s| s.nnz() as u64).sum()
    }

    /// Per-snapshot edge counts.
    pub fn nnz_series(&self) -> Vec<u64> {
        self.snapshots.iter().map(|s| s.nnz() as u64).collect()
    }

    /// The adjacency tensor `A` as `T` sparse slices.
    pub fn to_sparse_tensor(&self) -> SparseTensor3 {
        SparseTensor3::new(self.snapshots.iter().map(|s| s.adj().clone()).collect())
    }

    /// Builds a dynamic graph from an adjacency tensor.
    pub fn from_sparse_tensor(tensor: SparseTensor3) -> Self {
        let slices = tensor.into_slices();
        let n = slices.first().map(Csr::rows).unwrap_or(0);
        Self::new(n, slices.into_iter().map(Snapshot::new).collect())
    }

    /// Normalized Laplacians of every snapshot, shared behind `Rc` so the
    /// autograd tape can hold them without copies.
    pub fn laplacians(&self) -> Vec<Rc<Csr>> {
        self.snapshots
            .iter()
            .map(|s| Rc::new(s.laplacian()))
            .collect()
    }

    /// Union of all snapshots' structure with edge multiplicities as values
    /// (the hypergraph-partitioning input).
    pub fn union_graph(&self) -> Csr {
        let terms: Vec<(f32, &Csr)> = self.snapshots.iter().map(|s| (1.0, s.adj())).collect();
        if terms.is_empty() {
            Csr::empty(self.n, self.n)
        } else {
            Csr::add_weighted(&terms)
        }
    }

    /// Restricts the timeline to `[start, start + len)`.
    pub fn time_slice(&self, start: usize, len: usize) -> DynamicGraph {
        assert!(start + len <= self.t(), "time_slice out of range");
        DynamicGraph {
            n: self.n,
            snapshots: self.snapshots[start..start + len].to_vec(),
        }
    }

    /// Renames vertices in every snapshot (see [`Snapshot::relabel`]).
    pub fn relabel(&self, perm: &[u32]) -> DynamicGraph {
        DynamicGraph {
            n: self.n,
            snapshots: self.snapshots.iter().map(|s| s.relabel(perm)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> DynamicGraph {
        DynamicGraph::new(
            4,
            vec![
                Snapshot::from_edges(4, &[(0, 1), (1, 2)]),
                Snapshot::from_edges(4, &[(0, 1), (2, 3)]),
                Snapshot::from_edges(4, &[(3, 0)]),
            ],
        )
    }

    #[test]
    fn basic_accessors() {
        let g = toy();
        assert_eq!(g.n(), 4);
        assert_eq!(g.t(), 3);
        assert_eq!(g.total_nnz(), 5);
        assert_eq!(g.nnz_series(), vec![2, 2, 1]);
    }

    #[test]
    fn union_counts_multiplicity() {
        let g = toy();
        let u = g.union_graph();
        assert_eq!(u.nnz(), 4); // (0,1) appears twice but is one entry
        let coo = u.to_coo();
        assert!(coo.contains(&(0, 1, 2.0)));
        assert!(coo.contains(&(1, 2, 1.0)));
    }

    #[test]
    fn tensor_roundtrip() {
        let g = toy();
        let back = DynamicGraph::from_sparse_tensor(g.to_sparse_tensor());
        assert_eq!(back.t(), g.t());
        for t in 0..g.t() {
            assert_eq!(back.snapshot(t).adj(), g.snapshot(t).adj());
        }
    }

    #[test]
    fn time_slice_restricts() {
        let g = toy();
        let s = g.time_slice(1, 2);
        assert_eq!(s.t(), 2);
        assert_eq!(s.snapshot(0).adj(), g.snapshot(1).adj());
    }

    #[test]
    fn laplacian_has_self_loops() {
        let g = toy();
        let lap = g.snapshot(2).laplacian();
        // Every vertex gets a self-loop entry from the +I term.
        for u in 0..4 {
            assert!(lap.row_iter(u).any(|(c, _)| c as usize == u));
        }
    }
}
