//! Link-prediction task construction (paper §6.4).
//!
//! For each training timestep, a `theta` fraction of the snapshot's edges is
//! sampled with label 1, plus an equal number of uniform random vertex pairs
//! with label 0. The test set is built the same way from the held-out
//! snapshot `G_{T+1}` and is classified using the embeddings of timestep `T`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::snapshot::{DynamicGraph, Snapshot};

/// A labelled set of vertex pairs for one timestep.
#[derive(Clone, Debug, Default)]
pub struct EdgeSamples {
    /// Source endpoints.
    pub src: Vec<u32>,
    /// Destination endpoints.
    pub dst: Vec<u32>,
    /// 1 for a true edge, 0 for a negative pair.
    pub labels: Vec<u32>,
}

impl EdgeSamples {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when no samples exist.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Renames endpoints under a vertex permutation (`perm[old] = new`),
    /// keeping labels — used when the vertex-partitioned trainer renames
    /// vertices for contiguity.
    pub fn relabel(&self, perm: &[u32]) -> EdgeSamples {
        EdgeSamples {
            src: self.src.iter().map(|&u| perm[u as usize]).collect(),
            dst: self.dst.iter().map(|&v| perm[v as usize]).collect(),
            labels: self.labels.clone(),
        }
    }

    /// The sub-slice of samples `[range)` (used to split loss computation
    /// across ranks).
    pub fn slice(&self, range: std::ops::Range<usize>) -> EdgeSamples {
        EdgeSamples {
            src: self.src[range.clone()].to_vec(),
            dst: self.dst[range.clone()].to_vec(),
            labels: self.labels[range].to_vec(),
        }
    }
}

/// Samples `theta * |E_t|` positive edges and the same number of random
/// negative pairs from one snapshot.
pub fn sample_edges(snapshot: &Snapshot, theta: f64, rng: &mut StdRng) -> EdgeSamples {
    let edges = snapshot.edges();
    let n = snapshot.n() as u32;
    let count = ((edges.len() as f64 * theta).round() as usize)
        .max(1)
        .min(edges.len());
    let mut out = EdgeSamples::default();
    // Positive samples: a uniform subset of the edge list.
    for _ in 0..count {
        let (u, v) = edges[rng.gen_range(0..edges.len())];
        out.src.push(u);
        out.dst.push(v);
        out.labels.push(1);
    }
    // Negative samples: uniform random pairs (collisions with true edges are
    // rare and tolerated, matching the paper's construction).
    for _ in 0..count {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        out.src.push(u);
        out.dst.push(v);
        out.labels.push(0);
    }
    out
}

/// Training and test sample sets for link prediction.
#[derive(Clone, Debug)]
pub struct LinkPredData {
    /// One sample set per training timestep `0..T`.
    pub train: Vec<EdgeSamples>,
    /// Samples from the held-out snapshot `G_{T+1}`.
    pub test: EdgeSamples,
}

/// Builds link-prediction data: training samples from every snapshot of
/// `train_graph` and test samples from `next` (the snapshot at `T+1`).
pub fn build_linkpred(
    train_graph: &DynamicGraph,
    next: &Snapshot,
    theta: f64,
    seed: u64,
) -> LinkPredData {
    let mut rng = StdRng::seed_from_u64(seed);
    let train = train_graph
        .snapshots()
        .iter()
        .map(|s| sample_edges(s, theta, &mut rng))
        .collect();
    let test = sample_edges(next, theta, &mut rng);
    LinkPredData { train, test }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::churn;

    #[test]
    fn balanced_labels() {
        let g = churn(100, 3, 300, 0.2, 1);
        let mut rng = StdRng::seed_from_u64(9);
        let s = sample_edges(g.snapshot(0), 0.1, &mut rng);
        let pos = s.labels.iter().filter(|&&l| l == 1).count();
        let neg = s.labels.iter().filter(|&&l| l == 0).count();
        assert_eq!(pos, neg);
        assert_eq!(pos, 30);
    }

    #[test]
    fn positives_are_real_edges() {
        let g = churn(80, 1, 200, 0.0, 2);
        let edge_set: std::collections::HashSet<(u32, u32)> =
            g.snapshot(0).edges().into_iter().collect();
        let mut rng = StdRng::seed_from_u64(3);
        let s = sample_edges(g.snapshot(0), 0.2, &mut rng);
        for i in 0..s.len() {
            if s.labels[i] == 1 {
                assert!(edge_set.contains(&(s.src[i], s.dst[i])));
            }
        }
    }

    #[test]
    fn build_covers_every_timestep() {
        let g = churn(60, 5, 150, 0.3, 4);
        let next = g.snapshot(4).clone();
        let data = build_linkpred(&g.time_slice(0, 4), &next, 0.1, 7);
        assert_eq!(data.train.len(), 4);
        assert!(!data.test.is_empty());
    }

    #[test]
    fn deterministic_under_seed() {
        let g = churn(60, 2, 150, 0.3, 4);
        let next = g.snapshot(1).clone();
        let a = build_linkpred(&g, &next, 0.1, 99);
        let b = build_linkpred(&g, &next, 0.1, 99);
        assert_eq!(a.test.src, b.test.src);
        assert_eq!(a.train[0].dst, b.train[0].dst);
    }
}
