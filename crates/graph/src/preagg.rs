//! Incremental first-layer pre-aggregation across consecutive snapshots
//! (ReInc-style aggregation reuse).
//!
//! Consecutive DTDG snapshots share almost all of their edges, so the
//! §5.5 pre-aggregation `Ã_{t+1}·X_{t+1}` differs from `Ã_t·X_t` only on
//! the rows the snapshot transition actually touches. This module builds
//! the whole pre-aggregation timeline by carrying each block forward:
//! snapshot `t+1`'s block starts as a copy of `t`'s and only the *dirty*
//! rows are recomputed in place with [`Csr::spmm_rows_into`].
//!
//! The result is **bit-identical** to building every block from scratch:
//! untouched rows are byte-copied, and `spmm_rows_into` runs the same
//! serial per-row gather as the full [`Csr::spmm`] (pinned by the tensor
//! crate's own equivalence tests), so no row ever sees a different
//! accumulation order.
//!
//! Dirty rows come from one of two places:
//!
//! * **A touched-vertex journal** (`DeltaBatcher::touched_vertices`, or
//!   the endpoints of a [`crate::diff::GraphDiff`]): the dirty set is the
//!   expansion `T ∪ N(T)` under the next operator. This is sound only
//!   when the journal covers every vertex whose incident edges (structure
//!   *or* weight) changed between the underlying snapshots, the features
//!   are per-vertex functions of the journaled changes (degree features
//!   are), and the operator is **structurally symmetric** — the Eq. (1)
//!   normalized Laplacian is, being built from `0.5·(A+Aᵀ)+I`.
//! * **An exact bitwise scan** ([`dirty_rows_scan`]) when no journal
//!   exists — the `dgnn_graph::diff` linear row-merge idiom extended with
//!   value-bit and feature-row comparison. It makes no symmetry or
//!   provenance assumptions and therefore also covers smoothed timelines
//!   (edge-life, M-transform), where a raw-transition journal does not
//!   bound the smoothed row changes.

use dgnn_tensor::{Csr, Dense};

use crate::diff::GraphDiff;

/// Dirty fraction (percent of rows) above which a timestep degrades to a
/// from-scratch [`Csr::spmm`]: past this point the copy + scatter overhead
/// outweighs the rows saved, and the full kernel parallelizes better. The
/// output is bit-identical on either side of the threshold.
pub const DEGRADE_PERCENT: usize = 75;

/// How a pre-aggregation timeline was built — returned by
/// [`incremental_preagg`] for telemetry and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Timesteps in the timeline.
    pub timesteps: usize,
    /// Timesteps built from scratch (the first one, plus any that crossed
    /// [`DEGRADE_PERCENT`]).
    pub full_builds: usize,
    /// Timesteps built incrementally from their predecessor.
    pub incremental_builds: usize,
    /// Rows recomputed via `spmm_rows` across all incremental builds.
    pub rows_recomputed: u64,
    /// Rows carried over by copy across all incremental builds.
    pub rows_reused: u64,
}

impl ReuseStats {
    /// Fraction of incrementally-built rows that had to be recomputed
    /// (0 when nothing was built incrementally).
    pub fn recomputed_fraction(&self) -> f64 {
        let total = self.rows_recomputed + self.rows_reused;
        if total == 0 {
            0.0
        } else {
            self.rows_recomputed as f64 / total as f64
        }
    }
}

fn lap_row_bits_equal(prev: &Csr, next: &Csr, r: usize) -> bool {
    let (pp, pn) = (prev.indptr(), next.indptr());
    let (ia, ib) = (
        &prev.indices()[pp[r]..pp[r + 1]],
        &next.indices()[pn[r]..pn[r + 1]],
    );
    if ia != ib {
        return false;
    }
    let (va, vb) = (
        &prev.values()[pp[r]..pp[r + 1]],
        &next.values()[pn[r]..pn[r + 1]],
    );
    // Bit compare, not `==`: -0.0 vs 0.0 would compare equal but produce
    // different output bits downstream.
    va.iter().zip(vb).all(|(a, b)| a.to_bits() == b.to_bits())
}

/// The rows where `next_lap·next_x` can differ from `prev_lap·prev_x`,
/// found by an exact bitwise scan: row `r` is dirty iff its operator row
/// changed (indices or value bits) or any feature row it gathers from
/// changed. `O(nnz + n·F)`, no assumptions about where the matrices came
/// from. Returns sorted, deduplicated row indices.
pub fn dirty_rows_scan(prev_lap: &Csr, next_lap: &Csr, prev_x: &Dense, next_x: &Dense) -> Vec<u32> {
    let n = next_lap.rows();
    assert_eq!(prev_lap.rows(), n, "operator shape mismatch");
    assert_eq!(prev_lap.cols(), next_lap.cols(), "operator shape mismatch");
    assert_eq!(prev_x.rows(), next_x.rows(), "feature shape mismatch");
    assert_eq!(prev_x.cols(), next_x.cols(), "feature shape mismatch");
    assert_eq!(next_lap.cols(), next_x.rows(), "operator/feature mismatch");
    let x_dirty: Vec<bool> = (0..next_x.rows())
        .map(|r| {
            prev_x
                .row(r)
                .iter()
                .zip(next_x.row(r))
                .any(|(a, b)| a.to_bits() != b.to_bits())
        })
        .collect();
    (0..n)
        .filter(|&r| {
            !lap_row_bits_equal(prev_lap, next_lap, r)
                || next_lap.row_iter(r).any(|(c, _)| x_dirty[c as usize])
        })
        .map(|r| r as u32)
        .collect()
}

/// Expands a touched-vertex journal into the dirty pre-aggregation rows
/// `T ∪ N(T)` under `next_lap`. See the module docs for the soundness
/// contract (journal completeness, per-vertex features, structurally
/// symmetric operator). Returns sorted, deduplicated row indices.
///
/// # Panics
/// Panics when a journal vertex is out of range for `next_lap`.
pub fn expand_journal(touched: &[u32], next_lap: &Csr) -> Vec<u32> {
    let mut mask = vec![0u64; next_lap.rows().div_ceil(64)];
    expand_journal_into(touched, next_lap, &mut mask)
}

/// [`expand_journal`] against a caller-owned scratch bitset (all-zero on
/// entry, restored to all-zero on return), so a timeline build pays one
/// mask allocation instead of one per transition. Marks `T ∪ N(T)` with
/// branch-free bit-sets (indices only — the neighbor *values* are never
/// loaded; the bitset is 64x smaller than the vertex set, so the random
/// marks stay cache-resident), then collects the dirty rows with one
/// word-skipping ascending sweep that also re-clears the mask — the
/// result is sorted without a sort.
fn expand_journal_into(touched: &[u32], next_lap: &Csr, mask: &mut [u64]) -> Vec<u32> {
    let n = next_lap.rows();
    assert_eq!(mask.len(), n.div_ceil(64), "mask/operator shape mismatch");
    let (indptr, indices) = (next_lap.indptr(), next_lap.indices());
    for &v in touched {
        let vu = v as usize;
        assert!(vu < n, "journal vertex {vu} out of range (n = {n})");
        mask[vu >> 6] |= 1u64 << (vu & 63);
        for &c in &indices[indptr[vu]..indptr[vu + 1]] {
            mask[c as usize >> 6] |= 1u64 << (c & 63);
        }
    }
    let mut out: Vec<u32> = Vec::with_capacity(touched.len() * 2);
    for (wi, word) in mask.iter_mut().enumerate() {
        let mut w = *word;
        if w != 0 {
            *word = 0;
            while w != 0 {
                out.push((wi * 64) as u32 + w.trailing_zeros());
                w &= w - 1;
            }
        }
    }
    out
}

/// The touched-vertex journal implied by a structural [`GraphDiff`]: the
/// endpoints of every inserted or dropped edge, sorted and deduplicated.
///
/// Valid as an [`incremental_preagg`] journal only when value changes are
/// confined to structurally edited edges (e.g. unweighted snapshots) — a
/// `GraphDiff` ships *all* next values and does not say which of them
/// changed. Event-sourced journals (`DeltaBatcher::touched_vertices`)
/// cover weight-only updates too and carry no such caveat.
pub fn journal_from_diff(d: &GraphDiff) -> Vec<u32> {
    let mut out: Vec<u32> = d
        .ext_prev
        .iter()
        .chain(&d.ext_next)
        .flat_map(|&(u, v)| [u, v])
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Builds the pre-aggregation timeline `out[t] = laps[t]·xs[t]`
/// incrementally: each block starts as a copy of its predecessor and only
/// the dirty rows are recomputed. `journal[t-1]`, when provided, is the
/// touched-vertex set of the transition into timestep `t` (see the module
/// docs for when a journal is sound); without a journal the exact
/// [`dirty_rows_scan`] is used. Bit-identical to `laps[t].spmm(&xs[t])`
/// at every timestep, thread count, and workspace setting.
///
/// # Panics
/// Panics on length mismatches between `laps`, `xs`, and `journal`.
pub fn incremental_preagg(
    laps: &[Csr],
    xs: &[Dense],
    journal: Option<&[Vec<u32>]>,
) -> (Vec<Dense>, ReuseStats) {
    assert_eq!(laps.len(), xs.len(), "operator/feature timeline mismatch");
    if let Some(j) = journal {
        assert_eq!(
            j.len() + 1,
            laps.len(),
            "journal must cover every transition: {} entries for {} timesteps",
            j.len(),
            laps.len()
        );
    }
    let mut stats = ReuseStats {
        timesteps: laps.len(),
        ..ReuseStats::default()
    };
    let mut out: Vec<Dense> = Vec::with_capacity(laps.len());
    let mut mask: Vec<u64> = Vec::new();
    for t in 0..laps.len() {
        if t == 0 {
            out.push(laps[0].spmm(&xs[0]));
            stats.full_builds += 1;
            continue;
        }
        let n = laps[t].rows();
        let dirty = match journal {
            Some(j) => {
                let words = n.div_ceil(64);
                mask.resize(words, 0);
                expand_journal_into(&j[t - 1], &laps[t], &mut mask[..words])
            }
            None => dirty_rows_scan(&laps[t - 1], &laps[t], &xs[t - 1], &xs[t]),
        };
        if dirty.len() * 100 > n * DEGRADE_PERCENT {
            out.push(laps[t].spmm(&xs[t]));
            stats.full_builds += 1;
            continue;
        }
        let mut block = out[t - 1].clone();
        laps[t].spmm_rows_into(&xs[t], &dirty, &mut block);
        stats.incremental_builds += 1;
        stats.rows_recomputed += dirty.len() as u64;
        stats.rows_reused += (n - dirty.len()) as u64;
        out.push(block);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::diff;
    use crate::features::degree_features;
    use crate::gen::churn;
    use crate::snapshot::Snapshot;

    fn bits(d: &Dense) -> Vec<u32> {
        d.data().iter().map(|v| v.to_bits()).collect()
    }

    fn task_like(n: usize, t: usize, m: usize, rho: f64, seed: u64) -> (Vec<Csr>, Vec<Dense>) {
        let g = churn(n, t, m, rho, seed);
        let laps: Vec<Csr> = g.snapshots().iter().map(Snapshot::laplacian).collect();
        let xs: Vec<Dense> = degree_features(&g).into_frames();
        (laps, xs)
    }

    fn scratch(laps: &[Csr], xs: &[Dense]) -> Vec<Dense> {
        laps.iter().zip(xs).map(|(a, x)| a.spmm(x)).collect()
    }

    #[test]
    fn scan_fallback_is_bit_identical_to_scratch() {
        for rho in [0.02, 0.2, 0.6] {
            let (laps, xs) = task_like(80, 6, 300, rho, 5);
            let (inc, stats) = incremental_preagg(&laps, &xs, None);
            let full = scratch(&laps, &xs);
            for (t, (a, b)) in inc.iter().zip(&full).enumerate() {
                assert_eq!(bits(a), bits(b), "rho = {rho}, t = {t}");
            }
            assert_eq!(stats.timesteps, 6);
            assert_eq!(stats.full_builds + stats.incremental_builds, 6);
        }
    }

    #[test]
    fn diff_journal_is_bit_identical_to_scratch() {
        // churn snapshots are unweighted, so the structural-diff journal
        // covers every change.
        let g = churn(400, 5, 600, 0.02, 9);
        let laps: Vec<Csr> = g.snapshots().iter().map(Snapshot::laplacian).collect();
        let xs: Vec<Dense> = degree_features(&g).into_frames();
        let journal: Vec<Vec<u32>> = (1..g.t())
            .map(|t| journal_from_diff(&diff(g.snapshot(t - 1).adj(), g.snapshot(t).adj())))
            .collect();
        let (inc, stats) = incremental_preagg(&laps, &xs, Some(&journal));
        let full = scratch(&laps, &xs);
        for (t, (a, b)) in inc.iter().zip(&full).enumerate() {
            assert_eq!(bits(a), bits(b), "t = {t}");
        }
        assert!(stats.incremental_builds > 0, "low churn must reuse");
    }

    #[test]
    fn journal_expansion_covers_exact_scan() {
        // T ∪ N(T) is a sound superset of the bitwise dirty set.
        let g = churn(60, 6, 220, 0.25, 3);
        let laps: Vec<Csr> = g.snapshots().iter().map(Snapshot::laplacian).collect();
        let xs: Vec<Dense> = degree_features(&g).into_frames();
        for t in 1..g.t() {
            let journal = journal_from_diff(&diff(g.snapshot(t - 1).adj(), g.snapshot(t).adj()));
            let expanded = expand_journal(&journal, &laps[t]);
            let exact = dirty_rows_scan(&laps[t - 1], &laps[t], &xs[t - 1], &xs[t]);
            for r in &exact {
                assert!(
                    expanded.binary_search(r).is_ok(),
                    "t = {t}: dirty row {r} missing from the journal expansion"
                );
            }
        }
    }

    #[test]
    fn identical_snapshots_copy_everything() {
        let g = churn(50, 1, 180, 0.3, 7);
        let s = g.snapshot(0);
        let laps = vec![s.laplacian(), s.laplacian()];
        let g2 = crate::snapshot::DynamicGraph::new(50, vec![s.clone(), s.clone()]);
        let xs: Vec<Dense> = degree_features(&g2).into_frames();
        let (inc, stats) = incremental_preagg(&laps, &xs, None);
        assert_eq!(bits(&inc[0]), bits(&inc[1]));
        assert_eq!(stats.rows_recomputed, 0);
        assert_eq!(stats.rows_reused, 50);
        assert_eq!(stats.incremental_builds, 1);
    }

    #[test]
    fn full_rewrite_degrades_to_scratch_build() {
        // A journal touching every vertex crosses DEGRADE_PERCENT.
        let (laps, xs) = task_like(40, 3, 150, 0.9, 11);
        let all: Vec<u32> = (0..40).collect();
        let journal = vec![all.clone(), all];
        let (inc, stats) = incremental_preagg(&laps, &xs, Some(&journal));
        assert_eq!(stats.full_builds, 3);
        assert_eq!(stats.incremental_builds, 0);
        let full = scratch(&laps, &xs);
        for (a, b) in inc.iter().zip(&full) {
            assert_eq!(bits(a), bits(b));
        }
    }

    #[test]
    fn stats_recomputed_fraction() {
        let s = ReuseStats {
            timesteps: 3,
            full_builds: 1,
            incremental_builds: 2,
            rows_recomputed: 25,
            rows_reused: 75,
        };
        assert!((s.recomputed_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(ReuseStats::default().recomputed_fraction(), 0.0);
    }

    #[test]
    #[should_panic(expected = "journal must cover every transition")]
    fn short_journal_panics() {
        let (laps, xs) = task_like(20, 3, 60, 0.2, 1);
        let _ = incremental_preagg(&laps, &xs, Some(&[Vec::new()]));
    }
}
