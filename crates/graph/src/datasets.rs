//! Dataset registry (paper Table 1) and synthetic stand-ins.
//!
//! The paper's datasets (epinions, flickr, youtube from the Network Data
//! Repository, plus AML-Sim output) are not redistributable here, so each is
//! represented by its published metadata — `N`, `T`, total `nnz`, and the
//! smoothed sizes after M-product / edge-life — together with a churn-model
//! stand-in whose smoothing windows are *calibrated* so the closed-form
//! smoothed totals match Table 1. The stand-ins preserve exactly the
//! properties the paper's experiments measure: per-snapshot sizes, temporal
//! overlap (graph-difference gains), and smoothing expansion.

use crate::gen::churn_skewed;
use crate::snapshot::DynamicGraph;
use crate::stats::{Smoothing, TemporalStats};

/// Metadata of one benchmark dataset, mirroring a row of the paper's
/// Table 1, plus the churn rate used by its synthetic stand-in.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    /// Dataset name.
    pub name: &'static str,
    /// Number of vertices `N`.
    pub n: u64,
    /// Number of timesteps `T`.
    pub t: usize,
    /// Total edges across all raw snapshots.
    pub nnz: u64,
    /// Total edges after M-product smoothing (Table 1, "M-product").
    pub nnz_mproduct: u64,
    /// Total edges after edge-life smoothing (Table 1, "edge-life").
    pub nnz_edgelife: u64,
    /// Churn rate of the stand-in generator. Chosen so that (a) raw
    /// consecutive-snapshot overlap yields ~2x graph-difference gains as the
    /// paper reports for CD-GCN, and (b) a feasible window `<= T` can reach
    /// the Table 1 smoothing expansion.
    pub churn_rho: f64,
}

/// epinions: user-product rating graph (Network Data Repository).
pub const EPINIONS: DatasetSpec = DatasetSpec {
    name: "epinions",
    n: 755_000,
    t: 501,
    nnz: 13_000_000,
    nnz_mproduct: 653_000_000,
    nnz_edgelife: 1_038_000_000,
    churn_rho: 0.32,
};

/// flickr: links among images (Network Data Repository).
pub const FLICKR: DatasetSpec = DatasetSpec {
    name: "flickr",
    n: 2_300_000,
    t: 134,
    nnz: 33_000_000,
    nnz_mproduct: 963_000_000,
    nnz_edgelife: 796_000_000,
    churn_rho: 0.45,
};

/// youtube: user-user links (Network Data Repository).
pub const YOUTUBE: DatasetSpec = DatasetSpec {
    name: "youtube",
    n: 3_200_000,
    t: 203,
    nnz: 12_000_000,
    nnz_mproduct: 851_000_000,
    nnz_edgelife: 802_000_000,
    churn_rho: 0.72,
};

/// AML-Sim: anti-money-laundering transaction simulator output.
pub const AMLSIM: DatasetSpec = DatasetSpec {
    name: "AMLSim",
    n: 1_000_000,
    t: 200,
    nnz: 124_000_000,
    nnz_mproduct: 1_094_000_000,
    nnz_edgelife: 1_038_000_000,
    churn_rho: 0.20,
};

/// AMLSim-Large-1 (paper §6.5): 2.2B edges over 200 timesteps.
pub const AMLSIM_LARGE_1: DatasetSpec = DatasetSpec {
    name: "AMLSim-Large-1",
    n: 2_000_000,
    t: 200,
    nnz: 2_200_000_000,
    nnz_mproduct: 0,
    nnz_edgelife: 0,
    churn_rho: 0.20,
};

/// AMLSim-Large-2 (paper §6.5): 3.2B edges over 200 timesteps.
pub const AMLSIM_LARGE_2: DatasetSpec = DatasetSpec {
    name: "AMLSim-Large-2",
    n: 3_000_000,
    t: 200,
    nnz: 3_200_000_000,
    nnz_mproduct: 0,
    nnz_edgelife: 0,
    churn_rho: 0.20,
};

/// The four Table 1 datasets.
pub fn paper_datasets() -> [DatasetSpec; 4] {
    [EPINIONS, FLICKR, YOUTUBE, AMLSIM]
}

impl DatasetSpec {
    /// Average edges per raw snapshot.
    pub fn edges_per_snapshot(&self) -> f64 {
        self.nnz as f64 / self.t as f64
    }

    /// Smoothing window `w` for the M-product, calibrated so the closed-form
    /// smoothed total matches Table 1's "M-product" column.
    pub fn calibrated_mproduct_window(&self) -> usize {
        self.calibrate(self.nnz_mproduct)
    }

    /// Edge life `l`, calibrated against Table 1's "edge-life" column.
    pub fn calibrated_edge_life(&self) -> usize {
        self.calibrate(self.nnz_edgelife)
    }

    fn calibrate(&self, target: u64) -> usize {
        assert!(target > 0, "{}: no smoothing target recorded", self.name);
        let m = self.edges_per_snapshot();
        let (mut lo, mut hi) = (1usize, self.t);
        // closed_form_total is monotone in the window.
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let total = TemporalStats::closed_form_total(self.t, m, self.churn_rho, mid);
            if total < target as f64 {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// The smoothing each model applies to this dataset's adjacency tensor.
    pub fn smoothing_for_model(&self, model_uses: Smoothing) -> Smoothing {
        match model_uses {
            Smoothing::None => Smoothing::None,
            Smoothing::EdgeLife(_) => Smoothing::EdgeLife(self.calibrated_edge_life()),
            Smoothing::MProduct(_) => Smoothing::MProduct(self.calibrated_mproduct_window()),
        }
    }

    /// Materialises a scaled-down stand-in: vertices and per-snapshot edges
    /// divided by `scale` (timeline length preserved). `scale = 1` is the
    /// full paper-scale dataset — only feasible for closed-form use.
    pub fn instantiate(&self, scale: u64, seed: u64) -> DynamicGraph {
        assert!(scale >= 1);
        let n = ((self.n / scale) as usize).max(64);
        let m = ((self.edges_per_snapshot() / scale as f64).round() as usize).max(16);
        let m = m.min(n * (n - 1) / 2);
        // Real interaction graphs are heavy-tailed; the Zipf exponent keeps
        // degree features informative for link prediction.
        churn_skewed(n, self.t, m, self.churn_rho, 0.9, seed)
    }

    /// Closed-form full-scale statistics under the given smoothing.
    pub fn stats(&self, smoothing: Smoothing) -> TemporalStats {
        TemporalStats::churn_closed_form(
            self.n,
            self.t,
            self.edges_per_snapshot(),
            self.churn_rho,
            smoothing,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_hits_table1_totals() {
        for spec in paper_datasets() {
            let w = spec.calibrated_mproduct_window();
            let total = TemporalStats::closed_form_total(
                spec.t,
                spec.edges_per_snapshot(),
                spec.churn_rho,
                w,
            );
            let err = (total - spec.nnz_mproduct as f64).abs() / spec.nnz_mproduct as f64;
            assert!(
                err < 0.05,
                "{}: w={w}, total {total:.3e}, err {err:.3}",
                spec.name
            );

            let l = spec.calibrated_edge_life();
            let total = TemporalStats::closed_form_total(
                spec.t,
                spec.edges_per_snapshot(),
                spec.churn_rho,
                l,
            );
            let err = (total - spec.nnz_edgelife as f64).abs() / spec.nnz_edgelife as f64;
            assert!(
                err < 0.05,
                "{}: l={l}, total {total:.3e}, err {err:.3}",
                spec.name
            );
        }
    }

    #[test]
    fn windows_fit_the_timeline() {
        for spec in paper_datasets() {
            assert!(spec.calibrated_mproduct_window() <= spec.t, "{}", spec.name);
            assert!(spec.calibrated_edge_life() <= spec.t, "{}", spec.name);
        }
    }

    #[test]
    fn instantiate_matches_scaled_metadata() {
        let spec = AMLSIM;
        let scale = 10_000;
        let g = spec.instantiate(scale, 3);
        assert_eq!(g.t(), spec.t);
        assert_eq!(g.n(), (spec.n / scale) as usize);
        let expected_m = spec.edges_per_snapshot() / scale as f64;
        let actual_m = g.total_nnz() as f64 / g.t() as f64;
        assert!((actual_m - expected_m).abs() / expected_m < 0.05);
    }

    #[test]
    fn stats_raw_total_matches_nnz() {
        for spec in paper_datasets() {
            let s = spec.stats(Smoothing::None);
            let err = (s.total_nnz() as f64 - spec.nnz as f64).abs() / spec.nnz as f64;
            assert!(err < 0.01, "{}: {err}", spec.name);
        }
    }

    #[test]
    fn smoothed_stand_in_expansion_tracks_closed_form() {
        // Materialise a small epinions stand-in and verify the smoothing
        // expansion ratio follows the closed-form prediction.
        let spec = DatasetSpec { t: 60, ..EPINIONS };
        let g = spec.instantiate(4_000, 5);
        let w = 10;
        let smoothed = Smoothing::MProduct(w).apply(&g);
        let measured = smoothed.total_nnz() as f64 / g.total_nnz() as f64;
        let m = g.total_nnz() as f64 / g.t() as f64;
        let predicted =
            TemporalStats::closed_form_total(spec.t, m, spec.churn_rho, w) / (m * spec.t as f64);
        assert!(
            (measured - predicted).abs() / predicted < 0.1,
            "measured {measured}, predicted {predicted}"
        );
    }
}
