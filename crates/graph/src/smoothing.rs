//! Input-graph smoothing (paper §5.4): the edge-life transformation used by
//! EvolveGCN and the M-transform used by TM-GCN. Both carry structure from
//! recent snapshots forward, increasing density and magnifying the overlap
//! between consecutive snapshots — which is what makes the graph-difference
//! transfer so effective on these two models.

use dgnn_tensor::{m_banded, Csr, Tensor3};

use crate::snapshot::{DynamicGraph, Snapshot};

/// Edge-life transformation: `A_t := Σ_{i=t-l+1..t} A_i` (paper §5.4).
///
/// Every edge lives for `l` snapshots after its appearance; values
/// accumulate when an edge re-appears.
pub fn edge_life(g: &DynamicGraph, l: usize) -> DynamicGraph {
    assert!(l >= 1, "edge life must be at least 1");
    let t = g.t();
    let mut out = Vec::with_capacity(t);
    for ti in 0..t {
        let lo = ti.saturating_sub(l - 1);
        let terms: Vec<(f32, &Csr)> = (lo..=ti).map(|i| (1.0, g.snapshot(i).adj())).collect();
        out.push(Snapshot::new(Csr::add_weighted(&terms)));
    }
    DynamicGraph::new(g.n(), out)
}

/// M-transform smoothing of the adjacency tensor: `A := M ×₁ A` with the
/// banded averaging matrix of window `w` (paper §5.3–5.4).
pub fn m_transform_adj(g: &DynamicGraph, w: usize) -> DynamicGraph {
    let m = m_banded(g.t(), w);
    DynamicGraph::from_sparse_tensor(g.to_sparse_tensor().ttm_mode1(&m))
}

/// M-transform smoothing of a dense feature tensor: `X := M ×₁ X`.
pub fn m_transform_features(x: &Tensor3, w: usize) -> Tensor3 {
    let m = m_banded(x.t(), w);
    x.ttm_mode1(&m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::churn;
    use dgnn_tensor::Dense;

    #[test]
    fn edge_life_one_is_identity() {
        let g = churn(50, 4, 100, 0.3, 1);
        let s = edge_life(&g, 1);
        for t in 0..4 {
            assert_eq!(s.snapshot(t).adj(), g.snapshot(t).adj());
        }
    }

    #[test]
    fn edge_life_unions_structure() {
        let g = DynamicGraph::new(
            3,
            vec![
                Snapshot::from_edges(3, &[(0, 1)]),
                Snapshot::from_edges(3, &[(1, 2)]),
                Snapshot::from_edges(3, &[(2, 0)]),
            ],
        );
        let s = edge_life(&g, 2);
        assert_eq!(s.snapshot(0).nnz(), 1);
        assert_eq!(s.snapshot(1).nnz(), 2); // (0,1) + (1,2)
        assert_eq!(s.snapshot(2).nnz(), 2); // (1,2) + (2,0)
    }

    #[test]
    fn edge_life_accumulates_values() {
        let g = DynamicGraph::new(
            2,
            vec![
                Snapshot::from_edges(2, &[(0, 1)]),
                Snapshot::from_edges(2, &[(0, 1)]),
            ],
        );
        let s = edge_life(&g, 2);
        assert_eq!(s.snapshot(1).adj().to_coo(), vec![(0, 1, 2.0)]);
    }

    #[test]
    fn edge_life_grows_density_on_churn() {
        let g = churn(100, 10, 300, 0.3, 2);
        let l = 5;
        let s = edge_life(&g, l);
        // Steady-state expansion should be about 1 + (l-1)*rho = 2.2.
        let raw = g.snapshot(9).nnz() as f64;
        let smoothed = s.snapshot(9).nnz() as f64;
        let ratio = smoothed / raw;
        assert!((1.8..2.6).contains(&ratio), "expansion {ratio}");
    }

    #[test]
    fn m_transform_adj_matches_window_union() {
        let g = churn(60, 6, 150, 0.4, 5);
        let w = 3;
        let s = m_transform_adj(&g, w);
        // Structure of the smoothed snapshot t equals the union of the
        // window's structures.
        for t in 0usize..6 {
            let lo = t.saturating_sub(w - 1);
            let mut union: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
            for i in lo..=t {
                union.extend(g.snapshot(i).edges());
            }
            assert_eq!(s.snapshot(t).nnz(), union.len(), "t = {t}");
        }
    }

    #[test]
    fn m_transform_features_averages() {
        let x = Tensor3::new(vec![Dense::full(2, 2, 2.0), Dense::full(2, 2, 4.0)]);
        let y = m_transform_features(&x, 2);
        assert!(y.frame(0).approx_eq(&Dense::full(2, 2, 2.0), 1e-6));
        assert!(y.frame(1).approx_eq(&Dense::full(2, 2, 3.0), 1e-6));
    }

    #[test]
    fn smoothing_magnifies_overlap() {
        // The core claim behind graph-difference gains on TM-GCN/EvolveGCN.
        let g = churn(200, 12, 400, 0.4, 9);
        let overlap = |g: &DynamicGraph, t: usize| {
            let a: std::collections::HashSet<(u32, u32)> =
                g.snapshot(t).edges().into_iter().collect();
            let b: std::collections::HashSet<(u32, u32)> =
                g.snapshot(t + 1).edges().into_iter().collect();
            a.intersection(&b).count() as f64 / b.len() as f64
        };
        let raw = overlap(&g, 10);
        let smoothed = overlap(&m_transform_adj(&g, 6), 10);
        assert!(
            smoothed > raw + 0.1,
            "smoothed overlap {smoothed} should exceed raw {raw}"
        );
    }
}
