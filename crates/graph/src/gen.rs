//! Temporal graph generators.
//!
//! Three generators cover the paper's workloads:
//!
//! * [`uniform_random`] — the weak-scaling generator of §6.3: every snapshot
//!   is an independent uniform random graph with `m = N · f` edges.
//! * [`churn`] — an evolving-edge model for the real-dataset stand-ins: an
//!   edge set of fixed size `m` where a fraction `rho` of edges is replaced
//!   at every step. This matches the paper's observation that "dynamic
//!   graphs change gradually" and gives closed-form overlap statistics.
//! * [`amlsim_like`] — a community-structured transaction generator with
//!   planted laundering rings, standing in for the AML-Sim dataset so that
//!   link prediction has learnable structure.

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::snapshot::{DynamicGraph, Snapshot};

fn key(n: usize, u: u32, v: u32) -> u64 {
    u as u64 * n as u64 + v as u64
}

fn random_edge(n: usize, rng: &mut impl Rng) -> (u32, u32) {
    loop {
        let u = rng.gen_range(0..n as u32);
        let v = rng.gen_range(0..n as u32);
        if u != v {
            return (u, v);
        }
    }
}

/// Samples vertices with probability `∝ 1/(i+1)^s` — the heavy-tailed
/// endpoint distribution of real interaction graphs. `s = 0` is uniform.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// A sampler over `n` vertices with exponent `s >= 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0 && s >= 0.0);
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Draws one vertex.
    pub fn sample(&self, rng: &mut impl Rng) -> u32 {
        let total = *self.cumulative.last().unwrap();
        let x = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c < x) as u32
    }

    /// Draws a non-self-loop edge.
    pub fn sample_edge(&self, rng: &mut impl Rng) -> (u32, u32) {
        loop {
            let u = self.sample(rng);
            let v = self.sample(rng);
            if u != v {
                return (u, v);
            }
        }
    }
}

/// Independent uniform snapshots: `T` graphs over `n` vertices, each with
/// `m = n * density_f` random directed edges (duplicates collapse).
///
/// This is exactly the weak-scaling workload of the paper: "the generator
/// constructs each snapshot independently by adding N vertices and randomly
/// selecting m = N·f pairs of vertices as edges".
pub fn uniform_random(n: usize, t: usize, density_f: f64, seed: u64) -> DynamicGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (n as f64 * density_f).round() as usize;
    let snapshots = (0..t)
        .map(|_| {
            let edges: Vec<(u32, u32)> = (0..m).map(|_| random_edge(n, &mut rng)).collect();
            Snapshot::from_edges(n, &edges)
        })
        .collect();
    DynamicGraph::new(n, snapshots)
}

/// Evolving edge set with per-step churn.
///
/// The first snapshot holds `m` distinct random edges. At every subsequent
/// step, `round(rho * m)` randomly chosen edges die and the same number of
/// fresh random edges are born, keeping `|E_t| = m`. Consecutive snapshots
/// therefore overlap in a `1 - rho` fraction of their structure, which is
/// the property the graph-difference transfer exploits.
pub fn churn(n: usize, t: usize, m: usize, rho: f64, seed: u64) -> DynamicGraph {
    churn_with(n, t, m, rho, seed, random_edge)
}

/// [`churn`] with Zipf-skewed endpoint sampling (exponent `s`): the edge
/// set still replaces a `rho` fraction per step, but endpoints follow the
/// heavy-tailed popularity distribution of real interaction graphs, which
/// is what makes degree features informative for link prediction.
pub fn churn_skewed(n: usize, t: usize, m: usize, rho: f64, s: f64, seed: u64) -> DynamicGraph {
    let zipf = ZipfSampler::new(n, s);
    churn_with(n, t, m, rho, seed, move |_, rng| zipf.sample_edge(rng))
}

fn churn_with(
    n: usize,
    t: usize,
    m: usize,
    rho: f64,
    seed: u64,
    mut sample: impl FnMut(usize, &mut StdRng) -> (u32, u32),
) -> DynamicGraph {
    assert!((0.0..=1.0).contains(&rho), "churn rate must be in [0, 1]");
    assert!(m <= n * (n - 1), "too many edges requested");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m);
    let mut present: HashSet<u64> = HashSet::with_capacity(m * 2);
    while edges.len() < m {
        let e = sample(n, &mut rng);
        if present.insert(key(n, e.0, e.1)) {
            edges.push(e);
        }
    }
    let replace = (rho * m as f64).round() as usize;
    let mut snapshots = Vec::with_capacity(t);
    snapshots.push(Snapshot::from_edges(n, &edges));
    for _ in 1..t {
        // Choose `replace` *distinct* victims via a partial Fisher-Yates
        // shuffle, so a step replaces exactly `rho * m` current edges.
        for i in 0..replace {
            let j = rng.gen_range(i..edges.len());
            edges.swap(i, j);
        }
        for slot in edges.iter_mut().take(replace) {
            present.remove(&key(n, slot.0, slot.1));
            loop {
                let e = sample(n, &mut rng);
                if present.insert(key(n, e.0, e.1)) {
                    *slot = e;
                    break;
                }
            }
        }
        snapshots.push(Snapshot::from_edges(n, &edges));
    }
    DynamicGraph::new(n, snapshots)
}

/// Configuration for the AML-Sim style generator.
#[derive(Clone, Debug)]
pub struct AmlSimConfig {
    /// Number of accounts (vertices).
    pub n: usize,
    /// Number of timesteps.
    pub t: usize,
    /// Number of communities (banks / regions).
    pub communities: usize,
    /// Normal transactions per step.
    pub transactions_per_step: usize,
    /// Probability that a normal transaction stays inside its community.
    pub intra_community_prob: f64,
    /// Fraction of transactions replaced per step (temporal churn).
    pub churn: f64,
    /// Number of laundering rings planted over the timeline.
    pub rings: usize,
    /// Accounts per laundering ring.
    pub ring_size: usize,
    /// Zipf exponent of account activity (0 = uniform). Real transaction
    /// data is heavy-tailed: a few accounts transact constantly.
    pub zipf_s: f64,
}

impl Default for AmlSimConfig {
    fn default() -> Self {
        Self {
            n: 1000,
            t: 24,
            communities: 8,
            transactions_per_step: 4000,
            intra_community_prob: 0.9,
            churn: 0.2,
            rings: 12,
            ring_size: 5,
            zipf_s: 0.9,
        }
    }
}

/// Community-structured transaction graph with planted laundering rings.
///
/// Normal transactions connect accounts mostly inside a community; each
/// planted ring is a directed cycle of accounts whose edges appear over a
/// run of consecutive timesteps (money moving through a chain), which gives
/// the link-prediction task persistent temporal structure to learn.
pub fn amlsim_like(cfg: &AmlSimConfig, seed: u64) -> DynamicGraph {
    amlsim_with_labels(cfg, seed).0
}

/// [`amlsim_like`] plus per-timestep vertex labels for the paper's vertex
/// classification application (§2.2): `labels[t][v] = 1` when account `v`
/// participates in an active laundering ring at timestep `t`.
pub fn amlsim_with_labels(cfg: &AmlSimConfig, seed: u64) -> (DynamicGraph, Vec<Vec<u32>>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = cfg.n;
    let comm_size = n.div_ceil(cfg.communities);
    let community = |v: u32| (v as usize / comm_size).min(cfg.communities - 1);
    // Heavy-tailed activity: a Zipf offset inside a community picks its
    // hub accounts more often; globally, low-id accounts are the hubs.
    let offset_zipf = ZipfSampler::new(comm_size, cfg.zipf_s);
    let global_zipf = ZipfSampler::new(n, cfg.zipf_s);
    let sample_in_community = |c: usize, rng: &mut StdRng| -> u32 {
        let lo = c * comm_size;
        let hi = ((c + 1) * comm_size).min(n);
        let off = offset_zipf.sample(rng) as usize % (hi - lo);
        (lo + off) as u32
    };

    let sample_txn = |rng: &mut StdRng| -> (u32, u32) {
        loop {
            let u = sample_in_community(community(global_zipf.sample(rng)), rng);
            let v = if rng.gen_bool(cfg.intra_community_prob) {
                sample_in_community(community(u), rng)
            } else {
                global_zipf.sample(rng)
            };
            if u != v {
                return (u, v);
            }
        }
    };

    // Base transactions with churn.
    let mut edges: Vec<(u32, u32)> = (0..cfg.transactions_per_step)
        .map(|_| sample_txn(&mut rng))
        .collect();
    let replace = (cfg.churn * edges.len() as f64).round() as usize;

    // Plant rings: each ring occupies a run of consecutive timesteps. While
    // a ring is active its members also burst fan-out transactions
    // ("smurfing"), the activity signature AML systems look for.
    let mut ring_edges_at: Vec<Vec<(u32, u32)>> = vec![Vec::new(); cfg.t];
    let fanout = 6usize;
    for _ in 0..cfg.rings {
        let members: Vec<u32> = (0..cfg.ring_size)
            .map(|_| rng.gen_range(0..n as u32))
            .collect();
        let start = rng.gen_range(0..cfg.t);
        let span = rng.gen_range(2..=(cfg.t - start).clamp(2, 8));
        for dt in 0..span {
            let t = start + dt;
            if t >= cfg.t {
                break;
            }
            for i in 0..members.len() {
                let u = members[i];
                let v = members[(i + 1) % members.len()];
                if u != v {
                    ring_edges_at[t].push((u, v));
                }
                for _ in 0..fanout {
                    let w = rng.gen_range(0..n as u32);
                    if w != u {
                        ring_edges_at[t].push((u, w));
                    }
                }
            }
        }
    }

    let mut snapshots = Vec::with_capacity(cfg.t);
    let mut labels: Vec<Vec<u32>> = Vec::with_capacity(cfg.t);
    for t in 0..cfg.t {
        if t > 0 {
            for _ in 0..replace {
                let victim = rng.gen_range(0..edges.len());
                edges[victim] = sample_txn(&mut rng);
            }
        }
        let mut all = edges.clone();
        all.extend_from_slice(&ring_edges_at[t]);
        snapshots.push(Snapshot::from_edges(n, &all));
        let mut lab = vec![0u32; n];
        for &(u, v) in &ring_edges_at[t] {
            lab[u as usize] = 1;
            lab[v as usize] = 1;
        }
        labels.push(lab);
    }
    (DynamicGraph::new(n, snapshots), labels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_random_shapes() {
        let g = uniform_random(100, 5, 3.0, 1);
        assert_eq!(g.n(), 100);
        assert_eq!(g.t(), 5);
        for t in 0..5 {
            // Duplicates collapse, so nnz <= m, but should be close.
            let nnz = g.snapshot(t).nnz();
            assert!(nnz > 250 && nnz <= 300, "nnz {nnz}");
        }
    }

    #[test]
    fn uniform_random_is_deterministic() {
        let a = uniform_random(50, 3, 2.0, 42);
        let b = uniform_random(50, 3, 2.0, 42);
        for t in 0..3 {
            assert_eq!(a.snapshot(t).adj(), b.snapshot(t).adj());
        }
    }

    #[test]
    fn churn_keeps_size_and_overlap() {
        let n = 200;
        let m = 800;
        let rho = 0.25;
        let g = churn(n, 6, m, rho, 7);
        for t in 0..6 {
            assert_eq!(g.snapshot(t).nnz(), m);
        }
        // Consecutive overlap should be ~ (1 - rho) * m.
        for t in 0..5 {
            let a: HashSet<(u32, u32)> = g.snapshot(t).edges().into_iter().collect();
            let b: HashSet<(u32, u32)> = g.snapshot(t + 1).edges().into_iter().collect();
            let common = a.intersection(&b).count();
            let expected = ((1.0 - rho) * m as f64) as usize;
            assert!(
                common.abs_diff(expected) <= m / 20,
                "common {common}, expected about {expected}"
            );
        }
    }

    #[test]
    fn churn_zero_means_static() {
        let g = churn(50, 4, 100, 0.0, 3);
        for t in 1..4 {
            assert_eq!(g.snapshot(t).adj(), g.snapshot(0).adj());
        }
    }

    #[test]
    fn churn_one_means_independent() {
        let g = churn(100, 3, 200, 1.0, 3);
        let a: HashSet<(u32, u32)> = g.snapshot(0).edges().into_iter().collect();
        let b: HashSet<(u32, u32)> = g.snapshot(1).edges().into_iter().collect();
        let common = a.intersection(&b).count();
        // A few collisions are possible but the sets are essentially disjoint.
        assert!(common < 20, "common {common}");
    }

    #[test]
    fn amlsim_has_community_bias() {
        let cfg = AmlSimConfig {
            n: 400,
            t: 4,
            communities: 4,
            ..Default::default()
        };
        let g = amlsim_like(&cfg, 11);
        let comm_size = 100u32;
        let mut intra = 0usize;
        let mut total = 0usize;
        for t in 0..g.t() {
            for (u, v) in g.snapshot(t).edges() {
                total += 1;
                if u / comm_size == v / comm_size {
                    intra += 1;
                }
            }
        }
        let frac = intra as f64 / total as f64;
        assert!(frac > 0.7, "intra-community fraction {frac}");
    }

    #[test]
    fn amlsim_deterministic() {
        let cfg = AmlSimConfig {
            n: 100,
            t: 3,
            ..Default::default()
        };
        let a = amlsim_like(&cfg, 5);
        let b = amlsim_like(&cfg, 5);
        for t in 0..3 {
            assert_eq!(a.snapshot(t).adj(), b.snapshot(t).adj());
        }
    }
}
