//! Property-based tests pinning the algebraic invariants of the kernel
//! layer. These are the foundation the autograd gradient checks rest on.

use dgnn_tensor::{m_banded, normalized_laplacian, Csr, Dense, SparseTensor3, Tensor3};
use proptest::prelude::*;

fn dense_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Dense> {
    proptest::collection::vec(-8.0f32..8.0, rows * cols)
        .prop_map(move |v| Dense::from_vec(rows, cols, v))
}

fn coo_strategy(n: usize, max_nnz: usize) -> impl Strategy<Value = Vec<(u32, u32, f32)>> {
    proptest::collection::vec((0..n as u32, 0..n as u32, -4.0f32..4.0), 0..max_nnz)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_associative_with_identity(a in dense_strategy(4, 5)) {
        let i = Dense::eye(5);
        prop_assert!(a.matmul(&i).approx_eq(&a, 1e-5));
    }

    #[test]
    fn matmul_distributes_over_add(
        a in dense_strategy(3, 4),
        b in dense_strategy(4, 2),
        c in dense_strategy(4, 2),
    ) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn transpose_of_product_swaps(
        a in dense_strategy(3, 4),
        b in dense_strategy(4, 2),
    ) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-3));
    }

    #[test]
    fn matmul_trans_variants_agree(
        a in dense_strategy(4, 3),
        b in dense_strategy(4, 2),
    ) {
        prop_assert!(a.matmul_transa(&b).approx_eq(&a.transpose().matmul(&b), 1e-3));
        let c = Dense::from_vec(2, 3, vec![1.0, -2.0, 0.5, 3.0, 0.0, -1.0]);
        prop_assert!(a.matmul_transb(&c).approx_eq(&a.matmul(&c.transpose()), 1e-3));
    }

    #[test]
    fn csr_roundtrips_through_coo(triplets in coo_strategy(8, 24)) {
        let a = Csr::from_coo(8, 8, &triplets);
        let b = Csr::from_coo(8, 8, &a.to_coo());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn csr_transpose_involution(triplets in coo_strategy(7, 20)) {
        let a = Csr::from_coo(7, 7, &triplets);
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn spmm_matches_dense_reference(
        triplets in coo_strategy(6, 18),
        x in dense_strategy(6, 3),
    ) {
        let a = Csr::from_coo(6, 6, &triplets);
        prop_assert!(a.spmm(&x).approx_eq(&a.to_dense().matmul(&x), 1e-3));
        prop_assert!(a.spmm_transa(&x).approx_eq(&a.to_dense().transpose().matmul(&x), 1e-3));
    }

    #[test]
    fn add_weighted_matches_dense(
        t1 in coo_strategy(5, 12),
        t2 in coo_strategy(5, 12),
        w1 in -2.0f32..2.0,
        w2 in -2.0f32..2.0,
    ) {
        let a = Csr::from_coo(5, 5, &t1);
        let b = Csr::from_coo(5, 5, &t2);
        let s = Csr::add_weighted(&[(w1, &a), (w2, &b)]);
        let expected = a.to_dense().scale(w1).add(&b.to_dense().scale(w2));
        prop_assert!(s.to_dense().approx_eq(&expected, 1e-4));
    }

    #[test]
    fn laplacian_spectrally_bounded(
        edges in proptest::collection::vec((0u32..10, 0u32..10), 1..30),
        x in dense_strategy(10, 1),
    ) {
        // Ã = D^{-1/2}(A+I)D^{-1/2} is symmetric with eigenvalues in [-1, 1],
        // so |xᵀÃx| <= xᵀx for every vector x.
        let a = Csr::from_edges(10, &edges);
        let lap = normalized_laplacian(&a, true);
        prop_assert!(lap.is_symmetric(1e-5));
        let quad = x.transpose().matmul(&lap.spmm(&x)).get(0, 0);
        let norm2 = x.transpose().matmul(&x).get(0, 0);
        prop_assert!(quad.abs() <= norm2 * (1.0 + 1e-4) + 1e-4);
    }

    #[test]
    fn ttm_linear_in_input(
        f0 in dense_strategy(3, 2),
        f1 in dense_strategy(3, 2),
        f2 in dense_strategy(3, 2),
        w in 1usize..4,
    ) {
        let x = Tensor3::new(vec![f0.clone(), f1.clone(), f2.clone()]);
        let m = m_banded(3, w);
        let y = x.ttm_mode1(&m);
        let x2 = Tensor3::new(vec![f0.scale(2.0), f1.scale(2.0), f2.scale(2.0)]);
        let y2 = x2.ttm_mode1(&m);
        for t in 0..3 {
            prop_assert!(y.frame(t).scale(2.0).approx_eq(y2.frame(t), 1e-3));
        }
    }

    #[test]
    fn sparse_ttm_matches_dense_ttm(
        t1 in coo_strategy(4, 8),
        t2 in coo_strategy(4, 8),
        w in 1usize..3,
    ) {
        let s = SparseTensor3::new(vec![
            Csr::from_coo(4, 4, &t1),
            Csr::from_coo(4, 4, &t2),
        ]);
        let m = m_banded(2, w);
        let sm = s.ttm_mode1(&m);
        let dm = Tensor3::new(vec![s.slice(0).to_dense(), s.slice(1).to_dense()]).ttm_mode1(&m);
        for t in 0..2 {
            prop_assert!(sm.slice(t).to_dense().approx_eq(dm.frame(t), 1e-4));
        }
    }

    #[test]
    fn gather_then_scatter_is_diagonal_scaling(
        x in dense_strategy(5, 3),
        idx in proptest::collection::vec(0u32..5, 1..10),
    ) {
        // scatter_add(gather(x)) multiplies each row by its occurrence count.
        let g = x.gather_rows(&idx);
        let mut acc = Dense::zeros(5, 3);
        acc.scatter_add_rows(&idx, &g);
        let mut counts = [0f32; 5];
        for &i in &idx { counts[i as usize] += 1.0; }
        let expected = Dense::from_fn(5, 3, |r, c| counts[r] * x.get(r, c));
        prop_assert!(acc.approx_eq(&expected, 1e-4));
    }
}
