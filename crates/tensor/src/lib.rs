//! # dgnn-tensor
//!
//! Dense and sparse linear-algebra kernels for the SC'21 dynamic-GNN
//! reproduction. This crate stands in for the PyTorch/CUDA kernel layer of
//! the original system: row-major `f32` dense matrices, CSR sparse matrices
//! with the SpMM aggregation kernel, third-order tensors stored as frame
//! sequences, and the banded M-product matrix of TM-GCN.
//!
//! Everything downstream (`dgnn-autograd`, the models, the trainers) builds
//! on these types, so their semantics are pinned by extensive unit and
//! property tests.

#![warn(missing_docs)]

pub mod dense;
pub mod digest;
pub mod init;
pub mod pool;
mod sell;
pub mod simd;
pub mod sparse;
pub mod tensor3;
pub mod workspace;

pub use dense::Dense;
pub use sparse::{normalized_laplacian, Csr};
pub use tensor3::{m_banded, SparseTensor3, Tensor3};
