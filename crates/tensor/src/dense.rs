//! Dense row-major `f32` matrices and the kernels dynamic-GNN training needs.
//!
//! The GPU kernels of the original system (PyTorch/CUDA) are replaced by
//! cache-friendly CPU loops; `matmul` uses the i-k-j order so the inner loop
//! streams over contiguous rows of both operands.
//!
//! The hot kernels (`matmul*`, element-wise maps, reductions) run on the
//! intra-rank thread pool ([`crate::pool`]) when the matrix is large enough:
//! each pool thread produces a disjoint contiguous block of the output with
//! the same inner loop the serial kernel uses, so results are bit-identical
//! at every thread count. Scalar reductions use the fixed-chunk order of
//! [`crate::pool::reduce_chunks`], which is likewise thread-count invariant.

use std::fmt;

use crate::{pool, workspace};

/// A dense row-major matrix of `f32` values.
///
/// Backing buffers come from the per-thread [`workspace`] arena when one is
/// engaged, so constructors in hot loops reuse retired buffers instead of
/// hitting the allocator; semantics are identical either way.
#[derive(PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Dense {
    fn clone(&self) -> Self {
        // Without an engaged arena a plain slice copy beats scratch-take +
        // copy (the fallback take zero-fills first); with one, reuse wins.
        if workspace::is_engaged() {
            let mut out = Dense::scratch(self.rows, self.cols);
            out.data.copy_from_slice(&self.data);
            out
        } else {
            workspace::note_fresh();
            Dense {
                rows: self.rows,
                cols: self.cols,
                data: self.data.clone(),
            }
        }
    }
}

impl fmt::Debug for Dense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dense({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 36 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Dense {
    /// An all-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: workspace::take_zeroed(rows * cols),
        }
    }

    /// A matrix of the given shape with *unspecified* contents (recycled
    /// bits when a [`workspace`] is engaged). Strictly for kernels that
    /// write every element before any read — never hand one out unfilled.
    pub fn scratch(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: workspace::take_scratch(rows * cols),
        }
    }

    /// An all-ones matrix of the given shape.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// A matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut out = Self::scratch(rows, cols);
        out.data.fill(value);
        out
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the raw data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product `self * other`, row-parallel over the output.
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree — validated up front,
    /// before any output allocation.
    pub fn matmul(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let n = other.cols;
        // Scratch output: each row is zeroed just before its accumulation
        // (cache-warm, and skips the arena's up-front fill pass).
        let mut out = Dense::scratch(self.rows, n);
        let work = self.rows.saturating_mul(self.cols).saturating_mul(n);
        pool::par_rows(&mut out.data, n, work, |r0, block| {
            for (di, out_row) in block.chunks_mut(n).enumerate() {
                out_row.fill(0.0);
                let a_row = self.row(r0 + di);
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let b_row = &other.data[k * n..(k + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        out
    }

    /// Matrix product `selfᵀ * other` without materialising the transpose.
    /// Parallel over output rows — column slices of `self`; the k-outer
    /// accumulation order per output element matches the serial kernel, so
    /// any partition yields identical bits.
    ///
    /// # Panics
    /// Panics when the row counts disagree — validated up front, before
    /// any output allocation.
    pub fn matmul_transa(&self, other: &Dense) -> Dense {
        assert_eq!(self.rows, other.rows, "matmul_transa shape mismatch");
        let n = other.cols;
        let cols = self.cols;
        // Scratch output, zeroed per disjoint block inside the kernel.
        let mut out = Dense::scratch(cols, n);
        let work = self.rows.saturating_mul(cols).saturating_mul(n);
        pool::par_rows(&mut out.data, n, work, |i0, block| {
            block.fill(0.0);
            let i1 = i0 + block.len() / n;
            for k in 0..self.rows {
                let a_slice = &self.data[k * cols + i0..k * cols + i1];
                let b_row = other.row(k);
                for (di, &a) in a_slice.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let out_row = &mut block[di * n..(di + 1) * n];
                    for (o, &b) in out_row.iter_mut().zip(b_row) {
                        *o += a * b;
                    }
                }
            }
        });
        out
    }

    /// Matrix product `self * otherᵀ` without materialising the transpose,
    /// row-parallel over the output.
    ///
    /// # Panics
    /// Panics when the column counts disagree — validated up front, before
    /// any output allocation.
    pub fn matmul_transb(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.cols, "matmul_transb shape mismatch");
        let n = other.rows;
        // Every output element is written exactly once (`*o = acc`), so a
        // scratch buffer is safe.
        let mut out = Dense::scratch(self.rows, n);
        let work = self.rows.saturating_mul(n).saturating_mul(self.cols);
        pool::par_rows(&mut out.data, n, work, |r0, block| {
            for (di, out_row) in block.chunks_mut(n).enumerate() {
                let a_row = self.row(r0 + di);
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = other.row(j);
                    let mut acc = 0.0f32;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        acc += a * b;
                    }
                    *o = acc;
                }
            }
        });
        out
    }

    /// The transposed matrix.
    pub fn transpose(&self) -> Dense {
        let mut out = Dense::scratch(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    fn assert_same_shape(&self, other: &Dense, op: &str) {
        assert_eq!(self.shape(), other.shape(), "{op}: shape mismatch");
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Dense) -> Dense {
        self.assert_same_shape(other, "add");
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Dense) -> Dense {
        self.assert_same_shape(other, "sub");
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Dense) -> Dense {
        self.assert_same_shape(other, "hadamard");
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place `self += other` (element-parallel).
    pub fn add_assign(&mut self, other: &Dense) {
        self.assert_same_shape(other, "add_assign");
        pool::par_elems(&mut self.data, |start, chunk| {
            let n = chunk.len();
            for (a, &b) in chunk.iter_mut().zip(&other.data[start..start + n]) {
                *a += b;
            }
        });
    }

    /// In-place `self += alpha * other` (element-parallel).
    pub fn axpy(&mut self, alpha: f32, other: &Dense) {
        self.assert_same_shape(other, "axpy");
        pool::par_elems(&mut self.data, |start, chunk| {
            let n = chunk.len();
            for (a, &b) in chunk.iter_mut().zip(&other.data[start..start + n]) {
                *a += alpha * b;
            }
        });
    }

    /// Scalar multiple `alpha * self`.
    pub fn scale(&self, alpha: f32) -> Dense {
        self.map(|v| v * alpha)
    }

    /// In-place scalar multiply (element-parallel).
    pub fn scale_assign(&mut self, alpha: f32) {
        pool::par_elems(&mut self.data, |_, chunk| {
            for v in chunk {
                *v *= alpha;
            }
        });
    }

    /// Applies `f` element-wise, returning a new matrix (element-parallel,
    /// which is why `f` must be `Sync`).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Dense {
        let mut out = Dense::scratch(self.rows, self.cols);
        pool::par_elems(&mut out.data, |start, chunk| {
            let n = chunk.len();
            for (o, &v) in chunk.iter_mut().zip(&self.data[start..start + n]) {
                *o = f(v);
            }
        });
        out
    }

    /// Element-wise combination of two equally-shaped matrices
    /// (element-parallel, which is why `f` must be `Sync`).
    pub fn zip_map(&self, other: &Dense, f: impl Fn(f32, f32) -> f32 + Sync) -> Dense {
        self.assert_same_shape(other, "zip_map");
        let mut out = Dense::scratch(self.rows, self.cols);
        pool::par_elems(&mut out.data, |start, chunk| {
            let n = chunk.len();
            let a = &self.data[start..start + n];
            let b = &other.data[start..start + n];
            for ((o, &x), &y) in chunk.iter_mut().zip(a).zip(b) {
                *o = f(x, y);
            }
        });
        out
    }

    /// Adds a `1 x cols` row vector to every row (bias broadcast),
    /// row-parallel.
    pub fn add_row_broadcast(&self, bias: &Dense) -> Dense {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        let cols = self.cols;
        pool::par_rows(&mut out.data, cols, self.data.len(), |_, block| {
            for row in block.chunks_mut(cols) {
                for (o, &b) in row.iter_mut().zip(&bias.data) {
                    *o += b;
                }
            }
        });
        out
    }

    /// Sums the rows into a `1 x cols` vector (the backward of a bias
    /// broadcast). Column-parallel: each output column accumulates its own
    /// rows top-to-bottom, matching the serial order exactly.
    pub fn sum_rows(&self) -> Dense {
        let mut out = Dense::zeros(1, self.cols);
        let cols = self.cols;
        let rows = self.rows;
        // The work is the full input scan (rows × cols), not the short
        // output, so the engage decision must be weighted accordingly.
        pool::par_elems_weighted(&mut out.data, self.data.len(), |c0, chunk| {
            for r in 0..rows {
                let src = &self.data[r * cols + c0..r * cols + c0 + chunk.len()];
                for (o, &v) in chunk.iter_mut().zip(src) {
                    *o += v;
                }
            }
        });
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Dense) -> Dense {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Dense::scratch(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Copies columns `[start, start+len)` into a new matrix.
    pub fn narrow_cols(&self, start: usize, len: usize) -> Dense {
        assert!(start + len <= self.cols, "narrow_cols out of range");
        let mut out = Dense::scratch(self.rows, len);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..start + len]);
        }
        out
    }

    /// Embeds this matrix into a `rows x total_cols` zero matrix at column
    /// `start` — the backward of [`Dense::narrow_cols`], fused into one
    /// pass. Bitwise identical to `zeros` + [`Dense::add_into_cols`]: the
    /// strip stores `0.0 + v` (so a `-0.0` gradient lands as `+0.0`,
    /// exactly as the add would produce).
    pub fn pad_cols(&self, total_cols: usize, start: usize) -> Dense {
        assert!(start + self.cols <= total_cols, "pad_cols out of range");
        if workspace::is_engaged() {
            let mut out = Dense::scratch(self.rows, total_cols);
            for r in 0..self.rows {
                let dst = &mut out.data[r * total_cols..(r + 1) * total_cols];
                dst[..start].fill(0.0);
                for (o, &v) in dst[start..start + self.cols].iter_mut().zip(self.row(r)) {
                    *o = 0.0 + v;
                }
                dst[start + self.cols..].fill(0.0);
            }
            out
        } else {
            // Without an arena, `zeros` is a cheap calloc; keep the
            // two-step form.
            let mut out = Dense::zeros(self.rows, total_cols);
            out.add_into_cols(start, self);
            out
        }
    }

    /// Adds `src` into columns `[start, start+src.cols)` (backward of `narrow_cols`).
    pub fn add_into_cols(&mut self, start: usize, src: &Dense) {
        assert_eq!(self.rows, src.rows, "add_into_cols row mismatch");
        assert!(start + src.cols <= self.cols, "add_into_cols out of range");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols + start..r * self.cols + start + src.cols];
            for (d, &s) in dst.iter_mut().zip(src.row(r)) {
                *d += s;
            }
        }
    }

    /// Copies rows `[start, start+len)` into a new matrix.
    pub fn row_block(&self, start: usize, len: usize) -> Dense {
        assert!(start + len <= self.rows, "row_block out of range");
        let src = &self.data[start * self.cols..(start + len) * self.cols];
        if workspace::is_engaged() {
            let mut out = Dense::scratch(len, self.cols);
            out.data.copy_from_slice(src);
            out
        } else {
            workspace::note_fresh();
            Dense {
                rows: len,
                cols: self.cols,
                data: src.to_vec(),
            }
        }
    }

    /// Vertically stacks matrices that share a column count.
    pub fn vstack(parts: &[&Dense]) -> Dense {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        if workspace::is_engaged() {
            let mut out = Dense::scratch(rows, cols);
            let mut start = 0usize;
            for p in parts {
                assert_eq!(p.cols, cols, "vstack column mismatch");
                out.data[start..start + p.data.len()].copy_from_slice(&p.data);
                start += p.data.len();
            }
            out
        } else {
            workspace::note_fresh();
            let mut data = Vec::with_capacity(rows * cols);
            for p in parts {
                assert_eq!(p.cols, cols, "vstack column mismatch");
                data.extend_from_slice(&p.data);
            }
            Dense { rows, cols, data }
        }
    }

    /// Gathers the given rows into a new matrix (`out[i] = self[idx[i]]`),
    /// row-parallel.
    pub fn gather_rows(&self, idx: &[u32]) -> Dense {
        let cols = self.cols;
        let mut out = Dense::scratch(idx.len(), cols);
        pool::par_rows(
            &mut out.data,
            cols,
            idx.len().saturating_mul(cols),
            |r0, block| {
                for (di, dst) in block.chunks_mut(cols).enumerate() {
                    dst.copy_from_slice(self.row(idx[r0 + di] as usize));
                }
            },
        );
        out
    }

    /// Scatter-add of `src` rows back into `self` (`self[idx[i]] += src[i]`).
    ///
    /// This is the backward of [`Dense::gather_rows`]; duplicate indices
    /// accumulate.
    pub fn scatter_add_rows(&mut self, idx: &[u32], src: &Dense) {
        assert_eq!(idx.len(), src.rows, "scatter_add_rows length mismatch");
        assert_eq!(self.cols, src.cols, "scatter_add_rows width mismatch");
        for (i, &r) in idx.iter().enumerate() {
            let dst = &mut self.data[r as usize * self.cols..(r as usize + 1) * self.cols];
            for (d, &s) in dst.iter_mut().zip(src.row(i)) {
                *d += s;
            }
        }
    }

    /// Overwrites the given rows from `src` (`self[idx[i]] = src[i]`) — the
    /// scatter that writes frontier-recomputed rows back into a cached
    /// activation matrix. Later duplicates win, matching a serial loop.
    ///
    /// # Panics
    /// Panics on a length/width mismatch or an out-of-range row index —
    /// all validated up front, before any row is written.
    pub fn set_rows(&mut self, idx: &[u32], src: &Dense) {
        assert_eq!(idx.len(), src.rows, "set_rows length mismatch");
        assert_eq!(self.cols, src.cols, "set_rows width mismatch");
        assert!(
            idx.iter().all(|&r| (r as usize) < self.rows),
            "set_rows row index out of range"
        );
        for (i, &r) in idx.iter().enumerate() {
            self.data[r as usize * self.cols..(r as usize + 1) * self.cols]
                .copy_from_slice(src.row(i));
        }
    }

    /// Sum of all elements, in the fixed-chunk order of
    /// [`pool::reduce_chunks`] (thread-count invariant; identical to a
    /// plain serial sum for matrices of at most one reduction chunk).
    pub fn sum(&self) -> f32 {
        pool::reduce_chunks(&self.data, |c| c.iter().sum())
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm (fixed-chunk reduction, like [`Dense::sum`]).
    pub fn frob_norm(&self) -> f32 {
        pool::reduce_chunks(&self.data, |c| c.iter().map(|v| v * v).sum()).sqrt()
    }

    /// Largest absolute element difference against `other`.
    pub fn max_abs_diff(&self, other: &Dense) -> f32 {
        self.assert_same_shape(other, "max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// True when every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Dense, tol: f32) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Dense {
        Dense::from_vec(rows, cols, data.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matmul(&Dense::eye(2)), a);
        assert_eq!(Dense::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_transa_matches_explicit() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(a.matmul_transa(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_transb_matches_explicit() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(2, 3, &[1.0, 0.0, 2.0, 0.0, 1.0, 2.0]);
        assert_eq!(a.matmul_transb(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b), m(1, 3, &[5.0, 7.0, 9.0]));
        assert_eq!(b.sub(&a), m(1, 3, &[3.0, 3.0, 3.0]));
        assert_eq!(a.hadamard(&b), m(1, 3, &[4.0, 10.0, 18.0]));
        assert_eq!(a.scale(2.0), m(1, 3, &[2.0, 4.0, 6.0]));
    }

    #[test]
    fn bias_broadcast_and_backward() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let bias = m(1, 2, &[10.0, 20.0]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(out, m(2, 2, &[11.0, 22.0, 13.0, 24.0]));
        assert_eq!(a.sum_rows(), m(1, 2, &[4.0, 6.0]));
    }

    #[test]
    fn concat_and_narrow_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 1, &[9.0, 8.0]);
        let cat = a.concat_cols(&b);
        assert_eq!(cat.shape(), (2, 3));
        assert_eq!(cat.narrow_cols(0, 2), a);
        assert_eq!(cat.narrow_cols(2, 1), b);
    }

    #[test]
    fn add_into_cols_accumulates() {
        let mut a = Dense::zeros(2, 3);
        a.add_into_cols(1, &m(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        a.add_into_cols(1, &m(2, 2, &[1.0, 1.0, 1.0, 1.0]));
        assert_eq!(a, m(2, 3, &[0.0, 2.0, 3.0, 0.0, 4.0, 5.0]));
    }

    #[test]
    fn vstack_row_block_roundtrip() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let s = Dense::vstack(&[&a, &b]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row_block(0, 1), a);
        assert_eq!(s.row_block(1, 2), b);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g, m(3, 2, &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]));
        let mut acc = Dense::zeros(3, 2);
        acc.scatter_add_rows(&[2, 0, 2], &g);
        // Row 2 was gathered twice, so it accumulates twice.
        assert_eq!(acc, m(3, 2, &[1.0, 2.0, 0.0, 0.0, 10.0, 12.0]));
    }

    #[test]
    fn set_rows_overwrites_targets() {
        let mut a = Dense::zeros(4, 2);
        a.set_rows(&[2, 0], &m(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(a, m(4, 2, &[3.0, 4.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0]));
        // Later duplicates win.
        a.set_rows(&[1, 1], &m(2, 2, &[9.0, 9.0, 7.0, 8.0]));
        assert_eq!(a.row(1), &[7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "set_rows row index out of range")]
    fn set_rows_index_panics() {
        let mut a = Dense::zeros(2, 2);
        a.set_rows(&[2], &Dense::zeros(1, 2));
    }

    #[test]
    fn reductions() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.frob_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_panics() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_transa shape mismatch")]
    fn matmul_transa_shape_panics() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(3, 2);
        let _ = a.matmul_transa(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_transb shape mismatch")]
    fn matmul_transb_shape_panics() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(3, 2);
        let _ = a.matmul_transb(&b);
    }

    #[test]
    fn empty_shapes_produce_empty_products() {
        // Degenerate shapes must not trip the parallel dispatch.
        let a = Dense::zeros(0, 3);
        let b = Dense::zeros(3, 4);
        assert_eq!(a.matmul(&b).shape(), (0, 4));
        let c = Dense::zeros(5, 0);
        let d = Dense::zeros(0, 2);
        assert_eq!(c.matmul(&d).shape(), (5, 2));
        assert_eq!(c.matmul(&d), Dense::zeros(5, 2));
        assert_eq!(a.matmul_transa(&Dense::zeros(0, 2)).shape(), (3, 2));
        assert_eq!(c.matmul_transb(&Dense::zeros(7, 0)).shape(), (5, 7));
    }
}
