//! Dense row-major `f32` matrices and the kernels dynamic-GNN training needs.
//!
//! The GPU kernels of the original system (PyTorch/CUDA) are replaced by
//! cache-blocked CPU loops. All three GEMM variants run one shared core
//! (`gemm_block`): the vectorizable i-k-j (axpy) order over
//! `GEMM_KC`-row k-panels and `GEMM_JC`-wide column strips, with
//! `GEMM_MR` output rows register-blocked per pass so one streamed strip
//! of B feeds several accumulator rows. The transposed variants
//! (`matmul_transa`, `matmul_transb`) pack the transposed operand once
//! per call — an O(n²) tiled copy that buys the O(n³) loop contiguous,
//! autovectorization-friendly accesses instead of a serial-dependency
//! dot product down a strided column.
//!
//! Blocking is legal under the bit-identity rule because every
//! `out[i][j]` still accumulates its `k` contributions serially, in
//! increasing `k`, from `+0.0`, with one `mul`+`add` rounding per step —
//! the same scalar sequence the naive triple loop performs; panels and
//! register quads only reorder work *across* output elements, never
//! within one.
//!
//! The hot kernels (`matmul*`, element-wise maps, reductions) run on the
//! intra-rank thread pool ([`crate::pool`]) when the matrix is large enough:
//! each pool thread produces a disjoint contiguous block of the output with
//! the same inner loop the serial kernel uses, so results are bit-identical
//! at every thread count. Scalar reductions use the fixed-chunk order of
//! [`crate::pool::reduce_chunks`], which is likewise thread-count invariant.

use std::fmt;

use crate::simd::{self, F32x8};
use crate::{pool, workspace};

/// A dense row-major matrix of `f32` values.
///
/// Backing buffers come from the per-thread [`workspace`] arena when one is
/// engaged, so constructors in hot loops reuse retired buffers instead of
/// hitting the allocator; semantics are identical either way.
#[derive(PartialEq)]
pub struct Dense {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Clone for Dense {
    fn clone(&self) -> Self {
        // Without an engaged arena a plain slice copy beats scratch-take +
        // copy (the fallback take zero-fills first); with one, reuse wins.
        if workspace::is_engaged() {
            let mut out = Dense::scratch(self.rows, self.cols);
            out.data.copy_from_slice(&self.data);
            out
        } else {
            workspace::note_fresh();
            Dense {
                rows: self.rows,
                cols: self.cols,
                data: self.data.clone(),
            }
        }
    }
}

impl fmt::Debug for Dense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dense({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 36 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

/// Cache-blocking panel height: rows of the (packed) B operand processed
/// per k-panel, keeping a `GEMM_KC × GEMM_JC` f32 tile of B (16 KiB)
/// resident in L1 across the register-blocked row quads.
const GEMM_KC: usize = 64;
/// Cache-blocking strip width in f32 lanes — a multiple of the widest
/// vector width (16 lanes of AVX-512) so full strips vectorize with no
/// scalar tail.
const GEMM_JC: usize = 64;
/// Register-blocking factor: output rows sharing one streamed B strip per
/// micro-kernel pass, quartering B traffic.
const GEMM_MR: usize = 4;
/// Register micro-tile width in f32 lanes: two [`F32x8`] vectors per
/// output row, so the `GEMM_MR × GEMM_NR` tile holds eight accumulator
/// vectors in registers across a whole k-panel (loaded from and stored to
/// `out` once per panel instead of once per k).
const GEMM_NR: usize = 2 * simd::LANES;

// The shared blocked GEMM core: accumulates `a_block (m×kk) · b (kk×n)`
// into `out` (m×n), cache-blocked `GEMM_KC × GEMM_JC` with `GEMM_MR`-row
// register blocking.
//
// Bit-identity: every `out[i][j]` starts at `+0.0` and accumulates its
// `k` contributions serially in increasing `k` with one `mul`+`add`
// rounding per step — exactly the naive triple loop's scalar sequence —
// so any blocking, and any row partition of this routine across pool
// threads, yields identical bits.
//
// `skip_zeros` may only be set when every element of `b` is finite. A
// `±0.0 · finite` product is `±0.0`, and adding `±0.0` to an
// accumulator that started at `+0.0` can never change its bits (in
// round-to-nearest the accumulator can never itself become `-0.0`), so
// the skip is a pure optimisation for sparse-ish A. With a non-finite
// `b` the caller must clear it so `0.0 · ∞ = NaN` propagates.
//
// Compiled twice (portable + AVX2) and runtime-dispatched; see
// [`crate::simd`] for why the two compiles are bit-identical.
simd::simd_dispatch!(fn gemm_block = gemm_block_impl / gemm_block_avx2(
    out: &mut [f32], a_block: &[f32], kk: usize, b: &[f32], n: usize, skip_zeros: bool
));

#[inline(always)]
fn gemm_block_impl(
    out: &mut [f32],
    a_block: &[f32],
    kk: usize,
    b: &[f32],
    n: usize,
    skip_zeros: bool,
) {
    out.fill(0.0);
    if n == 0 || kk == 0 {
        return;
    }
    let m = out.len() / n;
    for j0 in (0..n).step_by(GEMM_JC) {
        let j1 = (j0 + GEMM_JC).min(n);
        for k0 in (0..kk).step_by(GEMM_KC) {
            let k1 = (k0 + GEMM_KC).min(kk);
            let mut i = 0;
            while i + GEMM_MR <= m {
                let (q0, rest) = out[i * n..(i + GEMM_MR) * n].split_at_mut(n);
                let (q1, rest) = rest.split_at_mut(n);
                let (q2, q3) = rest.split_at_mut(n);
                let a = [
                    &a_block[i * kk..(i + 1) * kk],
                    &a_block[(i + 1) * kk..(i + 2) * kk],
                    &a_block[(i + 2) * kk..(i + 3) * kk],
                    &a_block[(i + 3) * kk..(i + 4) * kk],
                ];
                micro_quad(q0, q1, q2, q3, a, k0, k1, b, n, j0, j1, skip_zeros);
                i += GEMM_MR;
            }
            while i < m {
                let q = &mut out[i * n..(i + 1) * n];
                let a_row = &a_block[i * kk..(i + 1) * kk];
                micro_row(q, a_row, k0, k1, b, n, j0, j1, skip_zeros);
                i += 1;
            }
        }
    }
}

/// The `GEMM_MR × GEMM_NR` register micro-kernel: for four output rows
/// (`q0..q3`, full `n`-wide row slices) and the column strip `j0..j1`,
/// accumulates the k-panel `k0..k1` with eight [`F32x8`] accumulators
/// held in registers for the whole panel. Tiles cascade `GEMM_NR` → one
/// vector → scalar, so every strip width is covered; per output element
/// the arithmetic is the same serial increasing-k mul+add sequence as the
/// scalar loop (lanes only span adjacent columns), so bits are unchanged.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro_quad(
    q0: &mut [f32],
    q1: &mut [f32],
    q2: &mut [f32],
    q3: &mut [f32],
    a: [&[f32]; GEMM_MR],
    k0: usize,
    k1: usize,
    b: &[f32],
    n: usize,
    j0: usize,
    j1: usize,
    skip_zeros: bool,
) {
    let mut j = j0;
    while j1 - j >= GEMM_NR {
        let jh = j + simd::LANES;
        let mut c00 = F32x8::load(&q0[j..]);
        let mut c01 = F32x8::load(&q0[jh..]);
        let mut c10 = F32x8::load(&q1[j..]);
        let mut c11 = F32x8::load(&q1[jh..]);
        let mut c20 = F32x8::load(&q2[j..]);
        let mut c21 = F32x8::load(&q2[jh..]);
        let mut c30 = F32x8::load(&q3[j..]);
        let mut c31 = F32x8::load(&q3[jh..]);
        for k in k0..k1 {
            let (a0, a1, a2, a3) = (a[0][k], a[1][k], a[2][k], a[3][k]);
            if skip_zeros && a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                continue;
            }
            let bk = &b[k * n + j..];
            let b0 = F32x8::load(bk);
            let b1 = F32x8::load(&bk[simd::LANES..]);
            let v0 = F32x8::splat(a0);
            c00 = c00.add_mul(v0, b0);
            c01 = c01.add_mul(v0, b1);
            let v1 = F32x8::splat(a1);
            c10 = c10.add_mul(v1, b0);
            c11 = c11.add_mul(v1, b1);
            let v2 = F32x8::splat(a2);
            c20 = c20.add_mul(v2, b0);
            c21 = c21.add_mul(v2, b1);
            let v3 = F32x8::splat(a3);
            c30 = c30.add_mul(v3, b0);
            c31 = c31.add_mul(v3, b1);
        }
        c00.store(&mut q0[j..]);
        c01.store(&mut q0[jh..]);
        c10.store(&mut q1[j..]);
        c11.store(&mut q1[jh..]);
        c20.store(&mut q2[j..]);
        c21.store(&mut q2[jh..]);
        c30.store(&mut q3[j..]);
        c31.store(&mut q3[jh..]);
        j += GEMM_NR;
    }
    if j1 - j >= simd::LANES {
        let mut c0 = F32x8::load(&q0[j..]);
        let mut c1 = F32x8::load(&q1[j..]);
        let mut c2 = F32x8::load(&q2[j..]);
        let mut c3 = F32x8::load(&q3[j..]);
        for k in k0..k1 {
            let (a0, a1, a2, a3) = (a[0][k], a[1][k], a[2][k], a[3][k]);
            if skip_zeros && a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                continue;
            }
            let bv = F32x8::load(&b[k * n + j..]);
            c0 = c0.add_mul(F32x8::splat(a0), bv);
            c1 = c1.add_mul(F32x8::splat(a1), bv);
            c2 = c2.add_mul(F32x8::splat(a2), bv);
            c3 = c3.add_mul(F32x8::splat(a3), bv);
        }
        c0.store(&mut q0[j..]);
        c1.store(&mut q1[j..]);
        c2.store(&mut q2[j..]);
        c3.store(&mut q3[j..]);
        j += simd::LANES;
    }
    if j < j1 {
        for k in k0..k1 {
            let (a0, a1, a2, a3) = (a[0][k], a[1][k], a[2][k], a[3][k]);
            if skip_zeros && a0 == 0.0 && a1 == 0.0 && a2 == 0.0 && a3 == 0.0 {
                continue;
            }
            let bk = &b[k * n..];
            for jj in j..j1 {
                let bv = bk[jj];
                q0[jj] += a0 * bv;
                q1[jj] += a1 * bv;
                q2[jj] += a2 * bv;
                q3[jj] += a3 * bv;
            }
        }
    }
}

/// Single-row tail of the micro-kernel (output row counts not divisible
/// by `GEMM_MR`); same column cascade and bit-identity argument as
/// [`micro_quad`].
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn micro_row(
    q: &mut [f32],
    a_row: &[f32],
    k0: usize,
    k1: usize,
    b: &[f32],
    n: usize,
    j0: usize,
    j1: usize,
    skip_zeros: bool,
) {
    let mut j = j0;
    while j1 - j >= GEMM_NR {
        let jh = j + simd::LANES;
        let mut c0 = F32x8::load(&q[j..]);
        let mut c1 = F32x8::load(&q[jh..]);
        for k in k0..k1 {
            let av = a_row[k];
            if skip_zeros && av == 0.0 {
                continue;
            }
            let bk = &b[k * n + j..];
            let v = F32x8::splat(av);
            c0 = c0.add_mul(v, F32x8::load(bk));
            c1 = c1.add_mul(v, F32x8::load(&bk[simd::LANES..]));
        }
        c0.store(&mut q[j..]);
        c1.store(&mut q[jh..]);
        j += GEMM_NR;
    }
    if j1 - j >= simd::LANES {
        let mut c0 = F32x8::load(&q[j..]);
        for k in k0..k1 {
            let av = a_row[k];
            if skip_zeros && av == 0.0 {
                continue;
            }
            c0 = c0.add_mul(F32x8::splat(av), F32x8::load(&b[k * n + j..]));
        }
        c0.store(&mut q[j..]);
        j += simd::LANES;
    }
    if j < j1 {
        for k in k0..k1 {
            let av = a_row[k];
            if skip_zeros && av == 0.0 {
                continue;
            }
            let bk = &b[k * n..];
            for jj in j..j1 {
                q[jj] += av * bk[jj];
            }
        }
    }
}

/// Whether the zero-skip fast path may engage against this `b` operand:
/// worth the O(len) scan only when the output is tall enough to amortize
/// it, and legal only when `b` is entirely finite (see `gemm_block`).
/// The decision never changes results — with finite `b` skipped and
/// unskipped paths are bit-identical.
fn allow_zero_skip(out_rows: usize, b: &[f32]) -> bool {
    out_rows >= 16 && b.iter().all(|v| v.is_finite())
}

impl Dense {
    /// An all-zeros matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: workspace::take_zeroed(rows * cols),
        }
    }

    /// A matrix of the given shape with *unspecified* contents (recycled
    /// bits when a [`workspace`] is engaged). Strictly for kernels that
    /// write every element before any read — never hand one out unfilled.
    pub fn scratch(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: workspace::take_scratch(rows * cols),
        }
    }

    /// An all-ones matrix of the given shape.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::full(rows, cols, 1.0)
    }

    /// A matrix filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        let mut out = Self::scratch(rows, cols);
        out.data.fill(value);
        out
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// The identity matrix of order `n`.
    pub fn eye(n: usize) -> Self {
        Self::from_fn(n, n, |r, c| if r == c { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major data.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw row-major data.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the raw data vector.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product `self * other`, row-parallel over the output and
    /// cache/register-blocked (see the module docs for why blocking keeps
    /// results bit-identical to the naive triple loop).
    ///
    /// Rows of `self` that are exactly `±0.0` may be skipped as a fast
    /// path, but only when `other` is entirely finite — the skip is then
    /// provably bit-neutral, so the result is *always* the plain IEEE
    /// product: `0.0 · ∞ = NaN` propagates, and all three `matmul*`
    /// variants agree bitwise with their explicit-transpose forms on any
    /// input.
    ///
    /// # Panics
    /// Panics when the inner dimensions disagree — validated up front,
    /// before any output allocation.
    pub fn matmul(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let (kk, n) = (self.cols, other.cols);
        // Scratch output: each block is zeroed just before its
        // accumulation (cache-warm, and skips the arena's up-front fill).
        let mut out = Dense::scratch(self.rows, n);
        let skip = allow_zero_skip(self.rows, &other.data);
        let work = self.rows.saturating_mul(kk).saturating_mul(n);
        pool::par_rows(&mut out.data, n, work, |r0, block| {
            let rows = block.len() / n;
            let a_block = &self.data[r0 * kk..(r0 + rows) * kk];
            gemm_block(block, a_block, kk, &other.data, n, skip);
        });
        out
    }

    /// Matrix product `selfᵀ * other`: packs `selfᵀ` once per call (a
    /// tiled O(rows·cols) copy) and runs the same blocked row-parallel
    /// core as [`Dense::matmul`], which streams contiguous rows instead
    /// of strided columns. Per output element the `k` accumulation order
    /// is unchanged, so the packing is bitwise invisible; zero-skip and
    /// non-finite semantics are exactly [`Dense::matmul`]'s.
    ///
    /// # Panics
    /// Panics when the row counts disagree — validated up front, before
    /// any output allocation.
    pub fn matmul_transa(&self, other: &Dense) -> Dense {
        assert_eq!(self.rows, other.rows, "matmul_transa shape mismatch");
        let (kk, n) = (self.rows, other.cols);
        let at = self.transpose();
        let mut out = Dense::scratch(self.cols, n);
        let skip = allow_zero_skip(self.cols, &other.data);
        let work = kk.saturating_mul(self.cols).saturating_mul(n);
        pool::par_rows(&mut out.data, n, work, |i0, block| {
            let rows = block.len() / n;
            let a_block = &at.data[i0 * kk..(i0 + rows) * kk];
            gemm_block(block, a_block, kk, &other.data, n, skip);
        });
        workspace::recycle(at);
        out
    }

    /// Matrix product `self * otherᵀ`: packs `otherᵀ` once per call and
    /// runs the same blocked row-parallel core as [`Dense::matmul`].
    ///
    /// The pack-and-transpose replaces the old per-element dot product —
    /// a serial FP dependency chain the compiler cannot vectorize — with
    /// the vectorizable axpy order; since the dot product accumulated
    /// each `out[i][j]` in the same increasing-`k` order from `0.0`, the
    /// rewrite is bit-identical on every input (`BENCH_parallel.json`
    /// had this kernel ~4x slower than `matmul` at the same size).
    ///
    /// # Panics
    /// Panics when the column counts disagree — validated up front, before
    /// any output allocation.
    pub fn matmul_transb(&self, other: &Dense) -> Dense {
        assert_eq!(self.cols, other.cols, "matmul_transb shape mismatch");
        let (kk, n) = (self.cols, other.rows);
        let bt = other.transpose();
        let mut out = Dense::scratch(self.rows, n);
        let skip = allow_zero_skip(self.rows, &bt.data);
        let work = self.rows.saturating_mul(n).saturating_mul(kk);
        pool::par_rows(&mut out.data, n, work, |r0, block| {
            let rows = block.len() / n;
            let a_block = &self.data[r0 * kk..(r0 + rows) * kk];
            gemm_block(block, a_block, kk, &bt.data, n, skip);
        });
        workspace::recycle(bt);
        out
    }

    /// The transposed matrix — a tiled copy (32×32 tiles so both source
    /// rows and destination rows stay cache-resident), partitioned over
    /// output row blocks under the memory-bound pool gate. Pure data
    /// movement: tiling and partitioning cannot affect values.
    pub fn transpose(&self) -> Dense {
        const TILE: usize = 32;
        let (rows, cols) = (self.rows, self.cols);
        let mut out = Dense::scratch(cols, rows);
        let work = self.data.len().saturating_mul(2);
        pool::par_rows_membound(&mut out.data, rows, work, |c0, block| {
            let cblk = block.len() / rows;
            for rt in (0..rows).step_by(TILE) {
                let r1 = (rt + TILE).min(rows);
                for ct in (0..cblk).step_by(TILE) {
                    let c1 = (ct + TILE).min(cblk);
                    for c in ct..c1 {
                        let dst = &mut block[c * rows + rt..c * rows + r1];
                        for (o, r) in dst.iter_mut().zip(rt..r1) {
                            *o = self.data[r * cols + c0 + c];
                        }
                    }
                }
            }
        });
        out
    }

    fn assert_same_shape(&self, other: &Dense, op: &str) {
        assert_eq!(self.shape(), other.shape(), "{op}: shape mismatch");
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &Dense) -> Dense {
        self.assert_same_shape(other, "add");
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    pub fn sub(&self, other: &Dense) -> Dense {
        self.assert_same_shape(other, "sub");
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Dense) -> Dense {
        self.assert_same_shape(other, "hadamard");
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place `self += other` (element-parallel).
    pub fn add_assign(&mut self, other: &Dense) {
        self.assert_same_shape(other, "add_assign");
        pool::par_elems(&mut self.data, |start, chunk| {
            let n = chunk.len();
            for (a, &b) in chunk.iter_mut().zip(&other.data[start..start + n]) {
                *a += b;
            }
        });
    }

    /// In-place `self += alpha * other` (element-parallel).
    pub fn axpy(&mut self, alpha: f32, other: &Dense) {
        self.assert_same_shape(other, "axpy");
        pool::par_elems(&mut self.data, |start, chunk| {
            let n = chunk.len();
            for (a, &b) in chunk.iter_mut().zip(&other.data[start..start + n]) {
                *a += alpha * b;
            }
        });
    }

    /// Scalar multiple `alpha * self`.
    pub fn scale(&self, alpha: f32) -> Dense {
        self.map(|v| v * alpha)
    }

    /// In-place scalar multiply (element-parallel).
    pub fn scale_assign(&mut self, alpha: f32) {
        pool::par_elems(&mut self.data, |_, chunk| {
            for v in chunk {
                *v *= alpha;
            }
        });
    }

    /// Applies `f` element-wise, returning a new matrix (element-parallel,
    /// which is why `f` must be `Sync`).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Dense {
        let mut out = Dense::scratch(self.rows, self.cols);
        pool::par_elems(&mut out.data, |start, chunk| {
            let n = chunk.len();
            for (o, &v) in chunk.iter_mut().zip(&self.data[start..start + n]) {
                *o = f(v);
            }
        });
        out
    }

    /// Element-wise combination of two equally-shaped matrices
    /// (element-parallel, which is why `f` must be `Sync`).
    pub fn zip_map(&self, other: &Dense, f: impl Fn(f32, f32) -> f32 + Sync) -> Dense {
        self.assert_same_shape(other, "zip_map");
        let mut out = Dense::scratch(self.rows, self.cols);
        pool::par_elems(&mut out.data, |start, chunk| {
            let n = chunk.len();
            let a = &self.data[start..start + n];
            let b = &other.data[start..start + n];
            for ((o, &x), &y) in chunk.iter_mut().zip(a).zip(b) {
                *o = f(x, y);
            }
        });
        out
    }

    /// Adds a `1 x cols` row vector to every row (bias broadcast),
    /// row-parallel.
    pub fn add_row_broadcast(&self, bias: &Dense) -> Dense {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        let cols = self.cols;
        pool::par_rows(&mut out.data, cols, self.data.len(), |_, block| {
            for row in block.chunks_mut(cols) {
                for (o, &b) in row.iter_mut().zip(&bias.data) {
                    *o += b;
                }
            }
        });
        out
    }

    /// Sums the rows into a `1 x cols` vector (the backward of a bias
    /// broadcast). Column-parallel: each output column accumulates its own
    /// rows top-to-bottom, matching the serial order exactly.
    pub fn sum_rows(&self) -> Dense {
        let mut out = Dense::zeros(1, self.cols);
        let cols = self.cols;
        let rows = self.rows;
        // The work is the full input scan (rows × cols), not the short
        // output, so the engage decision must be weighted accordingly.
        pool::par_elems_weighted(&mut out.data, self.data.len(), |c0, chunk| {
            for r in 0..rows {
                let src = &self.data[r * cols + c0..r * cols + c0 + chunk.len()];
                for (o, &v) in chunk.iter_mut().zip(src) {
                    *o += v;
                }
            }
        });
        out
    }

    /// Horizontal concatenation `[self | other]`.
    pub fn concat_cols(&self, other: &Dense) -> Dense {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let cols = self.cols + other.cols;
        let mut out = Dense::scratch(self.rows, cols);
        for r in 0..self.rows {
            out.data[r * cols..r * cols + self.cols].copy_from_slice(self.row(r));
            out.data[r * cols + self.cols..(r + 1) * cols].copy_from_slice(other.row(r));
        }
        out
    }

    /// Copies columns `[start, start+len)` into a new matrix.
    pub fn narrow_cols(&self, start: usize, len: usize) -> Dense {
        assert!(start + len <= self.cols, "narrow_cols out of range");
        let mut out = Dense::scratch(self.rows, len);
        for r in 0..self.rows {
            out.row_mut(r)
                .copy_from_slice(&self.row(r)[start..start + len]);
        }
        out
    }

    /// Embeds this matrix into a `rows x total_cols` zero matrix at column
    /// `start` — the backward of [`Dense::narrow_cols`], fused into one
    /// pass. Bitwise identical to `zeros` + [`Dense::add_into_cols`]: the
    /// strip stores `0.0 + v` (so a `-0.0` gradient lands as `+0.0`,
    /// exactly as the add would produce).
    pub fn pad_cols(&self, total_cols: usize, start: usize) -> Dense {
        assert!(start + self.cols <= total_cols, "pad_cols out of range");
        if workspace::is_engaged() {
            let mut out = Dense::scratch(self.rows, total_cols);
            for r in 0..self.rows {
                let dst = &mut out.data[r * total_cols..(r + 1) * total_cols];
                dst[..start].fill(0.0);
                for (o, &v) in dst[start..start + self.cols].iter_mut().zip(self.row(r)) {
                    *o = 0.0 + v;
                }
                dst[start + self.cols..].fill(0.0);
            }
            out
        } else {
            // Without an arena, `zeros` is a cheap calloc; keep the
            // two-step form.
            let mut out = Dense::zeros(self.rows, total_cols);
            out.add_into_cols(start, self);
            out
        }
    }

    /// Adds `src` into columns `[start, start+src.cols)` (backward of `narrow_cols`).
    pub fn add_into_cols(&mut self, start: usize, src: &Dense) {
        assert_eq!(self.rows, src.rows, "add_into_cols row mismatch");
        assert!(start + src.cols <= self.cols, "add_into_cols out of range");
        for r in 0..self.rows {
            let dst = &mut self.data[r * self.cols + start..r * self.cols + start + src.cols];
            for (d, &s) in dst.iter_mut().zip(src.row(r)) {
                *d += s;
            }
        }
    }

    /// Copies rows `[start, start+len)` into a new matrix.
    pub fn row_block(&self, start: usize, len: usize) -> Dense {
        assert!(start + len <= self.rows, "row_block out of range");
        let src = &self.data[start * self.cols..(start + len) * self.cols];
        if workspace::is_engaged() {
            let mut out = Dense::scratch(len, self.cols);
            out.data.copy_from_slice(src);
            out
        } else {
            workspace::note_fresh();
            Dense {
                rows: len,
                cols: self.cols,
                data: src.to_vec(),
            }
        }
    }

    /// Vertically stacks matrices that share a column count.
    pub fn vstack(parts: &[&Dense]) -> Dense {
        assert!(!parts.is_empty(), "vstack of nothing");
        let cols = parts[0].cols;
        let rows: usize = parts.iter().map(|p| p.rows).sum();
        if workspace::is_engaged() {
            let mut out = Dense::scratch(rows, cols);
            let mut start = 0usize;
            for p in parts {
                assert_eq!(p.cols, cols, "vstack column mismatch");
                out.data[start..start + p.data.len()].copy_from_slice(&p.data);
                start += p.data.len();
            }
            out
        } else {
            workspace::note_fresh();
            let mut data = Vec::with_capacity(rows * cols);
            for p in parts {
                assert_eq!(p.cols, cols, "vstack column mismatch");
                data.extend_from_slice(&p.data);
            }
            Dense { rows, cols, data }
        }
    }

    /// Gathers the given rows into a new matrix (`out[i] = self[idx[i]]`),
    /// row-parallel.
    pub fn gather_rows(&self, idx: &[u32]) -> Dense {
        let cols = self.cols;
        let mut out = Dense::scratch(idx.len(), cols);
        pool::par_rows(
            &mut out.data,
            cols,
            idx.len().saturating_mul(cols),
            |r0, block| {
                for (di, dst) in block.chunks_mut(cols).enumerate() {
                    dst.copy_from_slice(self.row(idx[r0 + di] as usize));
                }
            },
        );
        out
    }

    /// Scatter-add of `src` rows back into `self` (`self[idx[i]] += src[i]`).
    ///
    /// This is the backward of [`Dense::gather_rows`]; duplicate indices
    /// accumulate.
    pub fn scatter_add_rows(&mut self, idx: &[u32], src: &Dense) {
        assert_eq!(idx.len(), src.rows, "scatter_add_rows length mismatch");
        assert_eq!(self.cols, src.cols, "scatter_add_rows width mismatch");
        for (i, &r) in idx.iter().enumerate() {
            let dst = &mut self.data[r as usize * self.cols..(r as usize + 1) * self.cols];
            for (d, &s) in dst.iter_mut().zip(src.row(i)) {
                *d += s;
            }
        }
    }

    /// Overwrites the given rows from `src` (`self[idx[i]] = src[i]`) — the
    /// scatter that writes frontier-recomputed rows back into a cached
    /// activation matrix. Later duplicates win, matching a serial loop.
    ///
    /// # Panics
    /// Panics on a length/width mismatch or an out-of-range row index —
    /// all validated up front, before any row is written.
    pub fn set_rows(&mut self, idx: &[u32], src: &Dense) {
        assert_eq!(idx.len(), src.rows, "set_rows length mismatch");
        assert_eq!(self.cols, src.cols, "set_rows width mismatch");
        assert!(
            idx.iter().all(|&r| (r as usize) < self.rows),
            "set_rows row index out of range"
        );
        for (i, &r) in idx.iter().enumerate() {
            self.data[r as usize * self.cols..(r as usize + 1) * self.cols]
                .copy_from_slice(src.row(i));
        }
    }

    /// Sum of all elements, in the fixed-chunk order of
    /// [`pool::reduce_chunks`] (thread-count invariant; identical to a
    /// plain serial sum for matrices of at most one reduction chunk).
    pub fn sum(&self) -> f32 {
        pool::reduce_chunks(&self.data, |c| c.iter().sum())
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Frobenius norm (fixed-chunk reduction, like [`Dense::sum`]).
    pub fn frob_norm(&self) -> f32 {
        pool::reduce_chunks(&self.data, |c| c.iter().map(|v| v * v).sum()).sqrt()
    }

    /// Largest absolute element difference against `other`.
    pub fn max_abs_diff(&self, other: &Dense) -> f32 {
        self.assert_same_shape(other, "max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// True when every element differs from `other` by at most `tol`.
    pub fn approx_eq(&self, other: &Dense, tol: f32) -> bool {
        self.shape() == other.shape() && self.max_abs_diff(other) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, data: &[f32]) -> Dense {
        Dense::from_vec(rows, cols, data.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.matmul(&Dense::eye(2)), a);
        assert_eq!(Dense::eye(2).matmul(&a), a);
    }

    #[test]
    fn matmul_transa_matches_explicit() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(3, 2, &[1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        assert_eq!(a.matmul_transa(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn matmul_transb_matches_explicit() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = m(2, 3, &[1.0, 0.0, 2.0, 0.0, 1.0, 2.0]);
        assert_eq!(a.matmul_transb(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn zero_rows_propagate_nonfinite_b() {
        // The zero-skip fast path is gated off whenever B has a
        // non-finite entry, so 0·∞ = NaN and -0.0 coefficients propagate
        // exactly as the naive IEEE triple loop would.
        let a = m(2, 2, &[0.0, 1.0, -0.0, 2.0]);
        let b = m(2, 2, &[f32::INFINITY, 1.0, 1.0, 1.0]);
        let c = a.matmul(&b);
        assert!(c.get(0, 0).is_nan(), "0·inf must yield NaN");
        assert!(c.get(1, 0).is_nan(), "-0·inf must yield NaN");
        assert_eq!(c.get(0, 1), 1.0);
        assert_eq!(c.get(1, 1), 2.0);
        // All variants agree bitwise with the explicit-transpose forms.
        let bits = |x: &Dense| x.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.matmul_transb(&b.transpose())), bits(&c));
        assert_eq!(bits(&a.transpose().matmul_transa(&b)), bits(&c));
        // NaN in B under a zero coefficient propagates too.
        let bn = m(2, 1, &[f32::NAN, 5.0]);
        assert!(a.matmul(&bn).get(0, 0).is_nan());
    }

    #[test]
    fn zero_skip_is_bit_neutral_on_finite_data() {
        // Tall-enough A with exact-zero rows: the skip path engages (B is
        // finite) and must produce the same bits as the explicit
        // transpose forms, which exercise different skip decisions.
        let a = Dense::from_fn(40, 24, |r, c| {
            if r % 3 == 0 {
                if c % 2 == 0 {
                    0.0
                } else {
                    -0.0
                }
            } else {
                (r as f32 - 20.0) * 0.25 + c as f32 * 0.125
            }
        });
        let b = Dense::from_fn(24, 40, |r, c| ((r * 7 + c * 3) % 13) as f32 - 6.0);
        let via_transb = a.matmul_transb(&b.transpose());
        let plain = a.matmul(&b);
        assert_eq!(plain.shape(), via_transb.shape());
        let identical = plain
            .data()
            .iter()
            .zip(via_transb.data())
            .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(identical, "skip path diverged from explicit transpose");
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = m(1, 3, &[1.0, 2.0, 3.0]);
        let b = m(1, 3, &[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b), m(1, 3, &[5.0, 7.0, 9.0]));
        assert_eq!(b.sub(&a), m(1, 3, &[3.0, 3.0, 3.0]));
        assert_eq!(a.hadamard(&b), m(1, 3, &[4.0, 10.0, 18.0]));
        assert_eq!(a.scale(2.0), m(1, 3, &[2.0, 4.0, 6.0]));
    }

    #[test]
    fn bias_broadcast_and_backward() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let bias = m(1, 2, &[10.0, 20.0]);
        let out = a.add_row_broadcast(&bias);
        assert_eq!(out, m(2, 2, &[11.0, 22.0, 13.0, 24.0]));
        assert_eq!(a.sum_rows(), m(1, 2, &[4.0, 6.0]));
    }

    #[test]
    fn concat_and_narrow_roundtrip() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = m(2, 1, &[9.0, 8.0]);
        let cat = a.concat_cols(&b);
        assert_eq!(cat.shape(), (2, 3));
        assert_eq!(cat.narrow_cols(0, 2), a);
        assert_eq!(cat.narrow_cols(2, 1), b);
    }

    #[test]
    fn add_into_cols_accumulates() {
        let mut a = Dense::zeros(2, 3);
        a.add_into_cols(1, &m(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        a.add_into_cols(1, &m(2, 2, &[1.0, 1.0, 1.0, 1.0]));
        assert_eq!(a, m(2, 3, &[0.0, 2.0, 3.0, 0.0, 4.0, 5.0]));
    }

    #[test]
    fn vstack_row_block_roundtrip() {
        let a = m(1, 2, &[1.0, 2.0]);
        let b = m(2, 2, &[3.0, 4.0, 5.0, 6.0]);
        let s = Dense::vstack(&[&a, &b]);
        assert_eq!(s.shape(), (3, 2));
        assert_eq!(s.row_block(0, 1), a);
        assert_eq!(s.row_block(1, 2), b);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let a = m(3, 2, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g, m(3, 2, &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]));
        let mut acc = Dense::zeros(3, 2);
        acc.scatter_add_rows(&[2, 0, 2], &g);
        // Row 2 was gathered twice, so it accumulates twice.
        assert_eq!(acc, m(3, 2, &[1.0, 2.0, 0.0, 0.0, 10.0, 12.0]));
    }

    #[test]
    fn set_rows_overwrites_targets() {
        let mut a = Dense::zeros(4, 2);
        a.set_rows(&[2, 0], &m(2, 2, &[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(a, m(4, 2, &[3.0, 4.0, 0.0, 0.0, 1.0, 2.0, 0.0, 0.0]));
        // Later duplicates win.
        a.set_rows(&[1, 1], &m(2, 2, &[9.0, 9.0, 7.0, 8.0]));
        assert_eq!(a.row(1), &[7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "set_rows row index out of range")]
    fn set_rows_index_panics() {
        let mut a = Dense::zeros(2, 2);
        a.set_rows(&[2], &Dense::zeros(1, 2));
    }

    #[test]
    fn reductions() {
        let a = m(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert!((a.frob_norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_panics() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_transa shape mismatch")]
    fn matmul_transa_shape_panics() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(3, 2);
        let _ = a.matmul_transa(&b);
    }

    #[test]
    #[should_panic(expected = "matmul_transb shape mismatch")]
    fn matmul_transb_shape_panics() {
        let a = Dense::zeros(2, 3);
        let b = Dense::zeros(3, 2);
        let _ = a.matmul_transb(&b);
    }

    #[test]
    fn empty_shapes_produce_empty_products() {
        // Degenerate shapes must not trip the parallel dispatch.
        let a = Dense::zeros(0, 3);
        let b = Dense::zeros(3, 4);
        assert_eq!(a.matmul(&b).shape(), (0, 4));
        let c = Dense::zeros(5, 0);
        let d = Dense::zeros(0, 2);
        assert_eq!(c.matmul(&d).shape(), (5, 2));
        assert_eq!(c.matmul(&d), Dense::zeros(5, 2));
        assert_eq!(a.matmul_transa(&Dense::zeros(0, 2)).shape(), (3, 2));
        assert_eq!(c.matmul_transb(&Dense::zeros(7, 0)).shape(), (5, 7));
    }
}
