//! Portable f32 SIMD shim: an 8-lane vector type with bit-exact per-lane
//! semantics, a runtime-dispatched AVX2 compile of each hot kernel, and a
//! software-prefetch hint. Dependency-free; non-x86 targets and Miri take
//! the portable compile automatically.
//!
//! # Bit-identity by construction
//!
//! [`F32x8`] is a 32-byte-aligned `[f32; 8]` and every operation on it is a
//! per-lane scalar loop: one IEEE mul and one IEEE add per accumulation
//! step, never a fused multiply-add. (An FMA rounds once instead of twice
//! and would change low-order bits, breaking every golden capture; Rust
//! does not licence floating-point contraction, so `acc + a * b` stays an
//! unfused mul-then-add in both compiles.) Kernels written against the
//! type are compiled twice — once at the crate's baseline target features
//! and once inside a `#[target_feature(enable = "avx2")]` wrapper, where
//! LLVM lowers the 8-lane loops to 256-bit vector ops — and both compiles
//! perform the same per-element arithmetic in the same order. The
//! vectorized kernels therefore inherit the workspace determinism contract
//! (golden captures, thread-count bit-equality) unchanged: lanes only ever
//! span *different* output elements (adjacent output columns of one row);
//! no output element's serial k/nnz accumulation order is altered.
//!
//! # Dispatch
//!
//! [`enabled`] resolves once per process: [`ENV_SIMD`]`=0` forces the
//! portable compile, otherwise x86_64 hosts with AVX2 take the
//! `#[target_feature]` compile. The choice never affects produced values —
//! CI runs the full equivalence suite under both settings against the same
//! golden captures, which is a transitive bitwise SIMD/scalar parity
//! assertion.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Environment variable: set `DGNN_SIMD=0` to force the portable
/// (baseline-feature) compile of every vectorized kernel. Any other value,
/// or unset, lets runtime feature detection decide.
pub const ENV_SIMD: &str = "DGNN_SIMD";

/// Lane count of [`F32x8`] — the column-group width of the vectorized
/// kernels. Micro-kernel tails cascade down through this to scalar, so
/// any output width is handled; `LANES` only sets the fast-path granularity.
pub const LANES: usize = 8;

/// Tri-state process-wide override for [`enabled`]:
/// 0 = none, 1 = forced portable, 2 = forced AVX2 (when the host has it).
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// True when the `#[target_feature(enable = "avx2")]` compiles of the
/// vectorized kernels are dispatched. False on non-x86_64 targets, under
/// Miri, when the host lacks AVX2, or when [`ENV_SIMD`] is `0`.
///
/// Dispatch never affects produced bits — both compiles run identical
/// per-element IEEE arithmetic — so this is purely a speed switch.
#[inline]
pub fn enabled() -> bool {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => host_supported(),
        _ => {
            static CACHE: OnceLock<bool> = OnceLock::new();
            *CACHE.get_or_init(|| {
                std::env::var(ENV_SIMD).map_or(true, |v| v != "0") && host_supported()
            })
        }
    }
}

/// Forces [`enabled`] on or off process-wide; `None` restores the default
/// env + feature-detection resolution. `Some(true)` still requires host
/// support — it cannot conjure AVX2 on a host without it.
///
/// Test/bench hook for in-process SIMD-vs-scalar comparisons. Flipping it
/// mid-kernel is harmless for correctness (both compiles are bit-identical)
/// but comparative timings should serialize around it.
#[doc(hidden)]
pub fn force_enabled(on: Option<bool>) {
    let v = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    OVERRIDE.store(v, Ordering::Relaxed);
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
fn host_supported() -> bool {
    // Caches internally; cheap after the first call.
    std::arch::is_x86_feature_detected!("avx2")
}

#[cfg(not(all(target_arch = "x86_64", not(miri))))]
fn host_supported() -> bool {
    false
}

/// Hints the CPU to pull the cache line holding `data[i]` toward L1/L2.
/// Out-of-range `i` is a silent no-op (callers clamp speculative prefetch
/// distances by construction, but the guard keeps the hint unconditionally
/// safe). No-op on non-x86_64 targets and under Miri.
#[inline(always)]
pub fn prefetch_read(data: &[f32], i: usize) {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    if i < data.len() {
        // SAFETY: `i` is in bounds, so the pointer is derived from a live
        // allocation; PREFETCHT0 is architecturally a hint with no
        // side effects and is available in baseline x86_64 (SSE).
        unsafe {
            std::arch::x86_64::_mm_prefetch(
                data.as_ptr().add(i).cast::<i8>(),
                std::arch::x86_64::_MM_HINT_T0,
            );
        }
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    let _ = (data, i);
}

/// Eight f32 lanes with strictly per-lane scalar semantics.
///
/// Every operation is a plain `[f32; 8]` loop of IEEE single-precision
/// scalar ops; inside a `#[target_feature(enable = "avx2")]` compile LLVM
/// turns each into one 256-bit vector instruction with identical per-lane
/// results. The 32-byte alignment lets slabs of these (see
/// [`AlignedF32`]) sit on vector-load boundaries; loads from arbitrary
/// `&[f32]` positions are unaligned and remain correct (and near-free on
/// every AVX2 part).
#[derive(Clone, Copy, Debug)]
#[repr(C, align(32))]
pub struct F32x8(pub [f32; LANES]);

impl F32x8 {
    /// All lanes `+0.0` — the accumulation identity the kernels start
    /// from, matching the `fill(0.0)` the scalar loops used.
    pub const ZERO: F32x8 = F32x8([0.0; LANES]);

    /// Broadcasts `v` into all lanes.
    #[inline(always)]
    pub fn splat(v: f32) -> F32x8 {
        F32x8([v; LANES])
    }

    /// Loads the first [`LANES`] elements of `src` (panics if shorter).
    #[inline(always)]
    pub fn load(src: &[f32]) -> F32x8 {
        let mut lanes = [0.0f32; LANES];
        lanes.copy_from_slice(&src[..LANES]);
        F32x8(lanes)
    }

    /// Stores all lanes into the first [`LANES`] elements of `dst`
    /// (panics if shorter).
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        dst[..LANES].copy_from_slice(&self.0);
    }

    /// Lane-wise `self + a * b` with **two** roundings (an unfused mul
    /// then add per lane) — deliberately *not* a fused multiply-add, so
    /// the result is bitwise identical to the scalar `acc + a * b` the
    /// pre-SIMD kernels computed.
    #[inline(always)]
    pub fn add_mul(self, a: F32x8, b: F32x8) -> F32x8 {
        let mut out = self.0;
        for l in 0..LANES {
            out[l] += a.0[l] * b.0[l];
        }
        F32x8(out)
    }
}

impl std::ops::Add for F32x8 {
    type Output = F32x8;

    /// Lane-wise sum.
    #[inline(always)]
    fn add(self, rhs: F32x8) -> F32x8 {
        let mut out = self.0;
        for l in 0..LANES {
            out[l] += rhs.0[l];
        }
        F32x8(out)
    }
}

impl std::ops::Mul for F32x8 {
    type Output = F32x8;

    /// Lane-wise product.
    #[inline(always)]
    fn mul(self, rhs: F32x8) -> F32x8 {
        let mut out = self.0;
        for l in 0..LANES {
            out[l] *= rhs.0[l];
        }
        F32x8(out)
    }
}

/// A 32-byte-aligned `f32` buffer, allocated in [`F32x8`] units so every
/// [`LANES`]-element group sits on one vector-load boundary. Backing
/// storage for the SELL value panels (the workspace arena keeps handing
/// out plain `Vec<f32>` — realigning those would change their dealloc
/// layout, and unaligned AVX2 loads cost nothing measurable; alignment
/// only pays on the long-lived packed panels that are streamed every
/// SpMM call).
pub struct AlignedF32 {
    data: Vec<F32x8>,
    len: usize,
}

impl AlignedF32 {
    /// A zero-filled buffer of `len` elements (capacity rounds up to a
    /// whole number of lane groups).
    pub fn zeroed(len: usize) -> AlignedF32 {
        AlignedF32 {
            data: vec![F32x8::ZERO; len.div_ceil(LANES)],
            len,
        }
    }

    /// Element count (as requested; excludes rounding-up padding).
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The elements as a contiguous `&[f32]`, first element 32-byte
    /// aligned.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        // SAFETY: `F32x8` is `repr(C)` over `[f32; LANES]`, so `data` is a
        // contiguous run of `data.len() * LANES` properly initialized f32
        // values and `len <= data.len() * LANES` by construction.
        unsafe { std::slice::from_raw_parts(self.data.as_ptr().cast::<f32>(), self.len) }
    }

    /// The elements as a contiguous `&mut [f32]`.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        // SAFETY: as in `as_slice`, plus `&mut self` guarantees
        // exclusivity.
        unsafe { std::slice::from_raw_parts_mut(self.data.as_mut_ptr().cast::<f32>(), self.len) }
    }
}

impl std::fmt::Debug for AlignedF32 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AlignedF32")
            .field("len", &self.len)
            .finish()
    }
}

/// Compiles a kernel body twice — portable and `#[target_feature(enable =
/// "avx2")]` — and defines a dispatcher that picks at runtime via
/// [`enabled`]. The body must be an `#[inline(always)]` fn so the
/// target-feature wrapper actually recompiles it (rather than calling the
/// baseline object code), which is what lets LLVM lower the [`F32x8`]
/// loops to 256-bit instructions.
///
/// Usage: `simd_dispatch!(fn name = impl_fn / avx2_name(arg: Ty, ...));`
macro_rules! simd_dispatch {
    ($vis:vis fn $name:ident = $imp:ident / $avx:ident ( $($arg:ident : $ty:ty),* $(,)? )) => {
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        #[target_feature(enable = "avx2")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $avx($($arg: $ty),*) {
            $imp($($arg),*)
        }

        #[inline]
        #[allow(clippy::too_many_arguments)]
        $vis fn $name($($arg: $ty),*) {
            #[cfg(all(target_arch = "x86_64", not(miri)))]
            if $crate::simd::enabled() {
                // SAFETY: `enabled()` is true only after runtime feature
                // detection confirmed AVX2 on this host.
                unsafe { $avx($($arg),*) };
                return;
            }
            $imp($($arg),*)
        }
    };
}
pub(crate) use simd_dispatch;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_mul_is_unfused() {
        // Operands where fused and unfused differ: a = 1 + 2^-23 squares
        // to 1 + 2^-22 + 2^-46, which rounds to 1 + 2^-22; adding
        // c = -(1 + 2^-22) then gives exactly 0.0 unfused, but the
        // single-rounded FMA keeps the 2^-46 term.
        let a = 1.0f32 + f32::powi(2.0, -23);
        let c = -1.0f32 - f32::powi(2.0, -22);
        let unfused = c + a * a;
        let fused = a.mul_add(a, c);
        assert_ne!(
            unfused.to_bits(),
            fused.to_bits(),
            "test operands degenerate"
        );
        let got = F32x8::splat(c).add_mul(F32x8::splat(a), F32x8::splat(a));
        for l in 0..LANES {
            assert_eq!(got.0[l].to_bits(), unfused.to_bits());
        }
    }

    #[test]
    fn load_store_roundtrip_and_specials() {
        let src = [
            1.0,
            -0.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            2.5,
            -3.0,
            0.125,
            9.0,
        ];
        let v = F32x8::load(&src);
        let mut dst = [0.0f32; LANES];
        v.store(&mut dst);
        for l in 0..LANES {
            assert_eq!(src[l].to_bits(), dst[l].to_bits());
        }
    }

    #[test]
    fn aligned_buffer_is_aligned_and_sized() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65] {
            let mut buf = AlignedF32::zeroed(len);
            assert_eq!(buf.len(), len);
            assert_eq!(buf.as_slice().len(), len);
            assert_eq!(buf.as_slice().as_ptr() as usize % 32, 0);
            if len > 0 {
                buf.as_mut_slice()[len - 1] = 4.0;
                assert_eq!(buf.as_slice()[len - 1], 4.0);
            }
        }
    }

    #[test]
    fn prefetch_in_and_out_of_bounds_is_safe() {
        let data = [0.0f32; 16];
        prefetch_read(&data, 0);
        prefetch_read(&data, 15);
        prefetch_read(&data, 16);
        prefetch_read(&[], 0);
    }

    #[test]
    fn force_override_roundtrip() {
        // Not run concurrently with other override users in this crate's
        // unit-test binary; integration tests serialize with a mutex.
        let default = enabled();
        force_enabled(Some(false));
        assert!(!enabled());
        force_enabled(Some(true));
        assert_eq!(
            enabled(),
            cfg!(all(target_arch = "x86_64", not(miri))) && host_supported()
        );
        force_enabled(None);
        assert_eq!(enabled(), default);
    }
}
