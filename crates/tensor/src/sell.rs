//! Vectorized SpMM row kernels and the SELL-style packed execution layout.
//!
//! The gather kernels here are the inner loops of [`crate::sparse::Csr`]'s
//! `spmm` family, rewritten on the [`crate::simd`] shim: each output row's
//! feature columns are processed in register-resident [`F32x8`] chunks, with
//! the next stored entry's `x` row software-prefetched. Vector lanes only
//! ever span *different* output columns; every output element still
//! accumulates its stored-entry contributions serially in ascending `k`
//! from `+0.0` with one unfused mul+add rounding per step — bitwise the
//! sequence the scalar gather always ran — so golden captures and
//! thread-count equivalence are preserved (see `crate::simd` for the
//! dispatch story).
//!
//! The [`SellPack`] is a SELL-σ/ELL-like bandwidth layout for the main
//! `spmm`: rows sorted by stored-entry count (descending, ties by row id)
//! and binned into [`LANES`]-row *slabs*, each slab's indices/values packed
//! column-major into rectangular lane-width panels (entry `k` of lane
//! `lane` at `base + k·LANES + lane`, value panels 32-byte aligned). Built
//! lazily and cached on `Csr` like the cached transpose; invalidated by
//! `values_mut`. Padding slots exist for short lanes but are **never
//! read** — the lockstep walker shrinks its active-lane prefix as lanes
//! run out — because reading padded zeros would not be bit-neutral (a
//! `-0.0` accumulator plus `+0.0` flips to `+0.0`, and a padded gather of
//! `x[0]` could inject NaN/Inf).

use crate::simd::{self, F32x8, LANES};

/// Stored entries below which the SELL pack is not built: the sort and
/// panel copy are O(nnz log nnz)-ish and only pay off once the gather is
/// bandwidth-bound. Deliberately thread-count independent so the engaged
/// execution layout — and therefore every produced bit pattern — is a pure
/// function of the matrix and `x`.
pub(crate) const SELL_MIN_NNZ: usize = 2048;

/// Feature widths up to this run the lockstep panel walker (the packed
/// panels are the win: eight independent `x`-row streams per step). Wider
/// rows amortize the per-row gather on their own, so slabs then only
/// provide the nnz-sorted execution order and each lane runs the
/// register-chunk gather over its original CSR row.
const SELL_LOCKSTEP_MAX_F: usize = 2 * LANES;

/// How many stored entries ahead the gather prefetches the `x` row of.
/// Far enough to cover L3 latency at ~2 entries/cycle/row, near enough to
/// stay inside the k-panel most of the time; out-of-range lookahead is
/// simply not issued.
const PREFETCH_AHEAD: usize = 16;

/// One register-resident column chunk of a row gather: accumulates
/// `NV` [`F32x8`] vectors (columns `j .. j + NV·LANES` of `out_row`) over
/// stored entries `lo..hi`, then stores — overwrite semantics, bitwise
/// identical to zero-fill-then-accumulate since every accumulator starts
/// at `+0.0`.
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn gather_chunk<const NV: usize>(
    out_row: &mut [f32],
    indices: &[u32],
    values: &[f32],
    lo: usize,
    hi: usize,
    x: &[f32],
    f: usize,
    j: usize,
) {
    let mut acc = [F32x8::ZERO; NV];
    for k in lo..hi {
        let c = indices[k] as usize;
        if let Some(&cn) = indices.get(k + PREFETCH_AHEAD) {
            // Pull every cache line of the chunk's span of the future x
            // row (16 f32 = one 64-byte line).
            let span = cn as usize * f + j;
            let mut off = 0;
            while off < NV * LANES {
                simd::prefetch_read(x, span + off);
                off += 16;
            }
        }
        let v = F32x8::splat(values[k]);
        let xr = &x[c * f + j..];
        for (t, a) in acc.iter_mut().enumerate() {
            *a = a.add_mul(v, F32x8::load(&xr[t * LANES..]));
        }
    }
    for (t, a) in acc.into_iter().enumerate() {
        a.store(&mut out_row[j + t * LANES..]);
    }
}

/// Overwrites `out_row` (length `f`) with row `r`'s gather
/// `Σₖ values[k] · x[indices[k]]` for `k` in `lo..hi`, columns processed
/// in a 64/32/16/8-wide chunk cascade plus a scalar tail. Per output
/// element the accumulation is serial ascending-`k` — the scalar kernel's
/// exact sequence.
#[inline(always)]
fn gather_row(
    out_row: &mut [f32],
    indices: &[u32],
    values: &[f32],
    lo: usize,
    hi: usize,
    x: &[f32],
    f: usize,
) {
    let mut j = 0;
    while f - j >= 8 * LANES {
        gather_chunk::<8>(out_row, indices, values, lo, hi, x, f, j);
        j += 8 * LANES;
    }
    if f - j >= 4 * LANES {
        gather_chunk::<4>(out_row, indices, values, lo, hi, x, f, j);
        j += 4 * LANES;
    }
    if f - j >= 2 * LANES {
        gather_chunk::<2>(out_row, indices, values, lo, hi, x, f, j);
        j += 2 * LANES;
    }
    if f - j >= LANES {
        gather_chunk::<1>(out_row, indices, values, lo, hi, x, f, j);
        j += LANES;
    }
    if j < f {
        out_row[j..].fill(0.0);
        for k in lo..hi {
            let v = values[k];
            let xr = &x[indices[k] as usize * f..];
            for jj in j..f {
                out_row[jj] += v * xr[jj];
            }
        }
    }
}

/// `out_row += v · x_row`, vector lanes over columns, scalar tail. The
/// accumulate (load-modify-store) counterpart of [`gather_row`] for
/// scatter-shaped kernels where a row receives contributions across
/// several calls.
#[inline(always)]
fn axpy_row(out_row: &mut [f32], v: f32, x_row: &[f32]) {
    let f = out_row.len();
    let vv = F32x8::splat(v);
    let mut j = 0;
    while f - j >= LANES {
        let acc = F32x8::load(&out_row[j..]).add_mul(vv, F32x8::load(&x_row[j..]));
        acc.store(&mut out_row[j..]);
        j += LANES;
    }
    for jj in j..f {
        out_row[jj] += v * x_row[jj];
    }
}

// Contiguous-row gather block: the par_rows closure body of `Csr::spmm`
// (rows `r0 ..` for `block.len() / f` rows). Overwrites the block.
simd::simd_dispatch!(pub(crate) fn spmm_block = spmm_block_impl / spmm_block_avx2(
    block: &mut [f32],
    f: usize,
    r0: usize,
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x: &[f32],
));

#[inline(always)]
fn spmm_block_impl(
    block: &mut [f32],
    f: usize,
    r0: usize,
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x: &[f32],
) {
    for (dr, out_row) in block.chunks_mut(f).enumerate() {
        let r = r0 + dr;
        gather_row(out_row, indices, values, indptr[r], indptr[r + 1], x, f);
    }
}

// Selected-row gather block: the par_rows closure body of `Csr::spmm_rows`
// (`rows` holds the selected source row per output row). Overwrites.
simd::simd_dispatch!(pub(crate) fn spmm_rows_block = spmm_rows_block_impl / spmm_rows_block_avx2(
    block: &mut [f32],
    f: usize,
    rows: &[u32],
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x: &[f32],
));

#[inline(always)]
fn spmm_rows_block_impl(
    block: &mut [f32],
    f: usize,
    rows: &[u32],
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x: &[f32],
) {
    for (dr, out_row) in block.chunks_mut(f).enumerate() {
        let r = rows[dr] as usize;
        gather_row(out_row, indices, values, indptr[r], indptr[r + 1], x, f);
    }
}

// Scattered-row gather chunk: the par_indices closure body of
// `Csr::spmm_rows_into`. The caller guarantees `rows` are distinct and in
// range and `out` points at a `matrix-rows × f` buffer, so chunks write
// disjoint rows through the shared pointer (the `SendPtr` contract).
simd::simd_dispatch!(pub(crate) fn spmm_rows_into_chunk
    = spmm_rows_into_chunk_impl / spmm_rows_into_chunk_avx2(
    out: &rayon::SendPtr<f32>,
    f: usize,
    rows: &[u32],
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x: &[f32],
));

#[inline(always)]
fn spmm_rows_into_chunk_impl(
    out: &rayon::SendPtr<f32>,
    f: usize,
    rows: &[u32],
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x: &[f32],
) {
    for &r in rows {
        let r = r as usize;
        // SAFETY: `rows` entries are distinct and `< matrix rows` (caller
        // asserts strictly-ascending + in-range), so every chunk writes a
        // disjoint in-bounds row of the `rows × f` output.
        let out_row: &mut [f32] =
            unsafe { std::slice::from_raw_parts_mut(out.ptr().add(r * f), f) };
        gather_row(out_row, indices, values, indptr[r], indptr[r + 1], x, f);
    }
}

// The serial scatter of `Csr::spmm_transa` (out[c] += v · x[r] in stored
// order). `out` must be zero-initialized by the caller — scatter rows
// receive contributions from many source rows, so this path accumulates.
simd::simd_dispatch!(pub(crate) fn spmm_transa_scatter
    = spmm_transa_scatter_impl / spmm_transa_scatter_avx2(
    out: &mut [f32],
    f: usize,
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x: &[f32],
));

#[inline(always)]
fn spmm_transa_scatter_impl(
    out: &mut [f32],
    f: usize,
    indptr: &[usize],
    indices: &[u32],
    values: &[f32],
    x: &[f32],
) {
    let rows = indptr.len() - 1;
    for r in 0..rows {
        let x_row = &x[r * f..(r + 1) * f];
        for k in indptr[r]..indptr[r + 1] {
            if let Some(&cn) = indices.get(k + PREFETCH_AHEAD) {
                simd::prefetch_read(out, cn as usize * f);
            }
            let c = indices[k] as usize;
            axpy_row(&mut out[c * f..(c + 1) * f], values[k], x_row);
        }
    }
}

/// The SELL-style packed execution layout cached on `Csr` (see the module
/// docs for the layout and the padding-is-never-read rule).
#[derive(Debug)]
pub(crate) struct SellPack {
    /// Rows in execution order: stored-entry count descending, row id
    /// ascending within ties; [`LANES`] consecutive entries form a slab.
    row_order: Vec<u32>,
    /// Stored-entry count of each row of `row_order` (non-increasing
    /// within a slab by construction).
    lane_len: Vec<u32>,
    /// Per-slab entry offsets into the panels (`n_slabs + 1` entries; slab
    /// `s` occupies `slab_ptr[s] .. slab_ptr[s + 1]`).
    slab_ptr: Vec<usize>,
    /// Column indices, slab-local column-major: lane `lane`'s `k`-th entry
    /// at `slab_ptr[s] + k·LANES + lane`.
    indices: Vec<u32>,
    /// Values in the same layout, 32-byte aligned so every `k`-panel is
    /// one aligned vector load.
    values: simd::AlignedF32,
    /// Padding slots (short lanes; allocated zero, never read).
    padded: usize,
}

impl SellPack {
    /// Packs a CSR matrix (given as raw parts) into slabs.
    pub(crate) fn build(indptr: &[usize], csr_indices: &[u32], csr_values: &[f32]) -> SellPack {
        let rows = indptr.len() - 1;
        let len = |r: usize| indptr[r + 1] - indptr[r];
        let mut row_order: Vec<u32> = (0..rows as u32).collect();
        row_order.sort_unstable_by_key(|&r| (std::cmp::Reverse(len(r as usize)), r));
        let lane_len: Vec<u32> = row_order.iter().map(|&r| len(r as usize) as u32).collect();
        let n_slabs = rows.div_ceil(LANES);
        let mut slab_ptr = Vec::with_capacity(n_slabs + 1);
        slab_ptr.push(0usize);
        let mut total = 0usize;
        for s in 0..n_slabs {
            // Lane lengths are non-increasing, so the slab's first lane is
            // its longest; the slab is a `max_len × LANES` rectangle.
            total += lane_len[s * LANES] as usize * LANES;
            slab_ptr.push(total);
        }
        let mut indices = vec![0u32; total];
        let mut values = simd::AlignedF32::zeroed(total);
        let vals = values.as_mut_slice();
        let mut stored = 0usize;
        for s in 0..n_slabs {
            let base = slab_ptr[s];
            let lanes = (rows - s * LANES).min(LANES);
            for lane in 0..lanes {
                let r = row_order[s * LANES + lane] as usize;
                let lo = indptr[r];
                let l = len(r);
                for k in 0..l {
                    let slot = base + k * LANES + lane;
                    indices[slot] = csr_indices[lo + k];
                    vals[slot] = csr_values[lo + k];
                }
                stored += l;
            }
        }
        let padded = total - stored;
        SellPack {
            row_order,
            lane_len,
            slab_ptr,
            indices,
            values,
            padded,
        }
    }

    /// Number of [`LANES`]-row slabs (the parallel grain of the SELL spmm).
    pub(crate) fn n_slabs(&self) -> usize {
        self.slab_ptr.len() - 1
    }

    /// Padding slots allocated for short lanes (stat; padding is never
    /// read by the walkers).
    pub(crate) fn padded_entries(&self) -> usize {
        self.padded
    }
}

// One slab of the SELL spmm: writes the slab's [`LANES`] (or fewer, last
// slab) output rows. Row ids within `row_order` are a permutation of all
// rows, so slabs write disjoint rows through the shared pointer; `out`
// must point at a `rows × f` buffer and `x` at a `cols × f` buffer of the
// matrix the pack was built from.
simd::simd_dispatch!(pub(crate) fn sell_slab = sell_slab_impl / sell_slab_avx2(
    pack: &SellPack,
    s: usize,
    indptr: &[usize],
    csr_indices: &[u32],
    csr_values: &[f32],
    x: &[f32],
    f: usize,
    out: &rayon::SendPtr<f32>,
));

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn sell_slab_impl(
    pack: &SellPack,
    s: usize,
    indptr: &[usize],
    csr_indices: &[u32],
    csr_values: &[f32],
    x: &[f32],
    f: usize,
    out: &rayon::SendPtr<f32>,
) {
    let l0 = s * LANES;
    let lanes = (pack.row_order.len() - l0).min(LANES);
    let rows = &pack.row_order[l0..l0 + lanes];
    let lens = &pack.lane_len[l0..l0 + lanes];
    // SAFETY (both paths): `row_order` is a permutation of `0..rows`, so
    // the rows this slab touches are disjoint from every other slab's and
    // in bounds of the `rows × f` output buffer.
    if f > SELL_LOCKSTEP_MAX_F {
        // Wide features: the per-row register-chunk gather already streams
        // panels of x; the pack contributes the nnz-sorted execution order
        // (balanced slabs, hub rows first). Reads the original CSR arrays —
        // identical entries in identical k order, so identical bits.
        for (i, &r) in rows.iter().enumerate() {
            let r = r as usize;
            if let Some(&rn) = rows.get(i + 1) {
                // Lead the next lane's first x target while this row runs.
                if let Some(&cn) = csr_indices.get(indptr[rn as usize]) {
                    simd::prefetch_read(x, cn as usize * f);
                }
            }
            let out_row: &mut [f32] =
                unsafe { std::slice::from_raw_parts_mut(out.ptr().add(r * f), f) };
            gather_row(
                out_row,
                csr_indices,
                csr_values,
                indptr[r],
                indptr[r + 1],
                x,
                f,
            );
        }
    } else {
        // Narrow features: lockstep over the packed panels — each step
        // issues [`LANES`] independent short axpys (eight x-row streams in
        // flight instead of one serial chain). Per output row the entries
        // still arrive in ascending k, so bits are unchanged.
        for &r in rows {
            let row: &mut [f32] =
                unsafe { std::slice::from_raw_parts_mut(out.ptr().add(r as usize * f), f) };
            row.fill(0.0);
        }
        let base = pack.slab_ptr[s];
        let vals = pack.values.as_slice();
        let max_len = lens.first().map_or(0, |&l| l as usize);
        let mut active = lanes;
        for k in 0..max_len {
            // Lane lengths are non-increasing: drop lanes as they run out
            // so padding slots are never read.
            while active > 0 && (lens[active - 1] as usize) <= k {
                active -= 1;
            }
            let panel = base + k * LANES;
            if k + 1 < max_len {
                let next = base + (k + 1) * LANES;
                for lane in 0..active {
                    // A lane past the next panel's active prefix holds a
                    // padding index of 0 — prefetching x[0] is harmless.
                    simd::prefetch_read(x, pack.indices[next + lane] as usize * f);
                }
            }
            for lane in 0..active {
                let r = rows[lane] as usize;
                let c = pack.indices[panel + lane] as usize;
                let out_row: &mut [f32] =
                    unsafe { std::slice::from_raw_parts_mut(out.ptr().add(r * f), f) };
                axpy_row(out_row, vals[panel + lane], &x[c * f..(c + 1) * f]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_layout_roundtrips_and_counts_padding() {
        // Rows with nnz 3, 0, 1, 2, 5 → order [4, 0, 3, 2, 1]; one slab
        // (5 rows < LANES) of width LANES and height 5.
        let indptr = vec![0usize, 3, 3, 4, 6, 11];
        let indices: Vec<u32> = (0..11).collect();
        let values: Vec<f32> = (0..11).map(|v| v as f32 + 0.5).collect();
        let pack = SellPack::build(&indptr, &indices, &values);
        assert_eq!(pack.n_slabs(), 1);
        assert_eq!(pack.row_order, vec![4, 0, 3, 2, 1]);
        assert_eq!(pack.lane_len, vec![5, 3, 2, 1, 0]);
        assert_eq!(pack.slab_ptr, vec![0, 5 * LANES]);
        assert_eq!(pack.padded_entries(), 5 * LANES - 11);
        // Lane 0 is row 4: its k-th entry sits at k·LANES.
        for k in 0..5 {
            assert_eq!(pack.indices[k * LANES], indices[6 + k]);
            assert_eq!(pack.values.as_slice()[k * LANES], values[6 + k]);
        }
        // Lane 1 is row 0 (nnz 3); entries at k·LANES + 1.
        for k in 0..3 {
            assert_eq!(pack.indices[k * LANES + 1], indices[k]);
        }
    }

    #[test]
    fn axpy_and_gather_handle_all_widths() {
        for f in [0usize, 1, 3, 7, 8, 9, 15, 16, 17, 31, 33, 63, 64, 65, 96] {
            let x: Vec<f32> = (0..4 * f).map(|i| (i % 13) as f32 - 6.0).collect();
            let indices = [1u32, 0, 3, 2];
            let values = [0.5f32, -2.0, 1.5, 3.0];
            let mut got = vec![7.0f32; f];
            gather_row(&mut got, &indices, &values, 0, 4, &x, f);
            let mut want = vec![0.0f32; f];
            for k in 0..4 {
                for j in 0..f {
                    want[j] += values[k] * x[indices[k] as usize * f + j];
                }
            }
            for j in 0..f {
                assert_eq!(got[j].to_bits(), want[j].to_bits(), "gather f={f} j={j}");
            }
            let mut acc: Vec<f32> = (0..f).map(|j| j as f32 * 0.25).collect();
            let mut ref_acc = acc.clone();
            axpy_row(&mut acc, -1.5, &x[..f]);
            for j in 0..f {
                ref_acc[j] += -1.5 * x[j];
                assert_eq!(acc[j].to_bits(), ref_acc[j].to_bits(), "axpy f={f} j={j}");
            }
        }
    }
}
