//! Compressed-sparse-row matrices, SpMM, and the normalized graph Laplacian
//! used by every GCN layer (paper Eq. 1).

use crate::dense::Dense;

/// A sparse matrix in compressed-sparse-row form with `f32` values.
///
/// Column indices within a row are kept sorted and unique, which the
/// graph-difference machinery in `dgnn-graph` relies on.
#[derive(Clone, Debug, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl Csr {
    /// An empty (all-zero) matrix of the given shape.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds a CSR matrix from COO triplets; duplicate positions are summed.
    pub fn from_coo(rows: usize, cols: usize, triplets: &[(u32, u32, f32)]) -> Self {
        let mut sorted: Vec<(u32, u32, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "triplet out of bounds"
            );
            if let (Some(&last_c), true) = (indices.last(), indptr[r as usize + 1] > 0) {
                // Same row as the previous entry and same column: merge.
                if last_c == c && indices.len() > indptr[r as usize] {
                    *values.last_mut().unwrap() += v;
                    continue;
                }
            }
            // Close out any rows between the previous entry's row and r.
            indices.push(c);
            values.push(v);
            indptr[r as usize + 1] = indices.len();
        }
        // Make indptr cumulative: rows with no entries inherit the previous end.
        for r in 1..=rows {
            if indptr[r] == 0 {
                indptr[r] = indptr[r - 1];
            }
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Builds an unweighted adjacency matrix from directed edges.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let triplets: Vec<(u32, u32, f32)> = edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
        Self::from_coo(n, n, &triplets)
    }

    /// Builds directly from CSR parts.
    ///
    /// # Panics
    /// Panics when the parts are structurally inconsistent.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(indices.len(), values.len(), "indices/values length");
        assert_eq!(*indptr.last().unwrap(), indices.len(), "indptr end");
        debug_assert!(indptr.windows(2).all(|w| w[0] <= w[1]), "indptr monotone");
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The row-pointer array (length `rows + 1`).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The column-index array.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable value array (topology is fixed; only weights may change).
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// `(column, value)` pairs of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Out-degree (stored entries) of every row.
    pub fn row_degrees(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| self.indptr[r + 1] - self.indptr[r])
            .collect()
    }

    /// In-degree (stored entries) of every column.
    pub fn col_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.cols];
        for &c in &self.indices {
            deg[c as usize] += 1;
        }
        deg
    }

    /// Converts back to COO triplets in row-major order.
    pub fn to_coo(&self) -> Vec<(u32, u32, f32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.push((r as u32, c, v));
            }
        }
        out
    }

    /// Materialises a dense copy (tests only; quadratic memory).
    pub fn to_dense(&self) -> Dense {
        let mut out = Dense::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.set(r, c as usize, out.get(r, c as usize) + v);
            }
        }
        out
    }

    /// The transposed matrix (CSR of the transpose, built by counting sort).
    pub fn transpose(&self) -> Csr {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 1..=self.cols {
            counts[i] += counts[i - 1];
        }
        let indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0f32; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                let slot = cursor[c as usize];
                indices[slot] = r as u32;
                values[slot] = v;
                cursor[c as usize] += 1;
            }
        }
        Csr {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Sparse-matrix × dense-matrix product (`self * x`), the GCN aggregation
    /// kernel. `x` must have `self.cols` rows.
    pub fn spmm(&self, x: &Dense) -> Dense {
        assert_eq!(self.cols, x.rows(), "spmm shape mismatch");
        let f = x.cols();
        let mut out = Dense::zeros(self.rows, f);
        for r in 0..self.rows {
            let lo = self.indptr[r];
            let hi = self.indptr[r + 1];
            let out_row = &mut out.data_mut()[r * f..(r + 1) * f];
            for k in lo..hi {
                let c = self.indices[k] as usize;
                let v = self.values[k];
                let x_row = &x.data()[c * f..(c + 1) * f];
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// `selfᵀ * x` without materialising the transpose (backward of SpMM).
    pub fn spmm_transa(&self, x: &Dense) -> Dense {
        assert_eq!(self.rows, x.rows(), "spmm_transa shape mismatch");
        let f = x.cols();
        let mut out = Dense::zeros(self.cols, f);
        for r in 0..self.rows {
            let x_row = &x.data()[r * f..(r + 1) * f];
            for (c, v) in self.row_iter(r) {
                let out_row = &mut out.data_mut()[c as usize * f..(c as usize + 1) * f];
                for (o, &xv) in out_row.iter_mut().zip(x_row) {
                    *o += v * xv;
                }
            }
        }
        out
    }

    /// Weighted sum `Σ wᵢ · Aᵢ` of same-shaped sparse matrices.
    ///
    /// This is the kernel behind both the edge-life transformation and the
    /// M-transform smoothing of the adjacency tensor (paper §5.4): entries
    /// present in several operands merge into one.
    pub fn add_weighted(terms: &[(f32, &Csr)]) -> Csr {
        assert!(!terms.is_empty(), "add_weighted of nothing");
        let rows = terms[0].1.rows;
        let cols = terms[0].1.cols;
        for (_, a) in terms {
            assert_eq!(
                (a.rows, a.cols),
                (rows, cols),
                "add_weighted shape mismatch"
            );
        }
        let cap: usize = terms.iter().map(|(_, a)| a.nnz()).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(cap);
        let mut values = Vec::with_capacity(cap);
        indptr.push(0);
        // Merge the sorted rows of all operands with a scratch accumulator.
        let mut merged: Vec<(u32, f32)> = Vec::new();
        for r in 0..rows {
            merged.clear();
            for &(w, a) in terms {
                if w == 0.0 {
                    continue;
                }
                for (c, v) in a.row_iter(r) {
                    merged.push((c, w * v));
                }
            }
            merged.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < merged.len() {
                let c = merged[i].0;
                let mut acc = 0.0;
                while i < merged.len() && merged[i].0 == c {
                    acc += merged[i].1;
                    i += 1;
                }
                indices.push(c);
                values.push(acc);
            }
            indptr.push(indices.len());
        }
        Csr {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Extracts rows `[start, start + len)` into a standalone `len x cols`
    /// matrix — the row-block split used by the hybrid partitioning scheme.
    pub fn row_block(&self, start: usize, len: usize) -> Csr {
        assert!(start + len <= self.rows, "row_block out of range");
        let lo = self.indptr[start];
        let hi = self.indptr[start + len];
        let indptr = self.indptr[start..=start + len]
            .iter()
            .map(|&p| p - lo)
            .collect();
        Csr {
            rows: len,
            cols: self.cols,
            indptr,
            indices: self.indices[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
        }
    }

    /// True if the matrix equals its transpose (used by tests).
    pub fn is_symmetric(&self, tol: f32) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr || t.indices != self.indices {
            return false;
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

/// The symmetric-normalized Laplacian `Ã = D^{-1/2} (A + I) D^{-1/2}` of
/// paper Eq. (1), where `D[u,u] = 1 + deg(u)`.
///
/// The input adjacency is treated as undirected for degree purposes: the
/// degree of `u` counts stored neighbors in row `u` of `A + Aᵀ` when
/// `symmetrize` is set, otherwise just row `u` of `A`. The paper's datasets
/// store directed interactions; the models symmetrize before normalizing.
pub fn normalized_laplacian(adj: &Csr, symmetrize: bool) -> Csr {
    assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
    let n = adj.rows();
    // Strip any self-loops from the input: the "+ I" term below supplies the
    // canonical unit self-loop, and double-counting would break the spectral
    // bound of the normalized operator.
    let no_loops = {
        let triplets: Vec<(u32, u32, f32)> = adj
            .to_coo()
            .into_iter()
            .filter(|&(r, c, _)| r != c)
            .collect();
        Csr::from_coo(n, n, &triplets)
    };
    let base = if symmetrize {
        Csr::add_weighted(&[(0.5, &no_loops), (0.5, &no_loops.transpose())])
    } else {
        no_loops
    };
    let with_loops = Csr::add_weighted(&[(1.0, &base), (1.0, &Csr::identity(n))]);
    // D[u,u] = 1 + deg(u) where deg counts structural neighbors (self-loop
    // already contributes the "+1").
    let mut inv_sqrt_deg = vec![0f32; n];
    for u in 0..n {
        let deg: f32 = with_loops.row_iter(u).map(|_| 1.0).sum();
        inv_sqrt_deg[u] = 1.0 / deg.max(1.0).sqrt();
    }
    let mut out = with_loops;
    for r in 0..n {
        let lo = out.indptr[r];
        let hi = out.indptr[r + 1];
        for k in lo..hi {
            let c = out.indices[k] as usize;
            out.values[k] *= inv_sqrt_deg[r] * inv_sqrt_deg[c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0
        Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2), (2, 0)])
    }

    #[test]
    fn from_coo_sorts_and_merges() {
        let a = Csr::from_coo(2, 2, &[(1, 1, 2.0), (0, 0, 1.0), (1, 1, 3.0)]);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.to_coo(), vec![(0, 0, 1.0), (1, 1, 5.0)]);
    }

    #[test]
    fn from_coo_handles_empty_rows() {
        let a = Csr::from_coo(4, 4, &[(3, 0, 1.0)]);
        assert_eq!(a.indptr(), &[0, 0, 0, 0, 1]);
        assert_eq!(a.row_degrees(), vec![0, 0, 0, 1]);
    }

    #[test]
    fn spmm_matches_dense() {
        let a = sample();
        let x = Dense::from_fn(3, 2, |r, c| (r * 2 + c) as f32 + 1.0);
        let y = a.spmm(&x);
        let expected = a.to_dense().matmul(&x);
        assert!(y.approx_eq(&expected, 1e-6));
    }

    #[test]
    fn spmm_transa_matches_dense() {
        let a = sample();
        let x = Dense::from_fn(3, 2, |r, c| (r + c) as f32);
        let y = a.spmm_transa(&x);
        let expected = a.to_dense().transpose().matmul(&x);
        assert!(y.approx_eq(&expected, 1e-6));
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_weighted_merges_overlap() {
        let a = Csr::from_coo(2, 2, &[(0, 0, 1.0), (0, 1, 1.0)]);
        let b = Csr::from_coo(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let s = Csr::add_weighted(&[(2.0, &a), (3.0, &b)]);
        assert_eq!(s.to_coo(), vec![(0, 0, 2.0), (0, 1, 5.0), (1, 0, 3.0)]);
    }

    #[test]
    fn row_block_roundtrip() {
        let a = sample();
        let top = a.row_block(0, 1);
        let rest = a.row_block(1, 2);
        assert_eq!(top.nnz() + rest.nnz(), a.nnz());
        assert_eq!(top.rows(), 1);
        assert_eq!(rest.rows(), 2);
        // SpMM over blocks stacks to full SpMM.
        let x = Dense::from_fn(3, 2, |r, c| (r + 2 * c) as f32);
        let stacked = Dense::vstack(&[&top.spmm(&x), &rest.spmm(&x)]);
        assert!(stacked.approx_eq(&a.spmm(&x), 1e-6));
    }

    #[test]
    fn laplacian_is_symmetric_with_unit_diagonal_scaling() {
        let a = sample();
        let lap = normalized_laplacian(&a, true);
        assert!(lap.is_symmetric(1e-6));
        // Diagonal entries are exactly 1/(1 + deg(u)).
        let degs = Csr::add_weighted(&[(0.5, &a), (0.5, &a.transpose())]).row_degrees();
        for u in 0..lap.rows() {
            let diag = lap
                .row_iter(u)
                .find(|&(c, _)| c as usize == u)
                .map(|(_, v)| v)
                .unwrap();
            let expected = 1.0 / (1.0 + degs[u] as f32);
            assert!(
                (diag - expected).abs() < 1e-6,
                "diag[{u}] = {diag}, want {expected}"
            );
        }
    }

    #[test]
    fn laplacian_identity_graph() {
        // Graph with no edges: Ã = D^{-1/2} I D^{-1/2} = I (deg = 1).
        let a = Csr::empty(3, 3);
        let lap = normalized_laplacian(&a, false);
        assert_eq!(lap.to_coo(), vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
    }

    #[test]
    fn degrees() {
        let a = sample();
        assert_eq!(a.row_degrees(), vec![2, 1, 1]);
        assert_eq!(a.col_degrees(), vec![1, 1, 2]);
    }
}
