//! Compressed-sparse-row matrices, SpMM, and the normalized graph Laplacian
//! used by every GCN layer (paper Eq. 1).

use std::sync::{Arc, OnceLock};

use crate::dense::Dense;
use crate::sell::{self, SellPack};
use crate::{pool, simd};

/// A sparse matrix in compressed-sparse-row form with `f32` values.
///
/// Column indices within a row are kept sorted and unique, which the
/// graph-difference machinery in `dgnn-graph` relies on.
#[derive(Clone, Debug)]
pub struct Csr {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
    /// Lazily-built transpose, populated by the parallel path of
    /// [`Csr::spmm_transa`]: trainers call that backward kernel with the
    /// same immutable Laplacian once per layer per block rerun per epoch,
    /// so the counting sort amortizes to once per matrix. Cleared by
    /// [`Csr::values_mut`] (the only mutation surface); excluded from
    /// equality.
    transpose_cache: OnceLock<Arc<Csr>>,
    /// Lazily-built SELL-style packed execution layout for [`Csr::spmm`]
    /// (see [`crate::sell`]): rows binned by stored-entry count into
    /// lane-width slabs. Amortizes like the transpose cache — the trainers
    /// aggregate with the same immutable Laplacian every layer and epoch.
    /// Cleared by [`Csr::values_mut`]; excluded from equality.
    sell_cache: OnceLock<Arc<SellPack>>,
}

/// Equality over the matrix contents only — the transpose cache is a
/// derived artifact and must not affect comparisons.
impl PartialEq for Csr {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.indptr == other.indptr
            && self.indices == other.indices
            && self.values == other.values
    }
}

impl Csr {
    /// Approximate cost of one counting-sort transpose entry, expressed in
    /// units of one gather feature-column (a random write per entry vs a
    /// streamed multiply-add per column). Calibrated from the
    /// `kernel_scaling` bench; used by [`Csr::spmm_transa`] to decide when
    /// the transpose-then-gather parallel path beats the serial scatter.
    pub const TRANSPOSE_COST_F_UNITS: usize = 40;

    /// An empty (all-zero) matrix of the given shape.
    pub fn empty(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            indptr: vec![0; rows + 1],
            indices: Vec::new(),
            values: Vec::new(),
            transpose_cache: OnceLock::new(),
            sell_cache: OnceLock::new(),
        }
    }

    /// The identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
            transpose_cache: OnceLock::new(),
            sell_cache: OnceLock::new(),
        }
    }

    /// Builds a CSR matrix from COO triplets; duplicate positions are summed.
    pub fn from_coo(rows: usize, cols: usize, triplets: &[(u32, u32, f32)]) -> Self {
        let mut sorted: Vec<(u32, u32, f32)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        let mut indptr = vec![0usize; rows + 1];
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());
        for &(r, c, v) in &sorted {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "triplet out of bounds"
            );
            if let (Some(&last_c), true) = (indices.last(), indptr[r as usize + 1] > 0) {
                // Same row as the previous entry and same column: merge.
                if last_c == c && indices.len() > indptr[r as usize] {
                    *values.last_mut().unwrap() += v;
                    continue;
                }
            }
            // Close out any rows between the previous entry's row and r.
            indices.push(c);
            values.push(v);
            indptr[r as usize + 1] = indices.len();
        }
        // Make indptr cumulative: rows with no entries inherit the previous end.
        for r in 1..=rows {
            if indptr[r] == 0 {
                indptr[r] = indptr[r - 1];
            }
        }
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
            transpose_cache: OnceLock::new(),
            sell_cache: OnceLock::new(),
        }
    }

    /// Builds an unweighted adjacency matrix from directed edges.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Self {
        let triplets: Vec<(u32, u32, f32)> = edges.iter().map(|&(u, v)| (u, v, 1.0)).collect();
        Self::from_coo(n, n, &triplets)
    }

    /// Builds directly from CSR parts.
    ///
    /// # Panics
    /// Panics when the parts are structurally inconsistent.
    pub fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        assert_eq!(indptr.len(), rows + 1, "indptr length");
        assert_eq!(indices.len(), values.len(), "indices/values length");
        assert_eq!(*indptr.last().unwrap(), indices.len(), "indptr end");
        debug_assert!(indptr.windows(2).all(|w| w[0] <= w[1]), "indptr monotone");
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
            transpose_cache: OnceLock::new(),
            sell_cache: OnceLock::new(),
        }
    }

    /// Decomposes into `(rows, cols, indptr, indices, values)`, the inverse
    /// of [`Csr::from_parts`]. The out-of-core store uses this to hand an
    /// evicted matrix's backing buffers to the workspace arena instead of
    /// the allocator.
    pub fn into_parts(self) -> (usize, usize, Vec<usize>, Vec<u32>, Vec<f32>) {
        (self.rows, self.cols, self.indptr, self.indices, self.values)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// The row-pointer array (length `rows + 1`).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// The column-index array.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The value array.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable value array (topology is fixed; only weights may change).
    /// Drops the cached transpose and SELL pack — their values would go
    /// stale.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f32] {
        self.transpose_cache = OnceLock::new();
        self.sell_cache = OnceLock::new();
        &mut self.values
    }

    /// `(column, value)` pairs of row `r`.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (u32, f32)> + '_ {
        let lo = self.indptr[r];
        let hi = self.indptr[r + 1];
        self.indices[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Out-degree (stored entries) of every row.
    pub fn row_degrees(&self) -> Vec<usize> {
        (0..self.rows)
            .map(|r| self.indptr[r + 1] - self.indptr[r])
            .collect()
    }

    /// In-degree (stored entries) of every column.
    pub fn col_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.cols];
        for &c in &self.indices {
            deg[c as usize] += 1;
        }
        deg
    }

    /// Converts back to COO triplets in row-major order.
    pub fn to_coo(&self) -> Vec<(u32, u32, f32)> {
        let mut out = Vec::with_capacity(self.nnz());
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.push((r as u32, c, v));
            }
        }
        out
    }

    /// Materialises a dense copy (tests only; quadratic memory).
    pub fn to_dense(&self) -> Dense {
        let mut out = Dense::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.set(r, c as usize, out.get(r, c as usize) + v);
            }
        }
        out
    }

    /// The transposed matrix (CSR of the transpose, built by counting sort).
    ///
    /// When the pool engages, the counting sort runs partitioned: each part
    /// histograms its slice of source rows, a serial prefix pass turns the
    /// histograms into exact per-part slot cursors, and the parts scatter
    /// into disjoint slots concurrently. Every entry's output slot is fixed
    /// by the global row-major order, so the result is identical to the
    /// serial counting sort at any thread count (or partition).
    pub fn transpose(&self) -> Csr {
        let (rows, cols, nnz) = (self.rows, self.cols, self.nnz());
        // Histogram + scatter both move ~nnz entries; weight the engage
        // decision like an f=8 SpMM so tiny matrices stay serial.
        let work = nnz.saturating_mul(8);
        let parts = if pool::rows_parallel_membound(rows, work) {
            (pool::membound_threads() * 2).min(rows.max(1))
        } else {
            1
        };
        let rows_per_part = rows.div_ceil(parts).max(1);

        // Per-part column histograms (part-partitioned, reads only its rows).
        let mut counts = vec![0u32; parts * cols];
        pool::par_rows_membound(&mut counts, cols, work, |p0, block| {
            for (dp, hist) in block.chunks_mut(cols).enumerate() {
                let p = p0 + dp;
                let lo = (p * rows_per_part).min(rows);
                let hi = ((p + 1) * rows_per_part).min(rows);
                for &c in &self.indices[self.indptr[lo]..self.indptr[hi]] {
                    hist[c as usize] += 1;
                }
            }
        });

        // Serial prefix: output row starts, then each part's slot cursor
        // per output row (disjoint slot ranges across parts).
        let mut indptr = vec![0usize; cols + 1];
        let mut cursors = vec![0usize; parts * cols];
        for c in 0..cols {
            let mut pos = indptr[c];
            for p in 0..parts {
                cursors[p * cols + c] = pos;
                pos += counts[p * cols + c] as usize;
            }
            indptr[c + 1] = pos;
        }

        // Parallel scatter into the pre-computed disjoint slots. Slot
        // ranges are disjoint per (part, output row) by construction, so
        // concurrent writes through the shared base pointers are sound —
        // the contract `rayon::SendPtr` exists for.
        let mut indices = vec![0u32; nnz];
        let mut values = vec![0f32; nnz];
        let idx_ptr = rayon::SendPtr::new(indices.as_mut_ptr());
        let val_ptr = rayon::SendPtr::new(values.as_mut_ptr());
        pool::par_indices(parts, work, |p| {
            let mut cursor = cursors[p * cols..(p + 1) * cols].to_vec();
            let lo = (p * rows_per_part).min(rows);
            let hi = ((p + 1) * rows_per_part).min(rows);
            for r in lo..hi {
                for (c, v) in self.row_iter(r) {
                    let slot = cursor[c as usize];
                    unsafe {
                        *idx_ptr.ptr().add(slot) = r as u32;
                        *val_ptr.ptr().add(slot) = v;
                    }
                    cursor[c as usize] += 1;
                }
            }
        });
        Csr {
            rows: cols,
            cols: rows,
            indptr,
            indices,
            values,
            transpose_cache: OnceLock::new(),
            sell_cache: OnceLock::new(),
        }
    }

    /// Sparse-matrix × dense-matrix product (`self * x`), the GCN aggregation
    /// kernel. `x` must have `self.cols` rows. Row-parallel over the output:
    /// each pool thread aggregates a disjoint block of output rows with the
    /// serial inner loop, so results are bit-identical at any thread count.
    ///
    /// The kernel is memory-bound, so it engages the pool under the
    /// stricter [`pool::rows_parallel_membound`] gate — a higher work
    /// floor and a thread count capped at the host's logical CPUs, so an
    /// oversubscribed `DGNN_THREADS` override can never regress it below
    /// serial.
    ///
    /// # Panics
    /// Panics when `x` does not have `self.cols` rows — validated up front,
    /// before any output allocation.
    pub fn spmm(&self, x: &Dense) -> Dense {
        assert_eq!(self.cols, x.rows(), "spmm shape mismatch");
        self.spmm_gather(x)
    }

    /// `selfᵀ * x` (backward of SpMM).
    ///
    /// Serial execution scatters row by row, like the original kernel.
    /// When the pool engages *and* the feature width amortizes the setup,
    /// the kernel instead builds the transpose (O(nnz) counting sort) and
    /// gathers row-parallel over it. The counting sort emits each output
    /// row's entries in ascending source-row order — exactly the serial
    /// scatter's accumulation order — so both paths produce identical bits.
    ///
    /// The transpose's random per-entry writes cost roughly
    /// [`Csr::TRANSPOSE_COST_F_UNITS`] feature-columns' worth of gather
    /// work per entry (measured in `BENCH_parallel.json`), so the parallel
    /// path only wins when `f·(1 − 1/threads)` exceeds that; below the
    /// break-even the serial scatter is kept even with threads available.
    /// The built transpose is cached on the matrix, so trainers that call
    /// this backward kernel every block rerun and epoch with the same
    /// immutable Laplacian pay the counting sort once.
    ///
    /// # Panics
    /// Panics when `x` does not have `self.rows` rows — validated up front,
    /// before any output allocation.
    pub fn spmm_transa(&self, x: &Dense) -> Dense {
        assert_eq!(self.rows, x.rows(), "spmm_transa shape mismatch");
        let f = x.cols();
        let work = self.nnz().saturating_mul(f);
        let threads = pool::membound_threads();
        // With the cache warm the transpose is free, so only the first call
        // needs the feature width to amortize the counting sort.
        let amortized = self.transpose_cache.get().is_some()
            || (threads > 1
                && f.saturating_mul(threads - 1) > Self::TRANSPOSE_COST_F_UNITS * threads);
        if amortized && pool::rows_parallel_membound(self.cols, work) {
            return self
                .transpose_cache
                .get_or_init(|| Arc::new(self.transpose()))
                .spmm_gather(x);
        }
        let mut out = Dense::zeros(self.cols, f);
        sell::spmm_transa_scatter(
            out.data_mut(),
            f,
            &self.indptr,
            &self.indices,
            &self.values,
            x.data(),
        );
        out
    }

    /// Sparse × dense product restricted to a subset of output rows:
    /// `out[i] = (self * x)[rows[i]]`. The inner loop per output row is the
    /// same serial gather [`Csr::spmm`] runs, so every produced row is
    /// bit-identical to the corresponding row of the full product at any
    /// thread count — the kernel behind frontier-restricted incremental
    /// inference, where only the rows reachable from a graph change are
    /// recomputed.
    ///
    /// # Panics
    /// Panics when `x` does not have `self.cols` rows, or when any entry of
    /// `rows` is out of range — validated up front.
    pub fn spmm_rows(&self, x: &Dense, rows: &[u32]) -> Dense {
        assert_eq!(self.cols, x.rows(), "spmm_rows shape mismatch");
        assert!(
            rows.iter().all(|&r| (r as usize) < self.rows),
            "spmm_rows row index out of range"
        );
        let f = x.cols();
        // Scratch, not zeros: the gather fully overwrites every selected
        // output row (accumulators start at +0.0), bitwise the same as
        // zero-fill-then-accumulate.
        let mut out = Dense::scratch(rows.len(), f);
        let work: usize = rows
            .iter()
            .map(|&r| self.indptr[r as usize + 1] - self.indptr[r as usize])
            .sum::<usize>()
            .saturating_mul(f);
        pool::par_rows_membound(out.data_mut(), f, work, |i0, block| {
            let sel = &rows[i0..i0 + block.len() / f.max(1)];
            sell::spmm_rows_block(
                block,
                f,
                sel,
                &self.indptr,
                &self.indices,
                &self.values,
                x.data(),
            );
        });
        out
    }

    /// Sparse × dense product computed *in place* for a subset of output
    /// rows: `out[r] = (self * x)[r]` for every `r` in `rows`, all other
    /// rows of `out` left untouched — the fusion of [`Csr::spmm_rows`]
    /// with `Dense::set_rows` that the incremental pre-aggregation carry
    /// runs, skipping the intermediate block and its scatter copy. Each
    /// selected row is zeroed and then accumulated by the same serial
    /// gather as [`Csr::spmm`], so the written rows are bit-identical to
    /// the corresponding rows of the full product at any thread count.
    ///
    /// # Panics
    /// Panics when shapes mismatch, or when `rows` is not strictly
    /// ascending and in range — distinctness is what makes the parallel
    /// scatter through the shared output pointer sound, and it is
    /// validated up front.
    pub fn spmm_rows_into(&self, x: &Dense, rows: &[u32], out: &mut Dense) {
        assert_eq!(self.cols, x.rows(), "spmm_rows_into shape mismatch");
        assert_eq!(out.rows(), self.rows, "spmm_rows_into output row mismatch");
        assert_eq!(out.cols(), x.cols(), "spmm_rows_into output width mismatch");
        assert!(
            rows.windows(2).all(|w| w[0] < w[1]),
            "spmm_rows_into rows must be strictly ascending"
        );
        let Some(&last) = rows.last() else {
            return;
        };
        assert!(
            (last as usize) < self.rows,
            "spmm_rows_into row index out of range"
        );
        let f = x.cols();
        // Work *estimate* (selected rows at the matrix's mean density):
        // it only gates whether the pool engages, so an estimate avoids a
        // second scattered pass over `indptr` without touching results.
        let mean_nnz = self.values.len() / self.rows.max(1) + 1;
        let work = rows.len().saturating_mul(mean_nnz).saturating_mul(f);
        // Chunk count derived *from* the rounded-up chunk size (not the
        // other way around), so every `ci` starts inside `rows`: with
        // `chunks = ceil(len / rows_per_chunk)`, `(chunks-1)·rows_per_chunk
        // < len` for any non-divisible split.
        let target_chunks = (pool::membound_threads() * 4).max(1);
        let rows_per_chunk = rows.len().div_ceil(target_chunks);
        let chunks = rows.len().div_ceil(rows_per_chunk);
        let base = rayon::SendPtr::new(out.data_mut().as_mut_ptr());
        pool::par_indices_membound(chunks, work, |ci| {
            let lo = ci * rows_per_chunk;
            let hi = (lo + rows_per_chunk).min(rows.len());
            // Sound: `rows` is strictly ascending, so chunks write
            // disjoint output rows through the shared base pointer.
            sell::spmm_rows_into_chunk(
                &base,
                f,
                &rows[lo..hi],
                &self.indptr,
                &self.indices,
                &self.values,
                x.data(),
            );
        });
    }

    /// The row-parallel gather shared by [`Csr::spmm`]'s inner loop and the
    /// transpose path of [`Csr::spmm_transa`]. `x` is indexed by this
    /// matrix's columns *without* a shape assertion on the row count — the
    /// transpose path has already validated the original orientation.
    fn spmm_gather(&self, x: &Dense) -> Dense {
        let f = x.cols();
        // Scratch output: the gather fully overwrites every row (vector
        // accumulators start at +0.0 — bitwise the fill-then-accumulate
        // sequence), so the arena's up-front zero fill is skipped.
        let mut out = Dense::scratch(self.rows, f);
        let work = self.nnz().saturating_mul(f);
        if let Some(pack) = self.sell_pack(f) {
            // SELL path: slabs of LANES rows in nnz-sorted order; every
            // row lands in exactly one slab, and the slab assignment is a
            // pure function of the matrix, so bits match the plain gather
            // at any thread count.
            let base = rayon::SendPtr::new(out.data_mut().as_mut_ptr());
            pool::par_indices_membound(pack.n_slabs(), work, |sl| {
                sell::sell_slab(
                    pack,
                    sl,
                    &self.indptr,
                    &self.indices,
                    &self.values,
                    x.data(),
                    f,
                    &base,
                );
            });
            return out;
        }
        pool::par_rows_membound(out.data_mut(), f, work, |r0, block| {
            sell::spmm_block(
                block,
                f,
                r0,
                &self.indptr,
                &self.indices,
                &self.values,
                x.data(),
            );
        });
        out
    }

    /// The cached SELL pack when the matrix is big enough for it to pay:
    /// the gate is a pure function of the matrix shape (never of thread
    /// count or feature width beyond `f > 0`), so the execution layout —
    /// and therefore every produced bit — is deterministic per matrix.
    fn sell_pack(&self, f: usize) -> Option<&SellPack> {
        if f == 0 || self.rows < 2 * simd::LANES || self.nnz() < sell::SELL_MIN_NNZ {
            return None;
        }
        Some(
            self.sell_cache.get_or_init(|| {
                Arc::new(SellPack::build(&self.indptr, &self.indices, &self.values))
            }),
        )
    }

    /// True once the lazily-built SELL pack exists (tests observe cache
    /// population and invalidation through this).
    pub fn sell_packed(&self) -> bool {
        self.sell_cache.get().is_some()
    }

    /// `(slabs, padding slots)` of the built SELL pack, or `None` while
    /// the pack does not exist (matrix below the gate, or not yet used by
    /// [`Csr::spmm`]). Padding slots are allocated-but-never-read slots of
    /// short lanes — the layout's space overhead.
    pub fn sell_stats(&self) -> Option<(usize, usize)> {
        self.sell_cache
            .get()
            .map(|p| (p.n_slabs(), p.padded_entries()))
    }

    /// Weighted sum `Σ wᵢ · Aᵢ` of same-shaped sparse matrices.
    ///
    /// This is the kernel behind both the edge-life transformation and the
    /// M-transform smoothing of the adjacency tensor (paper §5.4): entries
    /// present in several operands merge into one.
    pub fn add_weighted(terms: &[(f32, &Csr)]) -> Csr {
        assert!(!terms.is_empty(), "add_weighted of nothing");
        let rows = terms[0].1.rows;
        let cols = terms[0].1.cols;
        for (_, a) in terms {
            assert_eq!(
                (a.rows, a.cols),
                (rows, cols),
                "add_weighted shape mismatch"
            );
        }
        let cap: usize = terms.iter().map(|(_, a)| a.nnz()).sum();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::with_capacity(cap);
        let mut values = Vec::with_capacity(cap);
        indptr.push(0);
        // Merge the sorted rows of all operands with a scratch accumulator.
        let mut merged: Vec<(u32, f32)> = Vec::new();
        for r in 0..rows {
            merged.clear();
            for &(w, a) in terms {
                if w == 0.0 {
                    continue;
                }
                for (c, v) in a.row_iter(r) {
                    merged.push((c, w * v));
                }
            }
            merged.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < merged.len() {
                let c = merged[i].0;
                let mut acc = 0.0;
                while i < merged.len() && merged[i].0 == c {
                    acc += merged[i].1;
                    i += 1;
                }
                indices.push(c);
                values.push(acc);
            }
            indptr.push(indices.len());
        }
        Csr {
            rows,
            cols,
            indptr,
            indices,
            values,
            transpose_cache: OnceLock::new(),
            sell_cache: OnceLock::new(),
        }
    }

    /// Extracts rows `[start, start + len)` into a standalone `len x cols`
    /// matrix — the row-block split used by the hybrid partitioning scheme.
    pub fn row_block(&self, start: usize, len: usize) -> Csr {
        assert!(start + len <= self.rows, "row_block out of range");
        let lo = self.indptr[start];
        let hi = self.indptr[start + len];
        let indptr = self.indptr[start..=start + len]
            .iter()
            .map(|&p| p - lo)
            .collect();
        Csr {
            rows: len,
            cols: self.cols,
            indptr,
            indices: self.indices[lo..hi].to_vec(),
            values: self.values[lo..hi].to_vec(),
            transpose_cache: OnceLock::new(),
            sell_cache: OnceLock::new(),
        }
    }

    /// True if the matrix equals its transpose (used by tests).
    pub fn is_symmetric(&self, tol: f32) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        if t.indptr != self.indptr || t.indices != self.indices {
            return false;
        }
        self.values
            .iter()
            .zip(&t.values)
            .all(|(&a, &b)| (a - b).abs() <= tol)
    }
}

/// The symmetric-normalized Laplacian `Ã = D^{-1/2} (A + I) D^{-1/2}` of
/// paper Eq. (1), where `D[u,u] = 1 + deg(u)`.
///
/// The input adjacency is treated as undirected for degree purposes: the
/// degree of `u` counts stored neighbors in row `u` of `A + Aᵀ` when
/// `symmetrize` is set, otherwise just row `u` of `A`. The paper's datasets
/// store directed interactions; the models symmetrize before normalizing.
pub fn normalized_laplacian(adj: &Csr, symmetrize: bool) -> Csr {
    assert_eq!(adj.rows(), adj.cols(), "adjacency must be square");
    let n = adj.rows();
    // Strip any self-loops from the input: the "+ I" term below supplies the
    // canonical unit self-loop, and double-counting would break the spectral
    // bound of the normalized operator.
    let no_loops = {
        let triplets: Vec<(u32, u32, f32)> = adj
            .to_coo()
            .into_iter()
            .filter(|&(r, c, _)| r != c)
            .collect();
        Csr::from_coo(n, n, &triplets)
    };
    let base = if symmetrize {
        Csr::add_weighted(&[(0.5, &no_loops), (0.5, &no_loops.transpose())])
    } else {
        no_loops
    };
    let with_loops = Csr::add_weighted(&[(1.0, &base), (1.0, &Csr::identity(n))]);
    // D[u,u] = 1 + deg(u) where deg counts structural neighbors (self-loop
    // already contributes the "+1").
    let mut inv_sqrt_deg = vec![0f32; n];
    for u in 0..n {
        let deg: f32 = with_loops.row_iter(u).map(|_| 1.0).sum();
        inv_sqrt_deg[u] = 1.0 / deg.max(1.0).sqrt();
    }
    let mut out = with_loops;
    for r in 0..n {
        let lo = out.indptr[r];
        let hi = out.indptr[r + 1];
        for k in lo..hi {
            let c = out.indices[k] as usize;
            out.values[k] *= inv_sqrt_deg[r] * inv_sqrt_deg[c];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 2, 2 -> 0
        Csr::from_edges(3, &[(0, 1), (0, 2), (1, 2), (2, 0)])
    }

    #[test]
    fn from_coo_sorts_and_merges() {
        let a = Csr::from_coo(2, 2, &[(1, 1, 2.0), (0, 0, 1.0), (1, 1, 3.0)]);
        assert_eq!(a.nnz(), 2);
        assert_eq!(a.to_coo(), vec![(0, 0, 1.0), (1, 1, 5.0)]);
    }

    #[test]
    fn from_coo_handles_empty_rows() {
        let a = Csr::from_coo(4, 4, &[(3, 0, 1.0)]);
        assert_eq!(a.indptr(), &[0, 0, 0, 0, 1]);
        assert_eq!(a.row_degrees(), vec![0, 0, 0, 1]);
    }

    #[test]
    fn spmm_matches_dense() {
        let a = sample();
        let x = Dense::from_fn(3, 2, |r, c| (r * 2 + c) as f32 + 1.0);
        let y = a.spmm(&x);
        let expected = a.to_dense().matmul(&x);
        assert!(y.approx_eq(&expected, 1e-6));
    }

    #[test]
    fn spmm_transa_matches_dense() {
        let a = sample();
        let x = Dense::from_fn(3, 2, |r, c| (r + c) as f32);
        let y = a.spmm_transa(&x);
        let expected = a.to_dense().transpose().matmul(&x);
        assert!(y.approx_eq(&expected, 1e-6));
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_weighted_merges_overlap() {
        let a = Csr::from_coo(2, 2, &[(0, 0, 1.0), (0, 1, 1.0)]);
        let b = Csr::from_coo(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let s = Csr::add_weighted(&[(2.0, &a), (3.0, &b)]);
        assert_eq!(s.to_coo(), vec![(0, 0, 2.0), (0, 1, 5.0), (1, 0, 3.0)]);
    }

    #[test]
    fn row_block_roundtrip() {
        let a = sample();
        let top = a.row_block(0, 1);
        let rest = a.row_block(1, 2);
        assert_eq!(top.nnz() + rest.nnz(), a.nnz());
        assert_eq!(top.rows(), 1);
        assert_eq!(rest.rows(), 2);
        // SpMM over blocks stacks to full SpMM.
        let x = Dense::from_fn(3, 2, |r, c| (r + 2 * c) as f32);
        let stacked = Dense::vstack(&[&top.spmm(&x), &rest.spmm(&x)]);
        assert!(stacked.approx_eq(&a.spmm(&x), 1e-6));
    }

    #[test]
    fn laplacian_is_symmetric_with_unit_diagonal_scaling() {
        let a = sample();
        let lap = normalized_laplacian(&a, true);
        assert!(lap.is_symmetric(1e-6));
        // Diagonal entries are exactly 1/(1 + deg(u)).
        let degs = Csr::add_weighted(&[(0.5, &a), (0.5, &a.transpose())]).row_degrees();
        for u in 0..lap.rows() {
            let diag = lap
                .row_iter(u)
                .find(|&(c, _)| c as usize == u)
                .map(|(_, v)| v)
                .unwrap();
            let expected = 1.0 / (1.0 + degs[u] as f32);
            assert!(
                (diag - expected).abs() < 1e-6,
                "diag[{u}] = {diag}, want {expected}"
            );
        }
    }

    #[test]
    fn laplacian_identity_graph() {
        // Graph with no edges: Ã = D^{-1/2} I D^{-1/2} = I (deg = 1).
        let a = Csr::empty(3, 3);
        let lap = normalized_laplacian(&a, false);
        assert_eq!(lap.to_coo(), vec![(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "spmm shape mismatch")]
    fn spmm_shape_panics() {
        let a = Csr::empty(3, 4);
        let _ = a.spmm(&Dense::zeros(3, 2));
    }

    #[test]
    #[should_panic(expected = "spmm_transa shape mismatch")]
    fn spmm_transa_shape_panics() {
        let a = Csr::empty(3, 4);
        let _ = a.spmm_transa(&Dense::zeros(4, 2));
    }

    #[test]
    fn spmm_transa_cache_survives_reuse_and_clears_on_value_mutation() {
        // Engage the cached transpose path (wide features, forced threads)
        // and check repeated calls agree; then mutate values and check the
        // stale cache is not consulted.
        let _g = crate::pool::scoped_threads(Some(4));
        let edges: Vec<(u32, u32)> = (0..4000u32).map(|i| (i % 97, (i * 7) % 89)).collect();
        let mut a = Csr::from_edges(100, &edges);
        let x = Dense::from_fn(100, 96, |r, c| ((r * 5 + c) % 11) as f32 - 5.0);
        let first = a.spmm_transa(&x);
        let again = a.spmm_transa(&x);
        assert_eq!(first, again);
        let serial_ref = {
            let _s = crate::pool::scoped_threads(Some(1));
            a.spmm_transa(&x)
        };
        assert_eq!(first, serial_ref);
        for v in a.values_mut() {
            *v *= 2.0;
        }
        let doubled = a.spmm_transa(&x);
        assert!(doubled.approx_eq(&first.scale(2.0), 1e-3));
    }

    #[test]
    fn spmm_rows_matches_full_product_bitwise() {
        let edges: Vec<(u32, u32)> = (0..600u32).map(|i| (i % 37, (i * 11) % 41)).collect();
        let a = Csr::from_edges(50, &edges);
        let x = Dense::from_fn(50, 7, |r, c| ((r * 13 + c * 3) % 17) as f32 - 8.0);
        let full = a.spmm(&x);
        for threads in [1usize, 4] {
            let _g = crate::pool::scoped_threads(Some(threads));
            let rows: Vec<u32> = vec![0, 3, 3, 17, 49];
            let sub = a.spmm_rows(&x, &rows);
            assert_eq!(sub.shape(), (5, 7));
            for (i, &r) in rows.iter().enumerate() {
                for c in 0..7 {
                    assert_eq!(
                        sub.get(i, c).to_bits(),
                        full.get(r as usize, c).to_bits(),
                        "row {r} col {c} at {threads} threads"
                    );
                }
            }
            assert_eq!(a.spmm_rows(&x, &[]).shape(), (0, 7));
        }
    }

    #[test]
    fn spmm_rows_into_overwrites_selected_rows_bitwise() {
        let edges: Vec<(u32, u32)> = (0..600u32).map(|i| (i % 37, (i * 11) % 41)).collect();
        let a = Csr::from_edges(50, &edges);
        let x = Dense::from_fn(50, 7, |r, c| ((r * 13 + c * 3) % 17) as f32 - 8.0);
        let full = a.spmm(&x);
        for threads in [1usize, 4] {
            let _g = crate::pool::scoped_threads(Some(threads));
            let rows: Vec<u32> = vec![0, 3, 17, 49];
            // Stale garbage in every row: selected rows must be fully
            // overwritten, unselected rows left byte-for-byte alone.
            let mut out = Dense::from_fn(50, 7, |r, c| (r * 7 + c) as f32 + 0.5);
            let before = out.clone();
            a.spmm_rows_into(&x, &rows, &mut out);
            for r in 0..50u32 {
                for c in 0..7 {
                    let want = if rows.contains(&r) {
                        full.get(r as usize, c)
                    } else {
                        before.get(r as usize, c)
                    };
                    assert_eq!(
                        out.get(r as usize, c).to_bits(),
                        want.to_bits(),
                        "row {r} col {c} at {threads} threads"
                    );
                }
            }
            // Empty selection is a no-op.
            let untouched = out.clone();
            a.spmm_rows_into(&x, &[], &mut out);
            assert_eq!(out, untouched);
        }
    }

    #[test]
    fn spmm_rows_into_handles_every_chunk_remainder() {
        // Regression: the chunk split used to take `chunks = min(len, 4T)`
        // with `rows_per_chunk = ceil(len / chunks)`, so any `len` where
        // `ceil(len / 4T) · (4T - 1) > len` (e.g. 5 rows at 1 thread) gave
        // a trailing chunk with `lo > len` and panicked on the slice.
        // Sweep selection sizes across the non-divisible remainders at
        // several thread counts and pin the results bitwise.
        let n = 64usize;
        let edges: Vec<(u32, u32)> = (0..900u32).map(|i| (i % 61, (i * 7) % 63)).collect();
        let a = Csr::from_edges(n, &edges);
        let x = Dense::from_fn(n, 3, |r, c| ((r * 5 + c * 11) % 19) as f32 - 9.0);
        let full = a.spmm(&x);
        for threads in [1usize, 2, 8] {
            let _g = crate::pool::scoped_threads(Some(threads));
            for len in [1usize, 2, 3, 4, 5, 7, 9, 13, 31, 33, 63, 64] {
                let rows: Vec<u32> = (0..n as u32).step_by(n / len).take(len).collect();
                assert_eq!(rows.len(), len);
                let mut out = Dense::from_fn(n, 3, |r, c| (r + c) as f32 - 2.5);
                let before = out.clone();
                a.spmm_rows_into(&x, &rows, &mut out);
                for r in 0..n {
                    for c in 0..3 {
                        let want = if rows.contains(&(r as u32)) {
                            full.get(r, c)
                        } else {
                            before.get(r, c)
                        };
                        assert_eq!(
                            out.get(r, c).to_bits(),
                            want.to_bits(),
                            "row {r} col {c}, {len} selected rows at {threads} threads"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "spmm_rows_into rows must be strictly ascending")]
    fn spmm_rows_into_rejects_unsorted_rows() {
        let edges: Vec<(u32, u32)> = (0..20u32).map(|i| (i % 5, (i * 3) % 5)).collect();
        let a = Csr::from_edges(5, &edges);
        let x = Dense::zeros(5, 2);
        let mut out = Dense::zeros(5, 2);
        a.spmm_rows_into(&x, &[3, 1], &mut out);
    }

    #[test]
    #[should_panic(expected = "spmm_rows_into row index out of range")]
    fn spmm_rows_into_index_panics() {
        let a = Csr::empty(3, 3);
        let mut out = Dense::zeros(3, 2);
        a.spmm_rows_into(&Dense::zeros(3, 2), &[3], &mut out);
    }

    #[test]
    #[should_panic(expected = "spmm_rows row index out of range")]
    fn spmm_rows_index_panics() {
        let a = Csr::empty(3, 3);
        let _ = a.spmm_rows(&Dense::zeros(3, 2), &[3]);
    }

    #[test]
    #[should_panic(expected = "spmm_rows shape mismatch")]
    fn spmm_rows_shape_panics() {
        let a = Csr::empty(3, 4);
        let _ = a.spmm_rows(&Dense::zeros(3, 2), &[0]);
    }

    #[test]
    fn spmm_handles_empty_operands() {
        let a = Csr::empty(4, 3);
        let x = Dense::zeros(3, 0);
        assert_eq!(a.spmm(&x).shape(), (4, 0));
        assert_eq!(a.spmm_transa(&Dense::zeros(4, 2)).shape(), (3, 2));
        let none = Csr::empty(0, 0);
        assert_eq!(none.spmm(&Dense::zeros(0, 5)).shape(), (0, 5));
    }

    #[test]
    fn degrees() {
        let a = sample();
        assert_eq!(a.row_degrees(), vec![2, 1, 1]);
        assert_eq!(a.col_degrees(), vec![1, 1, 2]);
    }
}
