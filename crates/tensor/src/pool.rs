//! Intra-rank parallel execution: thread-count resolution and the
//! row-partitioned dispatch helpers every parallel kernel builds on.
//!
//! # Determinism contract
//!
//! Every parallel kernel in this workspace partitions its *output* into
//! disjoint contiguous row (or element) blocks; each block is produced by
//! exactly one pool thread running the same inner loop the serial kernel
//! runs. No output element is ever accumulated by two threads, so results
//! are bit-identical to the serial kernels at every thread count —
//! `tests/parallel_equivalence.rs` pins this with `f32::to_bits`
//! comparisons. Scalar reductions ([`reduce_chunks`]) use fixed-size
//! chunk boundaries (independent of thread count) combined left-to-right,
//! which keeps them bit-stable across thread counts as well.
//!
//! Kernels come in two work classes with separate engage gates:
//! compute-bound GEMMs dispatch through [`par_rows`] (floor
//! [`PAR_MIN_ROW_WORK`]), while memory-bound kernels — SpMM and friends,
//! which saturate bandwidth with few threads — use [`par_rows_membound`]
//! (higher floor [`PAR_MIN_MEMBOUND_WORK`], thread count capped at the
//! host's logical CPUs so an oversubscribed override cannot regress them
//! below serial). The gates only decide *whether and how wide* to
//! dispatch, never what is computed, so they sit outside the determinism
//! contract.
//!
//! # Thread-count resolution
//!
//! In priority order:
//! 1. a thread-local override installed by [`scoped_threads`] (what
//!    `TrainOptions::threads` wires through the trainers);
//! 2. the `DGNN_THREADS` environment variable (read once per process);
//! 3. `available_parallelism()` divided by the number of live rank
//!    threads ([`RankScope`]), so `dgnn-sim`'s rank model composes with
//!    intra-rank parallelism instead of oversubscribing the host.
//!
//! Each OS thread owns its own lazily-built [`rayon::ThreadPool`], resized
//! when the resolved count changes; rank threads therefore get independent
//! pools with no cross-rank job contention.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use rayon::ThreadPool;

/// Environment variable overriding the intra-rank thread count.
pub const ENV_THREADS: &str = "DGNN_THREADS";

/// Minimum total work (inner-length × output-width units, roughly flops)
/// below which the compute-bound matmul kernels stay serial: pool dispatch
/// costs a few microseconds and must not dominate small matrices.
/// Constant, so it never affects the determinism contract.
pub const PAR_MIN_ROW_WORK: usize = 1 << 15;

/// Minimum total work for the *memory-bound* kernels (SpMM, its backward,
/// transposes): they saturate memory bandwidth with few threads while
/// paying the same dispatch overhead, so they need a larger problem than
/// the compute-bound GEMMs before the pool wins. Constant, so it never
/// affects the determinism contract.
pub const PAR_MIN_MEMBOUND_WORK: usize = 1 << 17;

/// Minimum element count below which element-wise kernels stay serial.
pub const PAR_MIN_ELEMS: usize = 1 << 13;

/// Fixed reduction chunk length. Scalar reductions compute one partial
/// per `REDUCE_CHUNK` elements and combine partials left-to-right, making
/// the result independent of the thread count (and exactly the plain
/// serial sum for inputs of at most one chunk).
pub const REDUCE_CHUNK: usize = 4096;

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    static POOL: RefCell<Option<ThreadPool>> = const { RefCell::new(None) };
}

/// Rank threads currently alive inside a `run_ranks` scope (process-wide).
static LIVE_RANKS: AtomicUsize = AtomicUsize::new(0);

fn env_threads() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var(ENV_THREADS)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// The thread count kernels on this thread will use, after resolving the
/// override / environment / available-parallelism-per-rank chain.
pub fn effective_threads() -> usize {
    if let Some(n) = OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Some(n) = env_threads() {
        return n;
    }
    let ranks = LIVE_RANKS.load(Ordering::Relaxed).max(1);
    (host_parallelism() / ranks).max(1)
}

/// The host's logical CPU count, resolved once per process.
/// `available_parallelism` is a syscall; it sits on the dispatch path of
/// every kernel (≈10µs per call on sandboxed hosts — it used to dominate
/// small-matrix training).
pub fn host_parallelism() -> usize {
    static AVAIL: OnceLock<usize> = OnceLock::new();
    *AVAIL.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// Thread count for memory-bound kernels: the resolved count capped at
/// the host's logical CPUs. Oversubscribing a bandwidth-bound kernel only
/// adds scheduling overhead (`BENCH_parallel.json` once recorded `spmm`
/// at 0.96x "speedup" running 4 threads on a 1-core host), and since the
/// determinism contract makes results thread-count independent, capping
/// the dispatch is free.
pub fn membound_threads() -> usize {
    effective_threads().min(host_parallelism())
}

/// The override currently installed on this thread, if any — used by
/// `run_ranks` to propagate the caller's setting into rank threads.
pub fn thread_override() -> Option<usize> {
    OVERRIDE.with(Cell::get)
}

/// RAII guard restoring the previous per-thread override on drop.
pub struct ThreadsGuard {
    prev: Option<usize>,
    installed: bool,
}

/// Installs a per-thread thread-count override for the guard's lifetime.
/// `None` leaves the ambient configuration untouched (the guard is inert),
/// so trainers can pass `TrainOptions::threads` through unconditionally.
pub fn scoped_threads(threads: Option<usize>) -> ThreadsGuard {
    match threads {
        Some(n) => ThreadsGuard {
            prev: OVERRIDE.with(|o| o.replace(Some(n.max(1)))),
            installed: true,
        },
        None => ThreadsGuard {
            prev: None,
            installed: false,
        },
    }
}

impl Drop for ThreadsGuard {
    fn drop(&mut self) {
        if self.installed {
            OVERRIDE.with(|o| o.set(self.prev));
        }
    }
}

/// RAII registration of `p` live rank threads: while alive, the default
/// thread count divides the host's parallelism by the total live ranks.
pub struct RankScope {
    p: usize,
}

impl RankScope {
    /// Registers `p` rank threads as live.
    pub fn enter(p: usize) -> Self {
        LIVE_RANKS.fetch_add(p, Ordering::Relaxed);
        Self { p }
    }
}

impl Drop for RankScope {
    fn drop(&mut self) {
        LIVE_RANKS.fetch_sub(self.p, Ordering::Relaxed);
    }
}

/// Runs `f` against this thread's pool, rebuilding it if the resolved
/// thread count changed since the last kernel call.
fn with_pool<R>(threads: usize, f: impl FnOnce(&ThreadPool) -> R) -> R {
    POOL.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.as_ref().is_none_or(|p| p.num_threads() != threads) {
            *slot = Some(ThreadPool::new(threads));
        }
        f(slot.as_ref().expect("pool just installed"))
    })
}

/// True when a row-partitioned kernel over `rows` output rows and
/// `total_work` flop-units will actually engage the pool under the current
/// configuration. Kernels whose parallel variant needs extra setup (e.g.
/// `spmm_transa` building the transpose) consult this first so the serial
/// path pays nothing.
pub fn rows_parallel(rows: usize, total_work: usize) -> bool {
    rows > 1 && total_work >= PAR_MIN_ROW_WORK && effective_threads() > 1 && !rayon::in_parallel()
}

/// [`rows_parallel`] for memory-bound kernels: the higher
/// [`PAR_MIN_MEMBOUND_WORK`] floor and the host-capped
/// [`membound_threads`] count, so bandwidth-bound loops never engage an
/// oversubscribed pool that can only lose to serial.
pub fn rows_parallel_membound(rows: usize, total_work: usize) -> bool {
    rows > 1
        && total_work >= PAR_MIN_MEMBOUND_WORK
        && membound_threads() > 1
        && !rayon::in_parallel()
}

/// Row-partitioned parallel execution over `data`, interpreted as rows of
/// `row_len` elements. `f(start_row, block)` receives disjoint contiguous
/// row blocks and must write only its block; `total_work` (≈ flops) gates
/// whether the pool is engaged at all. Falls back to one serial
/// `f(0, data)` call for small work, one resolved thread, or when already
/// inside a parallel region — the callback body is the single source of
/// truth for the kernel's arithmetic in every mode.
pub fn par_rows<T: Send>(
    data: &mut [T],
    row_len: usize,
    total_work: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    if data.is_empty() || row_len == 0 {
        return;
    }
    let rows = data.len() / row_len;
    let engage = rows_parallel(rows, total_work);
    dispatch_rows(data, row_len, engage, effective_threads(), f);
}

/// [`par_rows`] for memory-bound kernels (SpMM, transposes): engages
/// under [`rows_parallel_membound`] and never dispatches more threads
/// than the host has logical CPUs. The callback contract — and therefore
/// the bit-identity guarantee — is exactly [`par_rows`]'s.
pub fn par_rows_membound<T: Send>(
    data: &mut [T],
    row_len: usize,
    total_work: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    if data.is_empty() || row_len == 0 {
        return;
    }
    let rows = data.len() / row_len;
    let engage = rows_parallel_membound(rows, total_work);
    dispatch_rows(data, row_len, engage, membound_threads(), f);
}

fn dispatch_rows<T: Send>(
    data: &mut [T],
    row_len: usize,
    engage: bool,
    threads: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    debug_assert_eq!(data.len() % row_len, 0, "data is not whole rows");
    let rows = data.len() / row_len;
    if !engage || threads <= 1 {
        f(0, data);
        return;
    }
    // A few chunks per thread so atomic claiming can balance skewed rows
    // (e.g. power-law SpMM); boundaries never affect results.
    let chunks = rows.min(threads * 4);
    let rows_per_chunk = rows.div_ceil(chunks);
    with_pool(threads, |pool| {
        pool.par_chunks_mut(data, rows_per_chunk * row_len, |ci, block| {
            f(ci * rows_per_chunk, block);
        });
    });
}

/// Index-parallel loop: runs `f(i)` for every `i in 0..n`, across the pool
/// when `total_work` clears the row-work threshold (serially, in order,
/// otherwise). The closure is responsible for keeping its writes disjoint
/// across indices.
pub fn par_indices(n: usize, total_work: usize, f: impl Fn(usize) + Sync) {
    if n == 0 {
        return;
    }
    if !rows_parallel(n, total_work) {
        for i in 0..n {
            f(i);
        }
        return;
    }
    with_pool(effective_threads(), |pool| pool.parallel_for(n, &f));
}

/// [`par_indices`] for memory-bound kernels: gates on
/// [`rows_parallel_membound`] and dispatches at most [`membound_threads`]
/// workers, with the same disjoint-writes contract on the closure.
pub fn par_indices_membound(n: usize, total_work: usize, f: impl Fn(usize) + Sync) {
    if n == 0 {
        return;
    }
    if !rows_parallel_membound(n, total_work) {
        for i in 0..n {
            f(i);
        }
        return;
    }
    with_pool(membound_threads(), |pool| pool.parallel_for(n, &f));
}

/// Element-partitioned parallel execution: `f(start_index, chunk)` over
/// disjoint contiguous chunks of `data`. Serial below [`PAR_MIN_ELEMS`].
pub fn par_elems<T: Send>(data: &mut [T], f: impl Fn(usize, &mut [T]) + Sync) {
    let len = data.len();
    par_elems_weighted(data, len, f);
}

/// [`par_elems`] with an explicit work estimate, for kernels whose cost is
/// not proportional to the output length — e.g. `sum_rows`, where a short
/// `1 x cols` output still reduces over every row of the input.
pub fn par_elems_weighted<T: Send>(
    data: &mut [T],
    total_work: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    let len = data.len();
    if len == 0 {
        return;
    }
    let threads = effective_threads();
    if threads <= 1 || len <= 1 || total_work < PAR_MIN_ELEMS || rayon::in_parallel() {
        f(0, data);
        return;
    }
    let chunks = len.min(threads * 4);
    let per_chunk = len.div_ceil(chunks);
    with_pool(threads, |pool| {
        pool.par_chunks_mut(data, per_chunk, |ci, chunk| {
            f(ci * per_chunk, chunk);
        });
    });
}

/// Deterministic chunked reduction: computes `partial(chunk)` for every
/// fixed-size [`REDUCE_CHUNK`] window of `data` (possibly in parallel) and
/// combines the partials left-to-right. The fixed boundaries make the
/// result identical at every thread count; inputs of at most one chunk
/// reduce exactly like a plain serial pass.
pub fn reduce_chunks(data: &[f32], partial: impl Fn(&[f32]) -> f32 + Sync) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let n_chunks = data.len().div_ceil(REDUCE_CHUNK);
    let mut partials = vec![0.0f32; n_chunks];
    let threads = effective_threads();
    // Same engage gate as the element-wise kernels: below it the pool
    // dispatch would dominate the couple of partial sums. The chunk
    // boundaries are fixed either way, so the result does not change.
    if n_chunks == 1 || threads <= 1 || data.len() < PAR_MIN_ELEMS || rayon::in_parallel() {
        for (i, chunk) in data.chunks(REDUCE_CHUNK).enumerate() {
            partials[i] = partial(chunk);
        }
    } else {
        with_pool(threads, |pool| {
            pool.par_chunks_mut(&mut partials, 1, |ci, out| {
                let start = ci * REDUCE_CHUNK;
                let end = (start + REDUCE_CHUNK).min(data.len());
                out[0] = partial(&data[start..end]);
            });
        });
    }
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_override_nests_and_restores() {
        assert_eq!(thread_override(), None);
        {
            let _a = scoped_threads(Some(4));
            assert_eq!(effective_threads(), 4);
            {
                let _b = scoped_threads(Some(2));
                assert_eq!(effective_threads(), 2);
                let _inert = scoped_threads(None);
                assert_eq!(effective_threads(), 2);
            }
            assert_eq!(effective_threads(), 4);
        }
        assert_eq!(thread_override(), None);
    }

    #[test]
    fn par_rows_covers_all_rows_at_any_thread_count() {
        for threads in [1, 2, 5] {
            let _g = scoped_threads(Some(threads));
            let mut data = vec![0u32; 37 * 3];
            // Force the parallel path with a large claimed work size.
            par_rows(&mut data, 3, usize::MAX, |r0, block| {
                for (dr, row) in block.chunks_mut(3).enumerate() {
                    for v in row {
                        *v = (r0 + dr) as u32;
                    }
                }
            });
            for r in 0..37 {
                assert!(data[r * 3..(r + 1) * 3].iter().all(|&v| v == r as u32));
            }
        }
    }

    #[test]
    fn par_rows_handles_degenerate_shapes() {
        let _g = scoped_threads(Some(4));
        let mut empty: Vec<f32> = Vec::new();
        par_rows(&mut empty, 0, usize::MAX, |_, _| panic!("no rows to run"));
        par_rows(&mut empty, 5, usize::MAX, |_, _| panic!("no rows to run"));
    }

    #[test]
    fn reduce_chunks_is_thread_count_invariant() {
        let data: Vec<f32> = (0..20_000).map(|i| (i as f32).sin()).collect();
        let reference = {
            let _g = scoped_threads(Some(1));
            reduce_chunks(&data, |c| c.iter().sum())
        };
        for threads in [2, 3, 8] {
            let _g = scoped_threads(Some(threads));
            let got = reduce_chunks(&data, |c| c.iter().sum());
            assert_eq!(got.to_bits(), reference.to_bits());
        }
    }

    #[test]
    fn reduce_chunks_small_input_matches_plain_sum() {
        let data = [1.5f32, -2.25, 4.0, 0.125];
        let plain: f32 = data.iter().sum();
        let _g = scoped_threads(Some(8));
        assert_eq!(
            reduce_chunks(&data, |c| c.iter().sum()).to_bits(),
            plain.to_bits()
        );
    }

    #[test]
    fn rank_scope_divides_default_threads() {
        // With no override and no env var the default divides by live
        // ranks; with DGNN_THREADS set the env wins. Either way the
        // resolved count stays >= 1 while ranks are registered.
        let before = effective_threads();
        {
            let _ranks = RankScope::enter(64);
            assert!(effective_threads() >= 1);
            assert!(effective_threads() <= before.max(1));
        }
        assert_eq!(effective_threads(), before);
    }
}
