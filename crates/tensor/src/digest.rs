//! Bitwise content digests: the FNV-1a hash the workspace benchmarks,
//! golden-equivalence tests, and serving snapshots use to fingerprint
//! exact `f32` bit patterns. One shared definition so the convention
//! cannot drift between its consumers.

/// FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher over bytes.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(OFFSET)
    }

    /// Absorbs bytes.
    pub fn eat(&mut self, bytes: impl IntoIterator<Item = u8>) {
        for b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Absorbs a little-endian `u64`.
    pub fn eat_u64(&mut self, v: u64) {
        self.eat(v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// CRC-32 slicing tables, built once per process. `TABLES[0]` is the
/// classic byte table; `TABLES[j]` advances a byte through `j` more
/// zero bytes, letting the hot loop fold eight input bytes per step.
static CRC_TABLES: std::sync::OnceLock<[[u32; 256]; 8]> = std::sync::OnceLock::new();

fn crc_tables() -> &'static [[u32; 256]; 8] {
    CRC_TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for i in 0..256u32 {
            let mut crc = i;
            for _ in 0..8 {
                let mask = (crc & 1).wrapping_neg();
                crc = (crc >> 1) ^ (0xedb8_8320 & mask);
            }
            t[0][i as usize] = crc;
        }
        for i in 0..256 {
            for j in 1..8 {
                t[j][i] = (t[j - 1][i] >> 8) ^ t[0][(t[j - 1][i] & 0xff) as usize];
            }
        }
        t
    })
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) — the integrity check shared
/// by the `dgnn-serve` checkpoint format and the `dgnn-store` spill
/// frames. Slice-by-8: the out-of-core store verifies every block it
/// faults back in, so this runs per block read, not once per save/load,
/// and the bit-serial form was the dominant cost of a tier miss.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = crc_tables();
    let mut crc = 0xffff_ffffu32;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let lo = u32::from_le_bytes(c[0..4].try_into().unwrap()) ^ crc;
        let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// FNV-1a over a byte stream.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = Fnv1a::new();
    h.eat(bytes);
    h.finish()
}

/// FNV-1a over the exact bit patterns of a float slice — the
/// "parameters drifted?" fingerprint of the equivalence suites.
pub fn digest_f32(values: &[f32]) -> u64 {
    fnv1a(values.iter().flat_map(|v| v.to_bits().to_le_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a([]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(*b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(*b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The classic IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn crc32_slicing_matches_bit_serial_at_every_alignment() {
        fn bit_serial(bytes: &[u8]) -> u32 {
            let mut crc = 0xffff_ffffu32;
            for &b in bytes {
                crc ^= u32::from(b);
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (0xedb8_8320 & mask);
                }
            }
            !crc
        }
        // Lengths straddling the 8-byte fold boundary, including empty.
        let data: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(37) ^ 0xa5) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), bit_serial(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn f32_digest_is_bit_sensitive() {
        let a = digest_f32(&[1.0, 2.0]);
        let b = digest_f32(&[1.0, 2.0000002]); // one ulp-ish away
        assert_ne!(a, b);
        assert_eq!(a, digest_f32(&[1.0, 2.0]));
        // +0.0 and -0.0 are different bit patterns and must differ.
        assert_ne!(digest_f32(&[0.0]), digest_f32(&[-0.0]));
    }
}
