//! Bitwise content digests: the FNV-1a hash the workspace benchmarks,
//! golden-equivalence tests, and serving snapshots use to fingerprint
//! exact `f32` bit patterns. One shared definition so the convention
//! cannot drift between its consumers.

/// FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming FNV-1a hasher over bytes.
#[derive(Clone, Copy, Debug)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// A hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(OFFSET)
    }

    /// Absorbs bytes.
    pub fn eat(&mut self, bytes: impl IntoIterator<Item = u8>) {
        for b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(PRIME);
        }
    }

    /// Absorbs a little-endian `u64`.
    pub fn eat_u64(&mut self, v: u64) {
        self.eat(v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a over a byte stream.
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h = Fnv1a::new();
    h.eat(bytes);
    h.finish()
}

/// FNV-1a over the exact bit patterns of a float slice — the
/// "parameters drifted?" fingerprint of the equivalence suites.
pub fn digest_f32(values: &[f32]) -> u64 {
    fnv1a(values.iter().flat_map(|v| v.to_bits().to_le_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a([]), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(*b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(*b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn f32_digest_is_bit_sensitive() {
        let a = digest_f32(&[1.0, 2.0]);
        let b = digest_f32(&[1.0, 2.0000002]); // one ulp-ish away
        assert_ne!(a, b);
        assert_eq!(a, digest_f32(&[1.0, 2.0]));
        // +0.0 and -0.0 are different bit patterns and must differ.
        assert_ne!(digest_f32(&[0.0]), digest_f32(&[-0.0]));
    }
}
