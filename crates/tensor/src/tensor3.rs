//! Third-order tensors stored as `T` matrix slices, plus the mode-1
//! tensor-times-matrix (TTM) product that realises the M-transform of
//! TM-GCN (paper §5.3).

use crate::dense::Dense;
use crate::sparse::Csr;

/// A dense `T x N x F` tensor stored as `T` frames of `N x F` matrices.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor3 {
    frames: Vec<Dense>,
}

impl Tensor3 {
    /// Wraps a sequence of equally-shaped frames.
    pub fn new(frames: Vec<Dense>) -> Self {
        if let Some(first) = frames.first() {
            let shape = first.shape();
            assert!(
                frames.iter().all(|f| f.shape() == shape),
                "all frames must share a shape"
            );
        }
        Self { frames }
    }

    /// A zero tensor with `t` frames of shape `rows x cols`.
    pub fn zeros(t: usize, rows: usize, cols: usize) -> Self {
        Self {
            frames: (0..t).map(|_| Dense::zeros(rows, cols)).collect(),
        }
    }

    /// Number of timesteps (mode-1 extent).
    pub fn t(&self) -> usize {
        self.frames.len()
    }

    /// Shape of each frame.
    pub fn frame_shape(&self) -> (usize, usize) {
        self.frames.first().map(Dense::shape).unwrap_or((0, 0))
    }

    /// Frame at timestep `t`.
    pub fn frame(&self, t: usize) -> &Dense {
        &self.frames[t]
    }

    /// Mutable frame at timestep `t`.
    pub fn frame_mut(&mut self, t: usize) -> &mut Dense {
        &mut self.frames[t]
    }

    /// All frames.
    pub fn frames(&self) -> &[Dense] {
        &self.frames
    }

    /// Consumes the tensor into its frames.
    pub fn into_frames(self) -> Vec<Dense> {
        self.frames
    }

    /// Mode-1 TTM product `Y = M ×₁ X`, i.e. `Y_t = Σ_k M[t,k] · X_k`.
    ///
    /// `m` must be `T x T`. Zero entries of `M` are skipped, so a banded `M`
    /// costs O(band · T · N · F).
    pub fn ttm_mode1(&self, m: &Dense) -> Tensor3 {
        let t = self.t();
        assert_eq!(m.shape(), (t, t), "M must be TxT");
        let (rows, cols) = self.frame_shape();
        let mut out = Vec::with_capacity(t);
        for ti in 0..t {
            let mut acc = Dense::zeros(rows, cols);
            for k in 0..t {
                let w = m.get(ti, k);
                if w != 0.0 {
                    acc.axpy(w, &self.frames[k]);
                }
            }
            out.push(acc);
        }
        Tensor3 { frames: out }
    }
}

/// A sparse `T x N x N` tensor stored as `T` CSR slices — the adjacency
/// tensor `A` of a DTDG.
#[derive(Clone, Debug)]
pub struct SparseTensor3 {
    slices: Vec<Csr>,
}

impl SparseTensor3 {
    /// Wraps a sequence of equally-shaped CSR slices.
    pub fn new(slices: Vec<Csr>) -> Self {
        if let Some(first) = slices.first() {
            let shape = (first.rows(), first.cols());
            assert!(
                slices.iter().all(|s| (s.rows(), s.cols()) == shape),
                "all slices must share a shape"
            );
        }
        Self { slices }
    }

    /// Number of timesteps.
    pub fn t(&self) -> usize {
        self.slices.len()
    }

    /// Slice at timestep `t`.
    pub fn slice(&self, t: usize) -> &Csr {
        &self.slices[t]
    }

    /// All slices.
    pub fn slices(&self) -> &[Csr] {
        &self.slices
    }

    /// Consumes into the slice vector.
    pub fn into_slices(self) -> Vec<Csr> {
        self.slices
    }

    /// Total stored entries across all slices.
    pub fn total_nnz(&self) -> usize {
        self.slices.iter().map(Csr::nnz).sum()
    }

    /// Mode-1 TTM with a `T x T` matrix: `Y_t = Σ_k M[t,k] · A_k` where each
    /// term is a sparse weighted sum. This is the M-transform smoothing of
    /// the adjacency tensor (paper §5.4).
    pub fn ttm_mode1(&self, m: &Dense) -> SparseTensor3 {
        let t = self.t();
        assert_eq!(m.shape(), (t, t), "M must be TxT");
        let mut out = Vec::with_capacity(t);
        for ti in 0..t {
            let terms: Vec<(f32, &Csr)> = (0..t)
                .filter(|&k| m.get(ti, k) != 0.0)
                .map(|k| (m.get(ti, k), &self.slices[k]))
                .collect();
            if terms.is_empty() {
                let (r, c) = (self.slices[ti].rows(), self.slices[ti].cols());
                out.push(Csr::empty(r, c));
            } else {
                out.push(Csr::add_weighted(&terms));
            }
        }
        SparseTensor3 { slices: out }
    }
}

/// The banded lower-triangular averaging matrix `M` of TM-GCN (paper §5.3):
///
/// `M[t,k] = 1 / min(w, t+1)` for `max(0, t-w+1) <= k <= t` (0-indexed),
/// zero elsewhere. Every row sums to 1, so the M-product averages each
/// timestep with its `w-1` predecessors.
pub fn m_banded(t: usize, w: usize) -> Dense {
    assert!(w >= 1, "window must be at least 1");
    Dense::from_fn(t, t, |ti, k| {
        let lo = ti.saturating_sub(w - 1);
        if k >= lo && k <= ti {
            1.0 / (ti - lo + 1) as f32
        } else {
            0.0
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn m_banded_rows_sum_to_one() {
        for (t, w) in [(1, 1), (5, 1), (5, 3), (8, 8), (6, 20)] {
            let m = m_banded(t, w);
            for r in 0..t {
                let s: f32 = m.row(r).iter().sum();
                assert!(
                    (s - 1.0).abs() < 1e-6,
                    "row {r} of m_banded({t},{w}) sums to {s}"
                );
            }
        }
    }

    #[test]
    fn m_banded_window_one_is_identity() {
        assert_eq!(m_banded(4, 1), Dense::eye(4));
    }

    #[test]
    fn ttm_dense_averages() {
        let x = Tensor3::new(vec![
            Dense::full(2, 2, 1.0),
            Dense::full(2, 2, 3.0),
            Dense::full(2, 2, 5.0),
        ]);
        let y = x.ttm_mode1(&m_banded(3, 2));
        assert!(y.frame(0).approx_eq(&Dense::full(2, 2, 1.0), 1e-6));
        assert!(y.frame(1).approx_eq(&Dense::full(2, 2, 2.0), 1e-6));
        assert!(y.frame(2).approx_eq(&Dense::full(2, 2, 4.0), 1e-6));
    }

    #[test]
    fn ttm_sparse_matches_dense() {
        let a0 = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let a1 = Csr::from_edges(3, &[(0, 1), (2, 0)]);
        let a2 = Csr::from_edges(3, &[(2, 1)]);
        let sp = SparseTensor3::new(vec![a0.clone(), a1.clone(), a2.clone()]);
        let m = m_banded(3, 3);
        let smoothed = sp.ttm_mode1(&m);
        // Cross-check every slice against the dense TTM.
        let dense = Tensor3::new(vec![a0.to_dense(), a1.to_dense(), a2.to_dense()]);
        let dense_smoothed = dense.ttm_mode1(&m);
        for t in 0..3 {
            assert!(smoothed
                .slice(t)
                .to_dense()
                .approx_eq(dense_smoothed.frame(t), 1e-6));
        }
        // Smoothing only adds structure.
        assert!(smoothed.slice(2).nnz() >= a2.nnz());
    }

    #[test]
    fn tensor3_shape_checks() {
        let t = Tensor3::zeros(4, 3, 2);
        assert_eq!(t.t(), 4);
        assert_eq!(t.frame_shape(), (3, 2));
    }
}
