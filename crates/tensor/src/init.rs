//! Weight-initialisation helpers (Glorot/Xavier and friends).

use crate::dense::Dense;
use rand::Rng;

/// Glorot/Xavier uniform initialisation: entries drawn from
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
pub fn glorot_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Dense {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    Dense::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
}

/// Uniform initialisation on `[-limit, limit]`.
pub fn uniform(rows: usize, cols: usize, limit: f32, rng: &mut impl Rng) -> Dense {
    Dense::from_fn(rows, cols, |_, _| rng.gen_range(-limit..limit))
}

/// Standard-normal initialisation scaled by `std`.
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Dense {
    // Box-Muller transform; rand's distributions feature is avoided to keep
    // the dependency surface minimal.
    Dense::from_fn(rows, cols, |_, _| {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn glorot_respects_limit() {
        let mut rng = StdRng::seed_from_u64(7);
        let w = glorot_uniform(16, 8, &mut rng);
        let limit = (6.0 / 24.0f32).sqrt();
        assert!(w.data().iter().all(|v| v.abs() <= limit));
    }

    #[test]
    fn glorot_deterministic_under_seed() {
        let a = glorot_uniform(4, 4, &mut StdRng::seed_from_u64(1));
        let b = glorot_uniform(4, 4, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = StdRng::seed_from_u64(42);
        let w = normal(64, 64, 2.0, &mut rng);
        let mean = w.mean();
        let var = w
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / (w.len() as f32 - 1.0);
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }
}
