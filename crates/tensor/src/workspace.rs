//! Per-rank workspace: an arena of reusable matrix buffers.
//!
//! The checkpointed training loop allocates thousands of short-lived
//! [`Dense`](crate::Dense) values per epoch — tape node outputs, backward
//! deltas, carry clones — whose shapes repeat exactly from block to block
//! and epoch to epoch. When a workspace is engaged on a thread, the `Dense`
//! constructors draw their backing `Vec<f32>` from a length-keyed free
//! list instead of the global allocator, and retired tapes return their
//! buffers via [`recycle`]. Steady-state epochs then run allocation-free
//! in the hot loop.
//!
//! # Bitwise-identity contract
//!
//! Buffer reuse never changes results: zero-initialised constructors
//! ([`Dense::zeros`](crate::Dense::zeros)) zero-fill recycled buffers, and
//! the overwrite-only constructor ([`Dense::scratch`](crate::Dense::scratch))
//! is used exclusively by kernels that write every output element before
//! any read. The engine-equivalence suite pins this with `to_bits`
//! comparisons against golden values captured before workspaces existed.
//!
//! # Scoping
//!
//! [`engage`] installs an arena on the *current thread* (one workspace per
//! rank thread — rank threads never share buffers, so no synchronisation is
//! needed). Nested engages reuse the outer arena: a streaming front-end can
//! engage once and keep buffers warm across the per-window trainer calls.
//! Setting `DGNN_WORKSPACE=0` disables reuse process-wide, and
//! [`disable`] suppresses it for a scope (the benchmark baseline).

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable disabling buffer reuse when set to `0`.
pub const ENV_WORKSPACE: &str = "DGNN_WORKSPACE";

/// Arena capacity cap, in `f32` elements (64 Mi ≈ 256 MB). Buffers recycled
/// beyond the cap are dropped, bounding worst-case retention when shapes
/// churn (e.g. a sliding stream whose windows keep growing).
const MAX_ARENA_ELEMS: usize = 1 << 26;

#[derive(Default)]
struct Arena {
    /// Free buffers keyed by exact length.
    free: HashMap<usize, Vec<Vec<f32>>>,
    /// Free index buffers keyed by exact length (CSR column indices and
    /// similar u32 payloads decoded by the out-of-core store).
    free_u32: HashMap<usize, Vec<Vec<u32>>>,
    /// Free row-pointer buffers keyed by exact length (CSR `indptr`).
    free_usize: HashMap<usize, Vec<Vec<usize>>>,
    /// Total elements currently held, in 4-byte units (`usize` counts
    /// double so the cap stays a byte bound across buffer kinds).
    held: usize,
}

thread_local! {
    /// `Some(arena)` while a workspace is engaged on this thread; the outer
    /// count tracks nesting depth so only the outermost guard tears down.
    static ARENA: RefCell<Option<Arena>> = const { RefCell::new(None) };
    static DEPTH: RefCell<usize> = const { RefCell::new(0) };
    static SUPPRESSED: RefCell<usize> = const { RefCell::new(0) };
}

/// Fresh backing-buffer allocations made by `Dense` constructors
/// (process-wide; the benchmark's allocations-per-epoch probe).
static FRESH_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Buffers served from an engaged arena instead of the allocator.
static REUSED_ALLOCS: AtomicU64 = AtomicU64::new(0);

fn env_enabled() -> bool {
    static CACHE: OnceLock<bool> = OnceLock::new();
    *CACHE.get_or_init(|| std::env::var(ENV_WORKSPACE).map_or(true, |v| v.trim() != "0"))
}

/// Guard returned by [`engage`]; drops the thread's arena when the
/// outermost guard goes out of scope.
pub struct WorkspaceGuard {
    outermost: bool,
}

impl Drop for WorkspaceGuard {
    fn drop(&mut self) {
        DEPTH.with(|d| *d.borrow_mut() -= 1);
        if self.outermost {
            ARENA.with(|a| a.borrow_mut().take());
        }
    }
}

/// Engages a buffer workspace on this thread for the guard's lifetime.
/// Nested engages share the outermost arena. Honors `DGNN_WORKSPACE=0`
/// and [`disable`] scopes by engaging nothing (reuse simply stays off).
pub fn engage() -> WorkspaceGuard {
    let suppressed = !env_enabled() || SUPPRESSED.with(|s| *s.borrow() > 0);
    let outermost = DEPTH.with(|d| {
        let mut d = d.borrow_mut();
        *d += 1;
        *d == 1
    });
    if outermost && !suppressed {
        ARENA.with(|a| *a.borrow_mut() = Some(Arena::default()));
    }
    WorkspaceGuard { outermost }
}

/// Guard returned by [`disable`].
pub struct DisableGuard(());

impl Drop for DisableGuard {
    fn drop(&mut self) {
        SUPPRESSED.with(|s| *s.borrow_mut() -= 1);
    }
}

/// Suppresses workspace reuse on this thread for the guard's lifetime:
/// [`engage`] calls inside the scope install nothing. Used by the
/// `train_engine` benchmark to measure the no-reuse baseline.
pub fn disable() -> DisableGuard {
    SUPPRESSED.with(|s| *s.borrow_mut() += 1);
    DisableGuard(())
}

/// True when an arena is engaged on this thread.
pub fn is_engaged() -> bool {
    ARENA.with(|a| a.borrow().is_some())
}

/// Takes a buffer of exactly `len` elements, reporting whether it was
/// recycled (`true`: contents are stale bits) or freshly allocated
/// (`false`: already zeroed).
fn take_impl(len: usize) -> (Vec<f32>, bool) {
    let reused = ARENA.with(|a| {
        a.borrow_mut()
            .as_mut()
            .and_then(|arena| match arena.free.get_mut(&len) {
                Some(stack) => {
                    let buf = stack.pop();
                    if buf.is_some() {
                        arena.held -= len;
                    }
                    buf
                }
                None => None,
            })
    });
    match reused {
        Some(buf) => {
            debug_assert_eq!(buf.len(), len);
            REUSED_ALLOCS.fetch_add(1, Ordering::Relaxed);
            (buf, true)
        }
        None => {
            FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
            (vec![0.0; len], false)
        }
    }
}

/// Takes a buffer of exactly `len` elements with unspecified contents
/// (recycled bits). Counts a fresh allocation when the arena has no buffer
/// of this length or no arena is engaged. Public for the out-of-core
/// store's decode path; in-crate callers go through
/// [`Dense::scratch`](crate::Dense::scratch), which documents the
/// overwrite-only contract.
pub fn take_scratch(len: usize) -> Vec<f32> {
    take_impl(len).0
}

/// Takes a zero-filled buffer of exactly `len` elements — identical
/// semantics to `vec![0.0; len]`, possibly reusing a recycled buffer.
pub(crate) fn take_zeroed(len: usize) -> Vec<f32> {
    let (mut buf, recycled) = take_impl(len);
    if recycled {
        // Fresh `vec![0.0; _]` is already zeroed; only recycled bits need it.
        buf.fill(0.0);
    }
    buf
}

/// Takes a `u32` buffer of exactly `len` elements with unspecified
/// contents — the out-of-core store decodes CSR column indices into these
/// so steady-state block reads allocate nothing. Counted in the same
/// fresh/reused statistics as the `f32` buffers.
pub fn take_scratch_u32(len: usize) -> Vec<u32> {
    let reused = ARENA.with(|a| {
        a.borrow_mut().as_mut().and_then(|arena| {
            let buf = arena.free_u32.get_mut(&len).and_then(Vec::pop);
            if buf.is_some() {
                arena.held -= len;
            }
            buf
        })
    });
    match reused {
        Some(buf) => {
            REUSED_ALLOCS.fetch_add(1, Ordering::Relaxed);
            buf
        }
        None => {
            FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
            vec![0; len]
        }
    }
}

/// Takes a `usize` buffer of exactly `len` elements with unspecified
/// contents (CSR row pointers). See [`take_scratch_u32`].
pub fn take_scratch_usize(len: usize) -> Vec<usize> {
    let reused = ARENA.with(|a| {
        a.borrow_mut().as_mut().and_then(|arena| {
            let buf = arena.free_usize.get_mut(&len).and_then(Vec::pop);
            if buf.is_some() {
                arena.held -= 2 * len;
            }
            buf
        })
    });
    match reused {
        Some(buf) => {
            REUSED_ALLOCS.fetch_add(1, Ordering::Relaxed);
            buf
        }
        None => {
            FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
            vec![0; len]
        }
    }
}

/// Returns a `u32` buffer to this thread's arena (no-op when no workspace
/// is engaged or the arena is at capacity).
pub fn recycle_u32(buf: Vec<u32>) {
    if buf.is_empty() {
        return;
    }
    ARENA.with(|a| {
        if let Some(arena) = a.borrow_mut().as_mut() {
            if arena.held + buf.len() <= MAX_ARENA_ELEMS {
                arena.held += buf.len();
                arena.free_u32.entry(buf.len()).or_default().push(buf);
            }
        }
    });
}

/// Returns a `usize` buffer to this thread's arena (no-op when no
/// workspace is engaged or the arena is at capacity).
pub fn recycle_usize(buf: Vec<usize>) {
    if buf.is_empty() {
        return;
    }
    ARENA.with(|a| {
        if let Some(arena) = a.borrow_mut().as_mut() {
            if arena.held + 2 * buf.len() <= MAX_ARENA_ELEMS {
                arena.held += 2 * buf.len();
                arena.free_usize.entry(buf.len()).or_default().push(buf);
            }
        }
    });
}

/// Counts a fresh backing-buffer allocation made outside the arena paths
/// (the copy constructors' direct fallback), keeping the benchmark's
/// allocations-per-epoch probe complete in both modes.
pub(crate) fn note_fresh() {
    FRESH_ALLOCS.fetch_add(1, Ordering::Relaxed);
}

/// Returns a backing buffer to this thread's arena. A no-op (the buffer
/// drops normally) when no workspace is engaged or the arena is at
/// capacity. Zero-length buffers are not retained.
pub fn recycle_buffer(buf: Vec<f32>) {
    if buf.is_empty() {
        return;
    }
    ARENA.with(|a| {
        if let Some(arena) = a.borrow_mut().as_mut() {
            if arena.held + buf.len() <= MAX_ARENA_ELEMS {
                arena.held += buf.len();
                arena.free.entry(buf.len()).or_default().push(buf);
            }
        }
    });
}

/// Returns a matrix's backing buffer to this thread's arena (no-op without
/// an engaged workspace).
pub fn recycle(d: crate::Dense) {
    recycle_buffer(d.into_vec());
}

/// Allocation counters since the last [`reset_alloc_stats`]:
/// `(fresh, reused)` backing-buffer acquisitions by `Dense` constructors.
pub fn alloc_stats() -> (u64, u64) {
    (
        FRESH_ALLOCS.load(Ordering::Relaxed),
        REUSED_ALLOCS.load(Ordering::Relaxed),
    )
}

/// Resets the process-wide allocation counters.
pub fn reset_alloc_stats() {
    FRESH_ALLOCS.store(0, Ordering::Relaxed);
    REUSED_ALLOCS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dense;

    #[test]
    fn recycled_buffers_are_reused_and_zeroed() {
        let _ws = engage();
        let mut d = Dense::zeros(7, 3);
        d.data_mut().fill(42.0);
        recycle(d);
        let (_, reused_before) = alloc_stats();
        let d2 = Dense::zeros(7, 3);
        let (_, reused_after) = alloc_stats();
        assert_eq!(reused_after, reused_before + 1, "buffer must be reused");
        assert!(d2.data().iter().all(|&v| v == 0.0), "reuse must re-zero");
    }

    #[test]
    fn scratch_reuses_without_zeroing_cost() {
        let _ws = engage();
        let mut d = Dense::zeros(5, 5);
        d.data_mut().fill(1.5);
        recycle(d);
        // map() fully overwrites, so recycled garbage never leaks out.
        let src = Dense::full(5, 5, 2.0);
        let out = src.map(|v| v + 1.0);
        assert!(out.data().iter().all(|&v| v == 3.0));
    }

    #[test]
    fn no_reuse_without_engaged_workspace() {
        // This test must not run under an engaged scope: fresh thread.
        std::thread::spawn(|| {
            recycle(Dense::zeros(4, 4));
            assert!(!is_engaged());
            let (_, reused0) = alloc_stats();
            let _d = Dense::zeros(4, 4);
            let (_, reused1) = alloc_stats();
            assert_eq!(reused0, reused1);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn nested_engage_shares_the_outer_arena() {
        std::thread::spawn(|| {
            let _outer = engage();
            {
                let _inner = engage();
                recycle(Dense::zeros(3, 3));
            }
            // Inner guard dropped: the arena (and its buffer) must survive.
            assert!(is_engaged());
            let (_, reused0) = alloc_stats();
            let _d = Dense::zeros(3, 3);
            let (_, reused1) = alloc_stats();
            assert_eq!(reused1, reused0 + 1);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn disable_scope_suppresses_engage() {
        std::thread::spawn(|| {
            let _off = disable();
            let _ws = engage();
            assert!(!is_engaged());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn index_buffers_recycle_like_f32_buffers() {
        std::thread::spawn(|| {
            let _ws = engage();
            recycle_u32(vec![7u32; 6]);
            recycle_usize(vec![9usize; 5]);
            let (_, reused0) = alloc_stats();
            let b32 = take_scratch_u32(6);
            let bus = take_scratch_usize(5);
            let (_, reused1) = alloc_stats();
            assert_eq!(reused1, reused0 + 2, "both index buffers must be reused");
            assert_eq!(b32.len(), 6);
            assert_eq!(bus.len(), 5);
            // Length mismatch falls back to a fresh (zeroed) allocation.
            let fresh = take_scratch_u32(4);
            assert_eq!(fresh, vec![0; 4]);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn length_mismatch_allocates_fresh() {
        std::thread::spawn(|| {
            let _ws = engage();
            recycle(Dense::zeros(2, 2));
            let (fresh0, _) = alloc_stats();
            let _d = Dense::zeros(3, 3); // different length: no reuse
            let (fresh1, _) = alloc_stats();
            assert_eq!(fresh1, fresh0 + 1);
        })
        .join()
        .unwrap();
    }
}
