//! The vertex-partitioned (hypergraph) baseline trainer (paper §4.1, §6.4)
//! — a thin wrapper binding the
//! `VertexPartitioned` (`engine::vertex_part`)
//! strategy to the shared execution engine. The wrapper owns the setup
//! that is genuinely entry-point work — hypergraph partitioning, the
//! contiguous renaming, and relabelling the samples so both schemes train
//! on the same task — while the exchange plan and staged backward live in
//! `crate::engine::vertex_part`.

use dgnn_graph::{DynamicGraph, EdgeSamples, Snapshot};
use dgnn_models::{LinkPredHead, Model, ModelConfig};
use dgnn_partition::{contiguous_renaming, partition, Hypergraph, PartitionerConfig};
use dgnn_sim::run_ranks;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::vertex_part::{build_plan, part_ranges, VertexPartitioned, VertexRankCtx};
use crate::engine::{run_engine, EngineConfig};
use crate::metrics::{EpochStats, TrainOptions};
use crate::task::{prepare_task, TaskOptions};
use dgnn_autograd::ParamStore;

/// Trains with hypergraph-based vertex partitioning over `p` rank threads
/// and returns per-epoch statistics (identical on every rank).
///
/// The partitioned SpMM consumes remapped Laplacian rows, so the §5.5
/// first-layer pre-aggregation does not apply; [`EngineConfig`] disables
/// it for the renamed-space task regardless of `task_opts`.
pub fn train_vertex_partitioned(
    raw: &DynamicGraph,
    next: &Snapshot,
    cfg: ModelConfig,
    task_opts: &TaskOptions,
    opts: &TrainOptions,
    p: usize,
) -> Vec<EpochStats> {
    train_vertex_partitioned_digest(raw, next, cfg, task_opts, opts, p).0
}

/// As [`train_vertex_partitioned`], additionally returning the FNV digest
/// of each rank's final parameter replica (rank order); the replicas must
/// agree bitwise, and the transport-equivalence suite pins the digests
/// across communicator transports and rank counts.
pub fn train_vertex_partitioned_digest(
    raw: &DynamicGraph,
    next: &Snapshot,
    cfg: ModelConfig,
    task_opts: &TaskOptions,
    opts: &TrainOptions,
    p: usize,
) -> (Vec<EpochStats>, Vec<u64>) {
    let _threads = dgnn_tensor::pool::scoped_threads(opts.threads);
    let econf = EngineConfig::new(*opts, *task_opts);
    // Samples are drawn in the original vertex space so both schemes train
    // on the same task, then renamed alongside the vertices.
    let task = prepare_task(raw, next, &cfg, &econf.resolved_task(false));
    let smoothed = &task.graph;
    let hg = Hypergraph::column_net_model(smoothed);
    let part = partition(&hg, &PartitionerConfig::new(p));
    let (perm, _inv) = contiguous_renaming(&part, p);
    let renamed_raw = raw.relabel(&perm);
    // Rebuild graph-side data in the renamed space (degree features and
    // Laplacians are permutation-equivariant).
    let renamed_task = prepare_task(
        &renamed_raw,
        &next.relabel(&perm),
        &cfg,
        &econf.resolved_task(false),
    );
    let ranges = part_ranges(&part, p);
    // Both schemes must train on the *same* sample pairs (paper Fig. 6
    // compares convergence): take the original-space samples and rename
    // their endpoints, rather than re-sampling in the renamed space.
    let train_samples: Vec<EdgeSamples> = task.train.iter().map(|s| s.relabel(&perm)).collect();
    let test_samples = task.test.relabel(&perm);
    let ctx_template = (renamed_task, ranges);

    let results = run_ranks(p, |comm| {
        let (task, ranges) = &ctx_template;
        let plan = build_plan(&task.laps, ranges, comm.rank());
        let ctx = VertexRankCtx {
            ranges: ranges.clone(),
            plan,
            features: task.features.clone(),
            train: train_samples.clone(),
            test: test_samples.clone(),
        };
        let mut rng = StdRng::seed_from_u64(econf.train.seed);
        let mut store = ParamStore::new();
        let model = Model::new(cfg, &mut store, &mut rng);
        let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
        let blocks = econf.blocks(task.t);
        let mut strategy = VertexPartitioned::new(comm, &model, &head, &ctx, task);
        let stats = run_engine(
            &mut strategy,
            &mut store,
            &blocks,
            econf.train.epochs,
            econf.train.lr,
        );
        let digest = dgnn_tensor::digest::digest_f32(&store.values_flat());
        (stats, digest)
    });
    let (mut stats, digests): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    (stats.swap_remove(0), digests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::gen::churn;
    use dgnn_models::ModelKind;

    fn tiny_cfg(kind: ModelKind) -> ModelConfig {
        ModelConfig {
            kind,
            input_f: 2,
            hidden: 4,
            mprod_window: 3,
            smoothing_window: 3,
        }
    }

    #[test]
    fn vertex_partitioned_learns() {
        let g = churn(24, 6, 100, 0.3, 5);
        let raw = g.time_slice(0, 5);
        let next = g.snapshot(5).clone();
        let stats = train_vertex_partitioned(
            &raw,
            &next,
            tiny_cfg(ModelKind::TmGcn),
            &TaskOptions {
                precompute_first_layer: false,
                ..Default::default()
            },
            &TrainOptions {
                epochs: 4,
                lr: 0.02,
                nb: 1,
                seed: 3,
                threads: None,
            },
            2,
        );
        assert_eq!(stats.len(), 4);
        assert!(stats.last().unwrap().loss < stats.first().unwrap().loss);
    }
}
