//! Online training over a live event stream (continual learning).
//!
//! [`train_streaming`] consumes the windows of a `dgnn-stream` event log
//! as they close. Each closed window appends one materialized snapshot to
//! a bounded trailing history; once enough history exists, the model
//! trains on the history with the newest snapshot held out as the
//! prediction target — the online analogue of `prepare_task_holdout`.
//! Parameters persist across windows (the model *warm-starts* from the
//! previous window), so late windows start from an already-fitted model
//! instead of a fresh initialisation; per-window optimiser state (Adam
//! moments) resets with the window, matching how the batch trainer treats
//! each call.
//!
//! The inner loop is exactly the §3 checkpointed trainer
//! ([`crate::train_single`]): a streaming run configured to close a
//! single window over the full timeline reproduces the batch trainer's
//! parameter trajectory bit for bit, which the integration tests assert.

use std::collections::VecDeque;

use dgnn_autograd::ParamStore;
use dgnn_graph::{DynamicGraph, Snapshot};
use dgnn_models::{accuracy, CarryState, LinkPredHead, Model, ModelConfig};
use dgnn_partition::balanced_ranges;
use dgnn_stream::{windows, EventLog, WindowPolicy};
use dgnn_tensor::Dense;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::single_rank::run_block;
use crate::engine::source::TaskSource;
use crate::metrics::{auc, EpochStats, TrainOptions};
use crate::single::train_single;
use crate::task::{prepare_task_journaled, Task, TaskOptions};

/// Options for online streaming training.
#[derive(Clone, Copy, Debug)]
pub struct StreamTrainOptions {
    /// How the event log is cut into snapshots.
    pub policy: WindowPolicy,
    /// Maximum trailing snapshots trained on per window (memory bound).
    pub history: usize,
    /// Training begins once this many history snapshots exist (≥ 1). With
    /// `min_history = T - 1` on a `T`-snapshot stream, only the final
    /// window trains — the batch-equivalence configuration.
    pub min_history: usize,
    /// Epochs per closed window.
    pub epochs_per_window: usize,
    /// Inner-trainer options (lr, checkpoint blocks, parameter seed).
    pub train: TrainOptions,
    /// Task-preparation options (sampling fraction, seed, pre-aggregation).
    pub task: TaskOptions,
}

impl Default for StreamTrainOptions {
    fn default() -> Self {
        Self {
            policy: WindowPolicy::Tumbling { width: 1 },
            history: 8,
            min_history: 1,
            epochs_per_window: 4,
            train: TrainOptions::default(),
            task: TaskOptions::default(),
        }
    }
}

/// Statistics of one trained window.
#[derive(Clone, Debug)]
pub struct WindowStats {
    /// Window index in the stream (windows before `min_history` snapshots
    /// accumulate history and produce no entry).
    pub window: usize,
    /// Exclusive end timestamp of the window.
    pub end_time: u64,
    /// Training timesteps used (history length).
    pub t: usize,
    /// Events consumed by this window's advance.
    pub events: usize,
    /// Per-epoch inner-trainer statistics for this window.
    pub epochs: Vec<EpochStats>,
    /// Link-prediction AUC on the held-out (newest) snapshot's samples,
    /// evaluated after this window's training.
    pub auc: f64,
    /// Accuracy on the same held-out samples.
    pub test_acc: f64,
}

impl WindowStats {
    /// Final-epoch mean loss of this window.
    pub fn final_loss(&self) -> f64 {
        self.epochs.last().map(|e| e.loss).unwrap_or(f64::NAN)
    }
}

/// Trains continually over an event stream and returns one entry per
/// trained window.
pub fn train_streaming(
    log: &EventLog,
    cfg: ModelConfig,
    opts: &StreamTrainOptions,
) -> Vec<WindowStats> {
    assert!(opts.history >= 1, "need at least one history snapshot");
    assert!(opts.min_history >= 1, "min_history must be at least 1");
    assert!(
        opts.min_history <= opts.history,
        "min_history ({}) exceeds history ({}): no window could ever train",
        opts.min_history,
        opts.history
    );
    let n = log.n();
    let _threads = dgnn_tensor::pool::scoped_threads(opts.train.threads);
    // Engage the buffer workspace for the whole stream so the per-window
    // engine runs (which nest inside this scope) keep their tape scratch
    // warm across windows instead of re-allocating per window.
    let _ws = dgnn_tensor::workspace::engage();

    // One parameter store for the whole stream: this is the warm start.
    let mut rng = StdRng::seed_from_u64(opts.train.seed);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);

    let mut history: VecDeque<Snapshot> = VecDeque::new();
    // Touched-vertex journal aligned with `history`: `transitions[i]` is
    // the touched set of the transition `history[i] → history[i+1]`
    // (invariant: `transitions.len() == history.len() - 1`).
    let mut transitions: VecDeque<Vec<u32>> = VecDeque::new();
    let mut out = Vec::new();
    for w in windows(log, opts.policy) {
        if !history.is_empty() {
            transitions.push_back(w.touched.clone());
        }
        history.push_back(w.snapshot.clone());
        // Keep `history` training snapshots plus the held-out newest.
        while history.len() > opts.history + 1 {
            history.pop_front();
            transitions.pop_front();
        }
        if history.len() < opts.min_history + 1 {
            continue;
        }
        let train_snaps: Vec<Snapshot> = history.iter().take(history.len() - 1).cloned().collect();
        let t = train_snaps.len();
        let train_graph = DynamicGraph::new(n, train_snaps);
        let next = history.back().expect("non-empty history").clone();
        // Task preparation runs fresh per window, but the window journal
        // lets the §5.5 pre-aggregation build incrementally across the
        // history for raw-graph (unsmoothed) configs: only rows touched
        // by each transition are recomputed. Smoothed configs (§5.4)
        // re-mix *every* history snapshot as the window slides, so
        // `prepare_task_journaled` falls back to its exact bitwise scan
        // there; either path produces the same bits as a from-scratch
        // build. The journal for the training slice excludes the final
        // transition (into the held-out snapshot).
        let journal: Vec<Vec<u32>> = transitions.iter().take(t - 1).cloned().collect();
        let task = prepare_task_journaled(&train_graph, &next, &cfg, &opts.task, Some(&journal));

        let inner = TrainOptions {
            epochs: opts.epochs_per_window,
            ..opts.train
        };
        let epochs = train_single(&model, &head, &mut store, &task, &inner);

        let (auc_score, test_acc) = evaluate_holdout(&model, &head, &store, &task);
        out.push(WindowStats {
            window: w.index,
            end_time: w.end,
            t,
            events: w.events,
            epochs,
            auc: auc_score,
            test_acc,
        });
    }
    out
}

/// Forward-only pass producing the final timestep's embeddings, then AUC
/// and accuracy of the held-out samples under the current parameters.
fn evaluate_holdout(
    model: &Model,
    head: &LinkPredHead,
    store: &ParamStore,
    task: &Task,
) -> (f64, f64) {
    let source = TaskSource::new(task);
    let blocks = balanced_ranges(task.t, 1);
    let mut carry: CarryState = model.initial_carry(task.n);
    let mut last_z: Option<Dense> = None;
    for block in &blocks {
        let run = run_block(model, head, store, task, &source, block.clone(), &carry);
        if block.end == task.t {
            last_z = Some(run.tape.value(*run.z_vars.last().unwrap()).clone());
        }
        carry = run.seg.carry_out(&run.tape);
        run.retire();
    }
    let z = last_z.expect("stream history is non-empty");
    let logits = head.predict(store, &z, &task.test);
    let scores: Vec<f32> = (0..logits.rows())
        .map(|r| logits.get(r, 1) - logits.get(r, 0))
        .collect();
    (
        auc(&scores, &task.test.labels),
        accuracy(&logits, &task.test.labels),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::gen::churn_skewed;
    use dgnn_models::ModelKind;
    use dgnn_stream::EventLog;

    fn small_cfg() -> ModelConfig {
        ModelConfig {
            kind: ModelKind::TmGcn,
            input_f: 2,
            hidden: 6,
            mprod_window: 3,
            smoothing_window: 3,
        }
    }

    #[test]
    fn trains_one_entry_per_eligible_window() {
        let g = churn_skewed(50, 7, 180, 0.3, 0.9, 4);
        let log = EventLog::replay(&g);
        let opts = StreamTrainOptions {
            history: 3,
            min_history: 2,
            epochs_per_window: 2,
            ..Default::default()
        };
        let stats = train_streaming(&log, small_cfg(), &opts);
        // Windows 0 and 1 accumulate history; 2..=6 train.
        assert_eq!(stats.len(), 5);
        assert_eq!(stats[0].window, 2);
        assert_eq!(stats[0].t, 2);
        assert!(stats.iter().all(|s| s.epochs.len() == 2));
        assert!(stats.iter().all(|s| (0.0..=1.0).contains(&s.auc)));
        assert!(stats.iter().skip(1).all(|s| s.t == 3), "history capped");
    }

    #[test]
    fn warm_start_improves_over_stream() {
        let g = churn_skewed(60, 10, 240, 0.2, 0.9, 8);
        let log = EventLog::replay(&g);
        let opts = StreamTrainOptions {
            history: 4,
            min_history: 2,
            epochs_per_window: 6,
            train: TrainOptions {
                lr: 0.05,
                ..Default::default()
            },
            ..Default::default()
        };
        let stats = train_streaming(&log, small_cfg(), &opts);
        // Later windows start from fitted parameters: their *first* epoch
        // loss should beat the first window's untrained first epoch.
        let first = stats.first().unwrap().epochs.first().unwrap().loss;
        let late = stats.last().unwrap().epochs.first().unwrap().loss;
        assert!(late < first, "warm start should help: {late} vs {first}");
    }
}
