//! Training-task preparation: smoothing, Laplacians, degree features,
//! optional first-layer pre-aggregation (paper §5.5), and link-prediction
//! samples — everything a trainer consumes.

use std::sync::atomic::{AtomicU64, Ordering};

use dgnn_graph::features::degree_features;
use dgnn_graph::linkpred::build_linkpred;
use dgnn_graph::preagg::{incremental_preagg, ReuseStats};
use dgnn_graph::smoothing::m_transform_features;
use dgnn_graph::{DynamicGraph, EdgeSamples, Smoothing, Snapshot};
use dgnn_models::ModelConfig;
use dgnn_tensor::{Csr, Dense};

/// A fully prepared training task.
pub struct Task {
    /// Number of vertices.
    pub n: usize,
    /// Number of training timesteps.
    pub t: usize,
    /// The smoothed dynamic graph the model trains on.
    pub graph: DynamicGraph,
    /// Normalized Laplacians `Ã_t` of the smoothed snapshots.
    pub laps: Vec<Csr>,
    /// Input features per timestep (`N x F`), M-transformed for TM-GCN.
    pub features: Vec<Dense>,
    /// Pre-computed `Ã_t · X_t` for the first layer (paper §5.5), when the
    /// optimization is enabled.
    pub preagg: Option<Vec<Dense>>,
    /// Link-prediction training samples per timestep (drawn from the raw,
    /// unsmoothed snapshots — the task predicts real edges).
    pub train: Vec<EdgeSamples>,
    /// Test samples from the held-out snapshot at `T+1`.
    pub test: EdgeSamples,
    /// How the pre-aggregation was built (all zeros when `preagg` is
    /// `None`): full rebuilds vs incremental carries and the row counts
    /// behind them.
    pub preagg_reuse: ReuseStats,
    /// Process-unique revision of this task's operator/input blocks.
    /// The out-of-core spill keys are scoped by it, so two tasks spilled
    /// into one shared tier can never serve each other stale blocks.
    pub input_revision: u64,
}

/// Options controlling task preparation.
#[derive(Clone, Copy, Debug)]
pub struct TaskOptions {
    /// Fraction of each snapshot's edges sampled as positives (paper: 0.1).
    pub theta: f64,
    /// Enable the first-layer `Ã·X` pre-computation.
    pub precompute_first_layer: bool,
    /// Build the pre-aggregation incrementally across snapshots
    /// ([`dgnn_graph::preagg`]): each timestep's block starts as a copy
    /// of its predecessor and only the dirty rows are recomputed.
    /// Bit-identical to the from-scratch build either way; turning it
    /// off only changes how the same bits are produced.
    pub reuse_preagg: bool,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for TaskOptions {
    fn default() -> Self {
        Self {
            theta: 0.1,
            precompute_first_layer: true,
            reuse_preagg: true,
            seed: 17,
        }
    }
}

/// Source of [`Task::input_revision`] values.
static NEXT_INPUT_REVISION: AtomicU64 = AtomicU64::new(0);

/// Prepares a task from a raw dynamic graph: applies the model's smoothing,
/// builds Laplacians and degree features (M-transformed alongside the
/// adjacency for TM-GCN), pre-aggregates the first layer if requested, and
/// samples the link-prediction sets. `next` is the held-out snapshot at
/// `T+1` that the test set is drawn from.
pub fn prepare_task(
    raw: &DynamicGraph,
    next: &Snapshot,
    cfg: &ModelConfig,
    opts: &TaskOptions,
) -> Task {
    prepare_task_journaled(raw, next, cfg, opts, None)
}

/// [`prepare_task`] with an optional touched-vertex journal:
/// `journal[t-1]` lists every vertex whose incident edges (structure or
/// weight) changed between raw snapshots `t-1` and `t` — what
/// `DeltaBatcher::touched_vertices` emits per window. When the model
/// applies no smoothing the journal bounds the dirty pre-aggregation
/// rows directly (the Eq. (1) Laplacian is structurally symmetric and
/// degree features are per-vertex), so the incremental build skips even
/// the fallback scan; smoothed configs mix raw frames across time, so
/// the journal is ignored there and the exact bitwise scan decides.
pub fn prepare_task_journaled(
    raw: &DynamicGraph,
    next: &Snapshot,
    cfg: &ModelConfig,
    opts: &TaskOptions,
    journal: Option<&[Vec<u32>]>,
) -> Task {
    let smoothing = cfg.smoothing();
    let graph = smoothing.apply(raw);
    let laps: Vec<Csr> = graph.snapshots().iter().map(Snapshot::laplacian).collect();

    let mut features = degree_features(raw);
    if let Smoothing::MProduct(w) = smoothing {
        // TM-GCN smooths the feature tensor with the same M (paper §5.4).
        features = m_transform_features(&features, w);
    }
    let features: Vec<Dense> = features.into_frames();

    let mut preagg_reuse = ReuseStats::default();
    let preagg = opts.precompute_first_layer.then(|| {
        if opts.reuse_preagg {
            let journal = journal.filter(|_| matches!(smoothing, Smoothing::None));
            let (blocks, stats) = incremental_preagg(&laps, &features, journal);
            preagg_reuse = stats;
            blocks
        } else {
            laps.iter()
                .zip(&features)
                .map(|(a, x)| a.spmm(x))
                .collect::<Vec<Dense>>()
        }
    });

    let data = build_linkpred(raw, next, opts.theta, opts.seed);
    Task {
        n: raw.n(),
        t: raw.t(),
        graph,
        laps,
        features,
        preagg,
        train: data.train,
        test: data.test,
        preagg_reuse,
        input_revision: NEXT_INPUT_REVISION.fetch_add(1, Ordering::Relaxed),
    }
}

/// Convenience: split off the final snapshot of `g` as the held-out test
/// snapshot and prepare a task on the rest.
pub fn prepare_task_holdout(g: &DynamicGraph, cfg: &ModelConfig, opts: &TaskOptions) -> Task {
    assert!(g.t() >= 2, "need at least two snapshots");
    let train_graph = g.time_slice(0, g.t() - 1);
    let next = g.snapshot(g.t() - 1).clone();
    prepare_task(&train_graph, &next, cfg, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::gen::churn;
    use dgnn_models::ModelKind;

    #[test]
    fn tmgcn_task_smooths_graph_and_features() {
        let g = churn(50, 6, 150, 0.4, 1);
        let cfg = ModelConfig::paper_defaults(ModelKind::TmGcn);
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        assert_eq!(task.t, 5);
        // Smoothing grows snapshots.
        assert!(task.graph.total_nnz() > g.time_slice(0, 5).total_nnz());
        assert_eq!(task.laps.len(), 5);
        assert_eq!(task.features.len(), 5);
        assert!(task.preagg.is_some());
    }

    #[test]
    fn cdgcn_task_keeps_raw_graph() {
        let g = churn(50, 4, 150, 0.4, 2);
        let cfg = ModelConfig::paper_defaults(ModelKind::CdGcn);
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        assert_eq!(task.graph.total_nnz(), g.time_slice(0, 3).total_nnz());
    }

    #[test]
    fn preagg_matches_explicit_spmm() {
        let g = churn(40, 3, 100, 0.3, 3);
        let cfg = ModelConfig::paper_defaults(ModelKind::EvolveGcn);
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        let preagg = task.preagg.as_ref().unwrap();
        for t in 0..task.t {
            let expected = task.laps[t].spmm(&task.features[t]);
            assert!(preagg[t].approx_eq(&expected, 1e-6));
        }
    }

    fn preagg_bits(task: &Task) -> Vec<Vec<u32>> {
        task.preagg
            .as_ref()
            .unwrap()
            .iter()
            .map(|d| d.data().iter().map(|v| v.to_bits()).collect())
            .collect()
    }

    #[test]
    fn reuse_knob_is_bit_identical_for_every_model() {
        let g = churn(120, 5, 300, 0.1, 6);
        for kind in [ModelKind::CdGcn, ModelKind::EvolveGcn, ModelKind::TmGcn] {
            let cfg = ModelConfig::paper_defaults(kind);
            let on = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
            let off = prepare_task_holdout(
                &g,
                &cfg,
                &TaskOptions {
                    reuse_preagg: false,
                    ..TaskOptions::default()
                },
            );
            assert_eq!(preagg_bits(&on), preagg_bits(&off), "kind = {kind:?}");
            assert_eq!(off.preagg_reuse, ReuseStats::default());
            assert_eq!(on.preagg_reuse.timesteps, on.t);
        }
    }

    #[test]
    fn journaled_preparation_is_bit_identical() {
        use dgnn_graph::preagg::journal_from_diff;
        let g = churn(300, 6, 450, 0.03, 8);
        let train = g.time_slice(0, 5);
        let next = g.snapshot(5).clone();
        // churn snapshots are unweighted, so the structural-diff journal
        // covers every raw change.
        let journal: Vec<Vec<u32>> = (1..5)
            .map(|t| {
                journal_from_diff(&dgnn_graph::diff(
                    g.snapshot(t - 1).adj(),
                    g.snapshot(t).adj(),
                ))
            })
            .collect();
        let cfg = ModelConfig::paper_defaults(ModelKind::CdGcn);
        let opts = TaskOptions::default();
        let journaled = prepare_task_journaled(&train, &next, &cfg, &opts, Some(&journal));
        let scanned = prepare_task(&train, &next, &cfg, &opts);
        assert_eq!(preagg_bits(&journaled), preagg_bits(&scanned));
        assert!(journaled.preagg_reuse.incremental_builds > 0);
        // A smoothed config must ignore the raw journal (it would not
        // bound the smoothed row changes) and still come out identical.
        let smoothed_cfg = ModelConfig::paper_defaults(ModelKind::EvolveGcn);
        let a = prepare_task_journaled(&train, &next, &smoothed_cfg, &opts, Some(&journal));
        let b = prepare_task(&train, &next, &smoothed_cfg, &opts);
        assert_eq!(preagg_bits(&a), preagg_bits(&b));
    }

    #[test]
    fn input_revisions_are_unique() {
        let g = churn(40, 3, 100, 0.3, 5);
        let cfg = ModelConfig::paper_defaults(ModelKind::CdGcn);
        let a = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        let b = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        assert_ne!(a.input_revision, b.input_revision);
    }

    #[test]
    fn samples_cover_all_timesteps() {
        let g = churn(40, 5, 120, 0.2, 4);
        let cfg = ModelConfig::paper_defaults(ModelKind::CdGcn);
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        assert_eq!(task.train.len(), task.t);
        assert!(!task.test.is_empty());
    }
}
