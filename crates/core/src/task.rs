//! Training-task preparation: smoothing, Laplacians, degree features,
//! optional first-layer pre-aggregation (paper §5.5), and link-prediction
//! samples — everything a trainer consumes.

use dgnn_graph::features::degree_features;
use dgnn_graph::linkpred::build_linkpred;
use dgnn_graph::smoothing::m_transform_features;
use dgnn_graph::{DynamicGraph, EdgeSamples, Smoothing, Snapshot};
use dgnn_models::ModelConfig;
use dgnn_tensor::{Csr, Dense};

/// A fully prepared training task.
pub struct Task {
    /// Number of vertices.
    pub n: usize,
    /// Number of training timesteps.
    pub t: usize,
    /// The smoothed dynamic graph the model trains on.
    pub graph: DynamicGraph,
    /// Normalized Laplacians `Ã_t` of the smoothed snapshots.
    pub laps: Vec<Csr>,
    /// Input features per timestep (`N x F`), M-transformed for TM-GCN.
    pub features: Vec<Dense>,
    /// Pre-computed `Ã_t · X_t` for the first layer (paper §5.5), when the
    /// optimization is enabled.
    pub preagg: Option<Vec<Dense>>,
    /// Link-prediction training samples per timestep (drawn from the raw,
    /// unsmoothed snapshots — the task predicts real edges).
    pub train: Vec<EdgeSamples>,
    /// Test samples from the held-out snapshot at `T+1`.
    pub test: EdgeSamples,
}

/// Options controlling task preparation.
#[derive(Clone, Copy, Debug)]
pub struct TaskOptions {
    /// Fraction of each snapshot's edges sampled as positives (paper: 0.1).
    pub theta: f64,
    /// Enable the first-layer `Ã·X` pre-computation.
    pub precompute_first_layer: bool,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for TaskOptions {
    fn default() -> Self {
        Self {
            theta: 0.1,
            precompute_first_layer: true,
            seed: 17,
        }
    }
}

/// Prepares a task from a raw dynamic graph: applies the model's smoothing,
/// builds Laplacians and degree features (M-transformed alongside the
/// adjacency for TM-GCN), pre-aggregates the first layer if requested, and
/// samples the link-prediction sets. `next` is the held-out snapshot at
/// `T+1` that the test set is drawn from.
pub fn prepare_task(
    raw: &DynamicGraph,
    next: &Snapshot,
    cfg: &ModelConfig,
    opts: &TaskOptions,
) -> Task {
    let smoothing = cfg.smoothing();
    let graph = smoothing.apply(raw);
    let laps: Vec<Csr> = graph.snapshots().iter().map(Snapshot::laplacian).collect();

    let mut features = degree_features(raw);
    if let Smoothing::MProduct(w) = smoothing {
        // TM-GCN smooths the feature tensor with the same M (paper §5.4).
        features = m_transform_features(&features, w);
    }
    let features: Vec<Dense> = features.into_frames();

    let preagg = opts.precompute_first_layer.then(|| {
        laps.iter()
            .zip(&features)
            .map(|(a, x)| a.spmm(x))
            .collect::<Vec<Dense>>()
    });

    let data = build_linkpred(raw, next, opts.theta, opts.seed);
    Task {
        n: raw.n(),
        t: raw.t(),
        graph,
        laps,
        features,
        preagg,
        train: data.train,
        test: data.test,
    }
}

/// Convenience: split off the final snapshot of `g` as the held-out test
/// snapshot and prepare a task on the rest.
pub fn prepare_task_holdout(g: &DynamicGraph, cfg: &ModelConfig, opts: &TaskOptions) -> Task {
    assert!(g.t() >= 2, "need at least two snapshots");
    let train_graph = g.time_slice(0, g.t() - 1);
    let next = g.snapshot(g.t() - 1).clone();
    prepare_task(&train_graph, &next, cfg, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::gen::churn;
    use dgnn_models::ModelKind;

    #[test]
    fn tmgcn_task_smooths_graph_and_features() {
        let g = churn(50, 6, 150, 0.4, 1);
        let cfg = ModelConfig::paper_defaults(ModelKind::TmGcn);
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        assert_eq!(task.t, 5);
        // Smoothing grows snapshots.
        assert!(task.graph.total_nnz() > g.time_slice(0, 5).total_nnz());
        assert_eq!(task.laps.len(), 5);
        assert_eq!(task.features.len(), 5);
        assert!(task.preagg.is_some());
    }

    #[test]
    fn cdgcn_task_keeps_raw_graph() {
        let g = churn(50, 4, 150, 0.4, 2);
        let cfg = ModelConfig::paper_defaults(ModelKind::CdGcn);
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        assert_eq!(task.graph.total_nnz(), g.time_slice(0, 3).total_nnz());
    }

    #[test]
    fn preagg_matches_explicit_spmm() {
        let g = churn(40, 3, 100, 0.3, 3);
        let cfg = ModelConfig::paper_defaults(ModelKind::EvolveGcn);
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        let preagg = task.preagg.as_ref().unwrap();
        for t in 0..task.t {
            let expected = task.laps[t].spmm(&task.features[t]);
            assert!(preagg[t].approx_eq(&expected, 1e-6));
        }
    }

    #[test]
    fn samples_cover_all_timesteps() {
        let g = churn(40, 5, 120, 0.2, 4);
        let cfg = ModelConfig::paper_defaults(ModelKind::CdGcn);
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        assert_eq!(task.train.len(), task.t);
        assert!(!task.test.is_empty());
    }
}
