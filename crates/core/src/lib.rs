//! # dgnn-core
//!
//! The paper's primary contribution: efficient training of dynamic GNNs at
//! scale. Four trainers share the model/segment machinery of `dgnn-models`:
//!
//! * [`single::train_single`] — gradient-checkpointed single-GPU training
//!   with graph-difference transfer accounting (paper §3).
//! * [`distributed::train_distributed`] — snapshot partitioning with
//!   all-to-all redistribution over real rank threads (paper §4.2).
//! * [`vertex_dist::train_vertex_partitioned`] — the hypergraph-based
//!   vertex-partitioning baseline (paper §4.1, §6.4).
//! * [`hybrid::train_hybrid`] — intra-snapshot row splitting for snapshots
//!   too large for one GPU (paper §6.5).
//! * [`streaming::train_streaming`] — online/continual training over a
//!   `dgnn-stream` event log: windows close, snapshots materialize
//!   incrementally, and the model warm-starts from the previous window.
//!
//! All four faithfully simulate the sequential algorithm: identical seeds
//! produce matching loss/accuracy trajectories (paper Fig. 6), which the
//! integration tests assert.

pub mod classification;
pub mod distributed;
pub mod hybrid;
pub mod metrics;
pub mod single;
pub mod streaming;
pub mod task;
pub mod vertex_dist;

pub use classification::{train_single_classification, ClassEpochStats};
pub use distributed::train_distributed;
pub use hybrid::train_hybrid;
pub use metrics::{auc, EpochStats, TrainOptions};
pub use single::train_single;
pub use streaming::{train_streaming, StreamTrainOptions, WindowStats};
pub use task::{prepare_task, prepare_task_holdout, Task, TaskOptions};
pub use vertex_dist::train_vertex_partitioned;

/// Convenience re-exports of the whole stack.
pub mod prelude {
    pub use crate::metrics::{EpochStats, TrainOptions};
    pub use crate::streaming::{train_streaming, StreamTrainOptions, WindowStats};
    pub use crate::task::{prepare_task, prepare_task_holdout, Task, TaskOptions};
    pub use crate::{train_distributed, train_hybrid, train_single, train_vertex_partitioned};
    pub use dgnn_autograd::{Adam, Optimizer, ParamStore, Sgd, Tape, Var};
    pub use dgnn_graph::{
        DatasetSpec, DynamicGraph, EdgeSamples, Smoothing, Snapshot, TemporalStats,
    };
    pub use dgnn_models::{accuracy, LinkPredHead, Model, ModelConfig, ModelKind};
    pub use dgnn_partition::{Hypergraph, PartitionerConfig, SnapshotPartition, VertexChunks};
    pub use dgnn_sim::{estimate_epoch, MachineSpec, PerfConfig, PerfReport};
    pub use dgnn_stream::{
        DeltaBatcher, EdgeEvent, EventKind, EventLog, StreamingGraph, WindowPolicy,
    };
    pub use dgnn_tensor::{Csr, Dense, SparseTensor3, Tensor3};
}
