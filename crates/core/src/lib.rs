//! # dgnn-core
//!
//! The paper's primary contribution: efficient training of dynamic GNNs at
//! scale. One checkpointed execution engine ([`engine`]) owns the training
//! loop — snapshot schedule, block forward/recompute/backward, optimizer
//! stepping, workspace reuse — parameterised by a parallelism strategy;
//! the public entry points are thin bindings of a strategy to the engine:
//!
//! * [`single::train_single`] — the single-rank strategy (paper §3) with
//!   graph-difference transfer accounting.
//! * [`single::train_single_out_of_core`] — the same strategy with the
//!   snapshot blocks and checkpoint carries spilled to a `dgnn-store`
//!   tiered store ([`engine::source::StoreSource`]): training works when
//!   the snapshot working set exceeds the memory budget, bit-identically
//!   to the in-memory run.
//! * [`distributed::train_distributed`] — snapshot (time) partitioning
//!   with all-to-all redistribution over real rank threads (paper §4.2).
//! * [`vertex_dist::train_vertex_partitioned`] — the hypergraph-based
//!   vertex-partitioning baseline (paper §4.1, §6.4).
//! * [`hybrid::train_hybrid`] — intra-snapshot row splitting for snapshots
//!   too large for one GPU (paper §6.5).
//! * [`classification::train_single_classification`] — the single-rank
//!   layout with the class-weighted vertex-classification objective (§2.2).
//! * [`streaming::train_streaming`] — online/continual training over a
//!   `dgnn-stream` event log: windows close, snapshots materialize
//!   incrementally, and the model warm-starts from the previous window.
//!
//! All strategies faithfully simulate the sequential algorithm: identical
//! seeds produce matching loss/accuracy trajectories (paper Fig. 6), and
//! `tests/engine_equivalence.rs` pins every entry point's loss stream and
//! final parameters to pre-engine golden bit patterns.

#![warn(missing_docs)]

pub mod classification;
pub mod distributed;
pub mod engine;
pub mod hybrid;
pub mod metrics;
pub mod single;
pub mod streaming;
pub mod task;
pub mod vertex_dist;

pub use classification::{train_single_classification, ClassEpochStats};
pub use distributed::{train_distributed, train_distributed_digest};
pub use engine::source::{SnapshotSource, StoreSource, TaskSource};
pub use engine::EngineConfig;
pub use hybrid::{train_hybrid, train_hybrid_digest};
pub use metrics::{auc, EpochStats, TrainOptions};
pub use single::{train_single, train_single_out_of_core};
pub use streaming::{train_streaming, StreamTrainOptions, WindowStats};
pub use task::{prepare_task, prepare_task_holdout, prepare_task_journaled, Task, TaskOptions};
pub use vertex_dist::{train_vertex_partitioned, train_vertex_partitioned_digest};

/// Convenience re-exports of the whole stack.
pub mod prelude {
    pub use crate::metrics::{EpochStats, TrainOptions};
    pub use crate::streaming::{train_streaming, StreamTrainOptions, WindowStats};
    pub use crate::task::{
        prepare_task, prepare_task_holdout, prepare_task_journaled, Task, TaskOptions,
    };
    pub use crate::{
        train_distributed, train_distributed_digest, train_hybrid, train_hybrid_digest,
        train_single, train_vertex_partitioned, train_vertex_partitioned_digest,
    };
    pub use dgnn_autograd::{Adam, Optimizer, ParamStore, Sgd, Tape, Var};
    pub use dgnn_graph::{
        DatasetSpec, DynamicGraph, EdgeSamples, ReuseStats, Smoothing, Snapshot, TemporalStats,
    };
    pub use dgnn_models::{accuracy, LinkPredHead, Model, ModelConfig, ModelKind};
    pub use dgnn_partition::{Hypergraph, PartitionerConfig, SnapshotPartition, VertexChunks};
    pub use dgnn_sim::{estimate_epoch, MachineSpec, PerfConfig, PerfReport};
    pub use dgnn_stream::{
        DeltaBatcher, EdgeEvent, EventKind, EventLog, StreamingGraph, WindowPolicy,
    };
    pub use dgnn_tensor::{Csr, Dense, SparseTensor3, Tensor3};
}
