//! The single-GPU checkpointed trainer (paper §3, Fig. 2) — a thin wrapper
//! binding the `SingleRank` (`engine::single_rank`)
//! strategy to the shared execution engine ([`crate::engine`]).
//!
//! The timeline is cut into `nb` blocks. The forward pass walks blocks in
//! order, keeping only one block's tape alive at a time and storing the
//! carry `π_b` between blocks. Backpropagation walks blocks in reverse:
//! each block is *re-run* forward on a fresh tape (paper Fig. 2's "rerun"
//! segment), then swept backward with the per-timestep loss seeds plus the
//! carry gradients arriving from the block above.
//!
//! Snapshot transfers are accounted per block run under both the naive and
//! the graph-difference encodings — twice per epoch per block, once for the
//! forward pass and once for the backward rerun (paper §3.2).

use std::cell::RefCell;
use std::rc::Rc;

use dgnn_autograd::ParamStore;
use dgnn_models::{LinkPredHead, Model};
use dgnn_store::{StoreConfig, StoreError, StoreStats, TieredStore};

use crate::engine::single_rank::SingleRank;
use crate::engine::source::{SpillCarryBank, StoreSource, TaskSource};
use crate::engine::{checkpoint_blocks, run_engine, run_engine_banked};
use crate::metrics::{EpochStats, TrainOptions};
use crate::task::Task;

/// Trains the model with gradient checkpointing on a single simulated GPU
/// and returns per-epoch statistics.
pub fn train_single(
    model: &Model,
    head: &LinkPredHead,
    store: &mut ParamStore,
    task: &Task,
    opts: &TrainOptions,
) -> Vec<EpochStats> {
    let _threads = dgnn_tensor::pool::scoped_threads(opts.threads);
    let blocks = checkpoint_blocks(opts, task.t);
    let source = TaskSource::new(task);
    let mut strategy = SingleRank::new(model, head, task, &source, &blocks);
    run_engine(&mut strategy, store, &blocks, opts.epochs, opts.lr)
}

/// [`train_single`] with the snapshot blocks *and* checkpoint carries
/// spilled to a tiered [`TieredStore`]: the task's Laplacians and layer-0
/// inputs are sealed into spill files up front, an LRU memory tier keeps
/// the hot blocks resident within the store budget, and a background
/// thread prefetches one checkpoint block ahead along the §3.1 schedule.
/// This is how the repo trains a snapshot working set larger than memory.
///
/// The parameter trajectory is **bit-identical** to [`train_single`] at
/// every budget and thread count (spill frames round-trip raw bit
/// patterns; pinned by `tests/out_of_core_equivalence.rs`), and each
/// epoch's [`EpochStats::store_miss_bytes`] reports the bytes the tier
/// faulted. Returns the per-epoch statistics plus the store's final
/// counters.
///
/// Up-front I/O failures surface as typed [`StoreError`]s; a spill file
/// turning unreadable *mid-epoch* (environment failure — the store wrote
/// it moments earlier) panics with the typed error in the message.
pub fn train_single_out_of_core(
    model: &Model,
    head: &LinkPredHead,
    store: &mut ParamStore,
    task: &Task,
    opts: &TrainOptions,
    cfg: &StoreConfig,
) -> Result<(Vec<EpochStats>, StoreStats), StoreError> {
    let _threads = dgnn_tensor::pool::scoped_threads(opts.threads);
    let blocks = checkpoint_blocks(opts, task.t);
    let tier = Rc::new(RefCell::new(TieredStore::open(cfg)?));
    let source = StoreSource::spill(task, Rc::clone(&tier), &blocks)?;
    let mut bank = SpillCarryBank::new(Rc::clone(&tier));
    let mut strategy = SingleRank::new(model, head, task, &source, &blocks);
    let stats = run_engine_banked(
        &mut strategy,
        store,
        &blocks,
        opts.epochs,
        opts.lr,
        &mut bank,
    );
    let report = source.stats();
    Ok((stats, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{prepare_task_holdout, TaskOptions};
    use dgnn_models::{ModelConfig, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(kind: ModelKind) -> (Model, LinkPredHead, ParamStore, Task) {
        let g = dgnn_graph::gen::churn_skewed(60, 8, 240, 0.3, 0.9, 11);
        let cfg = ModelConfig {
            kind,
            input_f: 2,
            hidden: 6,
            mprod_window: 3,
            smoothing_window: 3,
        };
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let model = Model::new(cfg, &mut store, &mut rng);
        let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
        (model, head, store, task)
    }

    #[test]
    fn loss_decreases_over_epochs() {
        for kind in ModelKind::all() {
            let (model, head, mut store, task) = setup(kind);
            let opts = TrainOptions {
                epochs: 8,
                lr: 0.05,
                nb: 1,
                seed: 7,
                threads: None,
            };
            let stats = train_single(&model, &head, &mut store, &task, &opts);
            let first = stats.first().unwrap().loss;
            let last = stats.last().unwrap().loss;
            assert!(
                last < first,
                "{kind:?}: loss should fall ({first} -> {last})"
            );
        }
    }

    #[test]
    fn checkpoint_blocks_do_not_change_training() {
        // The core checkpointing guarantee: nb = 1 and nb = 3 produce the
        // same parameter trajectory (up to f32 noise).
        for kind in ModelKind::all() {
            let run = |nb: usize| {
                let (model, head, mut store, task) = setup(kind);
                let opts = TrainOptions {
                    epochs: 3,
                    lr: 0.02,
                    nb,
                    seed: 7,
                    threads: None,
                };
                let stats = train_single(&model, &head, &mut store, &task, &opts);
                (stats.last().unwrap().loss, store.values_flat())
            };
            let (loss1, params1) = run(1);
            let (loss3, params3) = run(3);
            assert!(
                (loss1 - loss3).abs() < 1e-4,
                "{kind:?}: losses diverge: {loss1} vs {loss3}"
            );
            let max_diff = params1
                .iter()
                .zip(&params3)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 1e-3, "{kind:?}: params diverge by {max_diff}");
        }
    }

    #[test]
    fn transfer_accounting_reports_gd_savings() {
        let (model, head, mut store, task) = setup(ModelKind::TmGcn);
        let opts = TrainOptions {
            epochs: 1,
            lr: 0.01,
            nb: 2,
            seed: 7,
            threads: None,
        };
        let stats = train_single(&model, &head, &mut store, &task, &opts);
        let s = &stats[0];
        assert!(s.transfer_gd_bytes < s.transfer_naive_bytes);
        assert!(s.gd_speedup() > 1.5, "speedup {}", s.gd_speedup());
    }

    #[test]
    fn test_accuracy_beats_chance_eventually() {
        // Link prediction on a slowly churning graph is learnable: positive
        // pairs repeat over time.
        let (model, head, mut store, task) = setup(ModelKind::TmGcn);
        let opts = TrainOptions {
            epochs: 60,
            lr: 0.1,
            nb: 1,
            seed: 7,
            threads: None,
        };
        let stats = train_single(&model, &head, &mut store, &task, &opts);
        let best = stats.iter().map(|s| s.test_acc).fold(0.0, f64::max);
        assert!(best > 0.55, "best test accuracy {best}");
    }

    #[test]
    fn nb_zero_panics() {
        let (model, head, mut store, task) = setup(ModelKind::TmGcn);
        let opts = TrainOptions {
            epochs: 1,
            lr: 0.01,
            nb: 0,
            seed: 7,
            threads: None,
        };
        let result =
            std::panic::catch_unwind(move || train_single(&model, &head, &mut store, &task, &opts));
        assert!(result.is_err(), "nb = 0 must be rejected");
    }
}
