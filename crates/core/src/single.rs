//! The single-GPU checkpointed trainer (paper §3, Fig. 2).
//!
//! The timeline is cut into `nb` blocks. The forward pass walks blocks in
//! order, keeping only one block's tape alive at a time and storing the
//! carry `π_b` between blocks. Backpropagation walks blocks in reverse:
//! each block is *re-run* forward on a fresh tape (paper Fig. 2's "rerun"
//! segment), then swept backward with the per-timestep loss seeds plus the
//! carry gradients arriving from the block above.
//!
//! Snapshot transfers are accounted per block run under both the naive and
//! the graph-difference encodings — twice per epoch per block, once for the
//! forward pass and once for the backward rerun (paper §3.2).

use std::rc::Rc;

use dgnn_autograd::{Adam, Optimizer, ParamStore, Tape, Var};
use dgnn_graph::diff::chunk_transfer;
use dgnn_models::{accuracy, CarryGrads, CarryState, LinkPredHead, Model, Segment};
use dgnn_partition::balanced_ranges;
use dgnn_tensor::{Csr, Dense};

use crate::metrics::{EpochStats, TrainOptions};
use crate::task::Task;

/// The forward artifacts of one block run.
pub(crate) struct BlockRun<'m> {
    pub tape: Tape,
    pub seg: Segment<'m>,
    /// Per-owned-timestep loss variables.
    pub loss_vars: Vec<Var>,
    /// Per-owned-timestep logits variables (for accuracy).
    pub logit_vars: Vec<Var>,
    /// Final-layer embedding variables per owned timestep.
    pub z_vars: Vec<Var>,
}

/// Runs one block forward on a fresh tape (single-rank layout: this rank
/// owns every timestep of the block).
pub(crate) fn run_block<'m>(
    model: &'m Model,
    head: &LinkPredHead,
    store: &ParamStore,
    task: &Task,
    laps: &[Rc<Csr>],
    block: std::ops::Range<usize>,
    carry_in: &CarryState,
) -> BlockRun<'m> {
    let mut tape = Tape::new();
    let mut seg = model.bind_segment(&mut tape, store, block.clone(), carry_in);
    let head_vars = head.bind(&mut tape, store);
    let layers = model.config().layers();

    // Layer-0 inputs: features, or the pre-aggregated Ã·X.
    let mut feats: Vec<Var> = Vec::with_capacity(block.len());
    for t in block.clone() {
        match &task.preagg {
            Some(pre) => feats.push(tape.constant(pre[t].clone())),
            None => feats.push(tape.constant(task.features[t].clone())),
        }
    }
    for layer in 0..layers {
        let spatial: Vec<Var> = block
            .clone()
            .map(|t| {
                let x = feats[t - block.start];
                if layer == 0 && task.preagg.is_some() {
                    seg.spatial_preagg(&mut tape, t, x)
                } else {
                    seg.spatial(&mut tape, layer, t, Rc::clone(&laps[t]), x)
                }
            })
            .collect();
        feats = seg.temporal(&mut tape, layer, 0, &spatial);
    }

    let mut loss_vars = Vec::with_capacity(block.len());
    let mut logit_vars = Vec::with_capacity(block.len());
    for t in block.clone() {
        let z = feats[t - block.start];
        let logits = head.logits(&mut tape, head_vars, z, &task.train[t]);
        let loss = tape.softmax_cross_entropy(logits, Rc::new(task.train[t].labels.clone()));
        logit_vars.push(logits);
        loss_vars.push(loss);
    }
    BlockRun {
        tape,
        seg,
        loss_vars,
        logit_vars,
        z_vars: feats,
    }
}

/// Trains the model with gradient checkpointing on a single simulated GPU
/// and returns per-epoch statistics.
pub fn train_single(
    model: &Model,
    head: &LinkPredHead,
    store: &mut ParamStore,
    task: &Task,
    opts: &TrainOptions,
) -> Vec<EpochStats> {
    assert!(opts.nb >= 1, "need at least one block");
    let _threads = dgnn_tensor::pool::scoped_threads(opts.threads);
    let blocks = balanced_ranges(task.t, opts.nb.min(task.t));
    let laps: Vec<Rc<Csr>> = task.laps.iter().cloned().map(Rc::new).collect();
    let mut opt = Adam::new(opts.lr);

    // Transfer accounting is topology-only and identical across epochs:
    // each block's snapshots move once forward and once in the rerun.
    let (mut naive_bytes, mut gd_bytes) = (0u64, 0u64);
    for block in &blocks {
        let slices: Vec<&Csr> = block
            .clone()
            .map(|t| task.graph.snapshot(t).adj())
            .collect();
        let acc = chunk_transfer(&slices);
        naive_bytes += 2 * acc.naive_bytes;
        gd_bytes += 2 * acc.gd_bytes;
    }

    let mut out = Vec::with_capacity(opts.epochs);
    for _epoch in 0..opts.epochs {
        store.zero_grad();

        // ---- Forward pass: store π_b for every block. ----
        let mut carries: Vec<CarryState> = vec![model.initial_carry(task.n)];
        let mut loss_sum = 0.0f64;
        let mut correct = 0usize;
        let mut total = 0usize;
        let mut last_z: Option<Dense> = None;
        for block in &blocks {
            let run = run_block(
                model,
                head,
                store,
                task,
                &laps,
                block.clone(),
                carries.last().unwrap(),
            );
            for (i, t) in block.clone().enumerate() {
                loss_sum += f64::from(run.tape.value(run.loss_vars[i]).get(0, 0));
                let logits = run.tape.value(run.logit_vars[i]);
                let acc = accuracy(logits, &task.train[t].labels);
                correct += (acc * task.train[t].labels.len() as f64).round() as usize;
                total += task.train[t].labels.len();
            }
            if block.end == task.t {
                last_z = Some(run.tape.value(*run.z_vars.last().unwrap()).clone());
            }
            carries.push(run.seg.carry_out(&run.tape));
            // Tape drops here: only π_b survives, as in the paper.
        }

        // ---- Backward pass: rerun blocks in reverse. ----
        let mut carry_grads: Option<CarryGrads> = None;
        for (b, block) in blocks.iter().enumerate().rev() {
            let mut run = run_block(model, head, store, task, &laps, block.clone(), &carries[b]);
            let mut seeds: Vec<(Var, Dense)> = run
                .loss_vars
                .iter()
                .map(|&lv| (lv, Dense::full(1, 1, 1.0 / task.t as f32)))
                .collect();
            if let Some(cg) = &carry_grads {
                seeds.extend(run.seg.carry_out_seeds(cg));
            }
            run.tape.backward(&seeds);
            run.tape.accumulate_param_grads(store);
            carry_grads = Some(run.seg.carry_in_grads(&run.tape));
        }

        opt.step(store);

        // Test accuracy from the last timestep's embeddings.
        let z = last_z.expect("last block must end at T");
        let test_logits = head.predict(store, &z, &task.test);
        let test_acc = accuracy(&test_logits, &task.test.labels);

        out.push(EpochStats {
            loss: loss_sum / task.t as f64,
            train_acc: correct as f64 / total.max(1) as f64,
            test_acc,
            transfer_naive_bytes: naive_bytes,
            transfer_gd_bytes: gd_bytes,
            comm_bytes: 0,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{prepare_task_holdout, TaskOptions};
    use dgnn_models::{ModelConfig, ModelKind};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(kind: ModelKind) -> (Model, LinkPredHead, ParamStore, Task) {
        let g = dgnn_graph::gen::churn_skewed(60, 8, 240, 0.3, 0.9, 11);
        let cfg = ModelConfig {
            kind,
            input_f: 2,
            hidden: 6,
            mprod_window: 3,
            smoothing_window: 3,
        };
        let task = prepare_task_holdout(&g, &cfg, &TaskOptions::default());
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let model = Model::new(cfg, &mut store, &mut rng);
        let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
        (model, head, store, task)
    }

    #[test]
    fn loss_decreases_over_epochs() {
        for kind in ModelKind::all() {
            let (model, head, mut store, task) = setup(kind);
            let opts = TrainOptions {
                epochs: 8,
                lr: 0.05,
                nb: 1,
                seed: 7,
                threads: None,
            };
            let stats = train_single(&model, &head, &mut store, &task, &opts);
            let first = stats.first().unwrap().loss;
            let last = stats.last().unwrap().loss;
            assert!(
                last < first,
                "{kind:?}: loss should fall ({first} -> {last})"
            );
        }
    }

    #[test]
    fn checkpoint_blocks_do_not_change_training() {
        // The core checkpointing guarantee: nb = 1 and nb = 3 produce the
        // same parameter trajectory (up to f32 noise).
        for kind in ModelKind::all() {
            let run = |nb: usize| {
                let (model, head, mut store, task) = setup(kind);
                let opts = TrainOptions {
                    epochs: 3,
                    lr: 0.02,
                    nb,
                    seed: 7,
                    threads: None,
                };
                let stats = train_single(&model, &head, &mut store, &task, &opts);
                (stats.last().unwrap().loss, store.values_flat())
            };
            let (loss1, params1) = run(1);
            let (loss3, params3) = run(3);
            assert!(
                (loss1 - loss3).abs() < 1e-4,
                "{kind:?}: losses diverge: {loss1} vs {loss3}"
            );
            let max_diff = params1
                .iter()
                .zip(&params3)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 1e-3, "{kind:?}: params diverge by {max_diff}");
        }
    }

    #[test]
    fn transfer_accounting_reports_gd_savings() {
        let (model, head, mut store, task) = setup(ModelKind::TmGcn);
        let opts = TrainOptions {
            epochs: 1,
            lr: 0.01,
            nb: 2,
            seed: 7,
            threads: None,
        };
        let stats = train_single(&model, &head, &mut store, &task, &opts);
        let s = &stats[0];
        assert!(s.transfer_gd_bytes < s.transfer_naive_bytes);
        assert!(s.gd_speedup() > 1.5, "speedup {}", s.gd_speedup());
    }

    #[test]
    fn test_accuracy_beats_chance_eventually() {
        // Link prediction on a slowly churning graph is learnable: positive
        // pairs repeat over time.
        let (model, head, mut store, task) = setup(ModelKind::TmGcn);
        let opts = TrainOptions {
            epochs: 60,
            lr: 0.1,
            nb: 1,
            seed: 7,
            threads: None,
        };
        let stats = train_single(&model, &head, &mut store, &task, &opts);
        let best = stats.iter().map(|s| s.test_acc).fold(0.0, f64::max);
        assert!(best > 0.55, "best test accuracy {best}");
    }
}
