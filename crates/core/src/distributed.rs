//! The snapshot-partitioned distributed trainer (paper §4.2, Fig. 3) — a
//! thin wrapper binding the
//! `TimePartitioned` (`engine::time_part`) strategy
//! to the shared execution engine; the layout and staged backward live in
//! `crate::engine::time_part`.

use dgnn_graph::{DynamicGraph, Snapshot};
use dgnn_models::{LinkPredHead, Model, ModelConfig};
use dgnn_sim::{run_ranks, Comm};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::time_part::TimePartitioned;
use crate::engine::{run_engine, EngineConfig};
use crate::metrics::{EpochStats, TrainOptions};
use crate::task::{prepare_task, Task, TaskOptions};
use dgnn_autograd::ParamStore;

/// Distributed training with snapshot partitioning over `p` rank threads.
///
/// Each rank holds a full parameter replica initialised from `opts.seed`;
/// gradients are all-reduced once per epoch so all replicas stay identical.
/// Returns the per-epoch statistics (identical on every rank).
pub fn train_distributed(
    raw: &DynamicGraph,
    next: &Snapshot,
    cfg: ModelConfig,
    task_opts: &TaskOptions,
    opts: &TrainOptions,
    p: usize,
) -> Vec<EpochStats> {
    train_distributed_digest(raw, next, cfg, task_opts, opts, p).0
}

/// As [`train_distributed`], additionally returning the FNV digest of each
/// rank's final parameter replica (rank order). The replicas must agree
/// bitwise — gradients are all-reduced in fixed rank order — and the
/// transport-equivalence suite pins these digests across communicator
/// transports and rank counts.
pub fn train_distributed_digest(
    raw: &DynamicGraph,
    next: &Snapshot,
    cfg: ModelConfig,
    task_opts: &TaskOptions,
    opts: &TrainOptions,
    p: usize,
) -> (Vec<EpochStats>, Vec<u64>) {
    let _threads = dgnn_tensor::pool::scoped_threads(opts.threads);
    let econf = EngineConfig::new(*opts, *task_opts);
    let task = prepare_task(raw, next, &cfg, &econf.resolved_task(true));
    let results = run_ranks(p, |comm| train_rank(comm, &task, cfg, &econf));
    let (mut stats, digests): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    (stats.swap_remove(0), digests)
}

fn train_rank(
    comm: &mut dyn Comm,
    task: &Task,
    cfg: ModelConfig,
    econf: &EngineConfig,
) -> (Vec<EpochStats>, u64) {
    // `opts.threads` (installed by the entry fn) reaches this rank thread
    // via `run_ranks`' override propagation: each rank owns an independent
    // pool of that size.
    let opts = &econf.train;
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let blocks = econf.blocks(task.t);
    let mut strategy = TimePartitioned::new(comm, &model, &head, task, &blocks);
    let stats = run_engine(&mut strategy, &mut store, &blocks, opts.epochs, opts.lr);
    let digest = dgnn_tensor::digest::digest_f32(&store.values_flat());
    (stats, digest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::gen::{churn, churn_skewed};
    use dgnn_models::ModelKind;

    fn tiny_cfg(kind: ModelKind) -> ModelConfig {
        ModelConfig {
            kind,
            input_f: 2,
            hidden: 4,
            mprod_window: 3,
            smoothing_window: 3,
        }
    }

    #[test]
    fn distributed_runs_and_learns() {
        let g = churn_skewed(40, 8, 160, 0.3, 0.9, 5);
        let raw = g.time_slice(0, 7);
        let next = g.snapshot(7).clone();
        for kind in ModelKind::all() {
            let stats = train_distributed(
                &raw,
                &next,
                tiny_cfg(kind),
                &TaskOptions::default(),
                &TrainOptions {
                    epochs: 6,
                    lr: 0.05,
                    nb: 2,
                    seed: 3,
                    threads: None,
                },
                2,
            );
            assert_eq!(stats.len(), 6);
            assert!(
                stats.last().unwrap().loss < stats.first().unwrap().loss,
                "{kind:?}: loss should fall"
            );
        }
    }

    #[test]
    fn world_size_does_not_change_results() {
        // P = 1 and P = 3 faithfully simulate the same sequential run.
        let g = churn(30, 6, 120, 0.25, 9);
        let raw = g.time_slice(0, 5);
        let next = g.snapshot(5).clone();
        let cfg = tiny_cfg(ModelKind::TmGcn);
        let run = |p: usize| {
            train_distributed(
                &raw,
                &next,
                cfg,
                &TaskOptions::default(),
                &TrainOptions {
                    epochs: 3,
                    lr: 0.02,
                    nb: 1,
                    seed: 3,
                    threads: None,
                },
                p,
            )
        };
        let s1 = run(1);
        let s3 = run(3);
        for (a, b) in s1.iter().zip(&s3) {
            assert!(
                (a.loss - b.loss).abs() < 1e-4,
                "loss {} vs {}",
                a.loss,
                b.loss
            );
        }
    }
}
