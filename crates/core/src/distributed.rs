//! The snapshot-partitioned distributed trainer (paper §4.2, Fig. 3).
//!
//! Timesteps are split contiguously among ranks within every checkpoint
//! block. The GCN phase is communication-free; the temporal phase runs on
//! contiguous vertex chunks after an all-to-all redistribution, and a
//! second all-to-all restores snapshot ownership for the next layer. The
//! backward pass mirrors the forward with reversed all-to-alls; parameters
//! are replicated and their gradients all-reduced once per epoch.
//!
//! EvolveGCN takes the communication-free path of paper §5.5: every rank
//! evolves the (replicated) weight chain locally and only the epoch-end
//! gradient all-reduce touches the network.
//!
//! The staged backward interleaves `Tape::backward` sweeps with the reverse
//! all-to-alls; each stage's seeds land on nodes that no earlier stage has
//! propagated (the tape enforces this).

use std::ops::Range;
use std::rc::Rc;

use dgnn_autograd::{Adam, Optimizer, ParamStore, Tape, Var};
use dgnn_graph::{DynamicGraph, Snapshot};
use dgnn_models::{
    accuracy, CarryGrads, CarryState, LinkPredHead, Model, ModelConfig, ModelKind, Segment,
};
use dgnn_partition::{balanced_ranges, VertexChunks};
use dgnn_sim::{run_ranks, Comm};
use dgnn_tensor::{Csr, Dense};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::{EpochStats, TrainOptions};
use crate::task::{prepare_task, Task, TaskOptions};

/// Per-layer communication bookkeeping of one block run.
struct LayerIo {
    /// Spatial outputs for owned timesteps.
    spatial: Vec<Var>,
    /// Temporal inputs for every block timestep (this rank's vertex chunk).
    b_in: Vec<Var>,
    /// Temporal outputs for every block timestep.
    b_out: Vec<Var>,
    /// Reassembled temporal outputs for owned timesteps (next layer input).
    c_in: Vec<Var>,
}

struct DistBlockRun<'m> {
    tape: Tape,
    seg: Segment<'m>,
    loss_vars: Vec<Var>,
    logit_vars: Vec<Var>,
    z_vars: Vec<Var>,
    layers_io: Vec<LayerIo>,
}

/// Vertical stack of row blocks `range` taken from `mats`, or an empty
/// matrix of the given width.
fn pack_rows(mats: &[&Dense], range: &Range<usize>, width: usize) -> Dense {
    if mats.is_empty() || range.is_empty() {
        return Dense::zeros(0, width);
    }
    let blocks: Vec<Dense> = mats
        .iter()
        .map(|m| m.row_block(range.start, range.len()))
        .collect();
    Dense::vstack(&blocks.iter().collect::<Vec<_>>())
}

/// The timesteps of `block` owned by each rank (contiguous split).
fn owned_per_rank(block: &Range<usize>, p: usize) -> Vec<Vec<usize>> {
    balanced_ranges(block.len(), p)
        .into_iter()
        .map(|r| r.map(|i| block.start + i).collect())
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_block_dist<'m>(
    comm: &mut Comm,
    model: &'m Model,
    head: &LinkPredHead,
    store: &ParamStore,
    task: &Task,
    laps: &[Rc<Csr>],
    block: Range<usize>,
    carry_in: &CarryState,
    chunks: &VertexChunks,
) -> DistBlockRun<'m> {
    let rank = comm.rank();
    let p = comm.world();
    let cfg = *model.config();
    let owned_all = owned_per_rank(&block, p);
    let owned = owned_all[rank].clone();
    let my_range = chunks.range(rank);

    let mut tape = Tape::new();
    let mut seg = model.bind_segment(&mut tape, store, block.clone(), carry_in);
    let head_vars = head.bind(&mut tape, store);

    // Layer-0 inputs for owned timesteps.
    let mut feats: Vec<Var> = owned
        .iter()
        .map(|&t| match &task.preagg {
            Some(pre) => tape.constant(pre[t].clone()),
            None => tape.constant(task.features[t].clone()),
        })
        .collect();

    let mut layers_io = Vec::with_capacity(cfg.layers());
    for layer in 0..cfg.layers() {
        let spatial: Vec<Var> = owned
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                let x = feats[i];
                if layer == 0 && task.preagg.is_some() {
                    seg.spatial_preagg(&mut tape, t, x)
                } else {
                    seg.spatial(&mut tape, layer, t, Rc::clone(&laps[t]), x)
                }
            })
            .collect();

        if !model.kind().uses_redistribution() {
            // EvolveGCN: identity temporal, no redistribution.
            feats = spatial.clone();
            layers_io.push(LayerIo {
                spatial,
                b_in: Vec::new(),
                b_out: Vec::new(),
                c_in: Vec::new(),
            });
            continue;
        }

        let gcn_w = cfg.gcn_out(layer);
        // --- Redistribution 1: GCN outputs → vertex chunks. ---
        let spatial_vals: Vec<&Dense> = spatial.iter().map(|&v| tape.value(v)).collect();
        let send: Vec<Dense> = (0..p)
            .map(|q| pack_rows(&spatial_vals, &chunks.range(q), gcn_w))
            .collect();
        let recv = comm.all_to_all_dense(send);
        // Unpack: one chunk matrix per block timestep.
        let mut b_in = Vec::with_capacity(block.len());
        for t in block.clone() {
            let owner = owned_all
                .iter()
                .position(|ts| ts.contains(&t))
                .expect("every timestep has an owner");
            let pos = owned_all[owner].iter().position(|&x| x == t).unwrap();
            let chunk = recv[owner].row_block(pos * my_range.len(), my_range.len());
            b_in.push(tape.input(chunk));
        }

        // --- Temporal phase on the vertex chunk, whole block. ---
        let b_out = seg.temporal(&mut tape, layer, 0, &b_in);

        // --- Redistribution 2: temporal outputs → snapshot owners. ---
        let tmp_w = cfg.temporal_out(layer);
        let send2: Vec<Dense> = (0..p)
            .map(|r| {
                let mats: Vec<&Dense> = owned_all[r]
                    .iter()
                    .map(|&t| tape.value(b_out[t - block.start]))
                    .collect();
                if mats.is_empty() {
                    Dense::zeros(0, tmp_w)
                } else {
                    Dense::vstack(&mats)
                }
            })
            .collect();
        let recv2 = comm.all_to_all_dense(send2);
        let c_in: Vec<Var> = owned
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let parts: Vec<Dense> = (0..p)
                    .map(|q| {
                        let qlen = chunks.len_of(q);
                        recv2[q].row_block(i * qlen, qlen)
                    })
                    .collect();
                tape.input(Dense::vstack(&parts.iter().collect::<Vec<_>>()))
            })
            .collect();
        feats = c_in.clone();
        layers_io.push(LayerIo {
            spatial,
            b_in,
            b_out,
            c_in,
        });
    }

    // Losses on owned timesteps.
    let mut loss_vars = Vec::with_capacity(owned.len());
    let mut logit_vars = Vec::with_capacity(owned.len());
    for (i, &t) in owned.iter().enumerate() {
        let z = feats[i];
        let logits = head.logits(&mut tape, head_vars, z, &task.train[t]);
        let loss = tape.softmax_cross_entropy(logits, Rc::new(task.train[t].labels.clone()));
        logit_vars.push(logits);
        loss_vars.push(loss);
    }
    DistBlockRun {
        tape,
        seg,
        loss_vars,
        logit_vars,
        z_vars: feats,
        layers_io,
    }
}

#[allow(clippy::too_many_arguments)]
fn backward_block_dist(
    comm: &mut Comm,
    run: &mut DistBlockRun<'_>,
    model: &Model,
    task: &Task,
    block: &Range<usize>,
    carry_grads: Option<&CarryGrads>,
    chunks: &VertexChunks,
) {
    let rank = comm.rank();
    let p = comm.world();
    let cfg = *model.config();
    let owned_all = owned_per_rank(block, p);
    let owned = owned_all[rank].clone();
    let my_range = chunks.range(rank);

    // Stage 1: loss seeds (every timestep contributes 1/T to the epoch
    // loss). EvolveGCN also takes its carry seeds here — its whole block is
    // one connected sweep.
    let mut seeds: Vec<(Var, Dense)> = run
        .loss_vars
        .iter()
        .map(|&lv| (lv, Dense::full(1, 1, 1.0 / task.t as f32)))
        .collect();
    if !model.kind().uses_redistribution() {
        if let Some(cg) = carry_grads {
            seeds.extend(run.seg.carry_out_seeds(cg));
        }
        run.tape.backward(&seeds);
        return;
    }
    run.tape.backward(&seeds);

    for layer in (0..cfg.layers()).rev() {
        let io = &run.layers_io[layer];
        let tmp_w = cfg.temporal_out(layer);
        let gcn_w = cfg.gcn_out(layer);

        // --- Reverse redistribution 2: dC (owned ts) → chunk owners. ---
        let dc: Vec<Dense> = io
            .c_in
            .iter()
            .map(|&v| {
                run.tape
                    .grad(v)
                    .expect("c_in must receive a gradient")
                    .clone()
            })
            .collect();
        let dc_refs: Vec<&Dense> = dc.iter().collect();
        let send: Vec<Dense> = (0..p)
            .map(|q| pack_rows(&dc_refs, &chunks.range(q), tmp_w))
            .collect();
        let recv = comm.all_to_all_dense(send);
        let mut seeds2: Vec<(Var, Dense)> = Vec::with_capacity(block.len());
        for t in block.clone() {
            let owner = owned_all.iter().position(|ts| ts.contains(&t)).unwrap();
            let pos = owned_all[owner].iter().position(|&x| x == t).unwrap();
            let g = recv[owner].row_block(pos * my_range.len(), my_range.len());
            seeds2.push((io.b_out[t - block.start], g));
        }
        if let Some(cg) = carry_grads {
            seeds2.extend(run.seg.carry_out_seeds_layer(cg, layer));
        }
        run.tape.backward(&seeds2);

        // --- Reverse redistribution 1: dB (block ts, my chunk) → owners. ---
        let send2: Vec<Dense> = (0..p)
            .map(|r| {
                let mats: Vec<&Dense> = owned_all[r]
                    .iter()
                    .map(|&t| {
                        run.tape
                            .grad(io.b_in[t - block.start])
                            .expect("b_in must receive a gradient")
                    })
                    .collect();
                if mats.is_empty() {
                    Dense::zeros(0, gcn_w)
                } else {
                    Dense::vstack(&mats)
                }
            })
            .collect();
        let recv2 = comm.all_to_all_dense(send2);
        let seeds3: Vec<(Var, Dense)> = owned
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let parts: Vec<Dense> = (0..p)
                    .map(|q| {
                        let qlen = chunks.len_of(q);
                        recv2[q].row_block(i * qlen, qlen)
                    })
                    .collect();
                let g = Dense::vstack(&parts.iter().collect::<Vec<_>>());
                (io.spatial[i], g)
            })
            .collect();
        run.tape.backward(&seeds3);
    }
}

/// Distributed training with snapshot partitioning over `p` rank threads.
///
/// Each rank holds a full parameter replica initialised from `opts.seed`;
/// gradients are all-reduced once per epoch so all replicas stay identical.
/// Returns the per-epoch statistics (identical on every rank).
pub fn train_distributed(
    raw: &DynamicGraph,
    next: &Snapshot,
    cfg: ModelConfig,
    task_opts: &TaskOptions,
    opts: &TrainOptions,
    p: usize,
) -> Vec<EpochStats> {
    let _threads = dgnn_tensor::pool::scoped_threads(opts.threads);
    let task = prepare_task(raw, next, &cfg, task_opts);
    let results = run_ranks(p, |comm| train_rank(comm, &task, cfg, opts));
    results.into_iter().next().expect("at least one rank")
}

fn train_rank(
    comm: &mut Comm,
    task: &Task,
    cfg: ModelConfig,
    opts: &TrainOptions,
) -> Vec<EpochStats> {
    // `opts.threads` (installed by the entry fn) reaches this rank thread
    // via `run_ranks`' override propagation: each rank owns an independent
    // pool of that size.
    let p = comm.world();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let mut opt = Adam::new(opts.lr);

    let blocks = balanced_ranges(task.t, opts.nb.min(task.t));
    let laps: Vec<Rc<Csr>> = task.laps.iter().cloned().map(Rc::new).collect();
    let chunks = VertexChunks::new(task.n, p);
    // Temporal carries live on this rank's vertex chunk; EvolveGCN's weight
    // chain is replicated so its carry shape is chunk-independent.
    let chunk_rows = match model.kind() {
        ModelKind::EvolveGcn => task.n,
        _ => chunks.range(comm.rank()).len(),
    };

    // Transfer accounting: each rank's runs within each block, first
    // snapshot naive, rest as differences (paper §6.2).
    let (mut naive_bytes, mut gd_bytes) = (0u64, 0u64);
    for block in &blocks {
        let owned = owned_per_rank(block, p)[comm.rank()].clone();
        if owned.is_empty() {
            continue;
        }
        let slices: Vec<&Csr> = owned
            .iter()
            .map(|&t| task.graph.snapshot(t).adj())
            .collect();
        let acc = dgnn_graph::diff::chunk_transfer(&slices);
        naive_bytes += 2 * acc.naive_bytes;
        gd_bytes += 2 * acc.gd_bytes;
    }

    let mut out = Vec::with_capacity(opts.epochs);
    for _epoch in 0..opts.epochs {
        let comm_bytes_start = comm.bytes_sent();
        store.zero_grad();

        // ---- Forward over blocks, storing carries. ----
        let mut carries: Vec<CarryState> = vec![model.initial_carry(chunk_rows)];
        let mut loss_sum = 0.0f64;
        let mut correct = 0f64;
        let mut total = 0f64;
        let mut last_z: Option<Dense> = None;
        for block in &blocks {
            let run = run_block_dist(
                comm,
                &model,
                &head,
                &store,
                task,
                &laps,
                block.clone(),
                carries.last().unwrap(),
                &chunks,
            );
            let owned = owned_per_rank(block, p)[comm.rank()].clone();
            for (i, &t) in owned.iter().enumerate() {
                loss_sum += f64::from(run.tape.value(run.loss_vars[i]).get(0, 0));
                let logits = run.tape.value(run.logit_vars[i]);
                let acc = accuracy(logits, &task.train[t].labels);
                correct += acc * task.train[t].labels.len() as f64;
                total += task.train[t].labels.len() as f64;
            }
            if owned.last() == Some(&(task.t - 1)) {
                last_z = Some(run.tape.value(*run.z_vars.last().unwrap()).clone());
            }
            carries.push(run.seg.carry_out(&run.tape));
        }

        // ---- Backward over blocks in reverse (rerun + staged sweeps). ----
        let mut carry_grads: Option<CarryGrads> = None;
        for (b, block) in blocks.iter().enumerate().rev() {
            let mut run = run_block_dist(
                comm,
                &model,
                &head,
                &store,
                task,
                &laps,
                block.clone(),
                &carries[b],
                &chunks,
            );
            backward_block_dist(
                comm,
                &mut run,
                &model,
                task,
                block,
                carry_grads.as_ref(),
                &chunks,
            );
            run.tape.accumulate_param_grads(&mut store);
            carry_grads = Some(run.seg.carry_in_grads(&run.tape));
        }

        // ---- Gradient all-reduce and identical optimizer step. ----
        let mut flat = store.grads_flat();
        comm.all_reduce_sum(&mut flat);
        store.set_grads_from_flat(&flat);
        opt.step(&mut store);

        // ---- Statistics. ----
        let mut stats = [loss_sum as f32, correct as f32, total as f32, 0.0, 0.0];
        if let Some(z) = &last_z {
            let logits = head.predict(&store, z, &task.test);
            let acc = accuracy(&logits, &task.test.labels);
            stats[3] = (acc * task.test.labels.len() as f64) as f32;
            stats[4] = task.test.labels.len() as f32;
        }
        comm.all_reduce_sum(&mut stats);
        out.push(EpochStats {
            loss: f64::from(stats[0]) / task.t as f64,
            train_acc: f64::from(stats[1]) / f64::from(stats[2]).max(1.0),
            test_acc: f64::from(stats[3]) / f64::from(stats[4]).max(1.0),
            transfer_naive_bytes: naive_bytes,
            transfer_gd_bytes: gd_bytes,
            comm_bytes: comm.bytes_sent() - comm_bytes_start,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::gen::{churn, churn_skewed};

    fn tiny_cfg(kind: ModelKind) -> ModelConfig {
        ModelConfig {
            kind,
            input_f: 2,
            hidden: 4,
            mprod_window: 3,
            smoothing_window: 3,
        }
    }

    #[test]
    fn distributed_runs_and_learns() {
        let g = churn_skewed(40, 8, 160, 0.3, 0.9, 5);
        let raw = g.time_slice(0, 7);
        let next = g.snapshot(7).clone();
        for kind in ModelKind::all() {
            let stats = train_distributed(
                &raw,
                &next,
                tiny_cfg(kind),
                &TaskOptions::default(),
                &TrainOptions {
                    epochs: 6,
                    lr: 0.05,
                    nb: 2,
                    seed: 3,
                    threads: None,
                },
                2,
            );
            assert_eq!(stats.len(), 6);
            assert!(
                stats.last().unwrap().loss < stats.first().unwrap().loss,
                "{kind:?}: loss should fall"
            );
        }
    }

    #[test]
    fn world_size_does_not_change_results() {
        // P = 1 and P = 3 faithfully simulate the same sequential run.
        let g = churn(30, 6, 120, 0.25, 9);
        let raw = g.time_slice(0, 5);
        let next = g.snapshot(5).clone();
        let cfg = tiny_cfg(ModelKind::TmGcn);
        let run = |p: usize| {
            train_distributed(
                &raw,
                &next,
                cfg,
                &TaskOptions::default(),
                &TrainOptions {
                    epochs: 3,
                    lr: 0.02,
                    nb: 1,
                    seed: 3,
                    threads: None,
                },
                p,
            )
        };
        let s1 = run(1);
        let s3 = run(3);
        for (a, b) in s1.iter().zip(&s3) {
            assert!(
                (a.loss - b.loss).abs() < 1e-4,
                "loss {} vs {}",
                a.loss,
                b.loss
            );
        }
    }
}
