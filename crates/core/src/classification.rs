//! Vertex classification (paper §2.2): "we are given ground truth labels
//! for each vertex at each timestep in the form of a matrix Q of size T×N
//! ... predictions are derived by projecting each embedding matrix Z_t to
//! the label space via a learnable weight matrix U".
//!
//! Implemented for the single-GPU checkpointed trainer; the motivating
//! workload is laundering-account detection on the AML-Sim stand-in
//! ([`dgnn_graph::gen::amlsim_with_labels`]).

use std::rc::Rc;

use dgnn_autograd::{Adam, Optimizer, ParamStore, Tape, Var};
use dgnn_models::{CarryGrads, CarryState, ClassificationHead, Model};
use dgnn_partition::balanced_ranges;
use dgnn_tensor::{Csr, Dense};

use crate::metrics::TrainOptions;
use crate::task::Task;

/// Per-epoch statistics of a classification run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassEpochStats {
    /// Mean cross-entropy over all timesteps.
    pub loss: f64,
    /// Plain accuracy over all (vertex, timestep) pairs.
    pub accuracy: f64,
    /// Balanced accuracy (mean of per-class recalls) — the meaningful
    /// metric when positives are rare, as laundering accounts are.
    pub balanced_accuracy: f64,
}

/// Per-class recall counts.
#[derive(Clone, Copy, Debug, Default)]
struct Recalls {
    correct: [f64; 2],
    total: [f64; 2],
}

impl Recalls {
    fn add(&mut self, logits: &Dense, labels: &[u32]) {
        for (r, &label) in labels.iter().enumerate() {
            let row = logits.row(r);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i as u32)
                .unwrap();
            let c = (label as usize).min(1);
            self.total[c] += 1.0;
            if pred == label {
                self.correct[c] += 1.0;
            }
        }
    }

    fn accuracy(&self) -> f64 {
        let total = self.total[0] + self.total[1];
        if total == 0.0 {
            return 0.0;
        }
        (self.correct[0] + self.correct[1]) / total
    }

    fn balanced(&self) -> f64 {
        let mut acc = 0.0;
        let mut classes = 0.0;
        for c in 0..2 {
            if self.total[c] > 0.0 {
                acc += self.correct[c] / self.total[c];
                classes += 1.0;
            }
        }
        if classes == 0.0 {
            0.0
        } else {
            acc / classes
        }
    }
}

struct ClsBlockRun<'m> {
    tape: Tape,
    seg: dgnn_models::Segment<'m>,
    loss_vars: Vec<Var>,
    logit_vars: Vec<Var>,
}

#[allow(clippy::too_many_arguments)]
fn run_block_cls<'m>(
    model: &'m Model,
    head: &ClassificationHead,
    store: &ParamStore,
    task: &Task,
    labels: &[Rc<Vec<u32>>],
    laps: &[Rc<Csr>],
    block: std::ops::Range<usize>,
    carry_in: &CarryState,
    class_weights: &[f32; 2],
) -> ClsBlockRun<'m> {
    let mut tape = Tape::new();
    let mut seg = model.bind_segment(&mut tape, store, block.clone(), carry_in);
    let head_vars = head.bind(&mut tape, store);

    let mut feats: Vec<Var> = block
        .clone()
        .map(|t| match &task.preagg {
            Some(pre) => tape.constant(pre[t].clone()),
            None => tape.constant(task.features[t].clone()),
        })
        .collect();
    for layer in 0..model.config().layers() {
        let spatial: Vec<Var> = block
            .clone()
            .map(|t| {
                let x = feats[t - block.start];
                if layer == 0 && task.preagg.is_some() {
                    seg.spatial_preagg(&mut tape, t, x)
                } else {
                    seg.spatial(&mut tape, layer, t, Rc::clone(&laps[t]), x)
                }
            })
            .collect();
        feats = seg.temporal(&mut tape, layer, 0, &spatial);
    }

    // Class-weighted loss: rare laundering accounts would otherwise be
    // drowned out. Weighting is realised by evaluating the two classes'
    // vertices as separate sample groups and combining the scalar losses.
    let mut loss_vars = Vec::with_capacity(block.len());
    let mut logit_vars = Vec::with_capacity(block.len());
    for t in block.clone() {
        let z = feats[t - block.start];
        let lab = Rc::clone(&labels[t]);
        let pos_idx: Vec<u32> = (0..lab.len() as u32)
            .filter(|&v| lab[v as usize] == 1)
            .collect();
        let neg_idx: Vec<u32> = (0..lab.len() as u32)
            .filter(|&v| lab[v as usize] == 0)
            .collect();
        // Logits for every vertex (metrics + per-class loss groups).
        let logits = head.logits(&mut tape, head_vars, z);
        logit_vars.push(logits);
        let mut parts: Vec<(f32, Var)> = Vec::new();
        if !neg_idx.is_empty() {
            let zg = tape.gather_rows(logits, Rc::new(neg_idx.clone()));
            let l = tape.softmax_cross_entropy(zg, Rc::new(vec![0u32; neg_idx.len()]));
            parts.push((class_weights[0], l));
        }
        if !pos_idx.is_empty() {
            let zg = tape.gather_rows(logits, Rc::new(pos_idx.clone()));
            let l = tape.softmax_cross_entropy(zg, Rc::new(vec![1u32; pos_idx.len()]));
            parts.push((class_weights[1], l));
        }
        let total_w: f32 = parts.iter().map(|(w, _)| w).sum();
        let terms: Vec<(f32, Var)> = parts.into_iter().map(|(w, v)| (w / total_w, v)).collect();
        loss_vars.push(tape.lin_comb(&terms));
    }
    ClsBlockRun {
        tape,
        seg,
        loss_vars,
        logit_vars,
    }
}

/// Trains the model for per-vertex classification with gradient
/// checkpointing and returns per-epoch statistics.
///
/// `labels[t][v]` gives the class (0 or 1) of vertex `v` at timestep `t`;
/// the loss balances the two classes so rare positives still train.
pub fn train_single_classification(
    model: &Model,
    head: &ClassificationHead,
    store: &mut ParamStore,
    task: &Task,
    labels: &[Vec<u32>],
    opts: &TrainOptions,
) -> Vec<ClassEpochStats> {
    assert_eq!(labels.len(), task.t, "one label vector per timestep");
    let _threads = dgnn_tensor::pool::scoped_threads(opts.threads);
    let labels: Vec<Rc<Vec<u32>>> = labels.iter().map(|l| Rc::new(l.clone())).collect();
    let blocks = balanced_ranges(task.t, opts.nb.min(task.t));
    let laps: Vec<Rc<Csr>> = task.laps.iter().cloned().map(Rc::new).collect();
    let mut opt = Adam::new(opts.lr);
    let class_weights = [1.0f32, 1.0];

    let mut out = Vec::with_capacity(opts.epochs);
    for _epoch in 0..opts.epochs {
        store.zero_grad();
        let mut carries: Vec<CarryState> = vec![model.initial_carry(task.n)];
        let mut loss_sum = 0.0f64;
        let mut recalls = Recalls::default();
        for block in &blocks {
            let run = run_block_cls(
                model,
                head,
                store,
                task,
                &labels,
                &laps,
                block.clone(),
                carries.last().unwrap(),
                &class_weights,
            );
            for (i, t) in block.clone().enumerate() {
                loss_sum += f64::from(run.tape.value(run.loss_vars[i]).get(0, 0));
                recalls.add(run.tape.value(run.logit_vars[i]), &labels[t]);
            }
            carries.push(run.seg.carry_out(&run.tape));
        }

        let mut carry_grads: Option<CarryGrads> = None;
        for (b, block) in blocks.iter().enumerate().rev() {
            let mut run = run_block_cls(
                model,
                head,
                store,
                task,
                &labels,
                &laps,
                block.clone(),
                &carries[b],
                &class_weights,
            );
            let mut seeds: Vec<(Var, Dense)> = run
                .loss_vars
                .iter()
                .map(|&lv| (lv, Dense::full(1, 1, 1.0 / task.t as f32)))
                .collect();
            if let Some(cg) = &carry_grads {
                seeds.extend(run.seg.carry_out_seeds(cg));
            }
            run.tape.backward(&seeds);
            run.tape.accumulate_param_grads(store);
            carry_grads = Some(run.seg.carry_in_grads(&run.tape));
        }
        opt.step(store);

        out.push(ClassEpochStats {
            loss: loss_sum / task.t as f64,
            accuracy: recalls.accuracy(),
            balanced_accuracy: recalls.balanced(),
        });
    }
    out
}
