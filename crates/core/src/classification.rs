//! Vertex classification (paper §2.2): "we are given ground truth labels
//! for each vertex at each timestep in the form of a matrix Q of size T×N
//! ... predictions are derived by projecting each embedding matrix Z_t to
//! the label space via a learnable weight matrix U".
//!
//! A front-end of the shared execution engine: the single-rank layout with
//! the class-weighted classification objective
//! (`engine::classify::SingleRankClassification`). The motivating
//! workload is laundering-account detection on the AML-Sim stand-in
//! ([`dgnn_graph::gen::amlsim_with_labels`]).

use dgnn_autograd::ParamStore;
use dgnn_models::{ClassificationHead, Model};

use crate::engine::classify::SingleRankClassification;
use crate::engine::{checkpoint_blocks, run_engine};
use crate::metrics::TrainOptions;
use crate::task::Task;

/// Per-epoch statistics of a classification run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassEpochStats {
    /// Mean cross-entropy over all timesteps.
    pub loss: f64,
    /// Plain accuracy over all (vertex, timestep) pairs.
    pub accuracy: f64,
    /// Balanced accuracy (mean of per-class recalls) — the meaningful
    /// metric when positives are rare, as laundering accounts are.
    pub balanced_accuracy: f64,
}

/// Trains the model for per-vertex classification with gradient
/// checkpointing and returns per-epoch statistics.
///
/// `labels[t][v]` gives the class (0 or 1) of vertex `v` at timestep `t`;
/// the loss balances the two classes so rare positives still train.
pub fn train_single_classification(
    model: &Model,
    head: &ClassificationHead,
    store: &mut ParamStore,
    task: &Task,
    labels: &[Vec<u32>],
    opts: &TrainOptions,
) -> Vec<ClassEpochStats> {
    assert_eq!(labels.len(), task.t, "one label vector per timestep");
    let _threads = dgnn_tensor::pool::scoped_threads(opts.threads);
    let blocks = checkpoint_blocks(opts, task.t);
    let mut strategy = SingleRankClassification::new(model, head, task, labels);
    run_engine(&mut strategy, store, &blocks, opts.epochs, opts.lr)
}
