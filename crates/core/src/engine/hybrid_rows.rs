//! The hybrid strategy (paper §6.5): individual snapshots too large for
//! one GPU are split row-wise among the members of a processor group. This
//! implements the paper's exploratory experiment — one group whose members
//! share *every* snapshot — which trained AMLSim-Large-1/2 on two GPUs.
//!
//! Each member holds a row block of every Laplacian and feature matrix.
//! The SpMM needs the full feature matrix, obtained by an all-gather of
//! row blocks; the temporal component runs locally on the member's rows.
//! As with the other schemes, the execution faithfully simulates the
//! sequential algorithm.

use std::ops::Range;
use std::rc::Rc;

use dgnn_autograd::{ParamStore, Tape, Var};
use dgnn_graph::EdgeSamples;
use dgnn_models::{accuracy, CarryGrads, CarryState, LinkPredHead, Model, ModelKind};
use dgnn_partition::balanced_ranges;
use dgnn_sim::{Comm, CommMark, Payload};
use dgnn_tensor::{Csr, Dense};

use crate::engine::{BlockRun, ParallelStrategy};
use crate::metrics::{EpochStats, PhaseBreakdown};
use crate::task::Task;

pub(crate) struct HLayerIo {
    /// Per timestep: the P row-block leaves composing the stacked input
    /// (`None` entries at layer 0, where inputs are constants).
    x_slots: Vec<Vec<Option<Var>>>,
    /// Temporal outputs per timestep (my rows).
    z_out: Vec<Var>,
}

/// Per-block artifacts beyond the common [`BlockRun`] fields. The common
/// `z_vars` hold the all-gathered full embeddings per block timestep.
pub(crate) struct HybridIo {
    layers_io: Vec<HLayerIo>,
    sample_slices: Vec<EdgeSamples>,
}

fn gather_dense(comm: &mut dyn Comm, mine: Dense) -> Vec<Dense> {
    comm.all_gather(Payload::Dense(mine))
        .into_iter()
        .map(|p| match p {
            Payload::Dense(d) => d,
            other => panic!("expected dense, got {other:?}"),
        })
        .collect()
}

/// The hybrid row-splitting layout over one group of `p` ranks.
pub(crate) struct HybridRows<'m, 'c> {
    comm: &'c mut dyn Comm,
    model: &'m Model,
    head: &'m LinkPredHead,
    task: &'m Task,
    /// My row blocks of every Laplacian.
    a_rows: &'m [Csr],
    epoch_mark: Option<CommMark>,
}

/// Per-epoch accumulator: slice-weighted losses and counts.
pub(crate) use crate::engine::time_part::RankStats;

impl<'m, 'c> HybridRows<'m, 'c> {
    pub fn new(
        comm: &'c mut dyn Comm,
        model: &'m Model,
        head: &'m LinkPredHead,
        task: &'m Task,
        a_rows: &'m [Csr],
    ) -> Self {
        Self {
            comm,
            model,
            head,
            task,
            a_rows,
            epoch_mark: None,
        }
    }
}

impl<'m> ParallelStrategy<'m> for HybridRows<'m, '_> {
    type Io = HybridIo;
    type Stats = RankStats;
    type EpochOut = EpochStats;

    fn model(&self) -> &'m Model {
        self.model
    }

    fn carry_rows(&self) -> usize {
        match self.model.kind() {
            ModelKind::EvolveGcn => self.task.n,
            _ => balanced_ranges(self.task.n, self.comm.world())[self.comm.rank()].len(),
        }
    }

    fn begin_epoch(&mut self) {
        self.epoch_mark = Some(self.comm.mark());
    }

    fn forward_block(
        &mut self,
        store: &ParamStore,
        block: Range<usize>,
        carry_in: &CarryState,
    ) -> BlockRun<'m, HybridIo> {
        let comm = &mut *self.comm;
        let task = self.task;
        let rank = comm.rank();
        let p = comm.world();
        let cfg = *self.model.config();
        let rows = balanced_ranges(task.n, p);
        let my = rows[rank].clone();

        let mut tape = Tape::new();
        let mut seg = self
            .model
            .bind_segment(&mut tape, store, block.clone(), carry_in);
        let head_vars = self.head.bind(&mut tape, store);

        // My feature rows per block timestep.
        let mut x_vals: Vec<Dense> = block
            .clone()
            .map(|t| task.features[t].row_block(my.start, my.len()))
            .collect();

        let mut layers_io: Vec<HLayerIo> = Vec::with_capacity(cfg.layers());
        let mut prev_z: Vec<Var> = Vec::new();
        for layer in 0..cfg.layers() {
            let mut io = HLayerIo {
                x_slots: Vec::new(),
                z_out: Vec::new(),
            };
            let mut spatial = Vec::with_capacity(block.len());
            for (i, t) in block.clone().enumerate() {
                // All-gather the row blocks of this layer's input.
                let parts = gather_dense(comm, x_vals[i].clone());
                let mut slots: Vec<Option<Var>> = Vec::with_capacity(p);
                let mut slot_vars: Vec<Var> = Vec::with_capacity(p);
                for part in parts {
                    let v = if layer == 0 {
                        slots.push(None);
                        tape.constant(part)
                    } else {
                        let v = tape.input(part);
                        slots.push(Some(v));
                        v
                    };
                    slot_vars.push(v);
                }
                io.x_slots.push(slots);
                let x_full = tape.concat_rows(&slot_vars);
                spatial.push(seg.spatial_rows(
                    &mut tape,
                    layer,
                    t,
                    Rc::new(self.a_rows[t].clone()),
                    x_full,
                ));
            }
            let z_out = seg.temporal(&mut tape, layer, 0, &spatial);
            x_vals = z_out.iter().map(|&v| tape.value(v).clone()).collect();
            io.z_out = z_out.clone();
            prev_z = z_out;
            layers_io.push(io);
        }

        // Losses from all-gathered embeddings; my slice of each sample set.
        let mut z_full = Vec::with_capacity(block.len());
        let mut loss_vars = Vec::with_capacity(block.len());
        let mut logit_vars = Vec::with_capacity(block.len());
        let mut sample_slices = Vec::with_capacity(block.len());
        for (i, t) in block.clone().enumerate() {
            let parts = gather_dense(comm, tape.value(prev_z[i]).clone());
            let full = Dense::vstack(&parts.iter().collect::<Vec<_>>());
            let zf = tape.input(full);
            z_full.push(zf);
            let slice_range = balanced_ranges(task.train[t].len(), p)[rank].clone();
            let slice = task.train[t].slice(slice_range);
            let logits = self.head.logits(&mut tape, head_vars, zf, &slice);
            let loss = tape.softmax_cross_entropy(logits, Rc::new(slice.labels.clone()));
            logit_vars.push(logits);
            loss_vars.push(loss);
            sample_slices.push(slice);
        }
        BlockRun {
            tape,
            seg,
            loss_vars,
            logit_vars,
            z_vars: z_full,
            io: HybridIo {
                layers_io,
                sample_slices,
            },
        }
    }

    fn backward_block(
        &mut self,
        run: &mut BlockRun<'m, HybridIo>,
        block: &Range<usize>,
        carry_grads: Option<&CarryGrads>,
    ) {
        let comm = &mut *self.comm;
        let task = self.task;
        let rank = comm.rank();
        let p = comm.world();
        let cfg = *self.model.config();
        let rows = balanced_ranges(task.n, p);
        let my = rows[rank].clone();

        // Stage 0: loss seeds weighted by the sample-slice fraction.
        let seeds: Vec<(Var, Dense)> = run
            .loss_vars
            .iter()
            .enumerate()
            .map(|(i, &lv)| {
                let t = block.start + i;
                let w = run.io.sample_slices[i].len() as f32
                    / task.train[t].len().max(1) as f32
                    / task.t as f32;
                (lv, Dense::full(1, 1, w))
            })
            .collect();
        run.tape.backward(&seeds);

        // Sum embedding grads across ranks; keep my rows.
        let mut dz_rows: Vec<Dense> = Vec::with_capacity(block.len());
        for zf in &run.z_vars {
            let mut dz = match run.tape.grad(*zf) {
                Some(g) => g.clone(),
                None => {
                    let (r, c) = run.tape.value(*zf).shape();
                    Dense::zeros(r, c)
                }
            };
            let mut flat = dz.data().to_vec();
            comm.all_reduce_sum(&mut flat);
            dz.data_mut().copy_from_slice(&flat);
            dz_rows.push(dz.row_block(my.start, my.len()));
        }

        for layer in (0..cfg.layers()).rev() {
            let mut seeds: Vec<(Var, Dense)> = Vec::new();
            for (i, _) in block.clone().enumerate() {
                seeds.push((run.io.layers_io[layer].z_out[i], dz_rows[i].clone()));
            }
            if let Some(cg) = carry_grads {
                seeds.extend(run.seg.carry_out_seeds_layer(cg, layer));
            }
            run.tape.backward(&seeds);

            if layer > 0 {
                // Reverse all-gather: sum each slot's grads over ranks; my
                // rows of the result seed the layer below.
                let w = cfg.gcn_in(layer);
                for (i, _) in block.clone().enumerate() {
                    let mut dx = Dense::zeros(task.n, w);
                    for (q, slot) in run.io.layers_io[layer].x_slots[i].iter().enumerate() {
                        if let Some(v) = slot {
                            if let Some(g) = run.tape.grad(*v) {
                                let qr = rows[q].clone();
                                let mut block_g = dx.row_block(qr.start, qr.len());
                                block_g.add_assign(g);
                                // Write back.
                                for (r_local, r_global) in qr.clone().enumerate() {
                                    for c in 0..w {
                                        dx.set(r_global, c, block_g.get(r_local, c));
                                    }
                                }
                            }
                        }
                    }
                    let mut flat = dx.data().to_vec();
                    comm.all_reduce_sum(&mut flat);
                    dx.data_mut().copy_from_slice(&flat);
                    dz_rows[i] = dx.row_block(my.start, my.len());
                }
            }
        }
    }

    fn observe_block(
        &mut self,
        run: &BlockRun<'m, HybridIo>,
        block: &Range<usize>,
        stats: &mut RankStats,
        last_z: &mut Option<Dense>,
    ) {
        for (i, t) in block.clone().enumerate() {
            let w = run.io.sample_slices[i].len() as f64 / self.task.train[t].len().max(1) as f64;
            stats.loss_sum += f64::from(run.tape.value(run.loss_vars[i]).get(0, 0)) * w;
            let logits = run.tape.value(run.logit_vars[i]);
            let acc = accuracy(logits, &run.io.sample_slices[i].labels);
            stats.correct += acc * run.io.sample_slices[i].len() as f64;
            stats.total += run.io.sample_slices[i].len() as f64;
        }
        if block.end == self.task.t {
            *last_z = Some(run.tape.value(*run.z_vars.last().unwrap()).clone());
        }
    }

    fn reduce_grads(&mut self, store: &mut ParamStore) {
        let mut flat = store.grads_flat();
        self.comm.all_reduce_sum(&mut flat);
        store.set_grads_from_flat(&flat);
    }

    fn finish_epoch(
        &mut self,
        stats: RankStats,
        last_z: Option<Dense>,
        store: &ParamStore,
    ) -> EpochStats {
        let mut agg = [
            stats.loss_sum as f32,
            stats.correct as f32,
            stats.total as f32,
            0.0,
            0.0,
        ];
        if self.comm.rank() == 0 {
            let z = last_z.as_ref().expect("rank 0 sees the last block");
            let logits = self.head.predict(store, z, &self.task.test);
            let acc = accuracy(&logits, &self.task.test.labels);
            agg[3] = (acc * self.task.test.labels.len() as f64) as f32;
            agg[4] = self.task.test.labels.len() as f32;
        }
        self.comm.all_reduce_sum(&mut agg);
        let mark = self.epoch_mark.expect("begin_epoch sets the mark");
        EpochStats {
            loss: f64::from(agg[0]) / self.task.t as f64,
            train_acc: f64::from(agg[1]) / f64::from(agg[2]).max(1.0),
            test_acc: f64::from(agg[3]) / f64::from(agg[4]).max(1.0),
            transfer_naive_bytes: 0,
            transfer_gd_bytes: 0,
            comm_bytes: self.comm.bytes_since(mark),
            store_miss_bytes: 0,
            phase: PhaseBreakdown::default(),
        }
    }

    fn attach_phase(&mut self, out: &mut EpochStats, phase: PhaseBreakdown) {
        out.phase = phase;
        let mark = self.epoch_mark.expect("begin_epoch sets the mark");
        out.phase.comm_us = self.comm.busy_us_since(mark);
        out.phase.comm_wait_us = self.comm.wait_us_since(mark);
    }
}
