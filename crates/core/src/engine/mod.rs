//! The unified checkpointed training engine (paper §3, Fig. 2).
//!
//! Every trainer in this crate is the *same* algorithm — a timeline cut
//! into `nb` checkpoint blocks, walked forward storing only the carries
//! `π_b`, then walked backward re-running each block on a fresh tape —
//! specialised only by how timesteps and vertices are laid out across
//! ranks. `run_engine` owns that loop once: the snapshot schedule, the
//! forward/recompute/backward block order, optimizer stepping, carry
//! bookkeeping, and workspace recycling. A `ParallelStrategy` supplies
//! the parts that differ:
//!
//! * how one block runs forward on a tape (which timesteps this rank owns,
//!   which `dgnn-sim` collectives move activations between layers);
//! * how the backward sweeps are staged (one sweep for a single rank,
//!   comm-interleaved stages for the distributed layouts);
//! * how gradients are reduced across replicas and how per-epoch metrics
//!   are assembled.
//!
//! The concrete strategies are `SingleRank` (`single_rank`)
//! (paper §3), `TimePartitioned` (`time_part`, §4.2),
//! `HybridRows` (`hybrid_rows`, §6.5) and
//! `VertexPartitioned` (`vertex_part`, §4.1/§6.4);
//! vertex classification rides the single-rank layout with its own
//! objective (`classify::SingleRankClassification`), and the streaming
//! trainer is a front-end that feeds windows to the single-rank engine.
//! Adding a new layout (e.g. DGC-style chunked partitioning) means
//! implementing the trait — roughly a hundred lines — not forking a
//! trainer.
//!
//! # Bit-identity
//!
//! The engine executes exactly the operation sequences of the trainers it
//! replaced: `tests/engine_equivalence.rs` pins every strategy's loss
//! stream and final parameters to golden bit patterns captured from the
//! pre-engine trainers, at multiple thread counts.

pub(crate) mod classify;
pub(crate) mod hybrid_rows;
pub(crate) mod single_rank;
pub mod source;
pub(crate) mod time_part;
pub(crate) mod vertex_part;

use std::ops::Range;

use dgnn_autograd::{Adam, Optimizer, ParamStore, Tape, Var};
use dgnn_graph::diff::chunk_transfer;
use dgnn_models::{CarryGrads, CarryState, LayerCarry, Model, Segment};
use dgnn_telemetry::trace;
use dgnn_tensor::{workspace, Csr, Dense};

use crate::metrics::{PhaseBreakdown, TrainOptions};
use crate::task::TaskOptions;

/// Engine-level configuration: the one place that owns the training and
/// task-preparation knobs the entry points used to default independently.
///
/// Defaults (documented here so call sites no longer re-state them):
///
/// * `train` — [`TrainOptions::default`]: 10 epochs, Adam lr `0.01`, one
///   checkpoint block, seed 42, thread count resolved from
///   `DGNN_THREADS` / available parallelism.
/// * `task` — [`TaskOptions::default`]: sampling fraction θ = 0.1,
///   sampling seed 17, and the §5.5 first-layer pre-aggregation *enabled*.
/// * Strategies whose spatial phase runs on row-partitioned operators
///   (hybrid, vertex-partitioned) cannot consume the pre-aggregated
///   `Ã·X`; [`EngineConfig::resolved_task`] turns it off for them here,
///   rather than at each call site.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineConfig {
    /// Trainer options (epochs, lr, checkpoint blocks, seed, threads).
    pub train: TrainOptions,
    /// Task-preparation options (sampling, pre-aggregation).
    pub task: TaskOptions,
}

impl EngineConfig {
    /// Bundles explicit trainer and task options.
    pub fn new(train: TrainOptions, task: TaskOptions) -> Self {
        Self { train, task }
    }

    /// The task options a strategy actually prepares with: first-layer
    /// pre-aggregation is forced off when the strategy cannot use it.
    pub fn resolved_task(&self, supports_preagg: bool) -> TaskOptions {
        TaskOptions {
            precompute_first_layer: self.task.precompute_first_layer && supports_preagg,
            ..self.task
        }
    }

    /// The checkpoint-block schedule for a `t`-timestep timeline.
    pub fn blocks(&self, t: usize) -> Vec<Range<usize>> {
        checkpoint_blocks(&self.train, t)
    }
}

/// The checkpoint-block schedule for a `t`-timestep timeline: `nb`
/// balanced contiguous ranges, clamped to one block per timestep. Entry
/// points whose task is already prepared call this directly; full
/// [`EngineConfig`] holders go through [`EngineConfig::blocks`].
pub fn checkpoint_blocks(train: &TrainOptions, t: usize) -> Vec<Range<usize>> {
    assert!(train.nb >= 1, "need at least one block");
    dgnn_partition::balanced_ranges(t, train.nb.min(t))
}

/// The artifacts of one block run: the tape, the bound model segment, the
/// per-owned-timestep loss/logit variables, the final-layer embeddings,
/// and whatever per-layer bookkeeping the strategy's backward needs.
pub(crate) struct BlockRun<'m, Io> {
    pub tape: Tape,
    pub seg: Segment<'m>,
    /// Per-owned-timestep loss variables.
    pub loss_vars: Vec<Var>,
    /// Per-owned-timestep logits variables (for accuracy).
    pub logit_vars: Vec<Var>,
    /// Final-layer embedding variables per owned timestep.
    pub z_vars: Vec<Var>,
    /// Strategy-specific per-layer artifacts (comm bookkeeping).
    pub io: Io,
}

impl<Io> BlockRun<'_, Io> {
    /// Retires the run, returning its tape scratch to the workspace arena.
    pub(crate) fn retire(self) {
        self.tape.recycle();
    }
}

/// One rank's view of a parallel training layout. See the module docs for
/// the division of labour between the engine loop and a strategy.
pub(crate) trait ParallelStrategy<'m> {
    /// Per-block strategy artifacts threaded from forward to backward.
    type Io;
    /// Per-epoch metric accumulator.
    type Stats: Default;
    /// Per-epoch output record.
    type EpochOut;

    /// The model this strategy trains (borrowed for the whole run).
    fn model(&self) -> &'m Model;

    /// Rows of this rank's temporal carry (its vertex-chunk height).
    fn carry_rows(&self) -> usize;

    /// Called at the top of every epoch (volume marks, counters).
    fn begin_epoch(&mut self) {}

    /// Runs one block forward on a fresh tape — both the forward pass and
    /// the backward pass's recompute go through here, exactly as in paper
    /// Fig. 2.
    fn forward_block(
        &mut self,
        store: &ParamStore,
        block: Range<usize>,
        carry_in: &CarryState,
    ) -> BlockRun<'m, Self::Io>;

    /// Stages the backward sweeps of a re-run block: loss seeds, carry
    /// seeds from the block above, and any reverse collectives.
    fn backward_block(
        &mut self,
        run: &mut BlockRun<'m, Self::Io>,
        block: &Range<usize>,
        carry_grads: Option<&CarryGrads>,
    );

    /// Folds one forward block into the epoch accumulator and captures the
    /// final timestep's embeddings when this rank owns them.
    fn observe_block(
        &mut self,
        run: &BlockRun<'m, Self::Io>,
        block: &Range<usize>,
        stats: &mut Self::Stats,
        last_z: &mut Option<Dense>,
    );

    /// Reduces parameter gradients across replicas (no-op on one rank).
    fn reduce_grads(&mut self, _store: &mut ParamStore) {}

    /// Assembles the epoch record (runs *after* the optimizer step, so
    /// held-out evaluation sees the updated parameters).
    fn finish_epoch(
        &mut self,
        stats: Self::Stats,
        last_z: Option<Dense>,
        store: &ParamStore,
    ) -> Self::EpochOut;

    /// Stores the engine's measured phase breakdown on the epoch record,
    /// adding whatever attributions the strategy tracks itself (comm busy
    /// time, store wait). Default: the record carries no breakdown.
    fn attach_phase(&mut self, _out: &mut Self::EpochOut, _phase: PhaseBreakdown) {}
}

/// The checkpointed training loop (paper §3.1), shared by every strategy:
/// forward over blocks storing carries, backward re-running blocks in
/// reverse with carry-gradient seeds, gradient reduction, optimizer step,
/// metrics. Engages a per-rank buffer workspace for the duration so
/// steady-state epochs reuse tape scratch instead of allocating. Carries
/// live in the in-memory [`source::MemoryCarryBank`]; the out-of-core
/// entry points call [`run_engine_banked`] with a spilling bank instead.
pub(crate) fn run_engine<'m, S: ParallelStrategy<'m>>(
    strategy: &mut S,
    store: &mut ParamStore,
    blocks: &[Range<usize>],
    epochs: usize,
    lr: f32,
) -> Vec<S::EpochOut> {
    let mut bank = source::MemoryCarryBank::default();
    run_engine_banked(strategy, store, blocks, epochs, lr, &mut bank)
}

/// [`run_engine`] with an explicit carry bank deciding where the `π_b`
/// live between the forward and backward passes (memory or the tiered
/// store). Carry placement is bit-neutral: spilled carries round-trip as
/// raw bit patterns.
pub(crate) fn run_engine_banked<'m, S: ParallelStrategy<'m>>(
    strategy: &mut S,
    store: &mut ParamStore,
    blocks: &[Range<usize>],
    epochs: usize,
    lr: f32,
    bank: &mut dyn source::CarryBank,
) -> Vec<S::EpochOut> {
    let _ws = workspace::engage();
    let model = strategy.model();
    let mut opt = Adam::new(lr);
    let mut out = Vec::with_capacity(epochs);
    for epoch in 0..epochs {
        let epoch_span = trace::span_cat("epoch", "engine");
        let mut phase = PhaseBreakdown::default();
        strategy.begin_epoch();
        store.zero_grad();

        // ---- Forward pass: bank π_b for every block. ----
        bank.begin_epoch(model.initial_carry(strategy.carry_rows()));
        let mut stats = S::Stats::default();
        let mut last_z: Option<Dense> = None;
        for block in blocks {
            let span = trace::span_cat("forward", "engine");
            let run = strategy.forward_block(store, block.clone(), bank.last());
            strategy.observe_block(&run, block, &mut stats, &mut last_z);
            bank.push(run.seg.carry_out(&run.tape));
            // Tape retires here: only π_b survives, as in the paper.
            run.retire();
            phase.forward_us += span.finish_us();
        }

        // ---- Backward pass: rerun blocks in reverse. ----
        let mut carry_grads: Option<CarryGrads> = None;
        for (b, block) in blocks.iter().enumerate().rev() {
            let span = trace::span_cat("recompute", "engine");
            let carry_in = bank.take(b);
            let mut run = strategy.forward_block(store, block.clone(), &carry_in);
            phase.recompute_us += span.finish_us();
            let span = trace::span_cat("backward", "engine");
            strategy.backward_block(&mut run, block, carry_grads.as_ref());
            run.tape.accumulate_param_grads(store);
            let next = run.seg.carry_in_grads(&run.tape);
            if let Some(old) = carry_grads.replace(next) {
                recycle_carry_grads(old);
            }
            run.retire();
            recycle_carry(carry_in);
            phase.backward_us += span.finish_us();
        }
        if let Some(last) = carry_grads.take() {
            recycle_carry_grads(last);
        }
        bank.finish_epoch();

        let span = trace::span_cat("optimizer", "engine");
        strategy.reduce_grads(store);
        opt.step(store);
        phase.optimizer_us += span.finish_us();
        let mut rec = strategy.finish_epoch(stats, last_z.take(), store);
        strategy.attach_phase(&mut rec, phase);
        drop(epoch_span);
        if trace::enabled() {
            eprintln!(
                "[dgnn-trace] epoch {epoch}: forward {}us recompute {}us backward {}us optimizer {}us",
                phase.forward_us, phase.recompute_us, phase.backward_us, phase.optimizer_us
            );
        }
        out.push(rec);
    }
    out
}

/// Returns one retired carry's matrices to the workspace arena.
pub(crate) fn recycle_carry(carry: CarryState) {
    if !workspace::is_engaged() {
        return;
    }
    for layer in carry.layers {
        match layer {
            LayerCarry::Lstm { h, c } | LayerCarry::Egcn { h, c } => {
                workspace::recycle(h);
                workspace::recycle(c);
            }
            LayerCarry::Window { frames } => frames.into_iter().for_each(workspace::recycle),
        }
    }
}

/// Returns a retired carry-gradient bundle's matrices to the arena.
fn recycle_carry_grads(grads: CarryGrads) {
    if !workspace::is_engaged() {
        return;
    }
    for layer in grads.layers {
        if let Some(dh) = layer.dh {
            workspace::recycle(dh);
        }
        if let Some(dc) = layer.dc {
            workspace::recycle(dc);
        }
        layer
            .dframes
            .into_iter()
            .flatten()
            .for_each(workspace::recycle);
    }
}

/// Snapshot-transfer accounting shared by the strategies (paper §3.2):
/// the given snapshots move twice per epoch — once for the forward pass
/// and once for the backward rerun — under both the naive and the
/// graph-difference encodings. Returns `(naive_bytes, gd_bytes)`.
pub(crate) fn transfer_bytes<'a>(chunks: impl Iterator<Item = Vec<&'a Csr>>) -> (u64, u64) {
    let (mut naive, mut gd) = (0u64, 0u64);
    for slices in chunks {
        if slices.is_empty() {
            continue;
        }
        let acc = chunk_transfer(&slices);
        naive += 2 * acc.naive_bytes;
        gd += 2 * acc.gd_bytes;
    }
    (naive, gd)
}

/// The dense (whole-row) layer walk shared by the single-rank layouts:
/// layer-0 inputs from the features or the §5.5 pre-aggregation, then per
/// layer the spatial GCN phase followed by the temporal phase over the
/// whole block. Returns the final-layer embeddings per block timestep.
///
/// Operators and inputs come from a [`source::SnapshotSource`] — the
/// in-memory task view or the out-of-core tiered store — which is told
/// about the block entry first so it can stage the next block.
pub(crate) fn dense_layer_walk<'m>(
    tape: &mut Tape,
    seg: &mut Segment<'m>,
    model: &Model,
    src: &dyn source::SnapshotSource,
    block: &Range<usize>,
) -> Vec<Var> {
    src.enter_block(block);
    let mut feats: Vec<Var> = Vec::with_capacity(block.len());
    for t in block.clone() {
        feats.push(tape.constant(src.input(t)));
    }
    for layer in 0..model.config().layers() {
        let spatial: Vec<Var> = block
            .clone()
            .map(|t| {
                let x = feats[t - block.start];
                if layer == 0 && src.preagg() {
                    seg.spatial_preagg(tape, t, x)
                } else {
                    seg.spatial(tape, layer, t, src.lap(t), x)
                }
            })
            .collect();
        feats = seg.temporal(tape, layer, 0, &spatial);
    }
    feats
}

/// Uniform `1/T` loss seeds plus the next block's carry gradients — the
/// single-sweep backward of the single-rank layouts.
pub(crate) fn single_sweep_backward<Io>(
    run: &mut BlockRun<'_, Io>,
    t_total: usize,
    carry_grads: Option<&CarryGrads>,
) {
    let mut seeds: Vec<(Var, Dense)> = run
        .loss_vars
        .iter()
        .map(|&lv| (lv, Dense::full(1, 1, 1.0 / t_total as f32)))
        .collect();
    if let Some(cg) = carry_grads {
        seeds.extend(run.seg.carry_out_seeds(cg));
    }
    run.tape.backward(&seeds);
    // `backward` clones its seed matrices onto the tape, so the originals
    // can go back to the arena.
    seeds.into_iter().for_each(|(_, d)| workspace::recycle(d));
}
