//! The vertex-partitioned (hypergraph) strategy (paper §4.1, §6.4).
//!
//! Vertices are partitioned by the hypergraph partitioner, renamed so
//! every part is contiguous, and each rank stores its rows of every
//! snapshot's Laplacian and feature matrix. The temporal component is
//! communication-free (each rank holds its vertices' full timeline); the
//! SpMM requires the irregular neighbor exchange: per timestep, each rank
//! sends exactly the feature rows other ranks' boundary columns reference,
//! using index lists pre-computed at setup (paper §6.4: "the indices are
//! pre-computed").
//!
//! Losses are computed from all-gathered embeddings with each rank owning
//! a slice of the sample set; the gradient all-reduce keeps replicas
//! identical. The scheme faithfully simulates the sequential algorithm, so
//! its convergence matches snapshot partitioning (paper Fig. 6).

use std::ops::Range;
use std::rc::Rc;

use dgnn_autograd::{ParamStore, Tape, Var};
use dgnn_graph::EdgeSamples;
use dgnn_models::{accuracy, CarryGrads, CarryState, LinkPredHead, Model, ModelKind};
use dgnn_partition::balanced_ranges;
use dgnn_sim::{Comm, CommMark, Payload};
use dgnn_tensor::{Csr, Dense};

use crate::engine::time_part::RankStats;
use crate::engine::{BlockRun, ParallelStrategy};
use crate::metrics::{EpochStats, PhaseBreakdown};
use crate::task::Task;

/// Pre-computed exchange plan for one rank: who needs which of my rows,
/// and which remote rows I need, per timestep.
pub(crate) struct ExchangePlan {
    /// `needed_out[t][q]` = local row indices (within my range) that rank
    /// `q` needs at timestep `t`.
    needed_out: Vec<Vec<Vec<u32>>>,
    /// `needed_in[t][q]` = how many rows arrive from rank `q` at `t`.
    needed_in_len: Vec<Vec<usize>>,
    /// Local sparse matrices: my Laplacian rows with columns remapped to
    /// `[own rows | remote rows in (q, position) order]`.
    a_loc: Vec<Csr>,
}

/// Builds per-rank ranges from a partition (contiguous after renaming).
pub(crate) fn part_ranges(partition: &[usize], p: usize) -> Vec<Range<usize>> {
    let mut sizes = vec![0usize; p];
    for &q in partition {
        sizes[q] += 1;
    }
    let mut ranges = Vec::with_capacity(p);
    let mut start = 0;
    for q in 0..p {
        ranges.push(start..start + sizes[q]);
        start += sizes[q];
    }
    ranges
}

/// Builds the exchange plan of `rank` from the renamed Laplacians.
pub(crate) fn build_plan(laps: &[Csr], ranges: &[Range<usize>], rank: usize) -> ExchangePlan {
    let p = ranges.len();
    let my = ranges[rank].clone();
    let owner_of = |v: usize| ranges.iter().position(|r| r.contains(&v)).unwrap();
    let mut needed_out = Vec::with_capacity(laps.len());
    let mut needed_in_len = Vec::with_capacity(laps.len());
    let mut a_loc = Vec::with_capacity(laps.len());
    for lap in laps {
        // Remote columns my rows reference, grouped by owner.
        let mut remote: Vec<Vec<u32>> = vec![Vec::new(); p];
        for r in my.clone() {
            for (c, _) in lap.row_iter(r) {
                let cu = c as usize;
                if !my.contains(&cu) {
                    remote[owner_of(cu)].push(c);
                }
            }
        }
        for q in 0..p {
            remote[q].sort_unstable();
            remote[q].dedup();
        }
        // Column remap: own rows first, then remote in (q, position) order.
        let mut col_map = std::collections::HashMap::new();
        for (i, v) in my.clone().enumerate() {
            col_map.insert(v as u32, i as u32);
        }
        let mut next = my.len() as u32;
        for q in 0..p {
            for &v in &remote[q] {
                col_map.insert(v, next);
                next += 1;
            }
        }
        let triplets: Vec<(u32, u32, f32)> = my
            .clone()
            .flat_map(|r| {
                lap.row_iter(r)
                    .map(|(c, v)| ((r - my.start) as u32, col_map[&c], v))
                    .collect::<Vec<_>>()
            })
            .collect();
        a_loc.push(Csr::from_coo(my.len(), next as usize, &triplets));

        // What each peer needs *from me* mirrors what I need from them:
        // computed symmetrically from the full Laplacian.
        let mut out_per_q: Vec<Vec<u32>> = vec![Vec::new(); p];
        for q in 0..p {
            if q == rank {
                continue;
            }
            let qr = ranges[q].clone();
            let mut needed: Vec<u32> = Vec::new();
            for r in qr {
                for (c, _) in lap.row_iter(r) {
                    let cu = c as usize;
                    if my.contains(&cu) {
                        needed.push(c - my.start as u32);
                    }
                }
            }
            needed.sort_unstable();
            needed.dedup();
            out_per_q[q] = needed;
        }
        needed_in_len.push((0..p).map(|q| remote[q].len()).collect());
        needed_out.push(out_per_q);
    }
    ExchangePlan {
        needed_out,
        needed_in_len,
        a_loc,
    }
}

/// One rank's renamed-space context: ranges, exchange plan, features and
/// (relabelled) samples.
pub(crate) struct VertexRankCtx {
    pub ranges: Vec<Range<usize>>,
    pub plan: ExchangePlan,
    /// Renamed feature rows are sliced per rank from the full matrices.
    pub features: Vec<Dense>,
    pub train: Vec<EdgeSamples>,
    pub test: EdgeSamples,
}

/// Per-layer bookkeeping for the staged backward.
pub(crate) struct VLayerIo {
    /// Gather-send variables per timestep per destination rank.
    gather_send: Vec<Vec<Option<Var>>>,
    /// Remote-rows input leaf per timestep.
    x_remote: Vec<Option<Var>>,
    /// Own-rows input leaf per timestep (`None` at layer 0: constants).
    x_own: Vec<Option<Var>>,
    /// Temporal outputs per timestep (own rows).
    z_out: Vec<Var>,
}

/// Per-block artifacts beyond the common [`BlockRun`] fields. The common
/// `z_vars` hold the all-gathered full embeddings per block timestep.
pub(crate) struct VertexIo {
    layers_io: Vec<VLayerIo>,
    /// Sample slices this rank computed losses for.
    sample_slices: Vec<EdgeSamples>,
}

/// The hypergraph vertex-partitioned layout over `p` rank threads.
pub(crate) struct VertexPartitioned<'m, 'c> {
    comm: &'c mut dyn Comm,
    model: &'m Model,
    head: &'m LinkPredHead,
    ctx: &'m VertexRankCtx,
    /// The renamed-space task (Laplacians/features; samples come from ctx).
    task: &'m Task,
    epoch_mark: Option<CommMark>,
}

impl<'m, 'c> VertexPartitioned<'m, 'c> {
    pub fn new(
        comm: &'c mut dyn Comm,
        model: &'m Model,
        head: &'m LinkPredHead,
        ctx: &'m VertexRankCtx,
        task: &'m Task,
    ) -> Self {
        Self {
            comm,
            model,
            head,
            ctx,
            task,
            epoch_mark: None,
        }
    }
}

impl<'m> ParallelStrategy<'m> for VertexPartitioned<'m, '_> {
    type Io = VertexIo;
    type Stats = RankStats;
    type EpochOut = EpochStats;

    fn model(&self) -> &'m Model {
        self.model
    }

    fn carry_rows(&self) -> usize {
        match self.model.kind() {
            ModelKind::EvolveGcn => self.task.n,
            _ => self.ctx.ranges[self.comm.rank()].len(),
        }
    }

    fn begin_epoch(&mut self) {
        self.epoch_mark = Some(self.comm.mark());
    }

    fn forward_block(
        &mut self,
        store: &ParamStore,
        block: Range<usize>,
        carry_in: &CarryState,
    ) -> BlockRun<'m, VertexIo> {
        let comm = &mut *self.comm;
        let ctx = self.ctx;
        let rank = comm.rank();
        let p = comm.world();
        let cfg = *self.model.config();
        let my = ctx.ranges[rank].clone();

        let mut tape = Tape::new();
        let mut seg = self
            .model
            .bind_segment(&mut tape, store, block.clone(), carry_in);
        let head_vars = self.head.bind(&mut tape, store);

        // Layer-0 inputs: my feature rows, per block timestep.
        let mut x_vals: Vec<Dense> = block
            .clone()
            .map(|t| ctx.features[t].row_block(my.start, my.len()))
            .collect();
        let mut prev_z: Vec<Var> = Vec::new();

        let mut layers_io: Vec<VLayerIo> = Vec::with_capacity(cfg.layers());
        for layer in 0..cfg.layers() {
            let mut io = VLayerIo {
                gather_send: Vec::new(),
                x_remote: Vec::new(),
                x_own: Vec::new(),
                z_out: Vec::new(),
            };
            let mut spatial: Vec<Var> = Vec::with_capacity(block.len());
            for (i, t) in block.clone().enumerate() {
                // Own rows enter as a leaf (layer > 0) or a constant (layer 0).
                let x_own = if layer == 0 {
                    let v = tape.constant(x_vals[i].clone());
                    io.x_own.push(None);
                    v
                } else {
                    let v = tape.input(x_vals[i].clone());
                    io.x_own.push(Some(v));
                    v
                };
                // Send the rows peers need; gather through the tape so
                // reverse grads flow into this layer's input.
                let mut sends: Vec<Option<Var>> = vec![None; p];
                let mut payloads: Vec<Payload> = Vec::with_capacity(p);
                for q in 0..p {
                    if q == rank || ctx.plan.needed_out[t][q].is_empty() {
                        payloads.push(Payload::Dense(Dense::zeros(0, tape.value(x_own).cols())));
                        continue;
                    }
                    let idx = Rc::new(ctx.plan.needed_out[t][q].clone());
                    let g = tape.gather_rows(x_own, idx);
                    sends[q] = Some(g);
                    payloads.push(Payload::Dense(tape.value(g).clone()));
                }
                let recv = comm.all_to_all(payloads);
                // Assemble remote rows in (q, position) order.
                let mut remote_parts: Vec<Dense> = Vec::new();
                for (q, payload) in recv.into_iter().enumerate() {
                    if q == rank {
                        continue;
                    }
                    let Payload::Dense(d) = payload else {
                        panic!("expected dense")
                    };
                    debug_assert_eq!(d.rows(), ctx.plan.needed_in_len[t][q]);
                    if d.rows() > 0 {
                        remote_parts.push(d);
                    }
                }
                let x_remote = if remote_parts.is_empty() {
                    io.x_remote.push(None);
                    None
                } else {
                    let stacked = Dense::vstack(&remote_parts.iter().collect::<Vec<_>>());
                    let v = tape.input(stacked);
                    io.x_remote.push(Some(v));
                    Some(v)
                };
                io.gather_send.push(sends);

                let x_stacked = match x_remote {
                    Some(r) => tape.concat_rows(&[x_own, r]),
                    None => x_own,
                };
                // Pad columns: a_loc expects own+remote columns even if none
                // arrived this timestep (then a_loc has no remote columns).
                let a = Rc::new(ctx.plan.a_loc[t].clone());
                debug_assert_eq!(a.cols(), tape.value(x_stacked).rows());
                spatial.push(seg.spatial_rows(&mut tape, layer, t, a, x_stacked));
            }
            let z_out = seg.temporal(&mut tape, layer, 0, &spatial);
            x_vals = z_out.iter().map(|&v| tape.value(v).clone()).collect();
            io.z_out = z_out.clone();
            prev_z = z_out;
            layers_io.push(io);
        }

        // Losses: all-gather full embeddings, each rank scores its slice.
        let mut z_full = Vec::with_capacity(block.len());
        let mut loss_vars = Vec::with_capacity(block.len());
        let mut logit_vars = Vec::with_capacity(block.len());
        let mut sample_slices = Vec::with_capacity(block.len());
        for (i, t) in block.clone().enumerate() {
            let gathered = comm.all_gather(Payload::Dense(tape.value(prev_z[i]).clone()));
            let parts: Vec<Dense> = gathered
                .into_iter()
                .map(|pl| match pl {
                    Payload::Dense(d) => d,
                    other => panic!("expected dense, got {other:?}"),
                })
                .collect();
            let full = Dense::vstack(&parts.iter().collect::<Vec<_>>());
            let zf = tape.input(full);
            z_full.push(zf);
            let slice_range = balanced_ranges(ctx.train[t].len(), p)[rank].clone();
            let slice = ctx.train[t].slice(slice_range);
            let logits = self.head.logits(&mut tape, head_vars, zf, &slice);
            let loss = tape.softmax_cross_entropy(logits, Rc::new(slice.labels.clone()));
            logit_vars.push(logits);
            loss_vars.push(loss);
            sample_slices.push(slice);
        }
        BlockRun {
            tape,
            seg,
            loss_vars,
            logit_vars,
            z_vars: z_full,
            io: VertexIo {
                layers_io,
                sample_slices,
            },
        }
    }

    fn backward_block(
        &mut self,
        run: &mut BlockRun<'m, VertexIo>,
        block: &Range<usize>,
        carry_grads: Option<&CarryGrads>,
    ) {
        let comm = &mut *self.comm;
        let ctx = self.ctx;
        let t_total = self.task.t;
        let rank = comm.rank();
        let p = comm.world();
        let cfg = *self.model.config();
        let my = ctx.ranges[rank].clone();

        // Stage 0: loss seeds. The global per-timestep loss is the mean
        // over all samples; this rank computed the mean over its slice, so
        // its seed is weighted by slice/total.
        let seeds: Vec<(Var, Dense)> = run
            .loss_vars
            .iter()
            .enumerate()
            .map(|(i, &lv)| {
                let t = block.start + i;
                let w = run.io.sample_slices[i].len() as f32
                    / ctx.train[t].len().max(1) as f32
                    / t_total as f32;
                (lv, Dense::full(1, 1, w))
            })
            .collect();
        run.tape.backward(&seeds);

        // Sum the full-embedding gradients across ranks, then per-layer
        // sweeps.
        let mut dz_rows: Vec<Dense> = Vec::with_capacity(block.len());
        for zf in &run.z_vars {
            let mut dz = match run.tape.grad(*zf) {
                Some(g) => g.clone(),
                None => {
                    let (r, c) = run.tape.value(*zf).shape();
                    Dense::zeros(r, c)
                }
            };
            let mut flat = dz.data().to_vec();
            comm.all_reduce_sum(&mut flat);
            dz.data_mut().copy_from_slice(&flat);
            dz_rows.push(dz.row_block(my.start, my.len()));
        }

        for layer in (0..cfg.layers()).rev() {
            // Stage A: temporal+spatial sweep of this layer.
            let mut seeds: Vec<(Var, Dense)> = Vec::new();
            for (i, _t) in block.clone().enumerate() {
                seeds.push((run.io.layers_io[layer].z_out[i], dz_rows[i].clone()));
            }
            if let Some(cg) = carry_grads {
                seeds.extend(run.seg.carry_out_seeds_layer(cg, layer));
            }
            run.tape.backward(&seeds);

            // Stage B: reverse neighbor exchange — remote-row grads back to
            // their owners, seeding the gather-send variables.
            let mut gather_seeds: Vec<(Var, Dense)> = Vec::new();
            for (i, t) in block.clone().enumerate() {
                let io = &run.io.layers_io[layer];
                // Split my x_remote grad back into per-source sections.
                let width = dz_rows[i].cols().max(cfg.gcn_in(layer));
                let mut sections: Vec<Dense> = vec![Dense::zeros(0, width); p];
                if let Some(xr) = io.x_remote[i] {
                    let g = run
                        .tape
                        .grad(xr)
                        .expect("remote rows must receive a gradient")
                        .clone();
                    let mut offset = 0;
                    for (q, section) in sections.iter_mut().enumerate() {
                        let len = ctx.plan.needed_in_len[t][q];
                        if len > 0 {
                            *section = g.row_block(offset, len);
                            offset += len;
                        }
                    }
                }
                let payloads: Vec<Payload> = sections.into_iter().map(Payload::Dense).collect();
                let recv = comm.all_to_all(payloads);
                for (q, payload) in recv.into_iter().enumerate() {
                    if q == rank {
                        continue;
                    }
                    let Payload::Dense(d) = payload else {
                        panic!("expected dense")
                    };
                    if d.rows() > 0 {
                        let g_var = run.io.layers_io[layer].gather_send[i][q]
                            .expect("sent rows must have a gather var");
                        gather_seeds.push((g_var, d));
                    }
                }
            }
            if !gather_seeds.is_empty() {
                run.tape.backward(&gather_seeds);
            }

            // Propagate to the layer below: own-leaf grads become its dz.
            if layer > 0 {
                for (i, _) in block.clone().enumerate() {
                    let x_own = run.io.layers_io[layer].x_own[i].expect("layer > 0 has a leaf");
                    dz_rows[i] = match run.tape.grad(x_own) {
                        Some(g) => g.clone(),
                        None => {
                            let (r, c) = run.tape.value(x_own).shape();
                            Dense::zeros(r, c)
                        }
                    };
                }
            }
        }
    }

    fn observe_block(
        &mut self,
        run: &BlockRun<'m, VertexIo>,
        block: &Range<usize>,
        stats: &mut RankStats,
        last_z: &mut Option<Dense>,
    ) {
        for (i, t) in block.clone().enumerate() {
            let w = run.io.sample_slices[i].len() as f64 / self.ctx.train[t].len().max(1) as f64;
            stats.loss_sum += f64::from(run.tape.value(run.loss_vars[i]).get(0, 0)) * w;
            let logits = run.tape.value(run.logit_vars[i]);
            let acc = accuracy(logits, &run.io.sample_slices[i].labels);
            stats.correct += acc * run.io.sample_slices[i].len() as f64;
            stats.total += run.io.sample_slices[i].len() as f64;
        }
        if block.end == self.task.t {
            *last_z = Some(run.tape.value(*run.z_vars.last().unwrap()).clone());
        }
    }

    fn reduce_grads(&mut self, store: &mut ParamStore) {
        let mut flat = store.grads_flat();
        self.comm.all_reduce_sum(&mut flat);
        store.set_grads_from_flat(&flat);
    }

    fn finish_epoch(
        &mut self,
        stats: RankStats,
        last_z: Option<Dense>,
        store: &ParamStore,
    ) -> EpochStats {
        let mut agg = [
            stats.loss_sum as f32,
            stats.correct as f32,
            stats.total as f32,
            0.0,
            0.0,
        ];
        if self.comm.rank() == 0 {
            let z = last_z.as_ref().expect("rank 0 sees the last block");
            let logits = self.head.predict(store, z, &self.ctx.test);
            let acc = accuracy(&logits, &self.ctx.test.labels);
            agg[3] = (acc * self.ctx.test.labels.len() as f64) as f32;
            agg[4] = self.ctx.test.labels.len() as f32;
        }
        self.comm.all_reduce_sum(&mut agg);
        let mark = self.epoch_mark.expect("begin_epoch sets the mark");
        EpochStats {
            loss: f64::from(agg[0]) / self.task.t as f64,
            train_acc: f64::from(agg[1]) / f64::from(agg[2]).max(1.0),
            test_acc: f64::from(agg[3]) / f64::from(agg[4]).max(1.0),
            transfer_naive_bytes: 0,
            transfer_gd_bytes: 0,
            comm_bytes: self.comm.bytes_since(mark),
            store_miss_bytes: 0,
            phase: PhaseBreakdown::default(),
        }
    }

    fn attach_phase(&mut self, out: &mut EpochStats, phase: PhaseBreakdown) {
        out.phase = phase;
        let mark = self.epoch_mark.expect("begin_epoch sets the mark");
        out.phase.comm_us = self.comm.busy_us_since(mark);
        out.phase.comm_wait_us = self.comm.wait_us_since(mark);
    }
}
