//! The single-rank strategy (paper §3, Fig. 2): one simulated GPU owns
//! every timestep of every block. The GCN and temporal phases are
//! communication-free; snapshot transfers are accounted per block run
//! under both the naive and graph-difference encodings (paper §3.2), and
//! — when the blocks come from a tiered store — tier misses are folded
//! into the same per-epoch accounting.

use std::ops::Range;
use std::rc::Rc;

use dgnn_autograd::{ParamStore, Tape};
use dgnn_models::{accuracy, CarryGrads, CarryState, LinkPredHead, Model};
use dgnn_tensor::Dense;

use crate::engine::source::SnapshotSource;
use crate::engine::{
    dense_layer_walk, single_sweep_backward, transfer_bytes, BlockRun, ParallelStrategy,
};
use crate::metrics::{EpochStats, PhaseBreakdown};
use crate::task::Task;

/// Runs one block forward on a fresh tape (single-rank layout). Shared
/// with the streaming front-end's forward-only evaluation.
pub(crate) fn run_block<'m>(
    model: &'m Model,
    head: &LinkPredHead,
    store: &ParamStore,
    task: &Task,
    src: &dyn SnapshotSource,
    block: Range<usize>,
    carry_in: &CarryState,
) -> BlockRun<'m, ()> {
    let mut tape = Tape::new();
    let mut seg = model.bind_segment(&mut tape, store, block.clone(), carry_in);
    let head_vars = head.bind(&mut tape, store);
    let feats = dense_layer_walk(&mut tape, &mut seg, model, src, &block);

    let mut loss_vars = Vec::with_capacity(block.len());
    let mut logit_vars = Vec::with_capacity(block.len());
    for t in block.clone() {
        let z = feats[t - block.start];
        let logits = head.logits(&mut tape, head_vars, z, &task.train[t]);
        let loss = tape.softmax_cross_entropy(logits, Rc::new(task.train[t].labels.clone()));
        logit_vars.push(logits);
        loss_vars.push(loss);
    }
    BlockRun {
        tape,
        seg,
        loss_vars,
        logit_vars,
        z_vars: feats,
        io: (),
    }
}

/// Per-epoch link-prediction accumulator of the single-rank strategy.
#[derive(Default)]
pub(crate) struct SingleStats {
    loss_sum: f64,
    correct: usize,
    total: usize,
}

/// The single-rank layout: the whole timeline on one rank, blocks drawn
/// from a [`SnapshotSource`] (in-memory task view or tiered store).
pub(crate) struct SingleRank<'m, 's> {
    model: &'m Model,
    head: &'m LinkPredHead,
    task: &'m Task,
    source: &'s dyn SnapshotSource,
    naive_bytes: u64,
    gd_bytes: u64,
    /// Tier-miss bytes already accounted before this epoch began.
    miss_mark: u64,
    /// Tier-wait microseconds already accounted before this epoch began.
    wait_mark: u64,
}

impl<'m, 's> SingleRank<'m, 's> {
    /// Builds the strategy and its transfer accounting over `blocks`
    /// (topology-only, identical across epochs).
    pub fn new(
        model: &'m Model,
        head: &'m LinkPredHead,
        task: &'m Task,
        source: &'s dyn SnapshotSource,
        blocks: &[Range<usize>],
    ) -> Self {
        let (naive_bytes, gd_bytes) = transfer_bytes(
            blocks
                .iter()
                .map(|b| b.clone().map(|t| task.graph.snapshot(t).adj()).collect()),
        );
        Self {
            model,
            head,
            task,
            source,
            naive_bytes,
            gd_bytes,
            miss_mark: 0,
            wait_mark: 0,
        }
    }
}

impl<'m> ParallelStrategy<'m> for SingleRank<'m, '_> {
    type Io = ();
    type Stats = SingleStats;
    type EpochOut = EpochStats;

    fn model(&self) -> &'m Model {
        self.model
    }

    fn carry_rows(&self) -> usize {
        self.task.n
    }

    fn begin_epoch(&mut self) {
        self.miss_mark = self.source.miss_bytes();
        self.wait_mark = self.source.wait_us();
    }

    fn forward_block(
        &mut self,
        store: &ParamStore,
        block: Range<usize>,
        carry_in: &CarryState,
    ) -> BlockRun<'m, ()> {
        run_block(
            self.model,
            self.head,
            store,
            self.task,
            self.source,
            block,
            carry_in,
        )
    }

    fn backward_block(
        &mut self,
        run: &mut BlockRun<'m, ()>,
        _block: &Range<usize>,
        carry_grads: Option<&CarryGrads>,
    ) {
        single_sweep_backward(run, self.task.t, carry_grads);
    }

    fn observe_block(
        &mut self,
        run: &BlockRun<'m, ()>,
        block: &Range<usize>,
        stats: &mut SingleStats,
        last_z: &mut Option<Dense>,
    ) {
        for (i, t) in block.clone().enumerate() {
            stats.loss_sum += f64::from(run.tape.value(run.loss_vars[i]).get(0, 0));
            let logits = run.tape.value(run.logit_vars[i]);
            let acc = accuracy(logits, &self.task.train[t].labels);
            stats.correct += (acc * self.task.train[t].labels.len() as f64).round() as usize;
            stats.total += self.task.train[t].labels.len();
        }
        if block.end == self.task.t {
            *last_z = Some(run.tape.value(*run.z_vars.last().unwrap()).clone());
        }
    }

    fn finish_epoch(
        &mut self,
        stats: SingleStats,
        last_z: Option<Dense>,
        store: &ParamStore,
    ) -> EpochStats {
        // Test accuracy from the last timestep's embeddings.
        let z = last_z.expect("last block must end at T");
        let test_logits = self.head.predict(store, &z, &self.task.test);
        let test_acc = accuracy(&test_logits, &self.task.test.labels);
        EpochStats {
            loss: stats.loss_sum / self.task.t as f64,
            train_acc: stats.correct as f64 / stats.total.max(1) as f64,
            test_acc,
            transfer_naive_bytes: self.naive_bytes,
            transfer_gd_bytes: self.gd_bytes,
            comm_bytes: 0,
            store_miss_bytes: self.source.miss_bytes() - self.miss_mark,
            phase: PhaseBreakdown::default(),
        }
    }

    fn attach_phase(&mut self, out: &mut EpochStats, phase: PhaseBreakdown) {
        out.phase = phase;
        out.phase.store_wait_us = self.source.wait_us() - self.wait_mark;
    }
}
