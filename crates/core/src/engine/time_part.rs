//! The snapshot-partitioned strategy (paper §4.2, Fig. 3).
//!
//! Timesteps are split contiguously among ranks within every checkpoint
//! block. The GCN phase is communication-free; the temporal phase runs on
//! contiguous vertex chunks after an all-to-all redistribution, and a
//! second all-to-all restores snapshot ownership for the next layer. The
//! backward pass mirrors the forward with reversed all-to-alls; parameters
//! are replicated and their gradients all-reduced once per epoch.
//!
//! EvolveGCN takes the communication-free path of paper §5.5: every rank
//! evolves the (replicated) weight chain locally and only the epoch-end
//! gradient all-reduce touches the network.
//!
//! The staged backward interleaves `Tape::backward` sweeps with the
//! reverse all-to-alls; each stage's seeds land on nodes that no earlier
//! stage has propagated (the tape enforces this).

use std::ops::Range;
use std::rc::Rc;

use dgnn_autograd::{ParamStore, Tape, Var};
use dgnn_models::{accuracy, CarryGrads, CarryState, LinkPredHead, Model, ModelKind};
use dgnn_partition::{balanced_ranges, VertexChunks};
use dgnn_sim::{Comm, CommMark};
use dgnn_tensor::{Csr, Dense};

use crate::engine::{transfer_bytes, BlockRun, ParallelStrategy};
use crate::metrics::{EpochStats, PhaseBreakdown};
use crate::task::Task;

/// Per-layer communication bookkeeping of one block run.
pub(crate) struct LayerIo {
    /// Spatial outputs for owned timesteps.
    spatial: Vec<Var>,
    /// Temporal inputs for every block timestep (this rank's vertex chunk).
    b_in: Vec<Var>,
    /// Temporal outputs for every block timestep.
    b_out: Vec<Var>,
    /// Reassembled temporal outputs for owned timesteps (next layer input).
    c_in: Vec<Var>,
}

/// Vertical stack of row blocks `range` taken from `mats`, or an empty
/// matrix of the given width.
fn pack_rows(mats: &[&Dense], range: &Range<usize>, width: usize) -> Dense {
    if mats.is_empty() || range.is_empty() {
        return Dense::zeros(0, width);
    }
    let blocks: Vec<Dense> = mats
        .iter()
        .map(|m| m.row_block(range.start, range.len()))
        .collect();
    Dense::vstack(&blocks.iter().collect::<Vec<_>>())
}

/// The timesteps of `block` owned by each rank (contiguous split).
pub(crate) fn owned_per_rank(block: &Range<usize>, p: usize) -> Vec<Vec<usize>> {
    balanced_ranges(block.len(), p)
        .into_iter()
        .map(|r| r.map(|i| block.start + i).collect())
        .collect()
}

/// Per-epoch link-prediction accumulator (fractional counts: ranks own
/// sample subsets and the totals are all-reduced at epoch end).
#[derive(Default)]
pub(crate) struct RankStats {
    pub loss_sum: f64,
    pub correct: f64,
    pub total: f64,
}

/// The snapshot-partitioned layout over `p` rank threads.
pub(crate) struct TimePartitioned<'m, 'c> {
    comm: &'c mut dyn Comm,
    model: &'m Model,
    head: &'m LinkPredHead,
    task: &'m Task,
    laps: Vec<Rc<Csr>>,
    chunks: VertexChunks,
    naive_bytes: u64,
    gd_bytes: u64,
    epoch_mark: Option<CommMark>,
}

impl<'m, 'c> TimePartitioned<'m, 'c> {
    /// Builds the strategy: vertex chunking for the temporal phase and this
    /// rank's transfer accounting over `blocks` (first snapshot naive, rest
    /// as differences — paper §6.2).
    pub fn new(
        comm: &'c mut dyn Comm,
        model: &'m Model,
        head: &'m LinkPredHead,
        task: &'m Task,
        blocks: &[Range<usize>],
    ) -> Self {
        let laps: Vec<Rc<Csr>> = task.laps.iter().cloned().map(Rc::new).collect();
        let chunks = VertexChunks::new(task.n, comm.world());
        let rank = comm.rank();
        let p = comm.world();
        let (naive_bytes, gd_bytes) = transfer_bytes(blocks.iter().map(|block| {
            owned_per_rank(block, p)[rank]
                .iter()
                .map(|&t| task.graph.snapshot(t).adj())
                .collect()
        }));
        Self {
            comm,
            model,
            head,
            task,
            laps,
            chunks,
            naive_bytes,
            gd_bytes,
            epoch_mark: None,
        }
    }
}

impl<'m> ParallelStrategy<'m> for TimePartitioned<'m, '_> {
    type Io = Vec<LayerIo>;
    type Stats = RankStats;
    type EpochOut = EpochStats;

    fn model(&self) -> &'m Model {
        self.model
    }

    fn carry_rows(&self) -> usize {
        // Temporal carries live on this rank's vertex chunk; EvolveGCN's
        // weight chain is replicated so its carry shape is chunk-independent.
        match self.model.kind() {
            ModelKind::EvolveGcn => self.task.n,
            _ => self.chunks.range(self.comm.rank()).len(),
        }
    }

    fn begin_epoch(&mut self) {
        self.epoch_mark = Some(self.comm.mark());
    }

    fn forward_block(
        &mut self,
        store: &ParamStore,
        block: Range<usize>,
        carry_in: &CarryState,
    ) -> BlockRun<'m, Vec<LayerIo>> {
        let comm = &mut *self.comm;
        let task = self.task;
        let rank = comm.rank();
        let p = comm.world();
        let cfg = *self.model.config();
        let owned_all = owned_per_rank(&block, p);
        let owned = owned_all[rank].clone();
        let my_range = self.chunks.range(rank);

        let mut tape = Tape::new();
        let mut seg = self
            .model
            .bind_segment(&mut tape, store, block.clone(), carry_in);
        let head_vars = self.head.bind(&mut tape, store);

        // Layer-0 inputs for owned timesteps.
        let mut feats: Vec<Var> = owned
            .iter()
            .map(|&t| match &task.preagg {
                Some(pre) => tape.constant(pre[t].clone()),
                None => tape.constant(task.features[t].clone()),
            })
            .collect();

        let mut layers_io = Vec::with_capacity(cfg.layers());
        for layer in 0..cfg.layers() {
            let spatial: Vec<Var> = owned
                .iter()
                .enumerate()
                .map(|(i, &t)| {
                    let x = feats[i];
                    if layer == 0 && task.preagg.is_some() {
                        seg.spatial_preagg(&mut tape, t, x)
                    } else {
                        seg.spatial(&mut tape, layer, t, Rc::clone(&self.laps[t]), x)
                    }
                })
                .collect();

            if !self.model.kind().uses_redistribution() {
                // EvolveGCN: identity temporal, no redistribution.
                feats = spatial.clone();
                layers_io.push(LayerIo {
                    spatial,
                    b_in: Vec::new(),
                    b_out: Vec::new(),
                    c_in: Vec::new(),
                });
                continue;
            }

            let gcn_w = cfg.gcn_out(layer);
            // --- Redistribution 1: GCN outputs → vertex chunks. ---
            let spatial_vals: Vec<&Dense> = spatial.iter().map(|&v| tape.value(v)).collect();
            let send: Vec<Dense> = (0..p)
                .map(|q| pack_rows(&spatial_vals, &self.chunks.range(q), gcn_w))
                .collect();
            let recv = comm.all_to_all_dense(send);
            // Unpack: one chunk matrix per block timestep.
            let mut b_in = Vec::with_capacity(block.len());
            for t in block.clone() {
                let owner = owned_all
                    .iter()
                    .position(|ts| ts.contains(&t))
                    .expect("every timestep has an owner");
                let pos = owned_all[owner].iter().position(|&x| x == t).unwrap();
                let chunk = recv[owner].row_block(pos * my_range.len(), my_range.len());
                b_in.push(tape.input(chunk));
            }

            // --- Temporal phase on the vertex chunk, whole block. ---
            let b_out = seg.temporal(&mut tape, layer, 0, &b_in);

            // --- Redistribution 2: temporal outputs → snapshot owners. ---
            let tmp_w = cfg.temporal_out(layer);
            let send2: Vec<Dense> = (0..p)
                .map(|r| {
                    let mats: Vec<&Dense> = owned_all[r]
                        .iter()
                        .map(|&t| tape.value(b_out[t - block.start]))
                        .collect();
                    if mats.is_empty() {
                        Dense::zeros(0, tmp_w)
                    } else {
                        Dense::vstack(&mats)
                    }
                })
                .collect();
            let recv2 = comm.all_to_all_dense(send2);
            let c_in: Vec<Var> = owned
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    let parts: Vec<Dense> = (0..p)
                        .map(|q| {
                            let qlen = self.chunks.len_of(q);
                            recv2[q].row_block(i * qlen, qlen)
                        })
                        .collect();
                    tape.input(Dense::vstack(&parts.iter().collect::<Vec<_>>()))
                })
                .collect();
            feats = c_in.clone();
            layers_io.push(LayerIo {
                spatial,
                b_in,
                b_out,
                c_in,
            });
        }

        // Losses on owned timesteps.
        let mut loss_vars = Vec::with_capacity(owned.len());
        let mut logit_vars = Vec::with_capacity(owned.len());
        for (i, &t) in owned.iter().enumerate() {
            let z = feats[i];
            let logits = self.head.logits(&mut tape, head_vars, z, &task.train[t]);
            let loss = tape.softmax_cross_entropy(logits, Rc::new(task.train[t].labels.clone()));
            logit_vars.push(logits);
            loss_vars.push(loss);
        }
        BlockRun {
            tape,
            seg,
            loss_vars,
            logit_vars,
            z_vars: feats,
            io: layers_io,
        }
    }

    fn backward_block(
        &mut self,
        run: &mut BlockRun<'m, Vec<LayerIo>>,
        block: &Range<usize>,
        carry_grads: Option<&CarryGrads>,
    ) {
        let comm = &mut *self.comm;
        let rank = comm.rank();
        let p = comm.world();
        let cfg = *self.model.config();
        let owned_all = owned_per_rank(block, p);
        let owned = owned_all[rank].clone();
        let my_range = self.chunks.range(rank);

        // Stage 1: loss seeds (every timestep contributes 1/T to the epoch
        // loss). EvolveGCN also takes its carry seeds here — its whole block
        // is one connected sweep.
        let mut seeds: Vec<(Var, Dense)> = run
            .loss_vars
            .iter()
            .map(|&lv| (lv, Dense::full(1, 1, 1.0 / self.task.t as f32)))
            .collect();
        if !self.model.kind().uses_redistribution() {
            if let Some(cg) = carry_grads {
                seeds.extend(run.seg.carry_out_seeds(cg));
            }
            run.tape.backward(&seeds);
            return;
        }
        run.tape.backward(&seeds);

        for layer in (0..cfg.layers()).rev() {
            let io = &run.io[layer];
            let tmp_w = cfg.temporal_out(layer);
            let gcn_w = cfg.gcn_out(layer);

            // --- Reverse redistribution 2: dC (owned ts) → chunk owners. ---
            let dc: Vec<Dense> = io
                .c_in
                .iter()
                .map(|&v| {
                    run.tape
                        .grad(v)
                        .expect("c_in must receive a gradient")
                        .clone()
                })
                .collect();
            let dc_refs: Vec<&Dense> = dc.iter().collect();
            let send: Vec<Dense> = (0..p)
                .map(|q| pack_rows(&dc_refs, &self.chunks.range(q), tmp_w))
                .collect();
            let recv = comm.all_to_all_dense(send);
            let mut seeds2: Vec<(Var, Dense)> = Vec::with_capacity(block.len());
            for t in block.clone() {
                let owner = owned_all.iter().position(|ts| ts.contains(&t)).unwrap();
                let pos = owned_all[owner].iter().position(|&x| x == t).unwrap();
                let g = recv[owner].row_block(pos * my_range.len(), my_range.len());
                seeds2.push((io.b_out[t - block.start], g));
            }
            if let Some(cg) = carry_grads {
                seeds2.extend(run.seg.carry_out_seeds_layer(cg, layer));
            }
            run.tape.backward(&seeds2);

            // --- Reverse redistribution 1: dB (block ts, my chunk) → owners. ---
            let io = &run.io[layer];
            let send2: Vec<Dense> = (0..p)
                .map(|r| {
                    let mats: Vec<&Dense> = owned_all[r]
                        .iter()
                        .map(|&t| {
                            run.tape
                                .grad(io.b_in[t - block.start])
                                .expect("b_in must receive a gradient")
                        })
                        .collect();
                    if mats.is_empty() {
                        Dense::zeros(0, gcn_w)
                    } else {
                        Dense::vstack(&mats)
                    }
                })
                .collect();
            let recv2 = comm.all_to_all_dense(send2);
            let seeds3: Vec<(Var, Dense)> = owned
                .iter()
                .enumerate()
                .map(|(i, _)| {
                    let parts: Vec<Dense> = (0..p)
                        .map(|q| {
                            let qlen = self.chunks.len_of(q);
                            recv2[q].row_block(i * qlen, qlen)
                        })
                        .collect();
                    let g = Dense::vstack(&parts.iter().collect::<Vec<_>>());
                    (io.spatial[i], g)
                })
                .collect();
            run.tape.backward(&seeds3);
        }
    }

    fn observe_block(
        &mut self,
        run: &BlockRun<'m, Vec<LayerIo>>,
        block: &Range<usize>,
        stats: &mut RankStats,
        last_z: &mut Option<Dense>,
    ) {
        let owned = owned_per_rank(block, self.comm.world())[self.comm.rank()].clone();
        for (i, &t) in owned.iter().enumerate() {
            stats.loss_sum += f64::from(run.tape.value(run.loss_vars[i]).get(0, 0));
            let logits = run.tape.value(run.logit_vars[i]);
            let acc = accuracy(logits, &self.task.train[t].labels);
            stats.correct += acc * self.task.train[t].labels.len() as f64;
            stats.total += self.task.train[t].labels.len() as f64;
        }
        if owned.last() == Some(&(self.task.t - 1)) {
            *last_z = Some(run.tape.value(*run.z_vars.last().unwrap()).clone());
        }
    }

    fn reduce_grads(&mut self, store: &mut ParamStore) {
        // Gradient all-reduce keeps the replicas identical.
        let mut flat = store.grads_flat();
        self.comm.all_reduce_sum(&mut flat);
        store.set_grads_from_flat(&flat);
    }

    fn finish_epoch(
        &mut self,
        stats: RankStats,
        last_z: Option<Dense>,
        store: &ParamStore,
    ) -> EpochStats {
        let mut agg = [
            stats.loss_sum as f32,
            stats.correct as f32,
            stats.total as f32,
            0.0,
            0.0,
        ];
        if let Some(z) = &last_z {
            let logits = self.head.predict(store, z, &self.task.test);
            let acc = accuracy(&logits, &self.task.test.labels);
            agg[3] = (acc * self.task.test.labels.len() as f64) as f32;
            agg[4] = self.task.test.labels.len() as f32;
        }
        self.comm.all_reduce_sum(&mut agg);
        let mark = self.epoch_mark.expect("begin_epoch sets the mark");
        EpochStats {
            loss: f64::from(agg[0]) / self.task.t as f64,
            train_acc: f64::from(agg[1]) / f64::from(agg[2]).max(1.0),
            test_acc: f64::from(agg[3]) / f64::from(agg[4]).max(1.0),
            transfer_naive_bytes: self.naive_bytes,
            transfer_gd_bytes: self.gd_bytes,
            comm_bytes: self.comm.bytes_since(mark),
            store_miss_bytes: 0,
            phase: PhaseBreakdown::default(),
        }
    }

    fn attach_phase(&mut self, out: &mut EpochStats, phase: PhaseBreakdown) {
        out.phase = phase;
        let mark = self.epoch_mark.expect("begin_epoch sets the mark");
        out.phase.comm_us = self.comm.busy_us_since(mark);
        out.phase.comm_wait_us = self.comm.wait_us_since(mark);
    }
}
