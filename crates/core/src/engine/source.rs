//! Where the engine's snapshot blocks come from: the [`SnapshotSource`]
//! abstraction, plus the carry banks that decide where the checkpoint
//! carries `π_b` live between the forward and backward passes.
//!
//! The engine's layer walk used to reach straight into the in-memory
//! `Task` vectors (`laps`, `features`, `preagg`). It now asks a
//! `SnapshotSource` for each timestep's operator and layer-0 input, with
//! two implementations:
//!
//! * [`TaskSource`] — the all-in-memory path, a zero-cost view over a
//!   prepared [`Task`]. This is what every existing `train_*` entry
//!   point uses; it reproduces the old plumbing exactly.
//! * [`StoreSource`] — the out-of-core path: blocks live in a
//!   [`TieredStore`] and are faulted (or prefetched) per checkpoint
//!   block. Construction *spills* the task's Laplacians and inputs to
//!   the store; training then needs only the store's memory budget, not
//!   the working set. The source carries the §3.1 block schedule
//!   (forward order, then reversed for the backward rerun) and, on each
//!   block entry, asks the store to prefetch the next block's records so
//!   steady-state reads never block on a cold file.
//!
//! Both paths are **bit-identical**: spill frames round-trip raw `f32`
//! bit patterns, so the arithmetic sees the same numbers either way
//! (pinned by `tests/out_of_core_equivalence.rs`).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::ops::Range;
use std::rc::Rc;

use dgnn_models::{CarryState, LayerCarry};
use dgnn_store::{StoreError, TieredStore};
use dgnn_tensor::{Csr, Dense};

use crate::engine::recycle_carry;
use crate::task::Task;

/// One timestep's worth of training data, as seen by the engine's layer
/// walk. `t` indexes the task timeline.
pub trait SnapshotSource {
    /// The normalized Laplacian `Ã_t`.
    fn lap(&self, t: usize) -> Rc<Csr>;

    /// The layer-0 input at `t`: the feature block, or the §5.5
    /// pre-aggregation `Ã_t·X_t` when [`SnapshotSource::preagg`] is true.
    fn input(&self, t: usize) -> Dense;

    /// Whether [`SnapshotSource::input`] is pre-aggregated (the layer-0
    /// spatial phase is then a plain weight multiply).
    fn preagg(&self) -> bool;

    /// Called when the engine enters a block (both the forward pass and
    /// the backward rerun). Out-of-core sources use this to prefetch the
    /// next scheduled block.
    fn enter_block(&self, _block: &Range<usize>) {}

    /// Bytes this source has faulted from a storage tier so far — the
    /// tier-miss extension of the engine's transfer accounting. Always 0
    /// for in-memory sources.
    fn miss_bytes(&self) -> u64 {
        0
    }

    /// Microseconds this source has spent blocked on a storage tier so
    /// far (only advances while `DGNN_TRACE` is on). Always 0 for
    /// in-memory sources.
    fn wait_us(&self) -> u64 {
        0
    }
}

/// The all-in-memory source: a view over a prepared [`Task`], with the
/// Laplacians `Rc`-shared once at construction (exactly the plumbing the
/// strategies used to build themselves).
pub struct TaskSource<'a> {
    task: &'a Task,
    laps: Vec<Rc<Csr>>,
}

impl<'a> TaskSource<'a> {
    /// Wraps a prepared task.
    pub fn new(task: &'a Task) -> Self {
        Self {
            task,
            laps: task.laps.iter().cloned().map(Rc::new).collect(),
        }
    }
}

impl SnapshotSource for TaskSource<'_> {
    fn lap(&self, t: usize) -> Rc<Csr> {
        Rc::clone(&self.laps[t])
    }

    fn input(&self, t: usize) -> Dense {
        match &self.task.preagg {
            Some(pre) => pre[t].clone(),
            None => self.task.features[t].clone(),
        }
    }

    fn preagg(&self) -> bool {
        self.task.preagg.is_some()
    }
}

/// The out-of-core source: snapshot operators and inputs live in a
/// [`TieredStore`] and are faulted per block, one block prefetched ahead.
///
/// # Panics
///
/// [`SnapshotSource::lap`] / [`SnapshotSource::input`] panic (with the
/// underlying typed [`StoreError`] in the message) if a spill file turns
/// unreadable *mid-training* — the files were written moments earlier by
/// [`StoreSource::spill`], so this is an environment failure, not a
/// recoverable state. All up-front I/O is surfaced as `Result`s.
pub struct StoreSource {
    tier: Rc<RefCell<TieredStore>>,
    /// Per-epoch block entry order: the §3.1 schedule forward, then
    /// reversed for the backward rerun.
    schedule: Vec<Range<usize>>,
    cursor: Cell<usize>,
    preagg: bool,
    /// The spilled task's [`Task::input_revision`]: every key is scoped
    /// by it, so a tier shared between tasks (or between a streaming
    /// run's windows) stays coherent — a rebuilt pre-aggregation gets
    /// fresh keys instead of silently shadowing stale blocks.
    rev: u64,
    /// Timesteps spilled — the key range [`Drop`] reclaims.
    t_count: usize,
}

impl StoreSource {
    fn lap_key(&self, t: usize) -> String {
        format!("lap{t}.r{}", self.rev)
    }

    fn input_key(&self, t: usize) -> String {
        format!("in{t}.r{}", self.rev)
    }
}

impl StoreSource {
    /// Spills `task`'s Laplacians and layer-0 inputs into `tier` and
    /// builds the source. `blocks` is the checkpoint-block schedule the
    /// engine will walk; prefetch follows it one block ahead.
    ///
    /// After this returns, the task's `laps` / `features` / `preagg`
    /// vectors are no longer consulted — a caller reproducing a true
    /// larger-than-memory run can drop them. The spilled keys belong to
    /// the returned source and are reclaimed when it drops; spill the
    /// same task twice into one tier only with both sources live.
    pub fn spill(
        task: &Task,
        tier: Rc<RefCell<TieredStore>>,
        blocks: &[Range<usize>],
    ) -> Result<Self, StoreError> {
        let mut schedule = blocks.to_vec();
        schedule.extend(blocks.iter().rev().cloned());
        let src = Self {
            tier,
            schedule,
            cursor: Cell::new(0),
            preagg: task.preagg.is_some(),
            rev: task.input_revision,
            t_count: task.laps.len(),
        };
        {
            let mut t = src.tier.borrow_mut();
            for (i, lap) in task.laps.iter().enumerate() {
                t.put_csr(&src.lap_key(i), lap)?;
            }
            let inputs = task.preagg.as_ref().unwrap_or(&task.features);
            for (i, block) in inputs.iter().enumerate() {
                t.put_dense(&src.input_key(i), block)?;
            }
        }
        Ok(src)
    }

    /// The store's counters (misses, evictions, resident bytes).
    pub fn stats(&self) -> dgnn_store::StoreStats {
        self.tier.borrow().stats()
    }
}

/// A source owns its revision-scoped keys: dropping it reclaims them
/// (memory tier and spill files) so a tier shared across tasks or
/// streaming windows stays bounded by its *live* sources instead of
/// accumulating every superseded revision for the tier's lifetime.
/// Best-effort — files already unlinked (or a tier borrowed elsewhere
/// mid-unwind) are skipped, never panicked on.
impl Drop for StoreSource {
    fn drop(&mut self) {
        let Ok(mut tier) = self.tier.try_borrow_mut() else {
            return;
        };
        for t in 0..self.t_count {
            let _ = tier.remove(&self.lap_key(t));
            let _ = tier.remove(&self.input_key(t));
        }
    }
}

impl SnapshotSource for StoreSource {
    fn lap(&self, t: usize) -> Rc<Csr> {
        self.tier
            .borrow_mut()
            .get_csr(&self.lap_key(t))
            .unwrap_or_else(|e| panic!("out-of-core Laplacian {t} unreadable: {e}"))
    }

    fn input(&self, t: usize) -> Dense {
        let rc = self
            .tier
            .borrow_mut()
            .get_dense(&self.input_key(t))
            .unwrap_or_else(|e| panic!("out-of-core input block {t} unreadable: {e}"));
        (*rc).clone()
    }

    fn preagg(&self) -> bool {
        self.preagg
    }

    fn enter_block(&self, block: &Range<usize>) {
        let len = self.schedule.len();
        if len == 0 {
            return;
        }
        let mut cur = self.cursor.get() % len;
        if self.schedule[cur] != *block {
            // A front-end walking outside the engine schedule (e.g. a
            // forward-only evaluation) resyncs instead of asserting: a
            // stale cursor only costs prefetch accuracy, never bits.
            // Every block appears twice (forward half, then mirrored in
            // the reversed backward half), so resolve to the occurrence
            // *nearest the cursor* — matching the first occurrence
            // unconditionally would snap a backward-pass resync to the
            // forward half and prefetch the forward successor instead of
            // the backward predecessor.
            cur = self
                .schedule
                .iter()
                .enumerate()
                .filter(|(_, b)| *b == block)
                .min_by_key(|&(i, _)| i.abs_diff(cur))
                .map(|(i, _)| i)
                .unwrap_or(cur);
        }
        let next = &self.schedule[(cur + 1) % len];
        let keys: Vec<String> = next
            .clone()
            .flat_map(|t| [self.lap_key(t), self.input_key(t)])
            .collect();
        self.tier
            .borrow_mut()
            .prefetch(keys.iter().map(String::as_str));
        self.cursor.set((cur + 1) % len);
    }

    fn miss_bytes(&self) -> u64 {
        self.tier.borrow().stats().miss_bytes
    }

    fn wait_us(&self) -> u64 {
        self.tier.borrow().stats().wait_us
    }
}

/// Where the engine keeps the per-block carries `π_b` between the forward
/// pass (which produces them in order) and the backward pass (which
/// consumes them in reverse). One bank instance lives across epochs.
pub(crate) trait CarryBank {
    /// Starts an epoch with the model's initial carry (index 0).
    fn begin_epoch(&mut self, initial: CarryState);

    /// The most recently pushed carry — the input of the next forward
    /// block.
    fn last(&self) -> &CarryState;

    /// Appends the carry leaving the block just run (index = pushes so
    /// far this epoch).
    fn push(&mut self, carry: CarryState);

    /// Takes carry `b` (the carry *into* block `b`) for the backward
    /// rerun. Called once per block, in descending order.
    fn take(&mut self, b: usize) -> CarryState;

    /// Ends the epoch, recycling whatever the backward pass did not take.
    fn finish_epoch(&mut self);
}

/// The in-memory bank: the plain `Vec<CarryState>` the engine always had.
#[derive(Default)]
pub(crate) struct MemoryCarryBank {
    slots: Vec<Option<CarryState>>,
}

impl CarryBank for MemoryCarryBank {
    fn begin_epoch(&mut self, initial: CarryState) {
        debug_assert!(self.slots.is_empty(), "epoch not finished");
        self.slots.push(Some(initial));
    }

    fn last(&self) -> &CarryState {
        self.slots
            .last()
            .and_then(Option::as_ref)
            .expect("an epoch is in progress")
    }

    fn push(&mut self, carry: CarryState) {
        self.slots.push(Some(carry));
    }

    fn take(&mut self, b: usize) -> CarryState {
        self.slots[b].take().expect("each carry is taken once")
    }

    fn finish_epoch(&mut self) {
        // The final block's outgoing carry (and nothing else) is left.
        for carry in self.slots.drain(..).flatten() {
            recycle_carry(carry);
        }
    }
}

/// The spilling bank: only the newest carry stays in memory (the next
/// forward block needs it); everything older is sealed into the tiered
/// store and reloaded — one carry prefetched ahead — during the backward
/// pass. With `nb` checkpoint blocks this caps carry memory at `O(1)`
/// carries instead of `O(nb)`.
///
/// # Panics
///
/// Mid-training spill I/O failures panic with the typed [`StoreError`]
/// in the message, for the same reason as [`StoreSource`].
pub(crate) struct SpillCarryBank {
    tier: Rc<RefCell<TieredStore>>,
    /// The newest carry (index `held_idx`), not yet spilled.
    last: Option<CarryState>,
    held_idx: usize,
}

fn carry_key(b: usize) -> String {
    format!("carry{b}")
}

impl SpillCarryBank {
    /// A bank spilling through `tier`.
    pub fn new(tier: Rc<RefCell<TieredStore>>) -> Self {
        Self {
            tier,
            last: None,
            held_idx: 0,
        }
    }

    /// Seals the currently held carry to the store and recycles its
    /// matrices.
    fn spill_last(&mut self) {
        let carry = self.last.take().expect("a carry is held");
        let (meta, mats) = encode_carry(&carry);
        self.tier
            .borrow_mut()
            .spill_record(&carry_key(self.held_idx), &meta, mats)
            .unwrap_or_else(|e| panic!("carry {} unspillable: {e}", self.held_idx));
        recycle_carry(carry);
    }
}

impl CarryBank for SpillCarryBank {
    fn begin_epoch(&mut self, initial: CarryState) {
        debug_assert!(self.last.is_none(), "epoch not finished");
        self.last = Some(initial);
        self.held_idx = 0;
    }

    fn last(&self) -> &CarryState {
        self.last.as_ref().expect("an epoch is in progress")
    }

    fn push(&mut self, carry: CarryState) {
        self.spill_last();
        self.last = Some(carry);
        self.held_idx += 1;
    }

    fn take(&mut self, b: usize) -> CarryState {
        debug_assert!(b < self.held_idx, "backward takes only spilled carries");
        let mut tier = self.tier.borrow_mut();
        if b > 0 {
            // The backward pass walks down: stage the next carry while
            // this block recomputes.
            let key = carry_key(b - 1);
            tier.prefetch([key.as_str()]);
        }
        let (meta, mats) = tier
            .take_record(&carry_key(b))
            .unwrap_or_else(|e| panic!("carry {b} unreadable: {e}"));
        decode_carry(&meta, mats)
    }

    fn finish_epoch(&mut self) {
        if let Some(carry) = self.last.take() {
            recycle_carry(carry);
        }
    }
}

// Carry layer tags in the spill meta words.
const TAG_LSTM: u32 = 0;
const TAG_WINDOW: u32 = 1;
const TAG_EGCN: u32 = 2;

/// Flattens a carry into spill-record form: meta = `(tag, matrix count)`
/// per layer, mats = the carried matrices in layer order.
fn encode_carry(carry: &CarryState) -> (Vec<u32>, Vec<&Dense>) {
    let mut meta = Vec::with_capacity(carry.layers.len() * 2);
    let mut mats: Vec<&Dense> = Vec::new();
    for layer in &carry.layers {
        match layer {
            LayerCarry::Lstm { h, c } => {
                meta.extend([TAG_LSTM, 2]);
                mats.extend([h, c]);
            }
            LayerCarry::Egcn { h, c } => {
                meta.extend([TAG_EGCN, 2]);
                mats.extend([h, c]);
            }
            LayerCarry::Window { frames } => {
                meta.extend([TAG_WINDOW, frames.len() as u32]);
                mats.extend(frames.iter());
            }
        }
    }
    (meta, mats)
}

/// Rebuilds a carry from its spill-record form. Inverse of
/// [`encode_carry`]; bit-exact because the frames round-trip raw bit
/// patterns.
fn decode_carry(meta: &[u32], mats: Vec<Dense>) -> CarryState {
    assert!(
        meta.len().is_multiple_of(2),
        "carry meta comes in (tag, count) pairs"
    );
    let mut mats = mats.into_iter();
    let mut layers = Vec::with_capacity(meta.len() / 2);
    for pair in meta.chunks_exact(2) {
        let (tag, count) = (pair[0], pair[1] as usize);
        layers.push(match tag {
            TAG_LSTM | TAG_EGCN => {
                assert_eq!(count, 2, "state carries hold (h, c)");
                let h = mats.next().expect("carry matrix underrun");
                let c = mats.next().expect("carry matrix underrun");
                if tag == TAG_LSTM {
                    LayerCarry::Lstm { h, c }
                } else {
                    LayerCarry::Egcn { h, c }
                }
            }
            TAG_WINDOW => {
                let frames: VecDeque<Dense> = (0..count)
                    .map(|_| mats.next().expect("carry matrix underrun"))
                    .collect();
                LayerCarry::Window { frames }
            }
            other => panic!("unknown carry layer tag {other}"),
        });
    }
    assert!(mats.next().is_none(), "carry matrix overrun");
    CarryState { layers }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_models::ModelConfig;
    use dgnn_store::StoreConfig;

    use crate::task::{prepare_task_holdout, TaskOptions};

    fn small_task(seed: u64) -> Task {
        let g = dgnn_graph::gen::churn(30, 7, 80, 0.3, seed);
        let cfg = ModelConfig {
            kind: dgnn_models::ModelKind::CdGcn,
            input_f: 2,
            hidden: 4,
            mprod_window: 3,
            smoothing_window: 3,
        };
        prepare_task_holdout(&g, &cfg, &TaskOptions::default())
    }

    fn shared_tier() -> Rc<RefCell<TieredStore>> {
        Rc::new(RefCell::new(
            TieredStore::open(&StoreConfig::with_budget(0)).unwrap(),
        ))
    }

    #[test]
    fn enter_block_resyncs_to_the_nearest_schedule_occurrence() {
        let task = small_task(1);
        let blocks = vec![0..2usize, 2..4, 4..6];
        let src = StoreSource::spill(&task, shared_tier(), &blocks).unwrap();
        // schedule: [0..2, 2..4, 4..6 | 4..6, 2..4, 0..2]
        src.enter_block(&(0..2));
        src.enter_block(&(2..4));
        src.enter_block(&(4..6));
        assert_eq!(src.cursor.get(), 3, "in-schedule walk needs no resync");
        // Jump into the backward half *out of order* (the cursor points at
        // the backward 4..6): the resync must land on the backward
        // occurrence of 2..4 (index 4) — the forward occurrence (index 1)
        // would prefetch the forward successor 4..6 instead of the
        // backward predecessor 0..2.
        src.enter_block(&(2..4));
        assert_eq!(src.cursor.get(), 5, "resync picked the forward half");
        src.enter_block(&(0..2));
        assert_eq!(src.cursor.get(), 0, "backward walk continues in order");
    }

    #[test]
    fn enter_block_resync_from_deep_backward_position() {
        let task = small_task(2);
        let blocks = vec![0..2usize, 2..4, 4..6];
        let src = StoreSource::spill(&task, shared_tier(), &blocks).unwrap();
        // Walk forward and through the backward half down to 2..4, then
        // re-enter 4..6 (a forward-only evaluation restarting mid-epoch):
        // nearest occurrence of 4..6 to cursor 5 is the backward index 3.
        for b in [&(0..2), &(2..4), &(4..6), &(4..6), &(2..4)] {
            src.enter_block(b);
        }
        assert_eq!(src.cursor.get(), 5);
        src.enter_block(&(4..6));
        assert_eq!(src.cursor.get(), 4, "resync picked the forward 4..6");
    }

    #[test]
    fn shared_tier_keeps_tasks_coherent_via_revision_keys() {
        let a = small_task(3);
        let b = small_task(4);
        assert_ne!(a.input_revision, b.input_revision);
        let tier = shared_tier();
        let blocks = vec![0..3usize, 3..6];
        let src_a = StoreSource::spill(&a, Rc::clone(&tier), &blocks).unwrap();
        // Spilling a second task into the *same* tier must not shadow the
        // first task's blocks.
        let src_b = StoreSource::spill(&b, tier, &blocks).unwrap();
        let bits = |d: &Dense| d.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        for t in 0..6 {
            assert_eq!(*src_a.lap(t), a.laps[t], "task A Laplacian {t}");
            assert_eq!(*src_b.lap(t), b.laps[t], "task B Laplacian {t}");
            let pre_a = &a.preagg.as_ref().unwrap()[t];
            let pre_b = &b.preagg.as_ref().unwrap()[t];
            assert_eq!(bits(&src_a.input(t)), bits(pre_a), "task A input {t}");
            assert_eq!(bits(&src_b.input(t)), bits(pre_b), "task B input {t}");
        }
    }

    #[test]
    fn dropping_a_source_reclaims_its_spill_keys() {
        let a = small_task(5);
        let b = small_task(6);
        let tier = shared_tier();
        let blocks = vec![0..3usize, 3..6];
        let dgns_files = |tier: &Rc<RefCell<TieredStore>>| {
            std::fs::read_dir(tier.borrow().dir())
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .path()
                        .extension()
                        .is_some_and(|x| x == "dgns")
                })
                .count()
        };
        let src_a = StoreSource::spill(&a, Rc::clone(&tier), &blocks).unwrap();
        let after_a = dgns_files(&tier);
        assert_eq!(after_a, 12, "6 Laplacians + 6 inputs");
        let src_b = StoreSource::spill(&b, Rc::clone(&tier), &blocks).unwrap();
        assert_eq!(dgns_files(&tier), 24, "two live revisions coexist");
        // Dropping the superseded source reclaims exactly its keys — a
        // long-lived shared tier is bounded by live sources, not run
        // count.
        drop(src_a);
        assert_eq!(dgns_files(&tier), 12, "revision A reclaimed");
        for t in 0..6 {
            assert_eq!(*src_b.lap(t), b.laps[t], "task B Laplacian {t} intact");
        }
        drop(src_b);
        assert_eq!(dgns_files(&tier), 0, "revision B reclaimed");
    }

    fn sample_carry() -> CarryState {
        CarryState {
            layers: vec![
                LayerCarry::Lstm {
                    h: Dense::from_fn(3, 2, |r, c| (r * 2 + c) as f32 * 0.5),
                    c: Dense::full(3, 2, -1.25),
                },
                LayerCarry::Window {
                    frames: VecDeque::from(vec![Dense::full(2, 2, 7.0), Dense::zeros(2, 2)]),
                },
                LayerCarry::Egcn {
                    h: Dense::full(2, 3, 0.125),
                    c: Dense::full(2, 3, f32::MIN_POSITIVE),
                },
            ],
        }
    }

    #[test]
    fn carry_codec_roundtrips_structure_and_bits() {
        let carry = sample_carry();
        let (meta, mats) = encode_carry(&carry);
        let owned: Vec<Dense> = mats.into_iter().cloned().collect();
        let back = decode_carry(&meta, owned);
        assert_eq!(back.layers.len(), 3);
        match (&back.layers[0], &carry.layers[0]) {
            (LayerCarry::Lstm { h: ha, c: ca }, LayerCarry::Lstm { h: hb, c: cb }) => {
                assert_eq!(ha, hb);
                assert_eq!(ca, cb);
            }
            _ => panic!("layer 0 must stay an LSTM carry"),
        }
        match &back.layers[1] {
            LayerCarry::Window { frames } => {
                assert_eq!(frames.len(), 2);
                assert_eq!(frames[0], Dense::full(2, 2, 7.0));
            }
            _ => panic!("layer 1 must stay a window carry"),
        }
        assert!(matches!(&back.layers[2], LayerCarry::Egcn { .. }));
    }

    #[test]
    fn carry_codec_handles_empty_window() {
        let carry = CarryState {
            layers: vec![LayerCarry::Window {
                frames: VecDeque::new(),
            }],
        };
        let (meta, mats) = encode_carry(&carry);
        assert_eq!(meta, vec![TAG_WINDOW, 0]);
        let back = decode_carry(&meta, mats.into_iter().cloned().collect());
        assert!(matches!(
            &back.layers[0],
            LayerCarry::Window { frames } if frames.is_empty()
        ));
    }

    #[test]
    fn spill_bank_roundtrips_carries_through_the_store() {
        use dgnn_store::StoreConfig;
        let tier = Rc::new(RefCell::new(
            TieredStore::open(&StoreConfig::with_budget(0)).unwrap(),
        ));
        let mut bank = SpillCarryBank::new(Rc::clone(&tier));
        let c0 = sample_carry();
        bank.begin_epoch(c0.clone());
        assert_eq!(bank.last().layers.len(), 3);
        bank.push(sample_carry()); // spills c0
        bank.push(sample_carry()); // spills carry 1
        let back1 = bank.take(1);
        let back0 = bank.take(0);
        for back in [&back0, &back1] {
            match (&back.layers[0], &c0.layers[0]) {
                (LayerCarry::Lstm { h: ha, .. }, LayerCarry::Lstm { h: hb, .. }) => {
                    let bits = |d: &Dense| d.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(ha), bits(hb));
                }
                _ => panic!("carry structure lost"),
            }
        }
        bank.finish_epoch();
        // A second epoch reuses the same keys cleanly.
        bank.begin_epoch(c0);
        bank.push(sample_carry());
        assert_eq!(bank.take(0).layers.len(), 3);
        bank.finish_epoch();
    }
}
