//! Vertex classification (paper §2.2) as an engine objective: the
//! single-rank layout's layer walk with a [`ClassificationHead`] and a
//! class-weighted loss, per-timestep labels `Q` of size `T×N`.

use std::ops::Range;
use std::rc::Rc;

use dgnn_autograd::{ParamStore, Tape, Var};
use dgnn_models::{CarryGrads, CarryState, ClassificationHead, Model};
use dgnn_tensor::Dense;

use crate::classification::ClassEpochStats;
use crate::engine::source::TaskSource;
use crate::engine::{dense_layer_walk, single_sweep_backward, BlockRun, ParallelStrategy};
use crate::task::Task;

/// Per-class recall counts.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Recalls {
    correct: [f64; 2],
    total: [f64; 2],
}

impl Recalls {
    fn add(&mut self, logits: &Dense, labels: &[u32]) {
        for (r, &label) in labels.iter().enumerate() {
            let row = logits.row(r);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i as u32)
                .unwrap();
            let c = (label as usize).min(1);
            self.total[c] += 1.0;
            if pred == label {
                self.correct[c] += 1.0;
            }
        }
    }

    fn accuracy(&self) -> f64 {
        let total = self.total[0] + self.total[1];
        if total == 0.0 {
            return 0.0;
        }
        (self.correct[0] + self.correct[1]) / total
    }

    fn balanced(&self) -> f64 {
        let mut acc = 0.0;
        let mut classes = 0.0;
        for c in 0..2 {
            if self.total[c] > 0.0 {
                acc += self.correct[c] / self.total[c];
                classes += 1.0;
            }
        }
        if classes == 0.0 {
            0.0
        } else {
            acc / classes
        }
    }
}

/// Per-epoch classification accumulator.
#[derive(Default)]
pub(crate) struct ClsStats {
    loss_sum: f64,
    recalls: Recalls,
}

/// Single-rank vertex classification: the class-weighted loss is realised
/// by evaluating the two classes' vertices as separate sample groups and
/// combining the scalar losses (rare laundering accounts would otherwise
/// be drowned out).
pub(crate) struct SingleRankClassification<'m> {
    model: &'m Model,
    head: &'m ClassificationHead,
    task: &'m Task,
    labels: Vec<Rc<Vec<u32>>>,
    source: TaskSource<'m>,
    class_weights: [f32; 2],
}

impl<'m> SingleRankClassification<'m> {
    pub fn new(
        model: &'m Model,
        head: &'m ClassificationHead,
        task: &'m Task,
        labels: &[Vec<u32>],
    ) -> Self {
        Self {
            model,
            head,
            task,
            labels: labels.iter().map(|l| Rc::new(l.clone())).collect(),
            source: TaskSource::new(task),
            class_weights: [1.0, 1.0],
        }
    }
}

impl<'m> ParallelStrategy<'m> for SingleRankClassification<'m> {
    type Io = ();
    type Stats = ClsStats;
    type EpochOut = ClassEpochStats;

    fn model(&self) -> &'m Model {
        self.model
    }

    fn carry_rows(&self) -> usize {
        self.task.n
    }

    fn forward_block(
        &mut self,
        store: &ParamStore,
        block: Range<usize>,
        carry_in: &CarryState,
    ) -> BlockRun<'m, ()> {
        let mut tape = Tape::new();
        let mut seg = self
            .model
            .bind_segment(&mut tape, store, block.clone(), carry_in);
        let head_vars = self.head.bind(&mut tape, store);
        let feats = dense_layer_walk(&mut tape, &mut seg, self.model, &self.source, &block);

        let mut loss_vars = Vec::with_capacity(block.len());
        let mut logit_vars = Vec::with_capacity(block.len());
        for t in block.clone() {
            let z = feats[t - block.start];
            let lab = Rc::clone(&self.labels[t]);
            let pos_idx: Vec<u32> = (0..lab.len() as u32)
                .filter(|&v| lab[v as usize] == 1)
                .collect();
            let neg_idx: Vec<u32> = (0..lab.len() as u32)
                .filter(|&v| lab[v as usize] == 0)
                .collect();
            // Logits for every vertex (metrics + per-class loss groups).
            let logits = self.head.logits(&mut tape, head_vars, z);
            logit_vars.push(logits);
            let mut parts: Vec<(f32, Var)> = Vec::new();
            if !neg_idx.is_empty() {
                let zg = tape.gather_rows(logits, Rc::new(neg_idx.clone()));
                let l = tape.softmax_cross_entropy(zg, Rc::new(vec![0u32; neg_idx.len()]));
                parts.push((self.class_weights[0], l));
            }
            if !pos_idx.is_empty() {
                let zg = tape.gather_rows(logits, Rc::new(pos_idx.clone()));
                let l = tape.softmax_cross_entropy(zg, Rc::new(vec![1u32; pos_idx.len()]));
                parts.push((self.class_weights[1], l));
            }
            let total_w: f32 = parts.iter().map(|(w, _)| w).sum();
            let terms: Vec<(f32, Var)> = parts.into_iter().map(|(w, v)| (w / total_w, v)).collect();
            loss_vars.push(tape.lin_comb(&terms));
        }
        BlockRun {
            tape,
            seg,
            loss_vars,
            logit_vars,
            z_vars: feats,
            io: (),
        }
    }

    fn backward_block(
        &mut self,
        run: &mut BlockRun<'m, ()>,
        _block: &Range<usize>,
        carry_grads: Option<&CarryGrads>,
    ) {
        single_sweep_backward(run, self.task.t, carry_grads);
    }

    fn observe_block(
        &mut self,
        run: &BlockRun<'m, ()>,
        block: &Range<usize>,
        stats: &mut ClsStats,
        _last_z: &mut Option<Dense>,
    ) {
        for (i, t) in block.clone().enumerate() {
            stats.loss_sum += f64::from(run.tape.value(run.loss_vars[i]).get(0, 0));
            stats
                .recalls
                .add(run.tape.value(run.logit_vars[i]), &self.labels[t]);
        }
    }

    fn finish_epoch(
        &mut self,
        stats: ClsStats,
        _last_z: Option<Dense>,
        _store: &ParamStore,
    ) -> ClassEpochStats {
        ClassEpochStats {
            loss: stats.loss_sum / self.task.t as f64,
            accuracy: stats.recalls.accuracy(),
            balanced_accuracy: stats.recalls.balanced(),
        }
    }
}
