//! Training options and per-epoch statistics.

/// Options shared by the trainers.
#[derive(Clone, Copy, Debug)]
pub struct TrainOptions {
    /// Number of training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient-checkpoint blocks (`nb` of paper §3.1). 1 = single block.
    pub nb: usize,
    /// Parameter-initialisation seed (all ranks must agree).
    pub seed: u64,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self { epochs: 10, lr: 0.01, nb: 1, seed: 42 }
    }
}

/// Per-epoch training statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochStats {
    /// Mean cross-entropy over all timesteps.
    pub loss: f64,
    /// Training accuracy over all sampled pairs.
    pub train_acc: f64,
    /// Test accuracy on the held-out snapshot.
    pub test_acc: f64,
    /// Bytes a naive CPU→GPU snapshot transfer would move this epoch.
    pub transfer_naive_bytes: u64,
    /// Bytes the graph-difference transfer moves this epoch.
    pub transfer_gd_bytes: u64,
    /// Inter-rank payload bytes this rank sent during the epoch (0 for the
    /// single-rank trainer).
    pub comm_bytes: u64,
}

impl EpochStats {
    /// Transfer speedup of graph-difference over naive for this epoch.
    pub fn gd_speedup(&self) -> f64 {
        if self.transfer_gd_bytes == 0 {
            1.0
        } else {
            self.transfer_naive_bytes as f64 / self.transfer_gd_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gd_speedup_handles_zero() {
        let s = EpochStats::default();
        assert_eq!(s.gd_speedup(), 1.0);
        let s = EpochStats { transfer_naive_bytes: 100, transfer_gd_bytes: 40, ..s };
        assert!((s.gd_speedup() - 2.5).abs() < 1e-12);
    }
}
