//! Training options and per-epoch statistics.

/// Options shared by the trainers.
#[derive(Clone, Copy, Debug)]
pub struct TrainOptions {
    /// Number of training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Gradient-checkpoint blocks (`nb` of paper §3.1). 1 = single block.
    pub nb: usize,
    /// Parameter-initialisation seed (all ranks must agree).
    pub seed: u64,
    /// Intra-rank kernel threads (per rank thread for the distributed
    /// trainers). `None` defers to the `DGNN_THREADS` environment variable,
    /// then to `available_parallelism` divided among live rank threads.
    /// Results are bit-identical at every setting — the parallel kernels
    /// are deterministic by construction.
    pub threads: Option<usize>,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 10,
            lr: 0.01,
            nb: 1,
            seed: 42,
            threads: None,
        }
    }
}

/// Per-epoch training statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct EpochStats {
    /// Mean cross-entropy over all timesteps.
    pub loss: f64,
    /// Training accuracy over all sampled pairs.
    pub train_acc: f64,
    /// Test accuracy on the held-out snapshot.
    pub test_acc: f64,
    /// Bytes a naive CPU→GPU snapshot transfer would move this epoch.
    pub transfer_naive_bytes: u64,
    /// Bytes the graph-difference transfer moves this epoch.
    pub transfer_gd_bytes: u64,
    /// Inter-rank payload bytes this rank sent during the epoch (0 for the
    /// single-rank trainer).
    pub comm_bytes: u64,
    /// Bytes faulted from the out-of-core storage tier this epoch — the
    /// tier-miss extension of the transfer accounting. 0 when the blocks
    /// (and carries) all live in memory.
    pub store_miss_bytes: u64,
    /// Where the epoch's wall time went, populated from the `DGNN_TRACE`
    /// recorder. All zeros when tracing is off — the engine never pays
    /// for clock reads it was not asked for.
    pub phase: PhaseBreakdown,
}

/// Per-phase wall-time breakdown of one training epoch, in microseconds.
///
/// Populated by the engine's tracing probes (`DGNN_TRACE=1`); every field
/// is 0 when tracing is off. The four engine phases partition the epoch
/// loop; `comm_us` and `store_wait_us` are *attributions* nested inside
/// them (collective busy time inside forward/recompute/backward, file-tier
/// blocking inside the store-backed sources), not additional time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Forward pass over the checkpoint blocks.
    pub forward_us: u64,
    /// Forward re-runs of blocks during the backward pass (paper Fig. 2).
    pub recompute_us: u64,
    /// Backward sweeps, parameter-gradient accumulation, carry seeding.
    pub backward_us: u64,
    /// Gradient reduction plus the optimizer step.
    pub optimizer_us: u64,
    /// Time inside `dgnn-sim` collectives (nested in the phases above).
    pub comm_us: u64,
    /// Share of `comm_us` spent blocked on peer data (receive-side wait,
    /// attributed identically on both communicator transports).
    pub comm_wait_us: u64,
    /// Time blocked on the storage tier (nested in the phases above).
    pub store_wait_us: u64,
}

impl PhaseBreakdown {
    /// Sum of the four top-level engine phases (excludes the nested
    /// `comm_us`/`store_wait_us` attributions to avoid double counting).
    pub fn busy_us(&self) -> u64 {
        self.forward_us + self.recompute_us + self.backward_us + self.optimizer_us
    }
}

impl EpochStats {
    /// Transfer speedup of graph-difference over naive for this epoch.
    pub fn gd_speedup(&self) -> f64 {
        if self.transfer_gd_bytes == 0 {
            1.0
        } else {
            self.transfer_naive_bytes as f64 / self.transfer_gd_bytes as f64
        }
    }
}

/// Area under the ROC curve of binary `scores` against `labels` (1 =
/// positive), computed by the rank statistic (Mann–Whitney U) with the
/// midrank convention for ties. Returns 0.5 when either class is empty.
pub fn auc(scores: &[f32], labels: &[u32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "one score per label");
    let pos = labels.iter().filter(|&&l| l == 1).count();
    let neg = labels.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    // total_cmp: NaN scores (a diverged window) rank last instead of
    // panicking — the metric degrades, the stream keeps training.
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    // Midranks over tie groups, then U = Σ ranks(pos) − pos(pos+1)/2.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            if labels[k] == 1 {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - pos as f64 * (pos as f64 + 1.0) / 2.0;
    u / (pos as f64 * neg as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [0, 0, 1, 1];
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &labels), 1.0);
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &labels), 0.0);
    }

    #[test]
    fn auc_chance_for_constant_scores() {
        let labels = [0, 1, 0, 1, 1];
        assert_eq!(auc(&[0.5; 5], &labels), 0.5);
    }

    #[test]
    fn auc_handles_single_class() {
        assert_eq!(auc(&[0.3, 0.7], &[1, 1]), 0.5);
    }

    #[test]
    fn auc_midrank_ties() {
        // scores: pos at 0.5 (tied with one neg), one neg below.
        let labels = [0, 0, 1];
        let got = auc(&[0.1, 0.5, 0.5], &labels);
        assert!((got - 0.75).abs() < 1e-12, "got {got}");
    }

    #[test]
    fn auc_all_tied_is_exactly_chance() {
        // Every score in one tie group: the midrank convention must land
        // on exactly 0.5 regardless of class balance or sample count.
        for (pos, neg) in [(1usize, 1usize), (3, 7), (10, 2)] {
            let n = pos + neg;
            let scores = vec![1.25f32; n];
            let labels: Vec<u32> = (0..n).map(|i| u32::from(i < pos)).collect();
            assert_eq!(auc(&scores, &labels), 0.5, "pos={pos} neg={neg}");
        }
    }

    #[test]
    fn auc_tie_group_spanning_both_classes() {
        // neg at 0.1; tie group {pos, pos, neg} at 0.5; pos at 0.9.
        // Midrank of the tie group = (2+3+4)/3 = 3; rank-sum(pos) =
        // 3 + 3 + 5 = 11; U = 11 - 3·4/2 = 5; AUC = 5/(3·2) = 5/6.
        let scores = [0.1f32, 0.5, 0.5, 0.5, 0.9];
        let labels = [0u32, 1, 1, 0, 1];
        let got = auc(&scores, &labels);
        assert!((got - 5.0 / 6.0).abs() < 1e-12, "got {got}");
        // Shuffling the tied entries must not change the midrank result.
        let scores2 = [0.5f32, 0.1, 0.9, 0.5, 0.5];
        let labels2 = [0u32, 0, 1, 1, 1];
        assert_eq!(auc(&scores2, &labels2), got);
    }

    #[test]
    fn auc_multiple_tie_groups() {
        // Two tie groups: {neg, pos} at 0.2 and {neg, pos} at 0.8.
        // Midranks 1.5 and 3.5: rank-sum(pos) = 5; U = 5 - 3 = 2;
        // AUC = 2/4 = 0.5 — symmetric groups balance out exactly.
        let scores = [0.2f32, 0.2, 0.8, 0.8];
        let labels = [0u32, 1, 0, 1];
        assert_eq!(auc(&scores, &labels), 0.5);
    }

    #[test]
    fn auc_nan_scores_rank_last_not_panic() {
        // total_cmp orders NaN above every real score, so a diverged
        // positive ranks top (AUC 1) and a diverged negative ranks top
        // (AUC 0) — degraded but defined, never a panic.
        assert_eq!(auc(&[f32::NAN, 0.5], &[1, 0]), 1.0);
        assert_eq!(auc(&[f32::NAN, 0.5], &[0, 1]), 0.0);
        // NaN == NaN is false, so multiple NaNs do NOT merge into a tie
        // group: the stable sort keeps their input order and each takes
        // its own rank (the tie-group `==` deliberately stays value
        // equality so +0.0/-0.0 still tie).
        assert_eq!(auc(&[f32::NAN, f32::NAN], &[1, 0]), 0.0);
        assert_eq!(auc(&[f32::NAN, f32::NAN], &[0, 1]), 1.0);
        // ±0.0 are one tie group even though total_cmp orders them.
        assert_eq!(auc(&[0.0f32, -0.0], &[1, 0]), 0.5);
    }

    #[test]
    fn auc_empty_inputs_are_chance() {
        assert_eq!(auc(&[], &[]), 0.5);
    }

    #[test]
    fn gd_speedup_handles_zero() {
        let s = EpochStats::default();
        assert_eq!(s.gd_speedup(), 1.0);
        let s = EpochStats {
            transfer_naive_bytes: 100,
            transfer_gd_bytes: 40,
            ..s
        };
        assert!((s.gd_speedup() - 2.5).abs() < 1e-12);
    }
}
