//! The hybrid trainer (paper §6.5): individual snapshots too large for one
//! GPU are split row-wise among the members of a processor group. This
//! implements the paper's exploratory experiment — one group whose members
//! share *every* snapshot — which trained AMLSim-Large-1/2 on two GPUs.
//!
//! Each member holds a row block of every Laplacian and feature matrix. The
//! SpMM needs the full feature matrix, obtained by an all-gather of row
//! blocks; the temporal component runs locally on the member's rows. As
//! with the other schemes, the execution faithfully simulates the
//! sequential algorithm.

use std::ops::Range;
use std::rc::Rc;

use dgnn_autograd::{Adam, Optimizer, ParamStore, Tape, Var};
use dgnn_graph::{DynamicGraph, EdgeSamples, Snapshot};
use dgnn_models::{accuracy, CarryGrads, CarryState, LinkPredHead, Model, ModelConfig, Segment};
use dgnn_partition::balanced_ranges;
use dgnn_sim::{run_ranks, Comm, Payload};
use dgnn_tensor::{Csr, Dense};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::metrics::{EpochStats, TrainOptions};
use crate::task::{prepare_task, Task, TaskOptions};

struct HLayerIo {
    /// Per timestep: the P row-block leaves composing the stacked input
    /// (`None` entries at layer 0, where inputs are constants).
    x_slots: Vec<Vec<Option<Var>>>,
    /// Temporal outputs per timestep (my rows).
    z_out: Vec<Var>,
}

struct HBlockRun<'m> {
    tape: Tape,
    seg: Segment<'m>,
    layers_io: Vec<HLayerIo>,
    z_full: Vec<Var>,
    loss_vars: Vec<Var>,
    logit_vars: Vec<Var>,
    sample_slices: Vec<EdgeSamples>,
}

fn gather_dense(comm: &mut Comm, mine: Dense) -> Vec<Dense> {
    comm.all_gather(Payload::Dense(mine))
        .into_iter()
        .map(|p| match p {
            Payload::Dense(d) => d,
            other => panic!("expected dense, got {other:?}"),
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn run_block_hybrid<'m>(
    comm: &mut Comm,
    model: &'m Model,
    head: &LinkPredHead,
    store: &ParamStore,
    task: &Task,
    a_rows: &[Csr],
    block: Range<usize>,
    carry_in: &CarryState,
) -> HBlockRun<'m> {
    let rank = comm.rank();
    let p = comm.world();
    let cfg = *model.config();
    let rows = balanced_ranges(task.n, p);
    let my = rows[rank].clone();

    let mut tape = Tape::new();
    let mut seg = model.bind_segment(&mut tape, store, block.clone(), carry_in);
    let head_vars = head.bind(&mut tape, store);

    // My feature rows per block timestep.
    let mut x_vals: Vec<Dense> = block
        .clone()
        .map(|t| task.features[t].row_block(my.start, my.len()))
        .collect();

    let mut layers_io: Vec<HLayerIo> = Vec::with_capacity(cfg.layers());
    let mut prev_z: Vec<Var> = Vec::new();
    for layer in 0..cfg.layers() {
        let mut io = HLayerIo {
            x_slots: Vec::new(),
            z_out: Vec::new(),
        };
        let mut spatial = Vec::with_capacity(block.len());
        for (i, t) in block.clone().enumerate() {
            // All-gather the row blocks of this layer's input.
            let parts = gather_dense(comm, x_vals[i].clone());
            let mut slots: Vec<Option<Var>> = Vec::with_capacity(p);
            let mut slot_vars: Vec<Var> = Vec::with_capacity(p);
            for part in parts {
                let v = if layer == 0 {
                    slots.push(None);
                    tape.constant(part)
                } else {
                    let v = tape.input(part);
                    slots.push(Some(v));
                    v
                };
                slot_vars.push(v);
            }
            io.x_slots.push(slots);
            let x_full = tape.concat_rows(&slot_vars);
            spatial.push(seg.spatial_rows(&mut tape, layer, t, Rc::new(a_rows[t].clone()), x_full));
        }
        let z_out = seg.temporal(&mut tape, layer, 0, &spatial);
        x_vals = z_out.iter().map(|&v| tape.value(v).clone()).collect();
        io.z_out = z_out.clone();
        prev_z = z_out;
        layers_io.push(io);
    }

    // Losses from all-gathered embeddings; my slice of each sample set.
    let mut z_full = Vec::with_capacity(block.len());
    let mut loss_vars = Vec::with_capacity(block.len());
    let mut logit_vars = Vec::with_capacity(block.len());
    let mut sample_slices = Vec::with_capacity(block.len());
    for (i, t) in block.clone().enumerate() {
        let parts = gather_dense(comm, tape.value(prev_z[i]).clone());
        let full = Dense::vstack(&parts.iter().collect::<Vec<_>>());
        let zf = tape.input(full);
        z_full.push(zf);
        let slice_range = balanced_ranges(task.train[t].len(), p)[rank].clone();
        let slice = task.train[t].slice(slice_range);
        let logits = head.logits(&mut tape, head_vars, zf, &slice);
        let loss = tape.softmax_cross_entropy(logits, Rc::new(slice.labels.clone()));
        logit_vars.push(logits);
        loss_vars.push(loss);
        sample_slices.push(slice);
    }
    HBlockRun {
        tape,
        seg,
        layers_io,
        z_full,
        loss_vars,
        logit_vars,
        sample_slices,
    }
}

#[allow(clippy::too_many_arguments)]
fn backward_block_hybrid(
    comm: &mut Comm,
    run: &mut HBlockRun<'_>,
    model: &Model,
    task: &Task,
    block: &Range<usize>,
    carry_grads: Option<&CarryGrads>,
) {
    let rank = comm.rank();
    let p = comm.world();
    let cfg = *model.config();
    let rows = balanced_ranges(task.n, p);
    let my = rows[rank].clone();

    // Stage 0: loss seeds weighted by the sample-slice fraction.
    let seeds: Vec<(Var, Dense)> = run
        .loss_vars
        .iter()
        .enumerate()
        .map(|(i, &lv)| {
            let t = block.start + i;
            let w = run.sample_slices[i].len() as f32
                / task.train[t].len().max(1) as f32
                / task.t as f32;
            (lv, Dense::full(1, 1, w))
        })
        .collect();
    run.tape.backward(&seeds);

    // Sum embedding grads across ranks; keep my rows.
    let mut dz_rows: Vec<Dense> = Vec::with_capacity(block.len());
    for zf in &run.z_full {
        let mut dz = match run.tape.grad(*zf) {
            Some(g) => g.clone(),
            None => {
                let (r, c) = run.tape.value(*zf).shape();
                Dense::zeros(r, c)
            }
        };
        let mut flat = dz.data().to_vec();
        comm.all_reduce_sum(&mut flat);
        dz.data_mut().copy_from_slice(&flat);
        dz_rows.push(dz.row_block(my.start, my.len()));
    }

    for layer in (0..cfg.layers()).rev() {
        let mut seeds: Vec<(Var, Dense)> = Vec::new();
        for (i, _) in block.clone().enumerate() {
            seeds.push((run.layers_io[layer].z_out[i], dz_rows[i].clone()));
        }
        if let Some(cg) = carry_grads {
            seeds.extend(run.seg.carry_out_seeds_layer(cg, layer));
        }
        run.tape.backward(&seeds);

        if layer > 0 {
            // Reverse all-gather: sum each slot's grads over ranks; my rows
            // of the result seed the layer below.
            let w = cfg.gcn_in(layer);
            for (i, _) in block.clone().enumerate() {
                let mut dx = Dense::zeros(task.n, w);
                for (q, slot) in run.layers_io[layer].x_slots[i].iter().enumerate() {
                    if let Some(v) = slot {
                        if let Some(g) = run.tape.grad(*v) {
                            let qr = rows[q].clone();
                            let mut block_g = dx.row_block(qr.start, qr.len());
                            block_g.add_assign(g);
                            // Write back.
                            for (r_local, r_global) in qr.clone().enumerate() {
                                for c in 0..w {
                                    dx.set(r_global, c, block_g.get(r_local, c));
                                }
                            }
                        }
                    }
                }
                let mut flat = dx.data().to_vec();
                comm.all_reduce_sum(&mut flat);
                dx.data_mut().copy_from_slice(&flat);
                dz_rows[i] = dx.row_block(my.start, my.len());
            }
        }
    }
}

/// Hybrid training: one group of `p` ranks sharing every snapshot row-wise
/// (the paper's §6.5 two-GPU experiment). Returns per-epoch statistics.
pub fn train_hybrid(
    raw: &DynamicGraph,
    next: &Snapshot,
    cfg: ModelConfig,
    task_opts: &TaskOptions,
    opts: &TrainOptions,
    p: usize,
) -> Vec<EpochStats> {
    let _threads = dgnn_tensor::pool::scoped_threads(opts.threads);
    let task = prepare_task(raw, next, &cfg, task_opts);
    let results = run_ranks(p, |comm| {
        // Each member extracts its row blocks of every Laplacian.
        let rows = balanced_ranges(task.n, comm.world());
        let my = rows[comm.rank()].clone();
        let a_rows: Vec<Csr> = task
            .laps
            .iter()
            .map(|lap| lap.row_block(my.start, my.len()))
            .collect();
        train_rank_hybrid(comm, &task, &a_rows, cfg, opts)
    });
    results.into_iter().next().expect("at least one rank")
}

fn train_rank_hybrid(
    comm: &mut Comm,
    task: &Task,
    a_rows: &[Csr],
    cfg: ModelConfig,
    opts: &TrainOptions,
) -> Vec<EpochStats> {
    let rank = comm.rank();
    let p = comm.world();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut store = ParamStore::new();
    let model = Model::new(cfg, &mut store, &mut rng);
    let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
    let mut opt = Adam::new(opts.lr);
    let blocks = balanced_ranges(task.t, opts.nb.min(task.t));
    let chunk_rows = match model.kind() {
        dgnn_models::ModelKind::EvolveGcn => task.n,
        _ => balanced_ranges(task.n, p)[rank].len(),
    };

    let mut out = Vec::with_capacity(opts.epochs);
    for _epoch in 0..opts.epochs {
        let comm_bytes_start = comm.bytes_sent();
        store.zero_grad();
        let mut carries: Vec<CarryState> = vec![model.initial_carry(chunk_rows)];
        let mut loss_sum = 0.0f64;
        let mut correct = 0f64;
        let mut total = 0f64;
        let mut last_z: Option<Dense> = None;
        for block in &blocks {
            let run = run_block_hybrid(
                comm,
                &model,
                &head,
                &store,
                task,
                a_rows,
                block.clone(),
                carries.last().unwrap(),
            );
            for (i, t) in block.clone().enumerate() {
                let w = run.sample_slices[i].len() as f64 / task.train[t].len().max(1) as f64;
                loss_sum += f64::from(run.tape.value(run.loss_vars[i]).get(0, 0)) * w;
                let logits = run.tape.value(run.logit_vars[i]);
                let acc = accuracy(logits, &run.sample_slices[i].labels);
                correct += acc * run.sample_slices[i].len() as f64;
                total += run.sample_slices[i].len() as f64;
            }
            if block.end == task.t {
                last_z = Some(run.tape.value(*run.z_full.last().unwrap()).clone());
            }
            carries.push(run.seg.carry_out(&run.tape));
        }

        let mut carry_grads: Option<CarryGrads> = None;
        for (b, block) in blocks.iter().enumerate().rev() {
            let mut run = run_block_hybrid(
                comm,
                &model,
                &head,
                &store,
                task,
                a_rows,
                block.clone(),
                &carries[b],
            );
            backward_block_hybrid(comm, &mut run, &model, task, block, carry_grads.as_ref());
            run.tape.accumulate_param_grads(&mut store);
            carry_grads = Some(run.seg.carry_in_grads(&run.tape));
        }

        let mut flat = store.grads_flat();
        comm.all_reduce_sum(&mut flat);
        store.set_grads_from_flat(&flat);
        opt.step(&mut store);

        let mut stats = [loss_sum as f32, correct as f32, total as f32, 0.0, 0.0];
        if rank == 0 {
            let z = last_z.as_ref().expect("rank 0 sees the last block");
            let logits = head.predict(&store, z, &task.test);
            let acc = accuracy(&logits, &task.test.labels);
            stats[3] = (acc * task.test.labels.len() as f64) as f32;
            stats[4] = task.test.labels.len() as f32;
        }
        comm.all_reduce_sum(&mut stats);
        out.push(EpochStats {
            loss: f64::from(stats[0]) / task.t as f64,
            train_acc: f64::from(stats[1]) / f64::from(stats[2]).max(1.0),
            test_acc: f64::from(stats[3]) / f64::from(stats[4]).max(1.0),
            transfer_naive_bytes: 0,
            transfer_gd_bytes: 0,
            comm_bytes: comm.bytes_sent() - comm_bytes_start,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::gen::churn;
    use dgnn_models::ModelKind;

    #[test]
    fn hybrid_learns_with_two_members() {
        let g = churn(20, 6, 80, 0.3, 5);
        let raw = g.time_slice(0, 5);
        let next = g.snapshot(5).clone();
        let cfg = ModelConfig {
            kind: ModelKind::TmGcn,
            input_f: 2,
            hidden: 4,
            mprod_window: 3,
            smoothing_window: 3,
        };
        let stats = train_hybrid(
            &raw,
            &next,
            cfg,
            &TaskOptions {
                precompute_first_layer: false,
                ..Default::default()
            },
            &TrainOptions {
                epochs: 8,
                lr: 0.02,
                nb: 1,
                seed: 3,
                threads: None,
            },
            2,
        );
        assert!(stats.last().unwrap().loss < stats.first().unwrap().loss);
    }
}
