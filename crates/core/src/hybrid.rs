//! The hybrid trainer (paper §6.5) — a thin wrapper binding the
//! `HybridRows` (`engine::hybrid_rows`) strategy to the
//! shared execution engine. Each member of one processor group holds a
//! row block of every Laplacian and feature matrix; the layout and staged
//! backward live in `crate::engine::hybrid_rows`.

use dgnn_graph::{DynamicGraph, Snapshot};
use dgnn_models::{LinkPredHead, Model, ModelConfig};
use dgnn_partition::balanced_ranges;
use dgnn_sim::run_ranks;
use dgnn_tensor::Csr;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine::hybrid_rows::HybridRows;
use crate::engine::{run_engine, EngineConfig};
use crate::metrics::{EpochStats, TrainOptions};
use crate::task::{prepare_task, TaskOptions};
use dgnn_autograd::ParamStore;

/// Hybrid training: one group of `p` ranks sharing every snapshot row-wise
/// (the paper's §6.5 two-GPU experiment). Returns per-epoch statistics.
///
/// The row-split SpMM consumes whole Laplacian rows, so the §5.5 first-layer
/// pre-aggregation does not apply; [`EngineConfig`] disables it here
/// regardless of `task_opts`.
pub fn train_hybrid(
    raw: &DynamicGraph,
    next: &Snapshot,
    cfg: ModelConfig,
    task_opts: &TaskOptions,
    opts: &TrainOptions,
    p: usize,
) -> Vec<EpochStats> {
    train_hybrid_digest(raw, next, cfg, task_opts, opts, p).0
}

/// As [`train_hybrid`], additionally returning the FNV digest of each
/// rank's final parameter replica (rank order); the replicas must agree
/// bitwise, and the transport-equivalence suite pins the digests across
/// communicator transports and rank counts.
pub fn train_hybrid_digest(
    raw: &DynamicGraph,
    next: &Snapshot,
    cfg: ModelConfig,
    task_opts: &TaskOptions,
    opts: &TrainOptions,
    p: usize,
) -> (Vec<EpochStats>, Vec<u64>) {
    let _threads = dgnn_tensor::pool::scoped_threads(opts.threads);
    let econf = EngineConfig::new(*opts, *task_opts);
    let task = prepare_task(raw, next, &cfg, &econf.resolved_task(false));
    let results = run_ranks(p, |comm| {
        // Each member extracts its row blocks of every Laplacian.
        let rows = balanced_ranges(task.n, comm.world());
        let my = rows[comm.rank()].clone();
        let a_rows: Vec<Csr> = task
            .laps
            .iter()
            .map(|lap| lap.row_block(my.start, my.len()))
            .collect();
        let mut rng = StdRng::seed_from_u64(econf.train.seed);
        let mut store = ParamStore::new();
        let model = Model::new(cfg, &mut store, &mut rng);
        let head = LinkPredHead::new(&mut store, cfg.embedding_dim(), 2, &mut rng);
        let blocks = econf.blocks(task.t);
        let mut strategy = HybridRows::new(comm, &model, &head, &task, &a_rows);
        let stats = run_engine(
            &mut strategy,
            &mut store,
            &blocks,
            econf.train.epochs,
            econf.train.lr,
        );
        let digest = dgnn_tensor::digest::digest_f32(&store.values_flat());
        (stats, digest)
    });
    let (mut stats, digests): (Vec<_>, Vec<_>) = results.into_iter().unzip();
    (stats.swap_remove(0), digests)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::gen::churn;
    use dgnn_models::ModelKind;

    #[test]
    fn hybrid_learns_with_two_members() {
        let g = churn(20, 6, 80, 0.3, 5);
        let raw = g.time_slice(0, 5);
        let next = g.snapshot(5).clone();
        let cfg = ModelConfig {
            kind: ModelKind::TmGcn,
            input_f: 2,
            hidden: 4,
            mprod_window: 3,
            smoothing_window: 3,
        };
        let stats = train_hybrid(
            &raw,
            &next,
            cfg,
            &TaskOptions {
                precompute_first_layer: false,
                ..Default::default()
            },
            &TrainOptions {
                epochs: 8,
                lr: 0.02,
                nb: 1,
                seed: 3,
                threads: None,
            },
            2,
        );
        assert!(stats.last().unwrap().loss < stats.first().unwrap().loss);
    }

    #[test]
    fn preagg_request_is_neutralised_by_engine_config() {
        // The hybrid layout cannot consume Ã·X; requesting it must not
        // change results (the engine config disables it up front).
        let g = churn(20, 5, 80, 0.3, 6);
        let raw = g.time_slice(0, 4);
        let next = g.snapshot(4).clone();
        let cfg = ModelConfig {
            kind: ModelKind::TmGcn,
            input_f: 2,
            hidden: 4,
            mprod_window: 3,
            smoothing_window: 3,
        };
        let run = |preagg: bool| {
            train_hybrid(
                &raw,
                &next,
                cfg,
                &TaskOptions {
                    precompute_first_layer: preagg,
                    ..Default::default()
                },
                &TrainOptions {
                    epochs: 2,
                    lr: 0.02,
                    nb: 1,
                    seed: 3,
                    threads: None,
                },
                2,
            )
        };
        let on = run(true);
        let off = run(false);
        for (a, b) in on.iter().zip(&off) {
            assert_eq!(a.loss.to_bits(), b.loss.to_bits());
        }
    }
}
