//! Eviction-under-concurrent-prefetch stress: a tiny memory tier, a
//! storm of prefetch requests racing the background reader, and gets
//! interleaved so admissions constantly evict records whose bytes are
//! still in flight. Every fetched record must be bit-identical to what
//! was stored, and the budget must hold at every step.

use dgnn_store::{StoreConfig, TieredStore};
use dgnn_tensor::{Csr, Dense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn lap(i: usize) -> Csr {
    let n = 24;
    let edges: Vec<(u32, u32, f32)> = (0..n)
        .map(|v| {
            (
                v as u32,
                ((v + i + 1) % n) as u32,
                (i as f32 + 1.0) / (v as f32 + 1.0),
            )
        })
        .collect();
    Csr::from_coo(n, n, &edges)
}

fn feat(i: usize) -> Dense {
    Dense::from_fn(24, 4, |r, c| (i * 100 + r * 4 + c) as f32 * 0.5 - 3.0)
}

#[test]
fn eviction_under_concurrent_prefetch_stays_bit_exact() {
    const RECORDS: usize = 16;
    // Budget ≈ 3 records: admissions evict on almost every fetch.
    let probe = dgnn_store::encode_csr(&lap(0)).len() as u64;
    let mut store = TieredStore::open(&StoreConfig::with_budget(probe * 3)).unwrap();

    for i in 0..RECORDS {
        store.put_csr(&format!("lap{i}"), &lap(i)).unwrap();
        store.put_dense(&format!("feat{i}"), &feat(i)).unwrap();
    }

    let mut rng = StdRng::seed_from_u64(99);
    for round in 0..200 {
        // Random prefetch burst: some keys resident, some evicted, some
        // already in flight from the previous round.
        for _ in 0..4 {
            let i = rng.gen_range(0..RECORDS as u32) as usize;
            store.prefetch(
                [format!("lap{i}"), format!("feat{i}")]
                    .iter()
                    .map(String::as_str),
            );
        }
        // Random gets force admissions (and therefore evictions) while
        // the reader is still streaming other keys in.
        for _ in 0..3 {
            let i = rng.gen_range(0..RECORDS as u32) as usize;
            if rng.gen_range(0..2u32) == 0 {
                let got = store.get_csr(&format!("lap{i}")).unwrap();
                assert_eq!(*got, lap(i), "round {round}: lap{i} corrupted");
            } else {
                let got = store.get_dense(&format!("feat{i}")).unwrap();
                let want = feat(i);
                assert_eq!(got.shape(), want.shape());
                let same = got
                    .data()
                    .iter()
                    .zip(want.data())
                    .all(|(a, b)| a.to_bits() == b.to_bits());
                assert!(same, "round {round}: feat{i} corrupted");
            }
        }
        let st = store.stats();
        assert!(
            st.resident_bytes <= store.budget(),
            "round {round}: resident {} exceeds budget {}",
            st.resident_bytes,
            store.budget()
        );
    }

    let st = store.stats();
    assert!(st.evictions > 0, "stress must actually evict");
    assert!(
        st.prefetch_hits > 0,
        "stress must consume at least one staged prefetch"
    );
    assert!(st.mem_hits > 0, "stress must also hit the memory tier");
}
