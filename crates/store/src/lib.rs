//! # dgnn-store
//!
//! Tiered out-of-core storage for snapshot Laplacians, feature blocks and
//! engine carries — the paper's central constraint made real. The SC'21
//! system assumes snapshot working sets larger than device memory and
//! `dgnn-sim::memory` reproduces the resulting OOM blanks analytically;
//! this crate lets the repo actually *train* such workloads: blocks spill
//! to framed, CRC-sealed files (the `DGNC` checkpoint idiom of
//! `dgnn-serve`, under a `DGNS` magic), an LRU-bounded memory tier keeps
//! the hot blocks resident within a `DGNN_STORE_BUDGET` byte budget, and
//! a background prefetch thread walks the §3.1 snapshot schedule one
//! block ahead so the execution engine never blocks on a cold read.
//!
//! Everything round-trips as raw bit patterns: training from the store is
//! **bit-identical** to training in memory (pinned by
//! `tests/out_of_core_equivalence.rs` at multiple thread counts), and
//! every decode failure — truncation, foreign magic, future revision,
//! flipped bits — is a typed [`StoreError`], never a panic.
//!
//! The memory tier's admission check reuses
//! [`dgnn_sim::memory::MemoryTracker::would_fit`], and decoded buffers
//! are drawn from (and evicted buffers returned to) the per-thread
//! `dgnn_tensor::workspace` arena, so steady-state block reads allocate
//! nothing.

#![warn(missing_docs)]

pub mod frame;
pub mod tier;

pub use frame::{decode, encode_csr, encode_dense, encode_record, Record, StoreError};
pub use tier::{RecordPayload, StoreConfig, StoreStats, TieredStore, ENV_STORE_BUDGET};
