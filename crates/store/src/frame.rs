//! The framed binary spill format shared by every record kind.
//!
//! A spill file holds exactly one record (all integers little-endian):
//!
//! ```text
//! magic    b"DGNS"                        4 bytes
//! version  u32                            format revision (currently 1)
//! kind     u8                             record kind tag
//! payload  kind-specific bytes            (see below)
//! crc32    u32                            over every preceding byte
//! ```
//!
//! The framing deliberately mirrors the `dgnn-serve` checkpoint format
//! (`DGNC` magic + CRC-32 trailer): same integrity guarantees, same typed
//! failure modes, same shared [`dgnn_tensor::digest::crc32`]
//! implementation. Payloads:
//!
//! * **CSR** (`kind = 1`): `rows u64, cols u64, nnz u64`, then `rows+1`
//!   row pointers as `u64`, `nnz` column indices as `u32`, `nnz` values
//!   as raw `f32` bit patterns.
//! * **Dense** (`kind = 2`): `rows u64, cols u64`, then `rows·cols`
//!   values as raw `f32` bit patterns.
//! * **Record** (`kind = 3`): `n_meta u32` caller-defined `u32` words,
//!   then `n_mats u32` dense matrices, each `rows u64, cols u64, data`.
//!   The execution engine encodes block carries (`π_b`) this way: the
//!   meta words describe the per-layer carry structure, the matrices are
//!   the carried state.
//!
//! Values round-trip as raw bit patterns, so training on reloaded blocks
//! is bit-identical to training on the originals. Decoding draws every
//! backing buffer — values, column indices, row pointers — from the
//! per-thread [`workspace`] arena when one is engaged, so steady-state
//! block reads allocate nothing.

use std::fmt;
use std::io;

use dgnn_graph::snapshot_io::{self, CodecError};
use dgnn_tensor::digest::crc32;
use dgnn_tensor::{workspace, Csr, Dense};

/// Spill-frame magic: "DGNN Store".
pub const MAGIC: [u8; 4] = *b"DGNS";
/// Current spill-format revision.
pub const FORMAT_VERSION: u32 = 1;
/// Record kind tag: a CSR sparse matrix.
pub const KIND_CSR: u8 = 1;
/// Record kind tag: a dense matrix.
pub const KIND_DENSE: u8 = 2;
/// Record kind tag: a composite record (meta words + dense matrices).
pub const KIND_RECORD: u8 = 3;

/// Dimension cap per record axis — a corrupt header must not drive a
/// multi-gigabyte allocation before the checksum gets a chance to reject.
const MAX_DIM: u64 = 1 << 32;
/// Cap on meta words / matrix count in composite records, same rationale.
const MAX_RECORD_ITEMS: u32 = 1 << 20;

/// Why a spill record could not be stored or decoded.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure (create/open/read/write the spill file).
    Io(io::Error),
    /// The leading bytes are not the spill-frame magic.
    BadMagic([u8; 4]),
    /// The file's format revision is newer than this build understands.
    UnsupportedVersion {
        /// Revision found in the header.
        found: u32,
    },
    /// The file ends before the structure it declares.
    Truncated,
    /// The trailing CRC does not match the content (flipped bits).
    ChecksumMismatch {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the content.
        computed: u32,
    },
    /// Structurally inconsistent content (implausible dimensions, trailing
    /// garbage, inconsistent row pointers …).
    Malformed(&'static str),
    /// The record exists but holds a different kind than the caller asked
    /// for (e.g. `get_csr` on a spilled dense block).
    WrongKind {
        /// Kind tag found in the frame.
        found: u8,
        /// Kind tag the caller expected.
        expected: u8,
    },
    /// No record was ever stored under the requested key.
    UnknownKey(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "spill i/o error: {e}"),
            StoreError::BadMagic(m) => write!(f, "not a dgnn spill frame (magic {m:?})"),
            StoreError::UnsupportedVersion { found } => write!(
                f,
                "spill format revision {found} is newer than supported {FORMAT_VERSION}"
            ),
            StoreError::Truncated => write!(f, "spill file is truncated"),
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "spill checksum mismatch (stored {stored:#010x}, computed {computed:#010x})"
            ),
            StoreError::Malformed(what) => write!(f, "malformed spill record: {what}"),
            StoreError::WrongKind { found, expected } => {
                write!(f, "spill record kind {found} where {expected} was expected")
            }
            StoreError::UnknownKey(key) => write!(f, "no spill record under key {key:?}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

fn header(kind: u8, payload_hint: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + payload_hint);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind);
    out
}

fn seal(mut frame: Vec<u8>) -> Vec<u8> {
    let crc = crc32(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

fn push_f32s(out: &mut Vec<u8>, values: &[f32]) {
    for &v in values {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Encodes a CSR matrix as a sealed spill frame. The payload layout is
/// owned by [`dgnn_graph::snapshot_io`]; this crate only frames it.
pub fn encode_csr(m: &Csr) -> Vec<u8> {
    let mut out = header(KIND_CSR, snapshot_io::csr_payload_bytes(m));
    snapshot_io::encode_csr_payload(m, &mut out);
    seal(out)
}

/// Encodes a dense matrix as a sealed spill frame.
pub fn encode_dense(m: &Dense) -> Vec<u8> {
    let mut out = header(KIND_DENSE, 16 + m.len() * 4);
    out.extend_from_slice(&(m.rows() as u64).to_le_bytes());
    out.extend_from_slice(&(m.cols() as u64).to_le_bytes());
    push_f32s(&mut out, m.data());
    seal(out)
}

/// Encodes a composite record — caller-defined meta words plus a dense
/// matrix sequence — as a sealed spill frame.
pub fn encode_record<'a>(meta: &[u32], mats: impl IntoIterator<Item = &'a Dense>) -> Vec<u8> {
    let mats: Vec<&Dense> = mats.into_iter().collect();
    let data: usize = mats.iter().map(|m| 16 + m.len() * 4).sum();
    let mut out = header(KIND_RECORD, 8 + meta.len() * 4 + data);
    out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
    for &w in meta {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&(mats.len() as u32).to_le_bytes());
    for m in mats {
        out.extend_from_slice(&(m.rows() as u64).to_le_bytes());
        out.extend_from_slice(&(m.cols() as u64).to_le_bytes());
        push_f32s(&mut out, m.data());
    }
    seal(out)
}

/// A decoded spill record.
#[derive(Clone, Debug)]
pub enum Record {
    /// A CSR sparse matrix (a spilled snapshot Laplacian).
    Csr(Csr),
    /// A dense matrix (a spilled feature or pre-aggregation block).
    Dense(Dense),
    /// A composite record: meta words plus dense matrices (a spilled
    /// engine carry).
    Record {
        /// Caller-defined structure words.
        meta: Vec<u32>,
        /// The record's matrices, in encoding order.
        mats: Vec<Dense>,
    },
}

impl Record {
    /// The frame kind tag this record decodes from.
    pub fn kind(&self) -> u8 {
        match self {
            Record::Csr(_) => KIND_CSR,
            Record::Dense(_) => KIND_DENSE,
            Record::Record { .. } => KIND_RECORD,
        }
    }
}

/// Bounds-checked little-endian reader over frame bytes; every overrun
/// maps to [`StoreError::Truncated`]. The trailing 4 CRC bytes are not
/// readable content.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn slice(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self.pos.checked_add(n).ok_or(StoreError::Truncated)?;
        if end.checked_add(4).is_none_or(|e| e > self.bytes.len()) {
            return Err(StoreError::Truncated);
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn take<const N: usize>(&mut self) -> Result<[u8; N], StoreError> {
        Ok(self.slice(N)?.try_into().unwrap())
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }

    fn dim(&mut self) -> Result<usize, StoreError> {
        let v = self.u64()?;
        if v > MAX_DIM {
            return Err(StoreError::Malformed("dimension implausible"));
        }
        Ok(v as usize)
    }

    /// Reads `n` f32 bit patterns into an arena-drawn buffer.
    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, StoreError> {
        let raw = self.slice(n.checked_mul(4).ok_or(StoreError::Truncated)?)?;
        let mut out = workspace::take_scratch(n);
        for (dst, src) in out.iter_mut().zip(raw.chunks_exact(4)) {
            *dst = f32::from_bits(u32::from_le_bytes(src.try_into().unwrap()));
        }
        Ok(out)
    }

    fn dense(&mut self) -> Result<Dense, StoreError> {
        let rows = self.dim()?;
        let cols = self.dim()?;
        let len = rows
            .checked_mul(cols)
            .ok_or(StoreError::Malformed("dense shape overflows"))?;
        Ok(Dense::from_vec(rows, cols, self.f32s(len)?))
    }
}

/// Validates the frame envelope (magic, version, CRC, no trailing bytes)
/// and returns `(kind, payload cursor)`.
fn open_frame(bytes: &[u8]) -> Result<(u8, Cursor<'_>), StoreError> {
    let mut r = Cursor { bytes, pos: 0 };
    let magic = r.take::<4>()?;
    if magic != MAGIC {
        return Err(StoreError::BadMagic(magic));
    }
    let version = r.u32()?;
    if version > FORMAT_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let kind = r.u8()?;
    Ok((kind, r))
}

/// Structure parsed in full — now reject trailing garbage and any flipped
/// bit. Checking the CRC last keeps truncation and corruption
/// distinguishable, exactly as in the `dgnn-serve` checkpoint decoder.
fn finish_frame(r: &Cursor<'_>) -> Result<(), StoreError> {
    let bytes = r.bytes;
    if r.pos != bytes.len() - 4 {
        return Err(StoreError::Malformed("trailing bytes after payload"));
    }
    let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
    let computed = crc32(&bytes[..bytes.len() - 4]);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    Ok(())
}

/// Decodes any sealed spill frame.
pub fn decode(bytes: &[u8]) -> Result<Record, StoreError> {
    let (kind, mut r) = open_frame(bytes)?;
    let record = match kind {
        KIND_CSR => {
            // The payload codec is dgnn-graph's; hand it the frame minus
            // the CRC trailer so its truncation checks line up with ours.
            // (open_frame guarantees bytes.len() >= r.pos + 4.)
            let content = &bytes[..bytes.len() - 4];
            let mut pos = r.pos;
            let m = snapshot_io::decode_csr_payload(content, &mut pos).map_err(|e| match e {
                CodecError::Truncated => StoreError::Truncated,
                CodecError::Malformed(what) => StoreError::Malformed(what),
            })?;
            r.pos = pos;
            Record::Csr(m)
        }
        KIND_DENSE => Record::Dense(r.dense()?),
        KIND_RECORD => {
            let n_meta = r.u32()?;
            if n_meta > MAX_RECORD_ITEMS {
                return Err(StoreError::Malformed("meta count implausible"));
            }
            let mut meta = Vec::with_capacity(n_meta as usize);
            for _ in 0..n_meta {
                meta.push(r.u32()?);
            }
            let n_mats = r.u32()?;
            if n_mats > MAX_RECORD_ITEMS {
                return Err(StoreError::Malformed("matrix count implausible"));
            }
            let mut mats = Vec::with_capacity(n_mats as usize);
            for _ in 0..n_mats {
                mats.push(r.dense()?);
            }
            Record::Record { meta, mats }
        }
        _ => return Err(StoreError::Malformed("unknown record kind")),
    };
    finish_frame(&r)?;
    Ok(record)
}

/// Hands a decoded record's backing buffers to the workspace arena (a
/// no-op without an engaged workspace). Used on memory-tier eviction so
/// the next decode draws recycled buffers instead of allocating.
pub fn recycle_record(record: Record) {
    match record {
        Record::Csr(m) => {
            let (_, _, indptr, indices, values) = m.into_parts();
            workspace::recycle_usize(indptr);
            workspace::recycle_u32(indices);
            workspace::recycle_buffer(values);
        }
        Record::Dense(m) => workspace::recycle(m),
        Record::Record { mats, .. } => mats.into_iter().for_each(workspace::recycle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_csr() -> Csr {
        Csr::from_coo(
            4,
            5,
            &[
                (0, 1, 1.5),
                (0, 4, -0.25),
                (2, 0, f32::MIN_POSITIVE),
                (3, 3, 3e7),
            ],
        )
    }

    #[test]
    fn csr_roundtrips_every_bit() {
        let m = sample_csr();
        let back = match decode(&encode_csr(&m)).unwrap() {
            Record::Csr(m) => m,
            other => panic!("wrong kind {:?}", other.kind()),
        };
        assert_eq!(back, m);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(back.values()), bits(m.values()));
    }

    #[test]
    fn dense_roundtrips_every_bit() {
        let m = Dense::from_vec(2, 3, vec![1.0, -0.0, f32::NAN, 1e-40, 3e7, -2.5]);
        let back = match decode(&encode_dense(&m)).unwrap() {
            Record::Dense(m) => m,
            other => panic!("wrong kind {:?}", other.kind()),
        };
        assert_eq!(back.shape(), m.shape());
        let bits = |d: &Dense| d.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&back), bits(&m));
    }

    #[test]
    fn record_roundtrips_meta_and_matrices() {
        let mats = [Dense::from_vec(1, 2, vec![7.0, 8.0]), Dense::zeros(0, 3)];
        let frame = encode_record(&[2, 0, 9], mats.iter());
        match decode(&frame).unwrap() {
            Record::Record { meta, mats: back } => {
                assert_eq!(meta, vec![2, 0, 9]);
                assert_eq!(back.len(), 2);
                assert_eq!(back[0].data(), &[7.0, 8.0]);
                assert_eq!(back[1].shape(), (0, 3));
            }
            other => panic!("wrong kind {:?}", other.kind()),
        }
    }

    #[test]
    fn truncation_at_every_length_is_typed() {
        let bytes = encode_csr(&sample_csr());
        for len in 0..bytes.len() - 1 {
            match decode(&bytes[..len]) {
                Err(StoreError::Truncated) => {}
                other => panic!("prefix of {len} bytes: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn flipped_bit_is_a_checksum_mismatch() {
        let mut bytes = encode_dense(&Dense::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let idx = bytes.len() - 10; // inside the f32 payload
        bytes[idx] ^= 0x20;
        assert!(matches!(
            decode(&bytes),
            Err(StoreError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_and_future_version_are_typed() {
        let mut bytes = encode_dense(&Dense::zeros(1, 1));
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes), Err(StoreError::BadMagic(_))));

        let mut bytes = encode_dense(&Dense::zeros(1, 1));
        bytes[4..8].copy_from_slice(&9u32.to_le_bytes());
        // Reseal so only the version is wrong.
        let end = bytes.len() - 4;
        let crc = crc32(&bytes[..end]).to_le_bytes();
        bytes[end..].copy_from_slice(&crc);
        assert!(matches!(
            decode(&bytes),
            Err(StoreError::UnsupportedVersion { found: 9 })
        ));
    }

    #[test]
    fn empty_matrices_roundtrip() {
        let m = Csr::empty(3, 3);
        assert!(matches!(decode(&encode_csr(&m)), Ok(Record::Csr(back)) if back == m));
        let d = Dense::zeros(0, 0);
        assert!(matches!(decode(&encode_dense(&d)), Ok(Record::Dense(b)) if b.is_empty()));
        assert!(matches!(
            decode(&encode_record(&[], [])),
            Ok(Record::Record { meta, mats }) if meta.is_empty() && mats.is_empty()
        ));
    }
}
