//! The tiered store: a budget-bounded in-memory tier over framed spill
//! files, with background prefetch.
//!
//! Every `put_*` is write-through: the record is sealed into a spill file
//! immediately, then *admitted* into the memory tier if it fits the byte
//! budget (records larger than the whole budget are never admitted).
//! Admission evicts least-recently-used residents until
//! [`MemoryTracker::would_fit`] accepts the newcomer — the store reuses
//! `dgnn-sim`'s capacity accounting rather than duplicating the
//! arithmetic. A `get_*` that finds the record resident is a memory hit;
//! anything else faults the file tier (a *miss*, counted in
//! [`StoreStats::miss_bytes`] for the engine's transfer accounting).
//!
//! Resident records are handed out as shared `Rc`s: while a Laplacian
//! stays resident, every block re-entry sees the *same* [`Csr`] value, so
//! its lazily-built transpose cache amortizes exactly as in the
//! all-in-memory path.
//!
//! # Prefetch
//!
//! [`TieredStore::prefetch`] hands keys to a background thread that reads
//! the raw frame bytes ahead of time; the decode (which draws its buffers
//! from the calling thread's workspace arena) still happens on the
//! consumer thread at `get_*` time. A prefetched read counts as a miss —
//! the bytes did move from the file tier — but not as a *demand* miss,
//! because the consumer never blocked on the disk. The execution engine
//! walks the §3.1 snapshot schedule one block ahead, so steady-state
//! block reads find their bytes already staged.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use dgnn_sim::memory::MemoryTracker;
use dgnn_telemetry::metrics::Counter;
use dgnn_telemetry::trace;
use dgnn_tensor::{Csr, Dense};

use crate::frame::{self, Record, StoreError, KIND_CSR, KIND_DENSE, KIND_RECORD};

/// Environment variable bounding the memory tier, in bytes. An explicit
/// [`StoreConfig::budget`] wins; absent both, the tier is unbounded.
pub const ENV_STORE_BUDGET: &str = "DGNN_STORE_BUDGET";

/// Configuration of a [`TieredStore`].
#[derive(Clone, Debug, Default)]
pub struct StoreConfig {
    /// Memory-tier budget in bytes. `None` defers to `DGNN_STORE_BUDGET`,
    /// then to unbounded.
    pub budget: Option<u64>,
    /// Spill directory. `None` creates (and on drop removes) a fresh
    /// process-unique directory under the system temp dir.
    pub dir: Option<PathBuf>,
    /// Disable the background prefetch thread (demand reads only).
    pub no_prefetch: bool,
}

impl StoreConfig {
    /// A config with an explicit byte budget.
    pub fn with_budget(budget: u64) -> Self {
        Self {
            budget: Some(budget),
            ..Self::default()
        }
    }

    fn resolved_budget(&self) -> u64 {
        self.budget.unwrap_or_else(|| {
            std::env::var(ENV_STORE_BUDGET)
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(u64::MAX)
        })
    }
}

/// Counters describing how a [`TieredStore`] behaved.
#[derive(Clone, Copy, Debug, Default)]
pub struct StoreStats {
    /// Records currently resident in the memory tier.
    pub resident: usize,
    /// Bytes currently resident in the memory tier.
    pub resident_bytes: u64,
    /// High-water mark of resident bytes.
    pub peak_resident_bytes: u64,
    /// Total bytes sealed into spill files.
    pub spilled_bytes: u64,
    /// `get_*` calls answered from the memory tier.
    pub mem_hits: u64,
    /// `get_*` calls that blocked on a file-tier read.
    pub demand_misses: u64,
    /// `get_*` calls answered from bytes the prefetcher had staged.
    pub prefetch_hits: u64,
    /// Bytes faulted from the file tier (demand + prefetched), the
    /// engine's tier-miss transfer accounting.
    pub miss_bytes: u64,
    /// Residents evicted to make room for newcomers.
    pub evictions: u64,
    /// Microseconds consumers spent blocked on file-tier reads (demand
    /// faults plus waiting out in-flight prefetches). Advances only
    /// while `DGNN_TRACE` tracing is on; 0 otherwise.
    pub wait_us: u64,
}

/// Process-global counter handles mirroring the hit/miss/eviction side of
/// [`StoreStats`], so live store behaviour is scrapeable from
/// [`dgnn_telemetry::metrics::global`] alongside server metrics. The
/// handles are resolved once per store; bumping one is a relaxed atomic
/// add.
struct TierMetrics {
    mem_hits: Counter,
    demand_misses: Counter,
    prefetch_hits: Counter,
    miss_bytes: Counter,
    evictions: Counter,
    spilled_bytes: Counter,
}

impl TierMetrics {
    fn from_global() -> Self {
        let reg = dgnn_telemetry::metrics::global();
        Self {
            mem_hits: reg.counter("store_mem_hits_total"),
            demand_misses: reg.counter("store_demand_misses_total"),
            prefetch_hits: reg.counter("store_prefetch_hits_total"),
            miss_bytes: reg.counter("store_miss_bytes_total"),
            evictions: reg.counter("store_evictions_total"),
            spilled_bytes: reg.counter("store_spilled_bytes_total"),
        }
    }
}

/// A composite record's payload: meta words plus matrices.
pub type RecordPayload = (Vec<u32>, Vec<Dense>);

/// A resident (or just-fetched) record behind shared pointers.
#[derive(Clone)]
enum Cached {
    Csr(Rc<Csr>),
    Dense(Rc<Dense>),
    Record(Rc<RecordPayload>),
}

impl Cached {
    fn kind(&self) -> u8 {
        match self {
            Cached::Csr(_) => KIND_CSR,
            Cached::Dense(_) => KIND_DENSE,
            Cached::Record(_) => KIND_RECORD,
        }
    }

    fn from_record(record: Record) -> Self {
        match record {
            Record::Csr(m) => Cached::Csr(Rc::new(m)),
            Record::Dense(m) => Cached::Dense(Rc::new(m)),
            Record::Record { meta, mats } => Cached::Record(Rc::new((meta, mats))),
        }
    }

    /// Hands the buffers to the workspace arena when this was the last
    /// reference, so the next decode allocates nothing. The per-kind
    /// buffer rules live in [`frame::recycle_record`], the one place that
    /// knows a record's buffer structure.
    fn recycle(self) {
        match self {
            Cached::Csr(rc) => {
                if let Ok(m) = Rc::try_unwrap(rc) {
                    frame::recycle_record(Record::Csr(m));
                }
            }
            Cached::Dense(rc) => {
                if let Ok(m) = Rc::try_unwrap(rc) {
                    frame::recycle_record(Record::Dense(m));
                }
            }
            Cached::Record(rc) => {
                if let Ok((meta, mats)) = Rc::try_unwrap(rc) {
                    frame::recycle_record(Record::Record { meta, mats });
                }
            }
        }
    }
}

/// One resident record plus its LRU bookkeeping.
struct Resident {
    cached: Cached,
    bytes: u64,
    tick: u64,
}

/// One read's worth of staged bytes (or the error the read produced).
type ReadResult = std::io::Result<Vec<u8>>;

/// The background reader: receives `(key, generation, path)` requests,
/// sends back `(key, generation, read result)`. Only raw bytes cross the
/// channel — decoding stays on the consumer thread so buffers come from
/// its arena. Each request carries a generation number so that bytes
/// staged before a key was rewritten or removed can never satisfy a
/// later fetch: [`Prefetcher::invalidate`] drops the pending entry, and
/// results whose generation no longer matches are discarded.
struct Prefetcher {
    tx: Option<Sender<(String, u64, PathBuf)>>,
    rx: Receiver<(String, u64, ReadResult)>,
    handle: Option<JoinHandle<()>>,
    /// Keys requested and not yet consumed, by request generation
    /// (`None` bytes = still in flight).
    pending: HashMap<String, (u64, Option<ReadResult>)>,
    next_gen: u64,
}

impl Prefetcher {
    fn spawn() -> Self {
        let (req_tx, req_rx) = channel::<(String, u64, PathBuf)>();
        let (res_tx, res_rx) = channel();
        let handle = std::thread::Builder::new()
            .name("dgnn-store-prefetch".into())
            .spawn(move || {
                while let Ok((key, gen, path)) = req_rx.recv() {
                    let bytes = std::fs::read(&path);
                    if res_tx.send((key, gen, bytes)).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn prefetch thread");
        Self {
            tx: Some(req_tx),
            rx: res_rx,
            handle: Some(handle),
            pending: HashMap::new(),
            next_gen: 0,
        }
    }

    fn request(&mut self, key: &str, path: PathBuf) {
        if self.pending.contains_key(key) {
            return; // already staged or in flight
        }
        let gen = self.next_gen;
        self.next_gen += 1;
        self.pending.insert(key.to_string(), (gen, None));
        let tx = self.tx.as_ref().expect("prefetcher live");
        let _ = tx.send((key.to_string(), gen, path));
    }

    /// Forgets anything requested or staged for `key`: the spill file is
    /// being rewritten or removed, so those bytes must never be served.
    fn invalidate(&mut self, key: &str) {
        self.pending.remove(key);
    }

    fn accept(&mut self, key: String, gen: u64, bytes: ReadResult) {
        if let Some((want, slot)) = self.pending.get_mut(&key) {
            if *want == gen {
                *slot = Some(bytes);
            }
        }
        // Mismatched generation: the request was invalidated; drop it.
    }

    /// Drains completed reads into the staged map.
    fn drain(&mut self) {
        while let Ok((key, gen, bytes)) = self.rx.try_recv() {
            self.accept(key, gen, bytes);
        }
    }

    /// Takes staged bytes for `key`, blocking on the reader if the request
    /// is still in flight. `None` when the key was never requested.
    fn take(&mut self, key: &str) -> Option<ReadResult> {
        self.drain();
        let want = match self.pending.get(key) {
            None => return None,
            Some((_, Some(_))) => return self.pending.remove(key).map(|(_, b)| b.unwrap()),
            Some((gen, None)) => *gen,
        };
        // In flight: block until the reader delivers it (still cheaper
        // than issuing a second read of the same file). A matching
        // response is guaranteed: the request with this generation was
        // sent and the reader answers every request in order.
        while let Ok((done, gen, bytes)) = self.rx.recv() {
            if done == key && gen == want {
                self.pending.remove(key);
                return Some(bytes);
            }
            self.accept(done, gen, bytes);
        }
        self.pending.remove(key);
        None
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        self.tx.take(); // closes the request channel; the thread exits
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The tiered snapshot/activation store. See the module docs for the
/// write-through / admission / prefetch semantics.
///
/// The store is single-consumer (the training thread); only the raw file
/// reads run on the background prefetch thread.
pub struct TieredStore {
    dir: PathBuf,
    owns_dir: bool,
    tracker: MemoryTracker,
    resident: HashMap<String, Resident>,
    lru_tick: u64,
    stats: StoreStats,
    metrics: TierMetrics,
    prefetcher: Option<Prefetcher>,
}

impl TieredStore {
    /// Opens a store under `cfg`, creating the spill directory.
    pub fn open(cfg: &StoreConfig) -> Result<Self, StoreError> {
        let (dir, owns_dir) = match &cfg.dir {
            Some(d) => (d.clone(), false),
            None => {
                let d = std::env::temp_dir().join(format!(
                    "dgnn-store-{}-{}",
                    std::process::id(),
                    DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
                ));
                (d, true)
            }
        };
        std::fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            owns_dir,
            tracker: MemoryTracker::new(cfg.resolved_budget()),
            resident: HashMap::new(),
            lru_tick: 0,
            stats: StoreStats::default(),
            metrics: TierMetrics::from_global(),
            prefetcher: (!cfg.no_prefetch).then(Prefetcher::spawn),
        })
    }

    /// The memory-tier budget in bytes.
    pub fn budget(&self) -> u64 {
        self.tracker.capacity()
    }

    /// The spill directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// A snapshot of the store's counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            resident: self.resident.len(),
            resident_bytes: self.tracker.in_use(),
            peak_resident_bytes: self.tracker.peak(),
            ..self.stats
        }
    }

    /// Whether `key` is resident in the memory tier right now.
    pub fn is_resident(&self, key: &str) -> bool {
        self.resident.contains_key(key)
    }

    fn path_of(&self, key: &str) -> PathBuf {
        assert!(
            !key.is_empty()
                && key
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.'),
            "store keys must be filesystem-safe ([A-Za-z0-9_.-]), got {key:?}"
        );
        self.dir.join(format!("{key}.dgns"))
    }

    /// Seals `frame` to the file tier under `key`; when `resident` is
    /// given, admits it into the memory tier if the budget allows.
    fn put_frame(
        &mut self,
        key: &str,
        frame: Vec<u8>,
        resident: Option<Cached>,
    ) -> Result<(), StoreError> {
        let path = self.path_of(key);
        let bytes = frame.len() as u64;
        // The file is changing: anything the reader staged (or is still
        // reading) for this key describes the old content.
        if let Some(pf) = self.prefetcher.as_mut() {
            pf.invalidate(key);
        }
        std::fs::write(path, &frame)?;
        self.stats.spilled_bytes += bytes;
        self.metrics.spilled_bytes.add(bytes);
        // Replacing an existing resident: release its accounting first.
        self.evict_key(key);
        if let Some(cached) = resident {
            self.admit(key, cached, bytes);
        }
        Ok(())
    }

    /// Whether a frame of `bytes` could ever be admitted: a record larger
    /// than the entire budget is file-tier only, so callers skip building
    /// its resident copy in the first place.
    fn could_ever_admit(&self, bytes: u64) -> bool {
        bytes <= self.tracker.capacity()
    }

    /// Admission: evict LRU residents until the newcomer fits, then
    /// insert — unless it can never fit, in which case it stays file-only.
    fn admit(&mut self, key: &str, cached: Cached, bytes: u64) {
        while !self.tracker.would_fit(bytes) {
            if !self.evict_lru() {
                return; // larger than the whole budget: file-tier only
            }
        }
        self.tracker
            .alloc(bytes)
            .expect("would_fit admission probe must match alloc");
        self.lru_tick += 1;
        self.resident.insert(
            key.to_string(),
            Resident {
                cached,
                bytes,
                tick: self.lru_tick,
            },
        );
    }

    /// Evicts the least-recently-used resident; returns false when the
    /// tier is already empty.
    fn evict_lru(&mut self) -> bool {
        let Some(key) = self
            .resident
            .iter()
            .min_by_key(|(_, r)| r.tick)
            .map(|(k, _)| k.clone())
        else {
            return false;
        };
        self.evict_key(&key);
        self.stats.evictions += 1;
        self.metrics.evictions.inc();
        true
    }

    fn evict_key(&mut self, key: &str) {
        if let Some(r) = self.resident.remove(key) {
            self.tracker.free(r.bytes);
            r.cached.recycle();
        }
    }

    /// Stores a CSR matrix (a snapshot Laplacian) under `key`.
    pub fn put_csr(&mut self, key: &str, m: &Csr) -> Result<(), StoreError> {
        let frame = frame::encode_csr(m);
        let resident = self
            .could_ever_admit(frame.len() as u64)
            .then(|| Cached::Csr(Rc::new(m.clone())));
        self.put_frame(key, frame, resident)
    }

    /// Stores a dense matrix (a feature / pre-aggregation block) under
    /// `key`.
    pub fn put_dense(&mut self, key: &str, m: &Dense) -> Result<(), StoreError> {
        let frame = frame::encode_dense(m);
        let resident = self
            .could_ever_admit(frame.len() as u64)
            .then(|| Cached::Dense(Rc::new(m.clone())));
        self.put_frame(key, frame, resident)
    }

    /// Stores a composite record (meta words + dense matrices — the
    /// engine's carry encoding) under `key`, keeping it resident if the
    /// budget allows.
    pub fn put_record(
        &mut self,
        key: &str,
        meta: &[u32],
        mats: &[Dense],
    ) -> Result<(), StoreError> {
        let frame = frame::encode_record(meta, mats.iter());
        let resident = self
            .could_ever_admit(frame.len() as u64)
            .then(|| Cached::Record(Rc::new((meta.to_vec(), mats.to_vec()))));
        self.put_frame(key, frame, resident)
    }

    /// Stores a composite record the caller is handing off (an engine
    /// carry it will not reread until the backward pass). The frame always
    /// goes to the file tier; a resident copy is kept only when it fits
    /// the tier's *spare* capacity — a passing carry must never displace
    /// snapshot blocks, so unlike `put_*` this admission does not evict.
    pub fn spill_record<'a>(
        &mut self,
        key: &str,
        meta: &[u32],
        mats: impl IntoIterator<Item = &'a Dense>,
    ) -> Result<(), StoreError> {
        let mats: Vec<&Dense> = mats.into_iter().collect();
        let frame = frame::encode_record(meta, mats.iter().copied());
        let bytes = frame.len() as u64;
        if let Some(pf) = self.prefetcher.as_mut() {
            pf.invalidate(key);
        }
        self.evict_key(key);
        let resident = self.tracker.would_fit(bytes).then(|| {
            let owned: Vec<Dense> = mats.iter().map(|&m| m.clone()).collect();
            Cached::Record(Rc::new((meta.to_vec(), owned)))
        });
        let path = self.path_of(key);
        std::fs::write(path, &frame)?;
        self.stats.spilled_bytes += bytes;
        self.metrics.spilled_bytes.add(bytes);
        if let Some(cached) = resident {
            self.tracker
                .alloc(bytes)
                .expect("would_fit admission probe must match alloc");
            self.lru_tick += 1;
            self.resident.insert(
                key.to_string(),
                Resident {
                    cached,
                    bytes,
                    tick: self.lru_tick,
                },
            );
        }
        Ok(())
    }

    /// Fetches a composite record under `key` *by value* and drops the key
    /// from both tiers — the consume-once path for engine carries, which
    /// must not displace snapshot blocks from the memory tier on their way
    /// through. Prefetch-staged bytes are honored like in `get_record`.
    pub fn take_record(&mut self, key: &str) -> Result<RecordPayload, StoreError> {
        // A resident copy (from `put_record`/`spill_record`) satisfies the
        // take directly — by ownership transfer, not by copy: the map held
        // the only strong reference unless a `get_record` caller still has
        // one, in which case `try_unwrap` falls back to a clone.
        if matches!(
            self.resident.get(key),
            Some(Resident {
                cached: Cached::Record(_),
                ..
            })
        ) {
            let r = self.resident.remove(key).expect("checked above");
            self.tracker.free(r.bytes);
            self.stats.mem_hits += 1;
            self.metrics.mem_hits.inc();
            let Cached::Record(rc) = r.cached else {
                unreachable!()
            };
            let out = Rc::try_unwrap(rc).unwrap_or_else(|rc| (*rc).clone());
            self.remove(key)?;
            return Ok(out);
        }
        let timer = trace::Timer::start();
        let staged = self.prefetcher.as_mut().and_then(|pf| pf.take(key));
        let bytes = match staged {
            Some(Ok(bytes)) => {
                self.stats.prefetch_hits += 1;
                self.metrics.prefetch_hits.inc();
                self.stats.wait_us += timer.stop_us("prefetch_wait", "store");
                bytes
            }
            Some(Err(_)) | None => {
                let path = self.path_of(key);
                if !path.exists() {
                    return Err(StoreError::UnknownKey(key.to_string()));
                }
                self.stats.demand_misses += 1;
                self.metrics.demand_misses.inc();
                let fault = trace::Timer::start();
                let bytes = std::fs::read(path)?;
                self.stats.wait_us += fault.stop_us("store_fault", "store");
                bytes
            }
        };
        self.stats.miss_bytes += bytes.len() as u64;
        self.metrics.miss_bytes.add(bytes.len() as u64);
        let out = match frame::decode(&bytes)? {
            Record::Record { meta, mats } => (meta, mats),
            other => {
                return Err(StoreError::WrongKind {
                    found: other.kind(),
                    expected: KIND_RECORD,
                })
            }
        };
        self.remove(key)?;
        Ok(out)
    }

    /// Asks the background reader to stage the frame bytes of `keys`
    /// (skipping residents). No-op when prefetch is disabled.
    pub fn prefetch<'k>(&mut self, keys: impl IntoIterator<Item = &'k str>) {
        if self.prefetcher.is_none() {
            return;
        }
        // path_of validates every key like the other entry points do.
        let wanted: Vec<(String, PathBuf)> = keys
            .into_iter()
            .filter(|k| !self.resident.contains_key(*k))
            .map(|k| (k.to_string(), self.path_of(k)))
            .collect();
        let pf = self.prefetcher.as_mut().expect("checked above");
        pf.drain();
        for (key, path) in wanted {
            pf.request(&key, path);
        }
    }

    /// Fetches the record under `key`: memory tier, then staged prefetch
    /// bytes, then a demand read of the spill file.
    fn fetch(&mut self, key: &str) -> Result<Cached, StoreError> {
        if let Some(r) = self.resident.get_mut(key) {
            self.lru_tick += 1;
            r.tick = self.lru_tick;
            self.stats.mem_hits += 1;
            self.metrics.mem_hits.inc();
            return Ok(r.cached.clone());
        }
        let timer = trace::Timer::start();
        let staged = self.prefetcher.as_mut().and_then(|pf| pf.take(key));
        let bytes = match staged {
            Some(Ok(bytes)) => {
                self.stats.prefetch_hits += 1;
                self.metrics.prefetch_hits.inc();
                self.stats.wait_us += timer.stop_us("prefetch_wait", "store");
                bytes
            }
            // A failed prefetch read falls through to a demand read so a
            // transient error cannot poison the key.
            Some(Err(_)) | None => {
                let path = self.path_of(key);
                if !path.exists() {
                    return Err(StoreError::UnknownKey(key.to_string()));
                }
                self.stats.demand_misses += 1;
                self.metrics.demand_misses.inc();
                let fault = trace::Timer::start();
                let bytes = std::fs::read(path)?;
                self.stats.wait_us += fault.stop_us("store_fault", "store");
                bytes
            }
        };
        self.stats.miss_bytes += bytes.len() as u64;
        self.metrics.miss_bytes.add(bytes.len() as u64);
        let cached = Cached::from_record(frame::decode(&bytes)?);
        self.admit(key, cached.clone(), bytes.len() as u64);
        Ok(cached)
    }

    /// Fetches a CSR record under `key`. While the record stays resident,
    /// repeated gets return the same shared matrix.
    pub fn get_csr(&mut self, key: &str) -> Result<Rc<Csr>, StoreError> {
        match self.fetch(key)? {
            Cached::Csr(rc) => Ok(rc),
            other => Err(StoreError::WrongKind {
                found: other.kind(),
                expected: KIND_CSR,
            }),
        }
    }

    /// Fetches a dense record under `key`.
    pub fn get_dense(&mut self, key: &str) -> Result<Rc<Dense>, StoreError> {
        match self.fetch(key)? {
            Cached::Dense(rc) => Ok(rc),
            other => Err(StoreError::WrongKind {
                found: other.kind(),
                expected: KIND_DENSE,
            }),
        }
    }

    /// Fetches a composite record under `key`.
    pub fn get_record(&mut self, key: &str) -> Result<Rc<RecordPayload>, StoreError> {
        match self.fetch(key)? {
            Cached::Record(rc) => Ok(rc),
            other => Err(StoreError::WrongKind {
                found: other.kind(),
                expected: KIND_RECORD,
            }),
        }
    }

    /// Drops a key from both tiers (backward consumed a carry; its spill
    /// file will never be read again).
    pub fn remove(&mut self, key: &str) -> Result<(), StoreError> {
        if let Some(pf) = self.prefetcher.as_mut() {
            pf.invalidate(key);
        }
        self.evict_key(key);
        let path = self.path_of(key);
        if path.exists() {
            std::fs::remove_file(path)?;
        }
        Ok(())
    }
}

impl Drop for TieredStore {
    fn drop(&mut self) {
        // Stop the reader before deleting its files.
        self.prefetcher.take();
        if self.owns_dir {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csr(seed: u32) -> Csr {
        Csr::from_coo(
            8,
            8,
            &[(0, 1, seed as f32), (2, 3, 1.5), (5, 0, -2.0), (7, 7, 0.25)],
        )
    }

    fn open_mem(budget: u64) -> TieredStore {
        TieredStore::open(&StoreConfig::with_budget(budget)).unwrap()
    }

    #[test]
    fn roundtrip_and_hit_miss_accounting() {
        let mut s = open_mem(1 << 20);
        let m = csr(3);
        s.put_csr("lap3", &m).unwrap();
        // Resident from the write-through put: a memory hit.
        let got = s.get_csr("lap3").unwrap();
        assert_eq!(*got, m);
        let st = s.stats();
        assert_eq!(st.mem_hits, 1);
        assert_eq!(st.demand_misses, 0);
        assert!(st.spilled_bytes > 0);

        // Same key, same shared matrix while resident.
        let again = s.get_csr("lap3").unwrap();
        assert!(Rc::ptr_eq(&got, &again));
    }

    #[test]
    fn zero_budget_spills_everything_and_rereads_faithfully() {
        let mut s = open_mem(0);
        for i in 0..4 {
            s.put_csr(&format!("lap{i}"), &csr(i)).unwrap();
            assert!(
                !s.is_resident(&format!("lap{i}")),
                "budget 0 admits nothing"
            );
        }
        for i in 0..4 {
            let got = s.get_csr(&format!("lap{i}")).unwrap();
            assert_eq!(*got, csr(i));
        }
        let st = s.stats();
        assert_eq!(st.resident_bytes, 0);
        assert_eq!(st.demand_misses, 4);
        assert!(st.miss_bytes > 0);
    }

    #[test]
    fn huge_budget_never_faults() {
        let mut s = open_mem(u64::MAX);
        for i in 0..4 {
            s.put_dense(&format!("f{i}"), &Dense::full(16, 16, i as f32))
                .unwrap();
        }
        for i in 0..4 {
            let got = s.get_dense(&format!("f{i}")).unwrap();
            assert_eq!(got.get(0, 0), i as f32);
        }
        let st = s.stats();
        assert_eq!(st.demand_misses, 0);
        assert_eq!(st.miss_bytes, 0);
        assert_eq!(st.evictions, 0);
        assert_eq!(st.resident, 4);
    }

    #[test]
    fn lru_eviction_respects_budget_and_recency() {
        let d = Dense::full(32, 32, 1.0); // ~4 KiB payload
        let frame_bytes = frame::encode_dense(&d).len() as u64;
        let mut s = open_mem(frame_bytes * 2); // room for two residents
        s.put_dense("a", &d).unwrap();
        s.put_dense("b", &d).unwrap();
        // Touch `a` so `b` becomes the LRU victim.
        s.get_dense("a").unwrap();
        s.put_dense("c", &d).unwrap();
        assert!(s.is_resident("a"));
        assert!(!s.is_resident("b"), "LRU resident must be evicted");
        assert!(s.is_resident("c"));
        let st = s.stats();
        assert_eq!(st.evictions, 1);
        assert!(st.resident_bytes <= s.budget());
        // The evicted record still reads back from the file tier.
        assert_eq!(*s.get_dense("b").unwrap(), d);
    }

    #[test]
    fn corrupt_spill_file_surfaces_typed_error() {
        let mut s = open_mem(0); // nothing resident: gets hit the file
        s.put_dense("x", &Dense::full(4, 4, 2.0)).unwrap();
        let path = s.dir().join("x.dgns");

        // Flip a payload bit on disk.
        let mut bytes = std::fs::read(&path).unwrap();
        let idx = bytes.len() - 10;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            s.get_dense("x"),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        // Truncate it.
        let good = {
            bytes[idx] ^= 0x40;
            bytes
        };
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(s.get_dense("x"), Err(StoreError::Truncated)));

        // Restore: reads recover.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(*s.get_dense("x").unwrap(), Dense::full(4, 4, 2.0));
    }

    #[test]
    fn unknown_key_and_wrong_kind_are_typed() {
        let mut s = open_mem(1 << 20);
        assert!(matches!(
            s.get_csr("nope"),
            Err(StoreError::UnknownKey(k)) if k == "nope"
        ));
        s.put_dense("d", &Dense::zeros(2, 2)).unwrap();
        assert!(matches!(
            s.get_csr("d"),
            Err(StoreError::WrongKind {
                found: KIND_DENSE,
                expected: KIND_CSR
            })
        ));
    }

    #[test]
    fn prefetch_stages_bytes_without_demand_miss() {
        let mut s = open_mem(0); // force every get to the file tier
        for i in 0..3 {
            s.put_csr(&format!("lap{i}"), &csr(i)).unwrap();
        }
        s.prefetch(["lap0", "lap1", "lap2"]);
        for i in 0..3 {
            let got = s.get_csr(&format!("lap{i}")).unwrap();
            assert_eq!(*got, csr(i));
        }
        let st = s.stats();
        assert_eq!(st.prefetch_hits + st.demand_misses, 3);
        assert_eq!(
            st.prefetch_hits, 3,
            "take() blocks on in-flight reads, so all three must be prefetch hits"
        );
    }

    #[test]
    fn spill_record_roundtrips_and_admits_only_spare_capacity() {
        // With spare capacity the handed-off record stays resident …
        let mut s = open_mem(1 << 20);
        let mats = vec![Dense::full(3, 3, 9.0)];
        s.spill_record("carry0", &[1, 2], &mats).unwrap();
        assert!(s.is_resident("carry0"));
        let (meta, back) = s.take_record("carry0").unwrap();
        assert_eq!(meta, vec![1, 2]);
        assert_eq!(back[0], Dense::full(3, 3, 9.0));
        // … and take_record consumed it from both tiers.
        assert!(!s.is_resident("carry0"));
        assert!(matches!(
            s.take_record("carry0"),
            Err(StoreError::UnknownKey(_))
        ));

        // Without spare capacity nothing is evicted to make room: the
        // record goes file-only and reads back as a miss.
        let mut s = open_mem(0);
        s.spill_record("carry1", &[7], &mats).unwrap();
        assert!(!s.is_resident("carry1"));
        let (meta, back) = s.take_record("carry1").unwrap();
        assert_eq!(meta, vec![7]);
        assert_eq!(back[0], Dense::full(3, 3, 9.0));
        assert!(s.stats().miss_bytes > 0);
    }

    #[test]
    fn record_larger_than_budget_stays_file_only() {
        let d = Dense::full(64, 64, 1.0);
        let frame_bytes = frame::encode_dense(&d).len() as u64;
        let mut s = open_mem(frame_bytes / 2);
        s.put_dense("big", &d).unwrap();
        assert!(!s.is_resident("big"));
        // Reading it back works but never admits it.
        assert_eq!(*s.get_dense("big").unwrap(), d);
        assert!(!s.is_resident("big"));
        assert_eq!(s.stats().resident_bytes, 0);
    }

    #[test]
    fn rewriting_a_key_invalidates_staged_prefetch_bytes() {
        // Budget 0: nothing resident, every get goes through the reader.
        let mut s = open_mem(0);
        s.put_dense("k", &Dense::full(8, 8, 1.0)).unwrap();
        // Stage the old bytes (take() will block until they arrive, so
        // no sleep is needed to make the race deterministic).
        s.prefetch(["k"]);
        // Rewrite the key: the staged bytes now describe stale content.
        s.put_dense("k", &Dense::full(8, 8, 2.0)).unwrap();
        let got = s.get_dense("k").unwrap();
        assert_eq!(
            got.get(0, 0),
            2.0,
            "a get after a rewrite must never see pre-rewrite bytes"
        );
        // Same for removal: staged bytes must not resurrect the key.
        s.prefetch(["k"]);
        s.remove("k").unwrap();
        assert!(matches!(s.get_dense("k"), Err(StoreError::UnknownKey(_))));
    }

    #[test]
    fn put_get_record_roundtrips_resident_and_file_tier() {
        let meta = vec![3u32, 1, 4];
        let mats = vec![Dense::full(2, 2, 5.0), Dense::zeros(1, 3)];
        // Resident path.
        let mut s = open_mem(1 << 20);
        s.put_record("r", &meta, &mats).unwrap();
        assert!(s.is_resident("r"));
        let rc = s.get_record("r").unwrap();
        assert_eq!(rc.0, meta);
        assert_eq!(rc.1, mats);
        // File-tier path (budget 0 admits nothing).
        let mut s = open_mem(0);
        s.put_record("r", &meta, &mats).unwrap();
        assert!(!s.is_resident("r"));
        let rc = s.get_record("r").unwrap();
        assert_eq!(rc.0, meta);
        assert_eq!(rc.1, mats);
    }

    #[test]
    fn zero_budget_put_skips_the_resident_copy() {
        // At budget 0 the resident clone can never be admitted; the put
        // path must not build it at all (measurable as: nothing resident,
        // and no eviction churn from doomed admissions).
        let mut s = open_mem(0);
        for i in 0..8 {
            s.put_csr(&format!("lap{i}"), &csr(i)).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.resident, 0);
        assert_eq!(st.evictions, 0);
    }

    #[test]
    fn env_budget_is_honored_when_config_is_silent() {
        // Serialise env mutation: this test owns the variable name.
        std::env::set_var(ENV_STORE_BUDGET, "0");
        let mut s = TieredStore::open(&StoreConfig::default()).unwrap();
        std::env::remove_var(ENV_STORE_BUDGET);
        assert_eq!(s.budget(), 0);
        s.put_dense("y", &Dense::zeros(2, 2)).unwrap();
        assert!(!s.is_resident("y"));
    }
}
