//! Histogram/quantile math edge cases: empty, single sample, boundary
//! values, overflow saturation, and order-independent merge.

use dgnn_telemetry::metrics::Histogram;

#[test]
fn empty_histogram_reports_zero() {
    let h = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
    assert_eq!(h.count(), 0);
    assert_eq!(h.sum(), 0.0);
    assert_eq!(h.p50(), 0.0);
    assert_eq!(h.p99(), 0.0);
    assert_eq!(h.p999(), 0.0);
}

#[test]
fn single_sample_pins_every_quantile_to_its_bucket() {
    let h = Histogram::with_bounds(&[1.0, 10.0, 100.0]);
    h.observe(42.0);
    assert_eq!(h.count(), 1);
    assert_eq!(h.sum(), 42.0);
    assert_eq!(h.bucket_counts(), vec![0, 0, 1, 0]);
    // With one sample every quantile lands in the (10, 100] bucket; linear
    // interpolation with frac = 1/1 puts the estimate at the upper bound.
    for q in [0.01, 0.5, 0.99, 0.999] {
        let v = h.quantile(q);
        assert!((10.0..=100.0).contains(&v), "q={q} gave {v}");
        assert_eq!(v, 100.0);
    }
}

#[test]
fn boundary_values_land_in_the_le_bucket() {
    let h = Histogram::with_bounds(&[1.0, 2.0, 5.0]);
    // Prometheus `le` semantics: a value exactly equal to a bound counts
    // in that bound's bucket, not the next one.
    h.observe(1.0);
    h.observe(2.0);
    h.observe(5.0);
    assert_eq!(h.bucket_counts(), vec![1, 1, 1, 0]);
    // Just above a bound spills into the next bucket.
    h.observe(2.0000001);
    assert_eq!(h.bucket_counts(), vec![1, 1, 2, 0]);
    // Negative observations clamp to zero and land in the first bucket.
    h.observe(-3.0);
    assert_eq!(h.bucket_counts(), vec![2, 1, 2, 0]);
    assert_eq!(h.sum(), 1.0 + 2.0 + 5.0 + 2.0);
}

#[test]
fn overflow_saturates_and_quantiles_clamp_to_last_finite_bound() {
    let h = Histogram::with_bounds(&[1.0, 10.0]);
    for _ in 0..5 {
        h.observe(1e12);
    }
    h.observe(f64::INFINITY);
    assert_eq!(h.bucket_counts(), vec![0, 0, 6]);
    assert_eq!(h.count(), 6);
    // All mass in the overflow bucket: the histogram cannot resolve past
    // its last finite bound, so quantiles clamp there instead of lying.
    assert_eq!(h.p50(), 10.0);
    assert_eq!(h.p999(), 10.0);
}

#[test]
fn non_finite_observations_clamp_sum_and_count_overflow() {
    let h = Histogram::with_bounds(&[1.0, 10.0]);
    h.observe(f64::NAN);
    h.observe(f64::INFINITY);
    // Both count into the overflow bucket, but each contributes only the
    // last finite bound to the sum — not f64::MAX.
    assert_eq!(h.bucket_counts(), vec![0, 0, 2]);
    assert_eq!(h.count(), 2);
    assert_eq!(h.sum(), 20.0);
    // A second NaN must not wrap the fixed-point accumulator: the sum
    // stays exact and monotone.
    h.observe(f64::NAN);
    assert_eq!(h.sum(), 30.0);
    // -Inf clamps to zero like any negative observation.
    h.observe(f64::NEG_INFINITY);
    h.observe(-7.5);
    assert_eq!(h.bucket_counts(), vec![2, 0, 3]);
    assert_eq!(h.sum(), 30.0);
    assert_eq!(h.count(), 5);
    // Quantiles stay clamped to the last finite bound.
    assert_eq!(h.p999(), 10.0);
}

#[test]
fn merge_is_order_independent() {
    let bounds = [1.0, 5.0, 25.0, 125.0];
    let samples: [&[f64]; 3] = [
        &[0.5, 3.0, 600.0],
        &[4.9, 5.0, 5.1, 24.0],
        &[100.0, 0.1, 0.2, 0.3, 77.0],
    ];
    let shard = |idx: usize| {
        let h = Histogram::with_bounds(&bounds);
        for &v in samples[idx] {
            h.observe(v);
        }
        h
    };
    // Merge the three per-thread shards in two different orders.
    let fwd = Histogram::with_bounds(&bounds);
    for i in [0, 1, 2] {
        fwd.merge(&shard(i));
    }
    let rev = Histogram::with_bounds(&bounds);
    for i in [2, 1, 0] {
        rev.merge(&shard(i));
    }
    assert_eq!(fwd.bucket_counts(), rev.bucket_counts());
    assert_eq!(fwd.count(), rev.count());
    // Fixed-point sums are exactly equal, not approximately.
    assert_eq!(fwd.sum().to_bits(), rev.sum().to_bits());
    for q in [0.5, 0.9, 0.99, 0.999] {
        assert_eq!(fwd.quantile(q).to_bits(), rev.quantile(q).to_bits());
    }
}

#[test]
fn merged_shards_match_a_single_histogram_fed_everything() {
    let bounds = [2.0, 8.0, 32.0];
    let a = Histogram::with_bounds(&bounds);
    let b = Histogram::with_bounds(&bounds);
    let all = Histogram::with_bounds(&bounds);
    for (i, &v) in [1.0, 3.0, 9.0, 40.0, 7.5, 2.0].iter().enumerate() {
        if i % 2 == 0 { &a } else { &b }.observe(v);
        all.observe(v);
    }
    let merged = Histogram::with_bounds(&bounds);
    merged.merge(&a);
    merged.merge(&b);
    assert_eq!(merged.bucket_counts(), all.bucket_counts());
    assert_eq!(merged.sum().to_bits(), all.sum().to_bits());
    assert_eq!(merged.count(), all.count());
}
