//! Counters, gauges, and fixed-bucket histograms with Prometheus-style
//! text exposition.
//!
//! All instruments are cheap handles (`Arc` over atomics) cloned out of a
//! [`Registry`]; recording is lock-free. Histograms use fixed bucket
//! bounds chosen at creation, store their running sum in fixed-point
//! milli-units, and saturate into a `+Inf` overflow bucket — so merging
//! per-thread shards is exact and order-independent, and quantiles are
//! reproducible across runs regardless of observation order.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Monotone counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Creates a free-standing counter (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge holding an `f64`.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Creates a free-standing gauge (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Default latency bucket bounds in microseconds: roughly log-spaced from
/// 1 µs to 60 s, sized for both kernel-level and request-level latencies.
pub const LATENCY_BOUNDS_US: [f64; 22] = [
    1.0,
    2.0,
    5.0,
    10.0,
    20.0,
    50.0,
    100.0,
    200.0,
    500.0,
    1_000.0,
    2_000.0,
    5_000.0,
    10_000.0,
    20_000.0,
    50_000.0,
    100_000.0,
    200_000.0,
    500_000.0,
    1_000_000.0,
    5_000_000.0,
    20_000_000.0,
    60_000_000.0,
];

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<f64>,
    /// One slot per finite bound plus the trailing `+Inf` overflow bucket.
    buckets: Vec<AtomicU64>,
    /// Running sum in fixed-point milli-units, so concurrent merges are
    /// exact and order-independent (no float accumulation order effects).
    sum_milli: AtomicU64,
    count: AtomicU64,
}

/// Fixed-bucket histogram with quantile readout.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Creates a histogram over the given strictly-increasing finite
    /// bucket upper bounds (an `+Inf` overflow bucket is always appended).
    pub fn with_bounds(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets,
            sum_milli: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }))
    }

    /// Creates a histogram with the default [`LATENCY_BOUNDS_US`].
    pub fn latency_us() -> Self {
        Self::with_bounds(&LATENCY_BOUNDS_US)
    }

    /// Records one observation. Values above the last finite bound
    /// saturate into the overflow bucket; negative values (including
    /// `-Inf`) clamp to zero. `NaN` and `+Inf` count into the overflow
    /// bucket, but their contribution to the running sum is clamped to
    /// the last finite bound — the histogram cannot resolve beyond it,
    /// and one poisoned probe must not make [`Histogram::sum`] garbage
    /// (mapping non-finite observations to `f64::MAX` used to add
    /// ~1.8e19 milli-units per observation, wrapping the fixed-point
    /// accumulator on the second one).
    pub fn observe(&self, v: f64) {
        let last = *self.0.bounds.last().expect("bounds non-empty");
        let (idx, sum_v) = if v.is_finite() {
            let v = v.max(0.0);
            (self.0.bounds.partition_point(|b| v > *b), v)
        } else if v == f64::NEG_INFINITY {
            (0, 0.0)
        } else {
            (self.0.bounds.len(), last)
        };
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let milli = (sum_v * 1_000.0).round().min(u64::MAX as f64) as u64;
        self.0.sum_milli.fetch_add(milli, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations (from the fixed-point accumulator).
    pub fn sum(&self) -> f64 {
        self.0.sum_milli.load(Ordering::Relaxed) as f64 / 1_000.0
    }

    /// Per-bucket counts, overflow bucket last. Mainly for tests and
    /// exposition.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// The finite bucket upper bounds this histogram was created with.
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Quantile estimate by linear interpolation inside the target
    /// bucket. Returns 0 for an empty histogram; observations in the
    /// overflow bucket report the largest finite bound (the histogram
    /// cannot resolve beyond it).
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, bucket) in self.0.buckets.iter().enumerate() {
            let here = bucket.load(Ordering::Relaxed);
            cum += here;
            if cum >= target {
                if i == self.0.bounds.len() {
                    return *self.0.bounds.last().expect("bounds non-empty");
                }
                let lower = if i == 0 { 0.0 } else { self.0.bounds[i - 1] };
                let upper = self.0.bounds[i];
                let before = cum - here;
                let frac = (target - before) as f64 / here as f64;
                return lower + (upper - lower) * frac;
            }
        }
        *self.0.bounds.last().expect("bounds non-empty")
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 99th percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// 99.9th percentile estimate.
    pub fn p999(&self) -> f64 {
        self.quantile(0.999)
    }

    /// Folds another histogram (same bounds) into this one. Because the
    /// sum is fixed-point and buckets are integer counts, any merge order
    /// over a set of shards yields identical state.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(
            self.0.bounds, other.0.bounds,
            "can only merge histograms with identical bounds"
        );
        for (dst, src) in self.0.buckets.iter().zip(other.0.buckets.iter()) {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.0
            .count
            .fetch_add(other.0.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.0
            .sum_milli
            .fetch_add(other.0.sum_milli.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A named family of instruments with Prometheus-style text exposition.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

fn check_name(name: &str) {
    let mut chars = name.chars();
    let head_ok = chars
        .next()
        .map(|c| c.is_ascii_alphabetic() || c == '_')
        .unwrap_or(false);
    assert!(
        head_ok && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
        "invalid metric name {name:?}: use [a-zA-Z_][a-zA-Z0-9_]*"
    );
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Gets or creates the counter `name`. Panics if `name` is already
    /// registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        check_name(name);
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered as a non-counter"),
        }
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        check_name(name);
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered as a non-gauge"),
        }
    }

    /// Gets or creates the histogram `name` with [`LATENCY_BOUNDS_US`].
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &LATENCY_BOUNDS_US)
    }

    /// Gets or creates the histogram `name` with explicit bounds.
    pub fn histogram_with(&self, name: &str, bounds: &[f64]) -> Histogram {
        check_name(name);
        let mut map = self.inner.lock().expect("metrics registry poisoned");
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::with_bounds(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered as a non-histogram"),
        }
    }

    /// Renders every registered metric in Prometheus text format.
    /// Histograms additionally emit `{quantile=...}` sample lines for
    /// p50/p99/p999 so the percentiles are scrapeable without PromQL.
    pub fn expose(&self) -> String {
        fn fmt_f64(v: f64) -> String {
            if v == v.trunc() && v.abs() < 1e15 {
                format!("{v:.0}")
            } else {
                format!("{v}")
            }
        }
        let map = self.inner.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        for (name, metric) in map.iter() {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "# TYPE {name} gauge\n{name} {}\n",
                        fmt_f64(g.get())
                    ));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let counts = h.bucket_counts();
                    let mut cum = 0u64;
                    for (bound, count) in h.bounds().iter().zip(counts.iter()) {
                        cum += count;
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cum}\n",
                            fmt_f64(*bound)
                        ));
                    }
                    cum += counts.last().copied().unwrap_or(0);
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {cum}\n"));
                    out.push_str(&format!("{name}_sum {}\n", fmt_f64(h.sum())));
                    out.push_str(&format!("{name}_count {}\n", h.count()));
                    for (q, v) in [(0.5, h.p50()), (0.99, h.p99()), (0.999, h.p999())] {
                        out.push_str(&format!("{name}{{quantile=\"{q}\"}} {}\n", fmt_f64(v)));
                    }
                }
            }
        }
        out
    }
}

/// The process-wide registry, used by subsystems without a natural owner
/// (the store tier); servers hold their own [`Registry`] instances.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_roundtrip() {
        let reg = Registry::new();
        let c = reg.counter("hits_total");
        c.inc();
        c.add(4);
        assert_eq!(reg.counter("hits_total").get(), 5);
        let g = reg.gauge("version");
        g.set(7.0);
        assert_eq!(reg.gauge("version").get(), 7.0);
        let text = reg.expose();
        assert!(text.contains("# TYPE hits_total counter\nhits_total 5\n"));
        assert!(text.contains("# TYPE version gauge\nversion 7\n"));
    }

    #[test]
    fn exposition_has_quantile_lines() {
        let reg = Registry::new();
        let h = reg.histogram("lat_us");
        for v in [10.0, 20.0, 40.0, 80.0, 5_000.0] {
            h.observe(v);
        }
        let text = reg.expose();
        assert!(text.contains("lat_us_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("lat_us_count 5"));
        assert!(text.contains("lat_us{quantile=\"0.5\"}"));
        assert!(text.contains("lat_us{quantile=\"0.99\"}"));
        assert!(text.contains("lat_us{quantile=\"0.999\"}"));
    }

    #[test]
    #[should_panic(expected = "non-counter")]
    fn kind_clash_panics() {
        let reg = Registry::new();
        reg.gauge("x");
        reg.counter("x");
    }
}
