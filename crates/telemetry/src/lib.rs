//! Observability substrate for the dgnn workspace: phase-level span
//! tracing and a metrics registry, with zero external dependencies.
//!
//! Two halves, deliberately decoupled:
//!
//! - [`trace`] — a span/event recorder gated on the `DGNN_TRACE`
//!   environment switch. When tracing is off (the default) every probe
//!   collapses to a single relaxed atomic load; when on, spans land in
//!   per-thread ring buffers and export as Chrome trace-event JSON that
//!   Perfetto or `chrome://tracing` can open directly. Instrumentation
//!   never touches the numeric path, so traced and untraced runs are
//!   bit-identical (pinned by `tests/telemetry_equivalence.rs`).
//! - [`metrics`] — counters, gauges, and fixed-bucket latency histograms
//!   (p50/p99/p999 readout) grouped in [`metrics::Registry`] instances
//!   with Prometheus-style text exposition. Histograms store their sum in
//!   fixed-point so merging per-thread shards is order-independent.
//!
//! [`jsonlint`] is a minimal JSON validity checker used by the bench
//! harness and CI smoke to prove exported traces parse without pulling in
//! a JSON dependency.
//!
//! See `docs/OBSERVABILITY.md` for the span taxonomy and capture how-to.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod jsonlint;
pub mod metrics;
pub mod trace;
