//! Span/event recorder with Chrome trace-event export.
//!
//! Design constraints, in priority order:
//!
//! 1. **Never perturb results.** Probes only read the clock and append to
//!    a buffer; they cannot touch tensor data, thread scheduling decisions,
//!    or RNG state. The equivalence test pins this: a traced run is
//!    bit-identical to an untraced one.
//! 2. **Near-zero cost when off.** [`enabled`] is one relaxed atomic load;
//!    a disabled [`span`] constructs a dead guard and records nothing. The
//!    train-engine bench asserts the per-probe cost stays in the tens of
//!    nanoseconds.
//! 3. **Lock-free-enough when on.** Each thread appends to its own ring
//!    buffer behind a `Mutex` that only that thread and the exporter ever
//!    touch, so recording never contends with other recording threads.
//!
//! Timestamps are nanoseconds from a process-wide monotonic epoch
//! (first use of the tracer); export converts to the microseconds the
//! Chrome trace-event format expects. `pid` carries the simulated rank
//! (set per thread via [`set_rank`]) so a distributed epoch renders as
//! one lane group per rank in Perfetto.

use std::cell::{Cell, OnceCell};
use std::sync::atomic::{AtomicU32, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Environment variable that switches tracing on (`1`/`on`/`true`) or
/// off (unset, empty, `0`, `off`, `false`).
pub const ENV_TRACE: &str = "DGNN_TRACE";

/// Per-thread ring capacity; the oldest events are overwritten once a
/// thread records more than this without an export.
pub const RING_CAPACITY: usize = 1 << 16;

const STATE_UNINIT: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNINIT);

/// Whether tracing is currently on. First call reads [`ENV_TRACE`]; after
/// that it is a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_from_env(),
    }
}

#[cold]
fn init_from_env() -> bool {
    let on = std::env::var(ENV_TRACE)
        .map(|v| {
            let v = v.trim();
            !(v.is_empty()
                || v == "0"
                || v.eq_ignore_ascii_case("off")
                || v.eq_ignore_ascii_case("false"))
        })
        .unwrap_or(false);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Overrides the environment switch for the rest of the process (used by
/// tests and the bench harness to trace without re-exec'ing).
pub fn set_enabled(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the tracer's process-wide monotonic epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// One completed span, as stored in the ring and handed to the exporter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Span name (`forward`, `comm`, `store_fault`, ...).
    pub name: &'static str,
    /// Span category — groups names in trace viewers.
    pub cat: &'static str,
    /// Simulated rank (exported as `pid`); 0 outside `run_ranks`.
    pub rank: u32,
    /// Recording thread id (exported as `tid`), unique per OS thread.
    pub tid: u32,
    /// Start, nanoseconds since the tracer epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

#[derive(Default)]
struct Ring {
    events: Vec<Event>,
    head: usize,
    dropped: u64,
}

impl Ring {
    fn push(&mut self, ev: Event) {
        if self.events.len() < RING_CAPACITY {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }

    fn drain(&mut self) -> Vec<Event> {
        let mut out = self.events.split_off(self.head);
        out.append(&mut self.events);
        self.head = 0;
        self.dropped = 0;
        out
    }
}

static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static LOCAL_RING: OnceCell<Arc<Mutex<Ring>>> = const { OnceCell::new() };
    static LOCAL_TID: Cell<u32> = const { Cell::new(0) };
    static LOCAL_RANK: Cell<u32> = const { Cell::new(0) };
}

fn tid() -> u32 {
    LOCAL_TID.with(|t| {
        if t.get() == 0 {
            t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// Tags the current thread with a simulated rank; spans it records carry
/// the rank as the trace `pid` so each rank gets its own Perfetto lane
/// group. `dgnn_sim::run_ranks` calls this on every rank thread.
pub fn set_rank(rank: u32) {
    LOCAL_RANK.with(|r| r.set(rank));
}

/// The rank tag of the current thread (0 unless [`set_rank`] was called).
pub fn current_rank() -> u32 {
    LOCAL_RANK.with(|r| r.get())
}

fn record(ev: Event) {
    LOCAL_RING.with(|cell| {
        let ring = cell.get_or_init(|| {
            let ring = Arc::new(Mutex::new(Ring::default()));
            RINGS
                .lock()
                .expect("trace ring registry poisoned")
                .push(Arc::clone(&ring));
            ring
        });
        ring.lock().expect("trace ring poisoned").push(ev);
    });
}

/// RAII span guard: records a completed event when dropped (or when
/// [`Span::finish_us`] is called). Dead weight when tracing is off.
pub struct Span {
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    armed: bool,
}

impl Span {
    /// Ends the span, records it, and returns its duration in
    /// microseconds (0 when tracing is off).
    pub fn finish_us(mut self) -> u64 {
        self.close() / 1_000
    }

    fn close(&mut self) -> u64 {
        if !self.armed {
            return 0;
        }
        self.armed = false;
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        record(Event {
            name: self.name,
            cat: self.cat,
            rank: current_rank(),
            tid: tid(),
            ts_ns: self.start_ns,
            dur_ns,
        });
        dur_ns
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.close();
    }
}

/// Opens a span in the default `span` category.
#[inline]
pub fn span(name: &'static str) -> Span {
    span_cat(name, "span")
}

/// Opens a span with an explicit category.
#[inline]
pub fn span_cat(name: &'static str, cat: &'static str) -> Span {
    if enabled() {
        Span {
            name,
            cat,
            start_ns: now_ns(),
            armed: true,
        }
    } else {
        Span {
            name,
            cat,
            start_ns: 0,
            armed: false,
        }
    }
}

/// A deferred-name timer for call sites that decide the span name after
/// the timed section (e.g. a store fetch that turns out to be a prefetch
/// hit vs a demand fault). Not recording it (just dropping) is free.
pub struct Timer {
    start_ns: Option<u64>,
}

impl Timer {
    /// Starts the timer (a no-op shell when tracing is off).
    #[inline]
    pub fn start() -> Self {
        Self {
            start_ns: enabled().then(now_ns),
        }
    }

    /// Stops the timer, records a span, and returns the elapsed
    /// nanoseconds (0 when tracing is off).
    pub fn stop_ns(self, name: &'static str, cat: &'static str) -> u64 {
        let Some(start_ns) = self.start_ns else {
            return 0;
        };
        let dur_ns = now_ns().saturating_sub(start_ns);
        record(Event {
            name,
            cat,
            rank: current_rank(),
            tid: tid(),
            ts_ns: start_ns,
            dur_ns,
        });
        dur_ns
    }

    /// Stops the timer, records a span, and returns microseconds.
    pub fn stop_us(self, name: &'static str, cat: &'static str) -> u64 {
        self.stop_ns(name, cat) / 1_000
    }
}

/// Drains every thread's ring into one list sorted by start time.
/// Events recorded after this call accumulate for the next drain.
pub fn take_events() -> Vec<Event> {
    let rings = RINGS.lock().expect("trace ring registry poisoned");
    let mut out = Vec::new();
    for ring in rings.iter() {
        out.append(&mut ring.lock().expect("trace ring poisoned").drain());
    }
    out.sort_by_key(|e| (e.ts_ns, e.rank, e.tid));
    out
}

/// Discards all buffered events.
pub fn clear() {
    let _ = take_events();
}

/// Total events overwritten by ring wrap-around since the last drain.
pub fn dropped_events() -> u64 {
    let rings = RINGS.lock().expect("trace ring registry poisoned");
    rings
        .iter()
        .map(|r| r.lock().expect("trace ring poisoned").dropped)
        .sum()
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Renders events as a Chrome trace-event JSON array (complete `"X"`
/// events, timestamps in microseconds). Load the output in Perfetto or
/// `chrome://tracing`; `pid` is the simulated rank, `tid` the thread.
pub fn export_chrome(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 16);
    out.push_str("[\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str("  {\"name\":\"");
        escape_into(&mut out, e.name);
        out.push_str("\",\"cat\":\"");
        escape_into(&mut out, e.cat);
        out.push_str("\",\"ph\":\"X\",\"pid\":");
        out.push_str(&e.rank.to_string());
        out.push_str(",\"tid\":");
        out.push_str(&e.tid.to_string());
        out.push_str(",\"ts\":");
        out.push_str(&format!("{:.3}", e.ts_ns as f64 / 1_000.0));
        out.push_str(",\"dur\":");
        out.push_str(&format!("{:.3}", e.dur_ns as f64 / 1_000.0));
        out.push('}');
        if i + 1 != events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_record_nothing() {
        set_enabled(false);
        clear();
        let s = span("dead");
        assert_eq!(s.finish_us(), 0);
        let t = Timer::start();
        assert_eq!(t.stop_ns("dead", "test"), 0);
        assert!(take_events().iter().all(|e| e.name != "dead"));
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let mut ring = Ring::default();
        for i in 0..(RING_CAPACITY as u64 + 5) {
            ring.push(Event {
                name: "x",
                cat: "t",
                rank: 0,
                tid: 1,
                ts_ns: i,
                dur_ns: 0,
            });
        }
        assert_eq!(ring.dropped, 5);
        let drained = ring.drain();
        assert_eq!(drained.len(), RING_CAPACITY);
        // Oldest surviving event is #5; order is preserved across the wrap.
        assert_eq!(drained[0].ts_ns, 5);
        assert_eq!(drained.last().unwrap().ts_ns, RING_CAPACITY as u64 + 4);
    }

    #[test]
    fn export_escapes_and_parses() {
        let events = [Event {
            name: "a\"b",
            cat: "c\\d",
            rank: 1,
            tid: 2,
            ts_ns: 1_500,
            dur_ns: 2_000,
        }];
        let json = export_chrome(&events);
        crate::jsonlint::validate(&json).expect("exported trace must be valid JSON");
        assert!(json.contains("\"ts\":1.500"));
        assert!(json.contains("\"dur\":2.000"));
        assert!(json.contains("\"pid\":1"));
    }
}
