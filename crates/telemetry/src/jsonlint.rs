//! Minimal JSON validity checker (RFC 8259 grammar, no value
//! materialization). Lets the bench harness and CI smoke prove that
//! exported traces and reports parse, without a JSON dependency.

/// Validates that `s` is one complete JSON document. Returns the byte
/// offset and a short description on the first error.
pub fn validate(s: &str) -> Result<(), String> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(())
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at byte {}", self.i)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.b[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.i += 1;
                        }
                        Some(b'u') => {
                            self.i += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.i += 1,
                                    _ => return Err(self.err("bad \\u escape")),
                                }
                            }
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => self.i += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(c) if c.is_ascii_digit() => {
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.i += 1;
                }
            }
            _ => return Err(self.err("expected digit")),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected fraction digit"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            if !matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Err(self.err("expected exponent digit"));
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "-12.5e-3",
            "\"a\\nb\\u00e9\"",
            "[]",
            "{}",
            "[1, 2, {\"k\": [false, null]}]",
            "{\"a\": {\"b\": \"c\"}, \"d\": 0.5}",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "[1,]",
            "{\"a\":}",
            "{'a': 1}",
            "01",
            "1.",
            "\"unterminated",
            "[1] trailing",
            "{\"a\" 1}",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} wrongly accepted");
        }
    }
}
