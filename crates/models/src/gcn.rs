//! The Graph Convolutional Network layer (paper Eq. 2) with the optional
//! skip concatenation of CD-GCN and support for externally supplied
//! (evolved) weights for EvolveGCN.

use std::rc::Rc;

use dgnn_autograd::{ParamId, ParamStore, Tape, Var};
use dgnn_tensor::init::glorot_uniform;
use dgnn_tensor::Csr;
use rand::Rng;

/// A GCN layer `Y = σ(Ã·X·W + b)`, optionally concatenating the aggregated
/// input (`Y = σ(Ã·X ∘ Ã·X·W)`, CD-GCN's skip connection).
#[derive(Clone, Debug)]
pub struct GcnLayer {
    /// Weight matrix id (`in_f x out_f`).
    pub w: ParamId,
    /// Bias id (`1 x out_f`).
    pub b: ParamId,
    in_f: usize,
    out_f: usize,
    skip_concat: bool,
}

/// Per-tape bound variables of a [`GcnLayer`].
#[derive(Clone, Copy, Debug)]
pub struct GcnVars {
    w: Var,
    b: Var,
}

impl GcnVars {
    /// The bound bias variable (EvolveGCN pairs it with evolved weights).
    pub fn bias(&self) -> Var {
        self.b
    }
}

impl GcnLayer {
    /// Registers a new layer's parameters. The bias starts at a small
    /// positive value: with the narrow hidden widths of the paper's setup
    /// (6), a zero-init ReLU layer can die outright on near-regular graphs
    /// whose degree features are close to row-constant.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_f: usize,
        out_f: usize,
        skip_concat: bool,
        rng: &mut impl Rng,
    ) -> Self {
        let w = store.add(format!("{name}.w"), glorot_uniform(in_f, out_f, rng));
        let b = store.add(format!("{name}.b"), dgnn_tensor::Dense::full(1, out_f, 0.1));
        Self {
            w,
            b,
            in_f,
            out_f,
            skip_concat,
        }
    }

    /// Input width.
    pub fn in_f(&self) -> usize {
        self.in_f
    }

    /// Whether the CD-GCN skip concatenation is active (exported so the
    /// inference engine can rebuild the exact forward from a checkpoint).
    pub fn skip_concat(&self) -> bool {
        self.skip_concat
    }

    /// Output width (`in_f + out_f` when the skip concat is active).
    pub fn output_width(&self) -> usize {
        if self.skip_concat {
            self.in_f + self.out_f
        } else {
            self.out_f
        }
    }

    /// Binds the layer's parameters onto a tape segment.
    pub fn bind(&self, tape: &mut Tape, store: &ParamStore) -> GcnVars {
        GcnVars {
            w: tape.param(store, self.w),
            b: tape.param(store, self.b),
        }
    }

    /// Forward for one snapshot with the bound weights.
    pub fn forward(&self, tape: &mut Tape, vars: GcnVars, a_hat: Rc<Csr>, x: Var) -> Var {
        self.forward_with_weight(tape, vars.w, Some(vars.b), a_hat, x)
    }

    /// Forward with an explicit weight variable (EvolveGCN's evolved `W_t`).
    pub fn forward_with_weight(
        &self,
        tape: &mut Tape,
        w: Var,
        b: Option<Var>,
        a_hat: Rc<Csr>,
        x: Var,
    ) -> Var {
        let agg = tape.spmm(a_hat, x);
        let lin = tape.matmul(agg, w);
        let pre = match b {
            Some(b) => tape.add_bias(lin, b),
            None => lin,
        };
        if self.skip_concat {
            let cat = tape.concat_cols(agg, pre);
            tape.relu(cat)
        } else {
            tape.relu(pre)
        }
    }

    /// Forward when the aggregation `Ã·X` has been pre-computed (paper
    /// §5.5's first-layer optimization): skips the SpMM.
    pub fn forward_preaggregated(&self, tape: &mut Tape, vars: GcnVars, agg: Var) -> Var {
        let lin = tape.matmul(agg, vars.w);
        let pre = tape.add_bias(lin, vars.b);
        if self.skip_concat {
            let cat = tape.concat_cols(agg, pre);
            tape.relu(cat)
        } else {
            tape.relu(pre)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_autograd::gradcheck::check_param_grads;
    use dgnn_tensor::{normalized_laplacian, Dense};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn laplacian() -> Rc<Csr> {
        Rc::new(normalized_laplacian(
            &Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
            true,
        ))
    }

    #[test]
    fn output_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let layer = GcnLayer::new(&mut store, "g", 3, 4, false, &mut rng);
        let mut tape = Tape::new();
        let vars = layer.bind(&mut tape, &store);
        let x = tape.constant(Dense::ones(5, 3));
        let y = layer.forward(&mut tape, vars, laplacian(), x);
        assert_eq!(tape.value(y).shape(), (5, 4));
    }

    #[test]
    fn skip_concat_widens_output() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let layer = GcnLayer::new(&mut store, "g", 3, 4, true, &mut rng);
        assert_eq!(layer.output_width(), 7);
        let mut tape = Tape::new();
        let vars = layer.bind(&mut tape, &store);
        let x = tape.constant(Dense::ones(5, 3));
        let y = layer.forward(&mut tape, vars, laplacian(), x);
        assert_eq!(tape.value(y).shape(), (5, 7));
    }

    #[test]
    fn gradients_check_out() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let layer = GcnLayer::new(&mut store, "g", 2, 3, true, &mut rng);
        let x_val = dgnn_tensor::init::glorot_uniform(5, 2, &mut rng);
        let a = laplacian();
        check_param_grads(
            &mut store,
            |tape, store| {
                let vars = layer.bind(tape, store);
                let x = tape.constant(x_val.clone());
                let y = layer.forward(tape, vars, Rc::clone(&a), x);
                let z = tape.tanh(y);
                tape.mean_all(z)
            },
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    fn preaggregated_matches_full_forward() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let layer = GcnLayer::new(&mut store, "g", 2, 3, false, &mut rng);
        let x_val = dgnn_tensor::init::glorot_uniform(5, 2, &mut rng);
        let a = laplacian();

        let mut t1 = Tape::new();
        let v1 = layer.bind(&mut t1, &store);
        let x1 = t1.constant(x_val.clone());
        let y1 = layer.forward(&mut t1, v1, Rc::clone(&a), x1);

        let mut t2 = Tape::new();
        let v2 = layer.bind(&mut t2, &store);
        let agg = t2.constant(a.spmm(&x_val));
        let y2 = layer.forward_preaggregated(&mut t2, v2, agg);

        assert!(t1.value(y1).approx_eq(t2.value(y2), 1e-6));
    }
}
