//! The unified two-layer dynamic-GNN model (paper §2.2) with tape-segment
//! execution, covering CD-GCN, EvolveGCN (EGCN-O) and TM-GCN.
//!
//! A [`Segment`] binds the model onto one autograd tape for a contiguous
//! run of timesteps — one checkpoint block (or a slice of one, on a rank of
//! the distributed trainer). Carried state enters as input leaves and
//! leaves as plain matrices; gradient checkpointing and the all-to-all
//! redistributions are orchestrated *around* segments by `dgnn-core`.

use std::collections::VecDeque;
use std::ops::Range;
use std::rc::Rc;

use dgnn_autograd::{ParamStore, Tape, Var};
use dgnn_tensor::{Csr, Dense};
use rand::Rng;

use crate::carry::{CarryGrads, CarryState, LayerCarry, LayerCarryGrad};
use crate::config::{ModelConfig, ModelKind};
use crate::gcn::{GcnLayer, GcnVars};
use crate::lstm::{LstmCell, LstmState, LstmVars};

/// A two-layer dynamic GNN of one of the three studied architectures.
pub struct Model {
    cfg: ModelConfig,
    gcn: Vec<GcnLayer>,
    /// CD-GCN's per-layer feature LSTM.
    feature_lstm: Vec<LstmCell>,
    /// EvolveGCN's per-layer weight LSTM.
    weight_lstm: Vec<LstmCell>,
}

impl Model {
    /// Builds the model, registering all parameters in `store`.
    pub fn new(cfg: ModelConfig, store: &mut ParamStore, rng: &mut impl Rng) -> Self {
        let layers = cfg.layers();
        let mut gcn = Vec::with_capacity(layers);
        let mut feature_lstm = Vec::new();
        let mut weight_lstm = Vec::new();
        for l in 0..layers {
            gcn.push(GcnLayer::new(
                store,
                &format!("gcn{l}"),
                cfg.gcn_in(l),
                cfg.hidden,
                cfg.kind == ModelKind::CdGcn,
                rng,
            ));
            match cfg.kind {
                ModelKind::CdGcn => feature_lstm.push(LstmCell::new(
                    store,
                    &format!("lstm{l}"),
                    cfg.gcn_out(l),
                    cfg.hidden,
                    rng,
                )),
                ModelKind::EvolveGcn => weight_lstm.push(LstmCell::new(
                    store,
                    &format!("wlstm{l}"),
                    cfg.hidden,
                    cfg.hidden,
                    rng,
                )),
                ModelKind::TmGcn => {}
            }
        }
        Self {
            cfg,
            gcn,
            feature_lstm,
            weight_lstm,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The architecture kind.
    pub fn kind(&self) -> ModelKind {
        self.cfg.kind
    }

    /// The per-layer GCN components, in layer order — the parameter-export
    /// hook the serving stack uses to lift trained spatial weights out of a
    /// live model.
    pub fn gcn_layers(&self) -> &[GcnLayer] {
        &self.gcn
    }

    /// Initial carry for a timeline starting at `t = 0`, for a vertex chunk
    /// of `chunk_rows` rows.
    pub fn initial_carry(&self, chunk_rows: usize) -> CarryState {
        let h = self.cfg.hidden;
        let layers = (0..self.cfg.layers())
            .map(|l| match self.cfg.kind {
                ModelKind::CdGcn => LayerCarry::Lstm {
                    h: Dense::zeros(chunk_rows, h),
                    c: Dense::zeros(chunk_rows, h),
                },
                ModelKind::TmGcn => LayerCarry::Window {
                    frames: VecDeque::new(),
                },
                ModelKind::EvolveGcn => LayerCarry::Egcn {
                    h: Dense::zeros(self.cfg.gcn_in(l), h),
                    c: Dense::zeros(self.cfg.gcn_in(l), h),
                },
            })
            .collect();
        CarryState { layers }
    }

    /// Binds the model onto a fresh tape segment for global timesteps
    /// `t_range`, with `carry` providing the state of timestep
    /// `t_range.start − 1`.
    pub fn bind_segment<'m>(
        &'m self,
        tape: &mut Tape,
        store: &ParamStore,
        t_range: Range<usize>,
        carry: &CarryState,
    ) -> Segment<'m> {
        assert_eq!(
            carry.layers.len(),
            self.cfg.layers(),
            "carry layer mismatch"
        );
        let gcn_vars: Vec<GcnVars> = self.gcn.iter().map(|g| g.bind(tape, store)).collect();
        let lstm_vars: Vec<Option<LstmVars>> = (0..self.cfg.layers())
            .map(|l| {
                if self.cfg.kind == ModelKind::CdGcn {
                    Some(self.feature_lstm[l].bind(tape, store))
                } else {
                    None
                }
            })
            .collect();

        let mut layer_states: Vec<SegmentLayerState> = Vec::with_capacity(self.cfg.layers());
        for (l, lc) in carry.layers.iter().enumerate() {
            let state = match (self.cfg.kind, lc) {
                (ModelKind::CdGcn, LayerCarry::Lstm { h, c }) => {
                    let h_in = tape.input(h.clone());
                    let c_in = tape.input(c.clone());
                    SegmentLayerState::Lstm {
                        in_h: h_in,
                        in_c: c_in,
                        cur: LstmState { h: h_in, c: c_in },
                    }
                }
                (ModelKind::TmGcn, LayerCarry::Window { frames }) => {
                    let vars: VecDeque<Var> =
                        frames.iter().map(|f| tape.input(f.clone())).collect();
                    SegmentLayerState::Window {
                        in_frames: vars.clone(),
                        cur: vars,
                    }
                }
                (ModelKind::EvolveGcn, LayerCarry::Egcn { h, c }) => {
                    // Evolve the weight chain for the whole range up front.
                    let wl = &self.weight_lstm[l];
                    let wl_vars = wl.bind(tape, store);
                    let mut weights: Vec<Var> = Vec::with_capacity(t_range.len());
                    let (mut state, in_h, in_c);
                    if t_range.start == 0 {
                        // W_0 is the GCN weight parameter itself; gradients
                        // reach it directly through this leaf.
                        let w0 = tape.param(store, self.gcn[l].w);
                        let c0 = tape.input(Dense::zeros(self.cfg.gcn_in(l), self.cfg.hidden));
                        state = LstmState { h: w0, c: c0 };
                        in_h = None;
                        in_c = Some(c0);
                        weights.push(state.h);
                        for _ in 1..t_range.len() {
                            state = wl.step(tape, wl_vars, state.h, state);
                            weights.push(state.h);
                        }
                    } else {
                        let h_in = tape.input(h.clone());
                        let c_in = tape.input(c.clone());
                        state = LstmState { h: h_in, c: c_in };
                        in_h = Some(h_in);
                        in_c = Some(c_in);
                        for _ in 0..t_range.len() {
                            state = wl.step(tape, wl_vars, state.h, state);
                            weights.push(state.h);
                        }
                    }
                    SegmentLayerState::Egcn {
                        in_h,
                        in_c,
                        weights,
                        end: state,
                    }
                }
                _ => panic!("carry kind does not match the model"),
            };
            layer_states.push(state);
        }

        Segment {
            model: self,
            t_range,
            gcn_vars,
            lstm_vars,
            layer_states,
        }
    }
}

/// Per-layer mutable state of a segment.
enum SegmentLayerState {
    Lstm {
        in_h: Var,
        in_c: Var,
        cur: LstmState,
    },
    Window {
        in_frames: VecDeque<Var>,
        cur: VecDeque<Var>,
    },
    Egcn {
        in_h: Option<Var>,
        in_c: Option<Var>,
        weights: Vec<Var>,
        end: LstmState,
    },
}

/// One model bound onto one tape for a run of timesteps.
pub struct Segment<'m> {
    model: &'m Model,
    t_range: Range<usize>,
    gcn_vars: Vec<GcnVars>,
    lstm_vars: Vec<Option<LstmVars>>,
    layer_states: Vec<SegmentLayerState>,
}

impl<'m> Segment<'m> {
    /// The global timestep range this segment covers.
    pub fn t_range(&self) -> Range<usize> {
        self.t_range.clone()
    }

    /// GCN forward for global timestep `t` at `layer`.
    pub fn spatial(&self, tape: &mut Tape, layer: usize, t: usize, a_hat: Rc<Csr>, x: Var) -> Var {
        assert!(self.t_range.contains(&t), "timestep outside segment");
        match self.model.cfg.kind {
            ModelKind::EvolveGcn => {
                let SegmentLayerState::Egcn { weights, .. } = &self.layer_states[layer] else {
                    unreachable!()
                };
                let w = weights[t - self.t_range.start];
                // The static bias does not evolve (only W does in EGCN-O).
                let b = self.gcn_vars[layer].bias();
                self.model.gcn[layer].forward_with_weight(tape, w, Some(b), a_hat, x)
            }
            _ => self.model.gcn[layer].forward(tape, self.gcn_vars[layer], a_hat, x),
        }
    }

    /// First-layer GCN forward from a pre-computed aggregation `Ã·X`
    /// (paper §5.5). Not available for EvolveGCN, whose first-layer weights
    /// differ per timestep but aggregation does not — the caller still
    /// benefits by skipping the SpMM, so EvolveGCN applies its per-timestep
    /// evolved weight to the shared aggregation here instead.
    pub fn spatial_preagg(&self, tape: &mut Tape, t: usize, agg: Var) -> Var {
        assert!(self.t_range.contains(&t), "timestep outside segment");
        match self.model.cfg.kind {
            ModelKind::EvolveGcn => {
                let SegmentLayerState::Egcn { weights, .. } = &self.layer_states[0] else {
                    unreachable!()
                };
                let w = weights[t - self.t_range.start];
                let lin = tape.matmul(agg, w);
                let b = self.gcn_vars[0].bias();
                let pre = tape.add_bias(lin, b);
                tape.relu(pre)
            }
            _ => self.model.gcn[0].forward_preaggregated(tape, self.gcn_vars[0], agg),
        }
    }

    /// Temporal forward over consecutive timesteps starting at
    /// `self.t_range.start + offset`; `inputs[i]` is the (chunk-local)
    /// feature matrix of step `offset + i`. Updates the internal carry.
    pub fn temporal(
        &mut self,
        tape: &mut Tape,
        layer: usize,
        offset: usize,
        inputs: &[Var],
    ) -> Vec<Var> {
        let kind = self.model.cfg.kind;
        match (kind, &mut self.layer_states[layer]) {
            (ModelKind::EvolveGcn, SegmentLayerState::Egcn { .. }) => inputs.to_vec(),
            (ModelKind::CdGcn, SegmentLayerState::Lstm { cur, .. }) => {
                let vars = self.lstm_vars[layer].expect("CD-GCN has LSTM vars");
                let cell = &self.model.feature_lstm[layer];
                let mut out = Vec::with_capacity(inputs.len());
                let mut state = *cur;
                for &x in inputs {
                    state = cell.step(tape, vars, x, state);
                    out.push(state.h);
                }
                *cur = state;
                out
            }
            (ModelKind::TmGcn, SegmentLayerState::Window { in_frames, cur }) => {
                let w = self.model.cfg.mprod_window;
                let t0 = self.t_range.start + offset;
                assert!(
                    offset == 0 || t0 >= self.t_range.start + (w - 1),
                    "offset runs must not reach back into the carry"
                );
                let mut out = Vec::with_capacity(inputs.len());
                for (i, &x) in inputs.iter().enumerate() {
                    let t = t0 + i;
                    let lo = t.saturating_sub(w - 1);
                    let band = t - lo + 1;
                    let coeff = 1.0 / band as f32;
                    let mut terms: Vec<(f32, Var)> = Vec::with_capacity(band);
                    for s in lo..=t {
                        let var = if s >= t0 {
                            inputs[s - t0]
                        } else {
                            // A carried frame. `in_frames` is the immutable
                            // bind-time window covering global steps
                            // [t0 - len, t0); the sliding `cur` deque must
                            // NOT be used here — it mutates as the run
                            // advances.
                            assert!(
                                s + in_frames.len() >= t0,
                                "M-product window reaches beyond the carry \
                                 (need step {s}, have {} carried frames)",
                                in_frames.len()
                            );
                            in_frames[s + in_frames.len() - t0]
                        };
                        terms.push((coeff, var));
                    }
                    out.push(tape.lin_comb(&terms));
                    // Slide the carried window.
                    cur.push_back(x);
                    while cur.len() > w.saturating_sub(1) {
                        cur.pop_front();
                    }
                }
                out
            }
            _ => unreachable!("layer state does not match the model"),
        }
    }

    /// Extracts the end-of-segment carry as plain matrices (the checkpoint
    /// data `π_b` stored during the forward pass).
    pub fn carry_out(&self, tape: &Tape) -> CarryState {
        let layers = self
            .layer_states
            .iter()
            .map(|s| match s {
                SegmentLayerState::Lstm { cur, .. } => LayerCarry::Lstm {
                    h: tape.value(cur.h).clone(),
                    c: tape.value(cur.c).clone(),
                },
                SegmentLayerState::Window { cur, .. } => LayerCarry::Window {
                    frames: cur.iter().map(|&v| tape.value(v).clone()).collect(),
                },
                SegmentLayerState::Egcn { end, .. } => LayerCarry::Egcn {
                    h: tape.value(end.h).clone(),
                    c: tape.value(end.c).clone(),
                },
            })
            .collect();
        CarryState { layers }
    }

    /// After `tape.backward`, the gradients that reached the carried-in
    /// state — to be seeded into the previous block's backward pass.
    pub fn carry_in_grads(&self, tape: &Tape) -> CarryGrads {
        let layers = self
            .layer_states
            .iter()
            .map(|s| match s {
                SegmentLayerState::Lstm { in_h, in_c, .. } => LayerCarryGrad {
                    dh: tape.grad(*in_h).cloned(),
                    dc: tape.grad(*in_c).cloned(),
                    dframes: Vec::new(),
                },
                SegmentLayerState::Window { in_frames, .. } => LayerCarryGrad {
                    dh: None,
                    dc: None,
                    dframes: in_frames.iter().map(|&v| tape.grad(v).cloned()).collect(),
                },
                SegmentLayerState::Egcn { in_h, in_c, .. } => LayerCarryGrad {
                    dh: in_h.and_then(|v| tape.grad(v).cloned()),
                    dc: in_c.and_then(|v| tape.grad(v).cloned()),
                    dframes: Vec::new(),
                },
            })
            .collect();
        CarryGrads { layers }
    }

    /// Row-local GCN forward for the vertex-partitioned and hybrid schemes:
    /// `a_local` holds this rank's rows of `Ã_t` (columns cover the stacked
    /// input `x_stacked`), producing this rank's rows of the layer output.
    pub fn spatial_rows(
        &self,
        tape: &mut Tape,
        layer: usize,
        t: usize,
        a_local: Rc<Csr>,
        x_stacked: Var,
    ) -> Var {
        assert!(self.t_range.contains(&t), "timestep outside segment");
        match self.model.cfg.kind {
            ModelKind::EvolveGcn => {
                let SegmentLayerState::Egcn { weights, .. } = &self.layer_states[layer] else {
                    unreachable!()
                };
                let w = weights[t - self.t_range.start];
                let b = self.gcn_vars[layer].bias();
                self.model.gcn[layer].forward_with_weight(tape, w, Some(b), a_local, x_stacked)
            }
            _ => self.model.gcn[layer].forward(tape, self.gcn_vars[layer], a_local, x_stacked),
        }
    }

    /// Backward seeds for one layer's carry (used by the staged backward of
    /// the distributed trainers, where each layer is swept separately).
    pub fn carry_out_seeds_layer(&self, grads: &CarryGrads, layer: usize) -> Vec<(Var, Dense)> {
        let mut seeds = Vec::new();
        self.push_layer_seeds(&mut seeds, layer, grads);
        seeds
    }

    fn push_layer_seeds(&self, seeds: &mut Vec<(Var, Dense)>, layer: usize, grads: &CarryGrads) {
        let s = &self.layer_states[layer];
        let g = &grads.layers[layer];
        match s {
            SegmentLayerState::Lstm { cur, .. } => {
                if let Some(dh) = &g.dh {
                    seeds.push((cur.h, dh.clone()));
                }
                if let Some(dc) = &g.dc {
                    seeds.push((cur.c, dc.clone()));
                }
            }
            SegmentLayerState::Window { cur, .. } => {
                for (i, dg) in g.dframes.iter().enumerate() {
                    if let Some(d) = dg {
                        let idx = cur.len() - g.dframes.len() + i;
                        seeds.push((cur[idx], d.clone()));
                    }
                }
            }
            SegmentLayerState::Egcn { end, .. } => {
                if let Some(dh) = &g.dh {
                    seeds.push((end.h, dh.clone()));
                }
                if let Some(dc) = &g.dc {
                    seeds.push((end.c, dc.clone()));
                }
            }
        }
    }

    /// Backward seeds that inject the next block's carry gradients onto this
    /// segment's carry-out variables (all layers at once — the single-rank
    /// and EvolveGCN paths, which run one backward call per block).
    pub fn carry_out_seeds(&self, grads: &CarryGrads) -> Vec<(Var, Dense)> {
        let mut seeds = Vec::new();
        for layer in 0..self.layer_states.len() {
            self.push_layer_seeds(&mut seeds, layer, grads);
        }
        seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_autograd::gradcheck::check_param_grads;
    use dgnn_tensor::init::glorot_uniform;
    use dgnn_tensor::normalized_laplacian;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn laplacians(n: usize, t: usize, seed: u64) -> Vec<Rc<Csr>> {
        let g = dgnn_graph::gen::churn(n, t, n * 2, 0.3, seed);
        (0..t)
            .map(|ti| Rc::new(normalized_laplacian(g.snapshot(ti).adj(), true)))
            .collect()
    }

    fn tiny_cfg(kind: ModelKind) -> ModelConfig {
        ModelConfig {
            kind,
            input_f: 2,
            hidden: 3,
            mprod_window: 2,
            smoothing_window: 2,
        }
    }

    /// Runs a full two-layer forward over `t` steps in one segment and
    /// returns the mean of all embeddings as the loss.
    fn run_segment(
        model: &Model,
        tape: &mut Tape,
        store: &ParamStore,
        laps: &[Rc<Csr>],
        x0: &[Dense],
    ) -> Var {
        let n = x0[0].rows();
        let carry = model.initial_carry(n);
        let mut seg = model.bind_segment(tape, store, 0..laps.len(), &carry);
        let mut feats: Vec<Var> = x0.iter().map(|x| tape.constant(x.clone())).collect();
        for layer in 0..model.config().layers() {
            let spatial: Vec<Var> = (0..laps.len())
                .map(|t| seg.spatial(tape, layer, t, Rc::clone(&laps[t]), feats[t]))
                .collect();
            feats = seg.temporal(tape, layer, 0, &spatial);
        }
        let mut acc = tape.mean_all(feats[0]);
        for &f in &feats[1..] {
            let m = tape.mean_all(f);
            acc = tape.add(acc, m);
        }
        tape.scale(acc, 1.0 / laps.len() as f32)
    }

    #[test]
    fn all_models_forward_shapes() {
        let mut rng = StdRng::seed_from_u64(10);
        let laps = laplacians(6, 3, 1);
        let x0: Vec<Dense> = (0..3).map(|_| glorot_uniform(6, 2, &mut rng)).collect();
        for kind in ModelKind::all() {
            let mut store = ParamStore::new();
            let model = Model::new(tiny_cfg(kind), &mut store, &mut rng);
            let mut tape = Tape::new();
            let loss = run_segment(&model, &mut tape, &store, &laps, &x0);
            assert_eq!(tape.value(loss).shape(), (1, 1), "{kind:?}");
            assert!(tape.value(loss).get(0, 0).is_finite(), "{kind:?}");
        }
    }

    #[test]
    fn all_models_pass_gradcheck() {
        let laps = laplacians(5, 3, 2);
        for kind in ModelKind::all() {
            let mut rng = StdRng::seed_from_u64(20);
            let mut store = ParamStore::new();
            let model = Model::new(tiny_cfg(kind), &mut store, &mut rng);
            let x0: Vec<Dense> = (0..3).map(|_| glorot_uniform(5, 2, &mut rng)).collect();
            check_param_grads(
                &mut store,
                |tape, store| run_segment(&model, tape, store, &laps, &x0),
                1e-2,
                3e-2,
            )
            .unwrap_or_else(|e| panic!("{kind:?}: {e:?}"));
        }
    }

    #[test]
    fn egcn_weights_evolve_over_time() {
        let mut rng = StdRng::seed_from_u64(30);
        let mut store = ParamStore::new();
        let model = Model::new(tiny_cfg(ModelKind::EvolveGcn), &mut store, &mut rng);
        let mut tape = Tape::new();
        let carry = model.initial_carry(4);
        let seg = model.bind_segment(&mut tape, &store, 0..3, &carry);
        let SegmentLayerState::Egcn { weights, .. } = &seg.layer_states[0] else {
            panic!()
        };
        assert_eq!(weights.len(), 3);
        // W_0 is the raw parameter; W_1 differs from it.
        let w0 = tape.value(weights[0]).clone();
        let w1 = tape.value(weights[1]).clone();
        assert_eq!(&w0, store.value(model.gcn[0].w));
        assert!(w0.max_abs_diff(&w1) > 1e-6);
    }

    #[test]
    fn tm_window_carry_slides() {
        let mut rng = StdRng::seed_from_u64(40);
        let mut store = ParamStore::new();
        let cfg = ModelConfig {
            mprod_window: 3,
            ..tiny_cfg(ModelKind::TmGcn)
        };
        let model = Model::new(cfg, &mut store, &mut rng);
        let laps = laplacians(4, 4, 3);
        let mut tape = Tape::new();
        let carry = model.initial_carry(4);
        let mut seg = model.bind_segment(&mut tape, &store, 0..4, &carry);
        let xs: Vec<Var> = (0..4)
            .map(|_| tape.constant(glorot_uniform(4, 2, &mut rng)))
            .collect();
        let spatial: Vec<Var> = (0..4)
            .map(|t| seg.spatial(&mut tape, 0, t, Rc::clone(&laps[t]), xs[t]))
            .collect();
        let _ = seg.temporal(&mut tape, 0, 0, &spatial);
        let out = seg.carry_out(&tape);
        // Window keeps w-1 = 2 frames.
        let LayerCarry::Window { frames } = &out.layers[0] else {
            panic!()
        };
        assert_eq!(frames.len(), 2);
    }

    #[test]
    fn single_snapshot_segment_works_for_all_models() {
        // The smallest useful timeline: one snapshot, one segment. The
        // carry out of it must hold exactly one step of temporal state.
        let laps = laplacians(5, 1, 9);
        for kind in ModelKind::all() {
            let mut rng = StdRng::seed_from_u64(60);
            let mut store = ParamStore::new();
            let model = Model::new(tiny_cfg(kind), &mut store, &mut rng);
            let x0 = glorot_uniform(5, 2, &mut rng);
            let mut tape = Tape::new();
            let carry = model.initial_carry(5);
            let mut seg = model.bind_segment(&mut tape, &store, 0..1, &carry);
            let mut feats = vec![tape.constant(x0.clone())];
            for layer in 0..model.config().layers() {
                let sp = vec![seg.spatial(&mut tape, layer, 0, Rc::clone(&laps[0]), feats[0])];
                feats = seg.temporal(&mut tape, layer, 0, &sp);
            }
            assert_eq!(feats.len(), 1, "{kind:?}");
            assert_eq!(tape.value(feats[0]).shape(), (5, 3), "{kind:?}");
            let out = seg.carry_out(&tape);
            assert_eq!(out.layers.len(), 2, "{kind:?}");
            match (&out.layers[0], kind) {
                (LayerCarry::Window { frames }, ModelKind::TmGcn) => {
                    // w−1 = 1 carried frame after one step.
                    assert_eq!(frames.len(), 1);
                }
                (LayerCarry::Lstm { h, .. }, ModelKind::CdGcn) => {
                    assert_eq!(h.shape(), (5, 3));
                }
                (LayerCarry::Egcn { h, .. }, ModelKind::EvolveGcn) => {
                    assert_eq!(h.shape(), (2, 3));
                }
                other => panic!("{kind:?}: unexpected carry {other:?}"),
            }
        }
    }

    #[test]
    fn zero_timestep_temporal_is_empty_and_preserves_carry() {
        // A degenerate segment over no timesteps: the temporal phase
        // returns nothing and the recurrent carries pass through unchanged.
        for kind in [ModelKind::CdGcn, ModelKind::TmGcn] {
            let mut rng = StdRng::seed_from_u64(61);
            let mut store = ParamStore::new();
            let model = Model::new(tiny_cfg(kind), &mut store, &mut rng);
            let mut tape = Tape::new();
            let carry = model.initial_carry(4);
            let before = carry.elems();
            let mut seg = model.bind_segment(&mut tape, &store, 0..0, &carry);
            for layer in 0..model.config().layers() {
                let out = seg.temporal(&mut tape, layer, 0, &[]);
                assert!(out.is_empty(), "{kind:?}");
            }
            let out = seg.carry_out(&tape);
            assert_eq!(out.elems(), before, "{kind:?}: carry must round-trip");
        }
    }

    #[test]
    fn segment_stitching_matches_single_segment() {
        // Forward equivalence: running [0..4) in one segment equals
        // [0..2) then [2..4) with carried state, for every model.
        let laps = laplacians(5, 4, 7);
        for kind in ModelKind::all() {
            let mut rng = StdRng::seed_from_u64(50);
            let mut store = ParamStore::new();
            let model = Model::new(tiny_cfg(kind), &mut store, &mut rng);
            let x0: Vec<Dense> = (0..4).map(|_| glorot_uniform(5, 2, &mut rng)).collect();

            // One segment.
            let mut full = Tape::new();
            let carry = model.initial_carry(5);
            let mut seg = model.bind_segment(&mut full, &store, 0..4, &carry);
            let mut feats: Vec<Var> = x0.iter().map(|x| full.constant(x.clone())).collect();
            for layer in 0..2 {
                let sp: Vec<Var> = (0..4)
                    .map(|t| seg.spatial(&mut full, layer, t, Rc::clone(&laps[t]), feats[t]))
                    .collect();
                feats = seg.temporal(&mut full, layer, 0, &sp);
            }
            let reference: Vec<Dense> = feats.iter().map(|&f| full.value(f).clone()).collect();

            // Two stitched segments.
            let mut outputs: Vec<Dense> = Vec::new();
            let mut carry = model.initial_carry(5);
            for block in [0..2usize, 2..4usize] {
                let mut tape = Tape::new();
                let mut seg = model.bind_segment(&mut tape, &store, block.clone(), &carry);
                let mut feats: Vec<Var> = block
                    .clone()
                    .map(|t| tape.constant(x0[t].clone()))
                    .collect();
                for layer in 0..2 {
                    let sp: Vec<Var> = block
                        .clone()
                        .map(|t| {
                            seg.spatial(
                                &mut tape,
                                layer,
                                t,
                                Rc::clone(&laps[t]),
                                feats[t - block.start],
                            )
                        })
                        .collect();
                    feats = seg.temporal(&mut tape, layer, 0, &sp);
                }
                carry = seg.carry_out(&tape);
                outputs.extend(feats.iter().map(|&f| tape.value(f).clone()));
            }

            for t in 0..4 {
                assert!(
                    outputs[t].approx_eq(&reference[t], 1e-5),
                    "{kind:?} t={t}: stitched diverges from single segment"
                );
            }
        }
    }
}
