//! Model configuration shared by the three architectures.

use dgnn_graph::Smoothing;

/// Which dynamic-GNN architecture to build (paper §5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// Concatenate-Dynamic GCN: GCN with skip concat + feature LSTM \[17\].
    CdGcn,
    /// EvolveGCN, the EGCN-O variant: weights evolved by an LSTM \[19\].
    EvolveGcn,
    /// TM-GCN: M-product temporal aggregation \[16\].
    TmGcn,
}

impl ModelKind {
    /// Display name matching the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::CdGcn => "cdgcn",
            ModelKind::EvolveGcn => "egcn",
            ModelKind::TmGcn => "tmgcn",
        }
    }

    /// All three architectures.
    pub fn all() -> [ModelKind; 3] {
        [ModelKind::CdGcn, ModelKind::EvolveGcn, ModelKind::TmGcn]
    }

    /// Stable on-disk tag of this architecture, used by the `dgnn-serve`
    /// checkpoint header. Codes are append-only: existing values must
    /// never be renumbered, or old checkpoints would decode wrongly.
    pub fn code(&self) -> u8 {
        match self {
            ModelKind::CdGcn => 0,
            ModelKind::EvolveGcn => 1,
            ModelKind::TmGcn => 2,
        }
    }

    /// Decodes an on-disk architecture tag written by [`ModelKind::code`].
    pub fn from_code(code: u8) -> Option<ModelKind> {
        match code {
            0 => Some(ModelKind::CdGcn),
            1 => Some(ModelKind::EvolveGcn),
            2 => Some(ModelKind::TmGcn),
            _ => None,
        }
    }

    /// Whether the temporal component needs the two all-to-all
    /// redistributions. EvolveGCN applies its LSTM to replicated weight
    /// matrices and is communication-free apart from the epoch-end gradient
    /// all-reduce (paper §5.5).
    pub fn uses_redistribution(&self) -> bool {
        !matches!(self, ModelKind::EvolveGcn)
    }
}

/// Hyper-parameters of the two-layer dynamic GNN framework (paper §2.2).
#[derive(Clone, Copy, Debug)]
pub struct ModelConfig {
    /// Architecture.
    pub kind: ModelKind,
    /// Input feature width (the paper uses in/out degrees: 2).
    pub input_f: usize,
    /// Intermediate and embedding width (the paper sets these to 6).
    pub hidden: usize,
    /// M-product window for TM-GCN's temporal component.
    pub mprod_window: usize,
    /// Edge life / smoothing window applied to the input graph before
    /// training (EvolveGCN: edge-life; TM-GCN: M-product; CD-GCN: none).
    pub smoothing_window: usize,
}

impl ModelConfig {
    /// Paper-default configuration for the given architecture.
    pub fn paper_defaults(kind: ModelKind) -> Self {
        Self {
            kind,
            input_f: 2,
            hidden: 6,
            mprod_window: 5,
            smoothing_window: 5,
        }
    }

    /// Number of dynamic-GNN layers (the study extends every model to 2).
    pub fn layers(&self) -> usize {
        2
    }

    /// GCN input width at layer `l`.
    pub fn gcn_in(&self, l: usize) -> usize {
        if l == 0 {
            self.input_f
        } else {
            self.hidden
        }
    }

    /// Width leaving the GCN component at layer `l` (CD-GCN concatenates
    /// the aggregated input onto the linear output).
    pub fn gcn_out(&self, l: usize) -> usize {
        match self.kind {
            ModelKind::CdGcn => self.gcn_in(l) + self.hidden,
            _ => self.hidden,
        }
    }

    /// Width leaving the temporal component at layer `l` (the embedding
    /// width at the final layer).
    pub fn temporal_out(&self, _l: usize) -> usize {
        self.hidden
    }

    /// The input-graph smoothing this architecture requires (paper §5.4).
    pub fn smoothing(&self) -> Smoothing {
        match self.kind {
            ModelKind::CdGcn => Smoothing::None,
            ModelKind::EvolveGcn => Smoothing::EdgeLife(self.smoothing_window),
            ModelKind::TmGcn => Smoothing::MProduct(self.smoothing_window),
        }
    }

    /// Final embedding width.
    pub fn embedding_dim(&self) -> usize {
        self.hidden
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_per_model() {
        let cd = ModelConfig::paper_defaults(ModelKind::CdGcn);
        assert_eq!(cd.gcn_out(0), 8);
        assert_eq!(cd.gcn_out(1), 12);
        let tm = ModelConfig::paper_defaults(ModelKind::TmGcn);
        assert_eq!(tm.gcn_out(0), 6);
        assert_eq!(tm.gcn_in(1), 6);
    }

    #[test]
    fn kind_codes_roundtrip_and_reject_unknown() {
        for kind in ModelKind::all() {
            assert_eq!(ModelKind::from_code(kind.code()), Some(kind));
        }
        assert_eq!(ModelKind::from_code(250), None);
    }

    #[test]
    fn smoothing_per_model() {
        assert_eq!(
            ModelConfig::paper_defaults(ModelKind::CdGcn).smoothing(),
            Smoothing::None
        );
        assert!(matches!(
            ModelConfig::paper_defaults(ModelKind::EvolveGcn).smoothing(),
            Smoothing::EdgeLife(_)
        ));
        assert!(matches!(
            ModelConfig::paper_defaults(ModelKind::TmGcn).smoothing(),
            Smoothing::MProduct(_)
        ));
    }
}
