//! Task heads: link prediction by endpoint-embedding concatenation
//! (paper §6.4) and per-vertex classification (paper §2.2).

use std::rc::Rc;

use dgnn_autograd::{ParamId, ParamStore, Tape, Var};
use dgnn_graph::EdgeSamples;
use dgnn_tensor::init::glorot_uniform;
use dgnn_tensor::Dense;
use rand::Rng;

/// Link-prediction head: `softmax(concat(z_u, z_v) · U + b)` over `C`
/// classes (the paper uses C = 2: edge / no edge).
pub struct LinkPredHead {
    /// Projection (`2·emb x classes`).
    pub u: ParamId,
    /// Bias (`1 x classes`).
    pub b: ParamId,
    emb: usize,
    classes: usize,
}

/// Per-tape bound variables of a [`LinkPredHead`].
#[derive(Clone, Copy, Debug)]
pub struct LinkPredVars {
    u: Var,
    b: Var,
}

impl LinkPredHead {
    /// Registers the head's parameters for embeddings of width `emb`.
    pub fn new(store: &mut ParamStore, emb: usize, classes: usize, rng: &mut impl Rng) -> Self {
        let u = store.add("head.u", glorot_uniform(2 * emb, classes, rng));
        let b = store.add("head.b", Dense::zeros(1, classes));
        Self { u, b, emb, classes }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Embedding width the head expects (checkpoint-header metadata).
    pub fn emb(&self) -> usize {
        self.emb
    }

    /// Binds the head onto a tape segment.
    pub fn bind(&self, tape: &mut Tape, store: &ParamStore) -> LinkPredVars {
        LinkPredVars {
            u: tape.param(store, self.u),
            b: tape.param(store, self.b),
        }
    }

    /// Logits for a sample set against the embedding matrix `z` (`N x emb`).
    pub fn logits(
        &self,
        tape: &mut Tape,
        vars: LinkPredVars,
        z: Var,
        samples: &EdgeSamples,
    ) -> Var {
        assert_eq!(tape.value(z).cols(), self.emb, "embedding width mismatch");
        let zu = tape.gather_rows(z, Rc::new(samples.src.clone()));
        let zv = tape.gather_rows(z, Rc::new(samples.dst.clone()));
        let cat = tape.concat_cols(zu, zv);
        let lin = tape.matmul(cat, vars.u);
        tape.add_bias(lin, vars.b)
    }

    /// Value-level (no-grad) logits for evaluation: the test-set accuracy is
    /// computed from the embeddings of the last training timestep without
    /// touching a tape.
    pub fn predict(&self, store: &ParamStore, z: &Dense, samples: &EdgeSamples) -> Dense {
        let zu = z.gather_rows(&samples.src);
        let zv = z.gather_rows(&samples.dst);
        let cat = zu.concat_cols(&zv);
        cat.matmul(store.value(self.u))
            .add_row_broadcast(store.value(self.b))
    }

    /// Mean cross-entropy loss of a sample set.
    pub fn loss(&self, tape: &mut Tape, vars: LinkPredVars, z: Var, samples: &EdgeSamples) -> Var {
        let logits = self.logits(tape, vars, z, samples);
        tape.softmax_cross_entropy(logits, Rc::new(samples.labels.clone()))
    }
}

/// Vertex-classification head: `softmax(Z_t · U + b)` with per-vertex
/// integer labels.
pub struct ClassificationHead {
    /// Projection (`emb x classes`).
    pub u: ParamId,
    /// Bias (`1 x classes`).
    pub b: ParamId,
}

/// Per-tape bound variables of a [`ClassificationHead`].
#[derive(Clone, Copy, Debug)]
pub struct ClassificationVars {
    u: Var,
    b: Var,
}

impl ClassificationHead {
    /// Registers the head's parameters.
    pub fn new(store: &mut ParamStore, emb: usize, classes: usize, rng: &mut impl Rng) -> Self {
        let u = store.add("cls.u", glorot_uniform(emb, classes, rng));
        let b = store.add("cls.b", Dense::zeros(1, classes));
        Self { u, b }
    }

    /// Binds the head onto a tape segment.
    pub fn bind(&self, tape: &mut Tape, store: &ParamStore) -> ClassificationVars {
        ClassificationVars {
            u: tape.param(store, self.u),
            b: tape.param(store, self.b),
        }
    }

    /// Per-vertex logits `Z·U + b`.
    pub fn logits(&self, tape: &mut Tape, vars: ClassificationVars, z: Var) -> Var {
        let lin = tape.matmul(z, vars.u);
        tape.add_bias(lin, vars.b)
    }

    /// Mean cross-entropy loss over the labelled vertices.
    pub fn loss(
        &self,
        tape: &mut Tape,
        vars: ClassificationVars,
        z: Var,
        labels: Rc<Vec<u32>>,
    ) -> Var {
        let logits = self.logits(tape, vars, z);
        tape.softmax_cross_entropy(logits, labels)
    }
}

/// Fraction of rows whose argmax equals the label.
pub fn accuracy(logits: &Dense, labels: &[u32]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "logits/labels mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (r, &label) in labels.iter().enumerate() {
        let row = logits.row(r);
        let pred = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if pred == label as usize {
            correct += 1;
        }
    }
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_autograd::gradcheck::check_param_grads;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn samples() -> EdgeSamples {
        EdgeSamples {
            src: vec![0, 1, 2, 3],
            dst: vec![1, 2, 3, 0],
            labels: vec![1, 1, 0, 0],
        }
    }

    #[test]
    fn logits_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let head = LinkPredHead::new(&mut store, 3, 2, &mut rng);
        let mut tape = Tape::new();
        let vars = head.bind(&mut tape, &store);
        let z = tape.constant(glorot_uniform(5, 3, &mut rng));
        let logits = head.logits(&mut tape, vars, z, &samples());
        assert_eq!(tape.value(logits).shape(), (4, 2));
    }

    #[test]
    fn loss_gradients() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let head = LinkPredHead::new(&mut store, 3, 2, &mut rng);
        let z_val = glorot_uniform(5, 3, &mut rng);
        let s = samples();
        check_param_grads(
            &mut store,
            |tape, store| {
                let vars = head.bind(tape, store);
                let z = tape.constant(z_val.clone());
                head.loss(tape, vars, z, &s)
            },
            1e-2,
            2e-2,
        )
        .unwrap();
    }

    #[test]
    fn classification_loss_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let head = ClassificationHead::new(&mut store, 4, 3, &mut rng);
        let mut tape = Tape::new();
        let vars = head.bind(&mut tape, &store);
        let z = tape.constant(glorot_uniform(6, 4, &mut rng));
        let loss = head.loss(&mut tape, vars, z, Rc::new(vec![0, 1, 2, 0, 1, 2]));
        assert!(tape.value(loss).get(0, 0) > 0.0);
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Dense::from_vec(3, 2, vec![2.0, 1.0, 0.0, 3.0, 1.0, 0.5]);
        let acc = accuracy(&logits, &[0, 1, 0]);
        assert!((acc - 1.0).abs() < 1e-9);
        let acc = accuracy(&logits, &[1, 1, 0]);
        assert!((acc - 2.0 / 3.0).abs() < 1e-9);
    }
}
