//! Block-carry state: the `π_b` of gradient checkpointing (paper Fig. 2).
//!
//! The information a temporal component passes from one timeline block to
//! the next — LSTM states for CD-GCN, the last `w−1` feature frames for
//! TM-GCN's M-product, the weight-LSTM state for EvolveGCN. Carries cross
//! tape-segment boundaries as plain matrices; their gradients flow back as
//! backward seeds on the previous segment.

use std::collections::VecDeque;

use dgnn_tensor::Dense;

/// Carried state of one layer's temporal component.
#[derive(Clone, Debug)]
pub enum LayerCarry {
    /// CD-GCN: the feature LSTM's `(h, c)` on this rank's vertex chunk.
    Lstm {
        /// Hidden state (`chunk_rows x hidden`).
        h: Dense,
        /// Cell memory (`chunk_rows x hidden`).
        c: Dense,
    },
    /// TM-GCN: the last up-to-`w−1` temporal-input frames, oldest first.
    Window {
        /// Carried frames; back of the deque is timestep `t_start − 1`.
        frames: VecDeque<Dense>,
    },
    /// EvolveGCN: the weight-LSTM state after producing `W_{t_start−1}`
    /// (`h` *is* that weight matrix). Ignored for the block starting at
    /// `t = 0`, where `W_0` is the initial weight parameter itself.
    Egcn {
        /// Weight-LSTM hidden state = the current weight matrix.
        h: Dense,
        /// Weight-LSTM cell memory.
        c: Dense,
    },
}

/// Per-layer carried state of a whole model.
#[derive(Clone, Debug)]
pub struct CarryState {
    /// One carry per dynamic-GNN layer.
    pub layers: Vec<LayerCarry>,
}

impl CarryState {
    /// Total `f32` elements held — the size of the checkpoint data `π_b`
    /// (paper §3.1's second memory component).
    pub fn elems(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                LayerCarry::Lstm { h, c } | LayerCarry::Egcn { h, c } => h.len() + c.len(),
                LayerCarry::Window { frames } => frames.iter().map(Dense::len).sum(),
            })
            .sum()
    }
}

/// Gradient of a [`LayerCarry`]; `None` slots mean zero.
#[derive(Clone, Debug, Default)]
pub struct LayerCarryGrad {
    /// Gradient w.r.t. `h` (LSTM/EGCN carries).
    pub dh: Option<Dense>,
    /// Gradient w.r.t. `c` (LSTM/EGCN carries).
    pub dc: Option<Dense>,
    /// Gradients w.r.t. window frames, aligned with `frames`.
    pub dframes: Vec<Option<Dense>>,
}

/// Per-layer carry gradients of a whole model.
#[derive(Clone, Debug)]
pub struct CarryGrads {
    /// One gradient bundle per layer.
    pub layers: Vec<LayerCarryGrad>,
}

impl CarryGrads {
    /// An all-zero gradient for `layers` layers.
    pub fn zeros(layers: usize) -> Self {
        Self {
            layers: (0..layers).map(|_| LayerCarryGrad::default()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carry_size_accounting() {
        let carry = CarryState {
            layers: vec![
                LayerCarry::Lstm {
                    h: Dense::zeros(10, 4),
                    c: Dense::zeros(10, 4),
                },
                LayerCarry::Window {
                    frames: VecDeque::from(vec![Dense::zeros(10, 4), Dense::zeros(10, 4)]),
                },
            ],
        };
        assert_eq!(carry.elems(), 80 + 80);
    }

    #[test]
    fn zero_grads_have_no_content() {
        let g = CarryGrads::zeros(2);
        assert_eq!(g.layers.len(), 2);
        assert!(g.layers[0].dh.is_none());
        assert!(g.layers[0].dframes.is_empty());
    }

    #[test]
    fn egcn_carry_size_accounting() {
        // EvolveGCN carries the weight-LSTM state: h is the weight matrix
        // itself (gcn_in x hidden), c the cell memory of the same shape.
        let carry = CarryState {
            layers: vec![LayerCarry::Egcn {
                h: Dense::zeros(2, 6),
                c: Dense::zeros(2, 6),
            }],
        };
        assert_eq!(carry.elems(), 24);
    }

    #[test]
    fn empty_window_carry_is_zero_sized() {
        // The t = 0 TM-GCN carry holds no frames yet (nothing to reach
        // back to) and must account as zero checkpoint bytes.
        let carry = CarryState {
            layers: vec![LayerCarry::Window {
                frames: VecDeque::new(),
            }],
        };
        assert_eq!(carry.elems(), 0);
    }

    #[test]
    fn zero_layer_grads_are_empty() {
        let g = CarryGrads::zeros(0);
        assert!(g.layers.is_empty());
    }

    #[test]
    fn mixed_model_carry_sums_all_layers() {
        let carry = CarryState {
            layers: vec![
                LayerCarry::Egcn {
                    h: Dense::zeros(3, 4),
                    c: Dense::zeros(3, 4),
                },
                LayerCarry::Window {
                    frames: VecDeque::from(vec![Dense::zeros(5, 4)]),
                },
            ],
        };
        assert_eq!(carry.elems(), 24 + 20);
    }
}
