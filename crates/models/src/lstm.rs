//! A batched LSTM cell (Hochreiter & Schmidhuber) operating on matrix
//! "batches" of rows — vertices for CD-GCN's feature LSTM, weight-matrix
//! rows for EvolveGCN's weight evolution.

use dgnn_autograd::{ParamId, ParamStore, Tape, Var};
use dgnn_tensor::init::glorot_uniform;
use dgnn_tensor::Dense;
use rand::Rng;

/// LSTM cell parameters: fused gate weights `[i f g o]`.
#[derive(Clone, Debug)]
pub struct LstmCell {
    /// Input-to-gates weights (`in_f x 4h`).
    pub wx: ParamId,
    /// Hidden-to-gates weights (`h x 4h`).
    pub wh: ParamId,
    /// Gate bias (`1 x 4h`).
    pub b: ParamId,
    in_f: usize,
    hidden: usize,
}

/// Per-tape bound variables of an [`LstmCell`].
#[derive(Clone, Copy, Debug)]
pub struct LstmVars {
    wx: Var,
    wh: Var,
    b: Var,
}

/// The recurrent state `(h, c)` as tape variables.
#[derive(Clone, Copy, Debug)]
pub struct LstmState {
    /// Hidden state.
    pub h: Var,
    /// Cell memory.
    pub c: Var,
}

impl LstmCell {
    /// Registers a new cell's parameters. The forget-gate bias is
    /// initialised to 1, the standard trick for gradient flow over long
    /// timelines.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_f: usize,
        hidden: usize,
        rng: &mut impl Rng,
    ) -> Self {
        let wx = store.add(format!("{name}.wx"), glorot_uniform(in_f, 4 * hidden, rng));
        let wh = store.add(
            format!("{name}.wh"),
            glorot_uniform(hidden, 4 * hidden, rng),
        );
        let bias = Dense::from_fn(1, 4 * hidden, |_, c| {
            if (hidden..2 * hidden).contains(&c) {
                1.0
            } else {
                0.0
            }
        });
        let b = store.add(format!("{name}.b"), bias);
        Self {
            wx,
            wh,
            b,
            in_f,
            hidden,
        }
    }

    /// Input width.
    pub fn in_f(&self) -> usize {
        self.in_f
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Binds the cell parameters onto a tape segment.
    pub fn bind(&self, tape: &mut Tape, store: &ParamStore) -> LstmVars {
        LstmVars {
            wx: tape.param(store, self.wx),
            wh: tape.param(store, self.wh),
            b: tape.param(store, self.b),
        }
    }

    /// A zero initial state for a batch of `rows`.
    pub fn zero_state(&self, tape: &mut Tape, rows: usize) -> LstmState {
        LstmState {
            h: tape.input(Dense::zeros(rows, self.hidden)),
            c: tape.input(Dense::zeros(rows, self.hidden)),
        }
    }

    /// One step: consumes `x` (`rows x in_f`) and the previous state,
    /// returning the new state (`h` is the step output).
    pub fn step(&self, tape: &mut Tape, vars: LstmVars, x: Var, prev: LstmState) -> LstmState {
        let h = self.hidden;
        let gx = tape.matmul(x, vars.wx);
        let gh = tape.matmul(prev.h, vars.wh);
        let pre0 = tape.add(gx, gh);
        let pre = tape.add_bias(pre0, vars.b);
        let i_pre = tape.narrow_cols(pre, 0, h);
        let f_pre = tape.narrow_cols(pre, h, h);
        let g_pre = tape.narrow_cols(pre, 2 * h, h);
        let o_pre = tape.narrow_cols(pre, 3 * h, h);
        let i = tape.sigmoid(i_pre);
        let f = tape.sigmoid(f_pre);
        let g = tape.tanh(g_pre);
        let o = tape.sigmoid(o_pre);
        let keep = tape.hadamard(f, prev.c);
        let write = tape.hadamard(i, g);
        let c = tape.add(keep, write);
        let c_act = tape.tanh(c);
        let h_new = tape.hadamard(o, c_act);
        LstmState { h: h_new, c }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_autograd::gradcheck::check_param_grads;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn step_shapes() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 3, 4, &mut rng);
        let mut tape = Tape::new();
        let vars = cell.bind(&mut tape, &store);
        let state = cell.zero_state(&mut tape, 7);
        let x = tape.constant(Dense::ones(7, 3));
        let next = cell.step(&mut tape, vars, x, state);
        assert_eq!(tape.value(next.h).shape(), (7, 4));
        assert_eq!(tape.value(next.c).shape(), (7, 4));
    }

    #[test]
    fn forget_bias_initialised_to_one() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 2, 3, &mut rng);
        let b = store.value(cell.b);
        assert_eq!(b.get(0, 3), 1.0);
        assert_eq!(b.get(0, 0), 0.0);
        assert_eq!(b.get(0, 6), 0.0);
    }

    #[test]
    fn zero_input_zero_state_gives_bounded_output() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 2, 3, &mut rng);
        let mut tape = Tape::new();
        let vars = cell.bind(&mut tape, &store);
        let state = cell.zero_state(&mut tape, 4);
        let x = tape.constant(Dense::zeros(4, 2));
        let next = cell.step(&mut tape, vars, x, state);
        // |h| <= 1 because of the tanh.
        assert!(tape.value(next.h).data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn step_rejects_input_width_mismatch() {
        // The cell was built for in_f = 2; feeding 3-wide inputs must fail
        // loudly at the gate matmul, not corrupt state.
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 2, 3, &mut rng);
        let mut tape = Tape::new();
        let vars = cell.bind(&mut tape, &store);
        let state = cell.zero_state(&mut tape, 4);
        let x = tape.constant(Dense::ones(4, 3));
        let _ = cell.step(&mut tape, vars, x, state);
    }

    #[test]
    #[should_panic(expected = "add: shape mismatch")]
    fn step_rejects_state_row_mismatch() {
        // A carry whose row count disagrees with the batch (a wrong vertex
        // chunk) must be rejected when the input and hidden gates combine.
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 2, 3, &mut rng);
        let mut tape = Tape::new();
        let vars = cell.bind(&mut tape, &store);
        let state = cell.zero_state(&mut tape, 5);
        let x = tape.constant(Dense::ones(4, 2));
        let _ = cell.step(&mut tape, vars, x, state);
    }

    #[test]
    fn zero_row_batch_steps_to_zero_rows() {
        // Degenerate vertex chunks (a rank owning no rows) still step.
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 2, 3, &mut rng);
        let mut tape = Tape::new();
        let vars = cell.bind(&mut tape, &store);
        let state = cell.zero_state(&mut tape, 0);
        let x = tape.constant(Dense::zeros(0, 2));
        let next = cell.step(&mut tape, vars, x, state);
        assert_eq!(tape.value(next.h).shape(), (0, 3));
        assert_eq!(tape.value(next.c).shape(), (0, 3));
    }

    #[test]
    fn two_step_sequence_gradients() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let cell = LstmCell::new(&mut store, "lstm", 2, 3, &mut rng);
        let x0 = glorot_uniform(4, 2, &mut rng);
        let x1 = glorot_uniform(4, 2, &mut rng);
        check_param_grads(
            &mut store,
            |tape, store| {
                let vars = cell.bind(tape, store);
                let state = cell.zero_state(tape, 4);
                let xa = tape.constant(x0.clone());
                let s1 = cell.step(tape, vars, xa, state);
                let xb = tape.constant(x1.clone());
                let s2 = cell.step(tape, vars, xb, s1);
                tape.mean_all(s2.h)
            },
            1e-2,
            2e-2,
        )
        .unwrap();
    }
}
