//! # dgnn-models
//!
//! The three dynamic-GNN architectures of the SC'21 study (paper §5) built
//! on `dgnn-autograd`:
//!
//! * **CD-GCN** — GCN with skip concatenation + per-layer feature LSTM.
//! * **EvolveGCN (EGCN-O)** — per-timestep GCN weights evolved by an LSTM
//!   over the weight matrices; temporal component on features is identity.
//! * **TM-GCN** — parameter-less M-product temporal averaging.
//!
//! All three share the two-layer GCN/temporal framework of §2.2 and are
//! executed through [`model::Segment`]s — one autograd tape per contiguous
//! run of timesteps — so the trainers in `dgnn-core` can insert gradient
//! checkpointing and all-to-all redistribution between segments.

pub mod carry;
pub mod config;
pub mod gcn;
pub mod head;
pub mod lstm;
pub mod model;

pub use carry::{CarryGrads, CarryState, LayerCarry, LayerCarryGrad};
pub use config::{ModelConfig, ModelKind};
pub use gcn::GcnLayer;
pub use head::{accuracy, ClassificationHead, LinkPredHead};
pub use lstm::LstmCell;
pub use model::{Model, Segment};
