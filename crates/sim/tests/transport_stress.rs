//! Adversarial tests of both communicator transports: out-of-order
//! delivery, zero-row and empty-rank payloads, and — most importantly —
//! failure semantics: a rank panicking mid-collective must tear the group
//! down with a typed error on the caller, never deadlock the peers, and
//! must propagate the *original* panic payload identically on both
//! transports. Also the rank-scope regression guard from PR 2: thread
//! overrides installed by the caller must reach every rank thread on
//! either transport and must not leak back out.

use std::panic::catch_unwind;

use dgnn_sim::{
    run_ranks, run_ranks_on, scoped_transport, try_run_ranks, try_run_ranks_on, CommTransport,
    Payload,
};
use dgnn_tensor::{pool, Dense};

#[test]
fn out_of_order_sends_resolve_on_both_transports() {
    for transport in CommTransport::all() {
        let results = run_ranks_on(transport, 3, |comm| {
            let me = comm.rank();
            // Every rank sends three tagged messages to every peer in
            // ascending tag order; receivers consume them descending, from
            // peers in reverse rank order, with a collective wedged in
            // between — so delivery order never matches consumption order.
            for q in 0..3 {
                if q != me {
                    for tag in [1u64, 2, 3] {
                        comm.send_tagged(
                            q,
                            tag,
                            Payload::Floats(vec![(me * 10 + tag as usize) as f32]),
                        );
                    }
                }
            }
            comm.barrier();
            let mut got = Vec::new();
            for q in (0..3).rev() {
                if q != me {
                    for tag in [3u64, 2, 1] {
                        match comm.recv_tagged(q, tag) {
                            Payload::Floats(f) => got.push(f[0]),
                            other => panic!("expected floats, got {other:?}"),
                        }
                    }
                }
            }
            got
        });
        for (me, got) in results.iter().enumerate() {
            let expect: Vec<f32> = (0..3)
                .rev()
                .filter(|&q| q != me)
                .flat_map(|q| [3u64, 2, 1].map(|tag| (q * 10 + tag as usize) as f32))
                .collect();
            assert_eq!(got, &expect, "{}: rank {me} mis-ordered", transport.name());
        }
    }
}

#[test]
fn empty_ranks_and_zero_row_payloads() {
    for transport in CommTransport::all() {
        run_ranks_on(transport, 4, |comm| {
            let me = comm.rank();
            // Rank 0 contributes nothing but sync markers; rank 1 sends
            // zero-row (but shaped) matrices; ranks 2 and 3 send data.
            let parts: Vec<Payload> = (0..4)
                .map(|_| match me {
                    0 => Payload::Empty,
                    1 => Payload::Dense(Dense::zeros(0, 3)),
                    _ => Payload::Dense(Dense::full(2, 3, me as f32)),
                })
                .collect();
            let got = comm.all_to_all(parts);
            for (src, p) in got.iter().enumerate() {
                match (src, p) {
                    (0, Payload::Empty) => {}
                    (1, Payload::Dense(d)) => assert_eq!(d.shape(), (0, 3)),
                    (_, Payload::Dense(d)) => {
                        assert_eq!(d.shape(), (2, 3));
                        assert!(d.data().iter().all(|&v| v == src as f32));
                    }
                    (src, other) => panic!("rank {src} sent unexpected {other:?}"),
                }
            }
            // An all-gather of nothing still synchronises.
            let gathered = comm.all_gather(Payload::Empty);
            assert_eq!(gathered.len(), 4);
            assert!(matches!(gathered[me], Payload::Empty));
        });
    }
}

#[test]
fn rank_panic_mid_collective_is_a_typed_error_not_a_deadlock() {
    for transport in CommTransport::all() {
        let err = try_run_ranks_on(transport, 4, |comm| {
            let _threads = pool::scoped_threads(Some(2));
            if comm.rank() == 2 {
                // Panic after the peers have committed to the collective
                // but before contributing to it.
                panic!("rank 2 gave up mid-collective");
            }
            let mut data = vec![1.0f32; 8];
            comm.all_reduce_sum(&mut data);
            data
        })
        .expect_err("a rank panicked; the group run must fail");
        assert_eq!(err.rank(), 2, "{}: wrong origin rank", transport.name());
        assert_eq!(
            err.message(),
            "rank 2 gave up mid-collective",
            "{}: original payload must survive teardown",
            transport.name()
        );
    }
}

#[test]
fn panic_while_peer_blocks_on_p2p_receive_unblocks_it() {
    for transport in CommTransport::all() {
        let err = try_run_ranks_on(transport, 2, |comm| {
            if comm.rank() == 0 {
                panic!("sender died before sending");
            }
            // Blocks on a message that will never arrive; the poison flag
            // must wake this rank instead of hanging the join forever.
            comm.recv_tagged(0, 42)
        })
        .expect_err("must fail");
        assert_eq!(err.rank(), 0, "{}", transport.name());
        assert_eq!(err.message(), "sender died before sending");
    }
}

/// A non-string panic payload: `run_ranks` must re-raise it with the type
/// intact so callers can downcast, identically on both transports.
#[derive(Debug, PartialEq)]
struct TypedFailure(u32);

#[test]
fn custom_panic_payloads_propagate_identically() {
    for transport in CommTransport::all() {
        let caught = catch_unwind(|| {
            run_ranks_on(transport, 3, |comm| {
                if comm.rank() == 1 {
                    std::panic::panic_any(TypedFailure(7));
                }
                comm.barrier();
            })
        })
        .expect_err("panic must propagate through run_ranks");
        let failure = caught
            .downcast_ref::<TypedFailure>()
            .unwrap_or_else(|| panic!("{}: payload type lost in transit", transport.name()));
        assert_eq!(failure, &TypedFailure(7));
    }
}

#[test]
fn thread_overrides_propagate_and_do_not_leak_on_either_transport() {
    // Regression guard for the PR-2 rank-scope class of bug, now swept
    // over both transports: the caller's override must reach every rank
    // thread, and the rank-side installs must not survive into the caller.
    let _outer = pool::scoped_threads(Some(5));
    for transport in CommTransport::all() {
        let seen = run_ranks_on(transport, 2, |_comm| pool::effective_threads());
        assert_eq!(seen, vec![5, 5], "{}: override lost", transport.name());
        assert_eq!(
            pool::effective_threads(),
            5,
            "{}: override leaked",
            transport.name()
        );
    }
}

#[test]
fn ambient_transport_selection_is_scoped() {
    // `run_ranks`/`try_run_ranks` resolve the scoped override; a healthy
    // group returns Ok with rank-ordered results on either choice.
    for transport in CommTransport::all() {
        let _t = scoped_transport(transport);
        let ids = run_ranks(3, |comm| comm.rank());
        assert_eq!(ids, vec![0, 1, 2]);
        let ok = try_run_ranks(2, |comm| comm.world()).expect("healthy group");
        assert_eq!(ok, vec![2, 2]);
    }
}

#[test]
fn interleaved_pools_and_collectives_survive_a_late_panic() {
    // Live intra-rank pools + collectives + a panic in a later round:
    // earlier rounds complete normally, the failing round tears down.
    for transport in CommTransport::all() {
        let err = try_run_ranks_on(transport, 3, |comm| {
            let _threads = pool::scoped_threads(Some(2));
            let me = comm.rank();
            let mut acc = 0.0f32;
            for round in 0..4 {
                // Pool-engaging local work between collectives.
                let x = Dense::from_fn(64, 32, |r, c| ((r + c + round) % 7) as f32);
                let y = Dense::from_fn(32, 16, |r, c| ((r * c + round) % 5) as f32);
                let z = x.matmul(&y);
                if round == 2 && me == 0 {
                    panic!("round 2 failure");
                }
                let mut buf = vec![z.sum()];
                comm.all_reduce_sum(&mut buf);
                acc += buf[0];
            }
            acc
        })
        .expect_err("rank 0 panics in round 2");
        assert_eq!(err.rank(), 0, "{}", transport.name());
        assert_eq!(err.message(), "round 2 failure");
    }
}
