//! Stress tests of the rank-thread collectives while intra-rank thread
//! pools are live: every rank runs pool-parallel kernels between (and
//! interleaved with) collective calls, with randomized payload sizes
//! including zero-row payloads. This pins the invariant the distributed
//! trainers rely on — the communicator's per-rank operation-counter
//! matching is oblivious to what the rank's worker threads are doing.

use dgnn_sim::{run_ranks_on, CommTransport, Payload};
use dgnn_tensor::{pool, Csr, Dense};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Encodes (sender, round, destination) so routing errors are detectable
/// in any received cell.
fn stamp(rank: usize, round: usize, dest: usize) -> f32 {
    (rank * 10_000 + round * 100 + dest) as f32
}

#[test]
fn all_to_all_randomized_payloads_with_zero_rows() {
    const P: usize = 4;
    const ROUNDS: usize = 25;
    // Byte accounting must agree between transports as well as routing.
    let mut volumes: Vec<Vec<u64>> = Vec::new();
    for transport in CommTransport::all() {
        volumes.push(run_ranks_on(transport, P, |comm| {
            let _threads = pool::scoped_threads(Some(2));
            // All ranks derive each round's shape table from the same seed, so
            // receivers know what to expect without extra coordination.
            let mut shape_rng = StdRng::seed_from_u64(4242);
            for round in 0..ROUNDS {
                // rows[src][dst] for this round; ~1 in 3 payloads is empty.
                let rows: Vec<Vec<usize>> = (0..P)
                    .map(|_| {
                        (0..P)
                            .map(|_| {
                                if shape_rng.gen_bool(0.33) {
                                    0
                                } else {
                                    shape_rng.gen_range(1..7)
                                }
                            })
                            .collect()
                    })
                    .collect();
                let cols = shape_rng.gen_range(1..5usize);
                let me = comm.rank();
                let parts: Vec<Dense> = (0..P)
                    .map(|dst| Dense::full(rows[me][dst], cols, stamp(me, round, dst)))
                    .collect();
                let got = comm.all_to_all_dense(parts);
                for (src, d) in got.iter().enumerate() {
                    assert_eq!(
                        d.shape(),
                        (rows[src][me], cols),
                        "round {round}: bad shape from rank {src}"
                    );
                    assert!(
                        d.data().iter().all(|&v| v == stamp(src, round, me)),
                        "round {round}: bad payload from rank {src}"
                    );
                }
            }
            comm.bytes_sent()
        }));
    }
    assert_eq!(volumes[0], volumes[1], "transports disagree on volume");
}

#[test]
fn collectives_interleave_with_pool_parallel_kernels() {
    const P: usize = 3;
    const ROUNDS: usize = 8;
    let mut streams: Vec<Vec<f32>> = Vec::new();
    for transport in CommTransport::all() {
        let results = run_ranks_on(transport, P, |comm| {
            // 3 pool threads per rank on top of 3 rank threads: deliberately
            // oversubscribed so pool workers and rank threads contend.
            let _threads = pool::scoped_threads(Some(3));
            let me = comm.rank();
            let mut rng = StdRng::seed_from_u64(1000 + me as u64);
            let mut digests: Vec<f32> = Vec::new();
            for round in 0..ROUNDS {
                // Pool-parallel work between collectives: an SpMM + GEMM big
                // enough to engage the pool, seeded identically on all ranks.
                let n = 300;
                let edges: Vec<(u32, u32)> = {
                    let mut g = StdRng::seed_from_u64(round as u64);
                    (0..1500)
                        .map(|_| (g.gen_range(0..n as u32), g.gen_range(0..n as u32)))
                        .collect()
                };
                let a = Csr::from_edges(n, &edges);
                let x = Dense::from_fn(n, 24, |r, c| ((r * 31 + c * 7 + round) % 13) as f32 - 6.0);
                let agg = a.spmm(&x);
                let w = Dense::from_fn(24, 24, |r, c| if r == c { 1.5 } else { -0.01 });
                let z = agg.matmul(&w);
                // All ranks computed the same product from the same inputs:
                // the all-reduce of its digest must equal P times one digest.
                let digest = z.sum();
                let mut buf = vec![digest];
                comm.all_reduce_sum(&mut buf);
                assert_eq!(
                    buf[0].to_bits(),
                    (digest * P as f32).to_bits(),
                    "round {round}: ranks computed different kernel results"
                );
                digests.push(buf[0]);

                // Randomized-size all-gather (zero-row payloads included).
                let rows = rng.gen_range(0..5usize);
                let gathered = comm.all_gather(Payload::Dense(Dense::full(rows, 2, me as f32)));
                for (src, p) in gathered.iter().enumerate() {
                    match p {
                        Payload::Dense(d) => {
                            assert_eq!(d.cols(), 2);
                            assert!(d.data().iter().all(|&v| v == src as f32));
                        }
                        other => panic!("expected dense, got {other:?}"),
                    }
                }
                comm.barrier();
            }
            digests
        });
        // Every rank saw the identical all-reduced digest stream.
        for r in 1..P {
            assert_eq!(results[0], results[r], "digest streams diverge on rank {r}");
        }
        streams.push(results.into_iter().next().expect("rank 0"));
    }
    // And the stream itself is transport-invariant, bitwise.
    assert_eq!(streams[0], streams[1], "transports disagree on reductions");
}

#[test]
fn rank_pools_do_not_leak_thread_overrides() {
    // The override installed inside run_ranks' rank threads must not
    // survive into the caller, and the caller's override must propagate in
    // — on either transport.
    let _outer = pool::scoped_threads(Some(5));
    for transport in CommTransport::all() {
        let seen = run_ranks_on(transport, 2, |_comm| pool::effective_threads());
        assert_eq!(
            seen,
            vec![5, 5],
            "caller override should reach rank threads ({})",
            transport.name()
        );
        assert_eq!(pool::effective_threads(), 5);
    }
}
