//! # dgnn-sim
//!
//! The simulated multi-node multi-GPU cluster substrate. The paper's
//! experiments ran on 16 nodes × 8 V100 GPUs; this crate replaces that
//! hardware with two complementary layers:
//!
//! * **Functional**: [`comm::run_ranks`] spawns real rank threads that
//!   exchange real matrices over channels — the NCCL stand-in used by the
//!   distributed trainers for convergence experiments and equivalence
//!   tests. The collectives sit behind the [`comm::Comm`] trait with two
//!   transports ([`comm::SimComm`] mailbox, [`comm::SharedMemComm`]
//!   per-pair lanes, selected by `DGNN_COMM`), bit-identical to each
//!   other by construction.
//! * **Analytic**: [`perf::estimate_epoch`] walks the same execution
//!   schedule over per-snapshot statistics, accumulating simulated time
//!   (bandwidth/latency/throughput model in [`machine::MachineSpec`]) and
//!   memory ([`memory::MemoryTracker`]), which evaluates paper-scale
//!   configurations exactly.

pub mod collective;
pub mod comm;
pub mod machine;
pub mod memory;
pub mod perf;

pub use comm::{
    run_ranks, run_ranks_on, scoped_transport, try_run_ranks, try_run_ranks_on, Comm, CommMark,
    CommTransport, Payload, RankAbort, RankPanic, SharedMemComm, SimComm, TransportGuard,
};
pub use machine::MachineSpec;
pub use memory::{coo_bytes, dense_bytes, MemoryTracker, OutOfMemory};
pub use perf::{estimate_epoch, tune_nb, ModelKind, PerfConfig, PerfReport, Scheme};
