//! The machine model: a multi-node, multi-GPU cluster described by
//! bandwidth, latency, throughput and capacity constants.
//!
//! Defaults approximate the paper's testbed (AiMOS): 16 nodes × 8 NVIDIA
//! V100 (32 GiB HBM), dual 100 Gb EDR InfiniBand between nodes, PCIe
//! host-to-device transfers with pinned memory. The absolute numbers are
//! effective (achieved) rates, not peaks — they are the calibration knobs
//! that make the analytic engine reproduce the *shape* of the paper's
//! results; EXPERIMENTS.md records the calibration.

/// Cluster and device constants used by every cost model.
#[derive(Clone, Copy, Debug)]
pub struct MachineSpec {
    /// GPUs per node (the paper's nodes have 8).
    pub gpus_per_node: usize,
    /// GPU memory capacity in bytes (V100: 32 GiB HBM).
    pub gpu_mem_bytes: u64,
    /// Effective pinned host→device bandwidth, GB/s.
    pub pcie_gbps: f64,
    /// Pageable transfers achieve this fraction of the pinned bandwidth.
    pub pageable_factor: f64,
    /// Fixed latency per host→device transfer call, microseconds.
    pub transfer_latency_us: f64,
    /// Effective dense f32 throughput, GFLOP/s.
    pub dense_gflops: f64,
    /// Effective sparse (SpMM) throughput, GFLOP/s.
    pub sparse_gflops: f64,
    /// Fixed cost per kernel launch, microseconds. This term is what makes
    /// small blocks slow (paper §3.1: "GPU utilization is better and the
    /// latency lower under larger block sizes") and what produces the
    /// superlinear weak scaling of EvolveGCN (paper Fig. 7).
    pub kernel_launch_us: f64,
    /// Effective per-GPU bandwidth for intra-node exchanges, GB/s.
    pub intra_node_gbps: f64,
    /// Effective per-node NIC bandwidth for inter-node exchanges, GB/s
    /// (dual EDR InfiniBand ≈ 25 GB/s shared by the node's 8 GPUs).
    pub inter_node_gbps: f64,
    /// Per-peer message latency in collectives, microseconds.
    pub msg_latency_us: f64,
    /// Bandwidth derating of the irregular vertex-partitioning exchange
    /// (send/recv buffer construction, index maintenance; paper §6.4).
    pub irregular_overhead_factor: f64,
    /// Per-float gather/scatter cost of irregular indexing on the GPU,
    /// nanoseconds (vertex partitioning only).
    pub gather_ns_per_float: f64,
    /// Send/recv buffer construction overhead per (rank pair, timestep) of
    /// the irregular exchange, microseconds (paper §6.4: "irregular
    /// indexing and buffering operations induce significant overheads").
    pub irregular_pair_overhead_us: f64,
}

impl MachineSpec {
    /// AiMOS-like defaults (the paper's testbed).
    pub fn aimos_like() -> Self {
        Self {
            gpus_per_node: 8,
            gpu_mem_bytes: 32 * (1 << 30),
            pcie_gbps: 4.5,
            pageable_factor: 0.4,
            transfer_latency_us: 20.0,
            dense_gflops: 3500.0,
            sparse_gflops: 18.0,
            kernel_launch_us: 9.0,
            intra_node_gbps: 40.0,
            inter_node_gbps: 25.0,
            msg_latency_us: 20.0,
            irregular_overhead_factor: 3.0,
            gather_ns_per_float: 0.9,
            irregular_pair_overhead_us: 40.0,
        }
    }

    /// Number of nodes needed for `p` ranks.
    pub fn nodes_for(&self, p: usize) -> usize {
        p.div_ceil(self.gpus_per_node)
    }

    /// Time to move `bytes` over the host→device link, microseconds.
    pub fn h2d_us(&self, bytes: u64, pinned: bool) -> f64 {
        let bw = if pinned {
            self.pcie_gbps
        } else {
            self.pcie_gbps * self.pageable_factor
        };
        self.transfer_latency_us + bytes as f64 / (bw * 1e3)
    }

    /// Time for `flops` of dense work including one kernel launch,
    /// microseconds.
    pub fn dense_us(&self, flops: f64) -> f64 {
        self.kernel_launch_us + flops / (self.dense_gflops * 1e3)
    }

    /// Time for `flops` of sparse (SpMM) work including one launch,
    /// microseconds.
    pub fn sparse_us(&self, flops: f64) -> f64 {
        self.kernel_launch_us + flops / (self.sparse_gflops * 1e3)
    }
}

impl Default for MachineSpec {
    fn default() -> Self {
        Self::aimos_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counting() {
        let spec = MachineSpec::aimos_like();
        assert_eq!(spec.nodes_for(1), 1);
        assert_eq!(spec.nodes_for(8), 1);
        assert_eq!(spec.nodes_for(9), 2);
        assert_eq!(spec.nodes_for(128), 16);
    }

    #[test]
    fn pinned_beats_pageable() {
        let spec = MachineSpec::aimos_like();
        let bytes = 100 << 20;
        assert!(spec.h2d_us(bytes, true) < spec.h2d_us(bytes, false));
    }

    #[test]
    fn transfer_time_linear_in_bytes() {
        let spec = MachineSpec::aimos_like();
        let t1 = spec.h2d_us(1 << 20, true) - spec.transfer_latency_us;
        let t2 = spec.h2d_us(2 << 20, true) - spec.transfer_latency_us;
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn launch_latency_dominates_tiny_kernels() {
        let spec = MachineSpec::aimos_like();
        // A 1-kFLOP kernel is pure launch latency.
        let t = spec.dense_us(1e3);
        assert!((t - spec.kernel_launch_us) / t < 0.01);
    }
}
