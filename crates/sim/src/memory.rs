//! GPU memory accounting. The original system hits real 32 GiB HBM limits;
//! here a per-rank tracker enforces the same capacity analytically, which is
//! how the harness reproduces the paper's "did not execute on fewer than 8
//! GPUs" blanks (Figures 4 and 5).

/// Byte size of a dense `rows x cols` f32 matrix.
pub fn dense_bytes(rows: usize, cols: usize) -> u64 {
    rows as u64 * cols as u64 * 4
}

/// Byte size of a sparse snapshot held as COO on the device: two int64
/// index coordinates plus one f32 value per edge (PyTorch sparse layout).
pub fn coo_bytes(nnz: u64) -> u64 {
    nnz * 20
}

/// Error returned when an allocation exceeds the device capacity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes already in use.
    pub in_use: u64,
    /// Device capacity.
    pub capacity: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "out of GPU memory: requested {} MiB with {} MiB in use of {} MiB",
            self.requested >> 20,
            self.in_use >> 20,
            self.capacity >> 20
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A simple high-water-mark memory accountant for one simulated GPU.
#[derive(Clone, Debug)]
pub struct MemoryTracker {
    capacity: u64,
    in_use: u64,
    peak: u64,
}

impl MemoryTracker {
    /// A tracker with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        Self {
            capacity,
            in_use: 0,
            peak: 0,
        }
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark in bytes.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Whether an allocation of `bytes` would fit alongside what is already
    /// in use — the admission probe shared by [`MemoryTracker::alloc`] and
    /// external capacity checks (e.g. the `dgnn-store` memory-tier
    /// admission), so callers never duplicate the capacity arithmetic.
    pub fn would_fit(&self, bytes: u64) -> bool {
        // Saturating: a u64::MAX request must read as "does not fit", not
        // wrap around into an accept.
        self.in_use.saturating_add(bytes) <= self.capacity
    }

    /// Attempts to allocate `bytes`; fails when capacity would be exceeded.
    pub fn alloc(&mut self, bytes: u64) -> Result<(), OutOfMemory> {
        if !self.would_fit(bytes) {
            return Err(OutOfMemory {
                requested: bytes,
                in_use: self.in_use,
                capacity: self.capacity,
            });
        }
        self.in_use += bytes;
        self.peak = self.peak.max(self.in_use);
        Ok(())
    }

    /// Releases `bytes`.
    ///
    /// # Panics
    /// Panics when freeing more than is allocated (an accounting bug).
    pub fn free(&mut self, bytes: u64) {
        assert!(
            bytes <= self.in_use,
            "freeing {bytes} with only {} in use",
            self.in_use
        );
        self.in_use -= bytes;
    }

    /// Releases everything (end of a checkpoint block).
    pub fn free_all(&mut self) {
        self.in_use = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut m = MemoryTracker::new(100);
        m.alloc(60).unwrap();
        m.alloc(30).unwrap();
        assert_eq!(m.in_use(), 90);
        m.free(50);
        assert_eq!(m.in_use(), 40);
        assert_eq!(m.peak(), 90);
    }

    #[test]
    fn oom_reports_context() {
        let mut m = MemoryTracker::new(100);
        m.alloc(80).unwrap();
        let err = m.alloc(30).unwrap_err();
        assert_eq!(err.requested, 30);
        assert_eq!(err.in_use, 80);
        assert_eq!(err.capacity, 100);
        // Failed allocation leaves the accounting untouched.
        assert_eq!(m.in_use(), 80);
    }

    #[test]
    fn peak_survives_free_all() {
        let mut m = MemoryTracker::new(1000);
        m.alloc(700).unwrap();
        m.free_all();
        m.alloc(100).unwrap();
        assert_eq!(m.peak(), 700);
    }

    #[test]
    fn would_fit_probe_matches_alloc() {
        let mut m = MemoryTracker::new(100);
        m.alloc(60).unwrap();
        assert!(m.would_fit(40));
        assert!(!m.would_fit(41));
        // The probe never mutates the accounting.
        assert_eq!(m.in_use(), 60);
        // Probe and alloc agree at the exact boundary.
        assert!(m.alloc(40).is_ok());
        assert!(!m.would_fit(1));
        // A request near u64::MAX must not wrap into an accept.
        assert!(!m.would_fit(u64::MAX));
    }

    #[test]
    fn byte_helpers() {
        assert_eq!(dense_bytes(10, 4), 160);
        assert_eq!(coo_bytes(5), 100);
    }

    #[test]
    #[should_panic(expected = "freeing")]
    fn over_free_panics() {
        let mut m = MemoryTracker::new(10);
        m.free(1);
    }
}
