//! The analytic performance engine: walks the exact execution schedule of
//! the distributed checkpointed trainer over per-snapshot *statistics*
//! (sizes, diffs) instead of data, accumulating simulated time on per-rank
//! clocks and bytes on a memory accountant.
//!
//! Because it consumes only [`TemporalStats`], it evaluates paper-scale
//! configurations (billion-edge datasets, 128 GPUs) exactly as the paper
//! ran them, which is how Figures 4, 5, 7 and Table 2 are regenerated. Its
//! schedule (op sequence, transfer plan, collective count) is cross-checked
//! against the functional trainer by an integration test.

use dgnn_graph::stats::TemporalStats;
use dgnn_partition::snapshot_part::SnapshotPartition;

use crate::collective::{all_reduce_us, all_to_all_us, irregular_exchange_us};
use crate::machine::MachineSpec;
use crate::memory::{coo_bytes, dense_bytes};

/// The three dynamic-GNN architectures of the study (paper §5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModelKind {
    /// Concatenate-Dynamic GCN: GCN with skip concat + feature LSTM.
    CdGcn,
    /// EvolveGCN (EGCN-O): per-timestep weights evolved by an LSTM.
    EvolveGcn,
    /// TM-GCN: GCN + parameter-less M-product temporal aggregation.
    TmGcn,
}

impl ModelKind {
    /// Display name matching the paper's plots.
    pub fn name(&self) -> &'static str {
        match self {
            ModelKind::CdGcn => "cdgcn",
            ModelKind::EvolveGcn => "egcn",
            ModelKind::TmGcn => "tmgcn",
        }
    }

    /// Whether the temporal component needs the two all-to-all
    /// redistributions (EvolveGCN applies its LSTM to replicated weight
    /// matrices and is communication-free, paper §5.5).
    pub fn uses_redistribution(&self) -> bool {
        !matches!(self, ModelKind::EvolveGcn)
    }

    /// All three models.
    pub fn all() -> [ModelKind; 3] {
        [ModelKind::CdGcn, ModelKind::EvolveGcn, ModelKind::TmGcn]
    }
}

/// Distribution scheme being simulated.
#[derive(Clone, Debug)]
pub enum Scheme {
    /// Snapshot partitioning with all-to-all redistribution (paper §4.2).
    Snapshot,
    /// Hypergraph-based vertex partitioning; `spmm_units` is the exact
    /// `Σ_t Σ_v (λ_t(v) − 1)` volume of the partition in feature vectors
    /// per SpMM application (computed by `dgnn-partition`).
    Vertex {
        /// Communication volume per SpMM pass, in feature-vector units.
        spmm_units: u64,
    },
}

/// One experiment configuration for the engine.
#[derive(Clone, Debug)]
pub struct PerfConfig {
    /// Model architecture.
    pub model: ModelKind,
    /// Statistics of the (already smoothed) adjacency sequence.
    pub stats: TemporalStats,
    /// Input feature width (the paper uses in/out degrees: 2).
    pub input_f: usize,
    /// Hidden/embedding width (the paper sets intermediate lengths to 6).
    pub hidden: usize,
    /// M-product window (TM-GCN temporal flops).
    pub mprod_window: usize,
    /// Number of ranks (GPUs).
    pub p: usize,
    /// Checkpoint blocks; `0` = non-checkpoint baseline (everything
    /// resident, snapshots transferred once).
    pub nb: usize,
    /// Graph-difference snapshot transfer on/off.
    pub gd: bool,
    /// Pinned host memory on/off.
    pub pinned: bool,
    /// Pre-compute `Â·X` of the first layer (paper §5.5).
    pub precompute_first_layer: bool,
    /// Overlap the redistribution all-to-alls with the GCN/temporal compute
    /// of neighbouring snapshots (the pipelining sketched in paper §6.5,
    /// "Computation-Communication Overlap"). Communication can hide behind
    /// at most the same layer-block's compute.
    pub overlap: bool,
    /// Machine constants.
    pub machine: MachineSpec,
    /// Distribution scheme.
    pub scheme: Scheme,
}

impl PerfConfig {
    /// A snapshot-partitioned configuration with paper defaults.
    pub fn new(model: ModelKind, stats: TemporalStats, p: usize, nb: usize) -> Self {
        Self {
            model,
            stats,
            input_f: 2,
            hidden: 6,
            mprod_window: 5,
            p,
            nb,
            gd: true,
            pinned: true,
            precompute_first_layer: true,
            overlap: false,
            machine: MachineSpec::aimos_like(),
            scheme: Scheme::Snapshot,
        }
    }
}

/// Simulated per-epoch timing and memory of one configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct PerfReport {
    /// CPU→GPU snapshot (adjacency COO / graph-difference) transfer time,
    /// ms — the payload the GD encoding applies to (paper Fig. 4).
    pub transfer_ms: f64,
    /// CPU→GPU dense feature (or pre-aggregated Ã·X) transfer time, ms —
    /// independent of the snapshot encoding.
    pub feature_ms: f64,
    /// GPU compute time, ms.
    pub compute_ms: f64,
    /// Inter-GPU communication time, ms.
    pub comm_ms: f64,
    /// Per-rank peak memory, bytes.
    pub peak_mem_bytes: u64,
    /// True when the configuration exceeds GPU memory (the paper's blank
    /// data points).
    pub oom: bool,
}

impl PerfReport {
    /// Total epoch time in ms.
    pub fn total_ms(&self) -> f64 {
        self.transfer_ms + self.feature_ms + self.compute_ms + self.comm_ms
    }

    /// Snapshot + feature transfer time (paper Fig. 5's "transfer" split).
    pub fn all_transfer_ms(&self) -> f64 {
        self.transfer_ms + self.feature_ms
    }
}

/// Layer widths of the two-layer framework, per model (paper §5).
struct LayerShape {
    /// GCN input width.
    gcn_in: usize,
    /// Width leaving the GCN component (CD-GCN concatenates the skip).
    gcn_out: usize,
    /// Width leaving the temporal component.
    temporal_out: usize,
}

fn layer_shapes(model: ModelKind, input_f: usize, h: usize) -> Vec<LayerShape> {
    match model {
        ModelKind::TmGcn | ModelKind::EvolveGcn => vec![
            LayerShape {
                gcn_in: input_f,
                gcn_out: h,
                temporal_out: h,
            },
            LayerShape {
                gcn_in: h,
                gcn_out: h,
                temporal_out: h,
            },
        ],
        ModelKind::CdGcn => vec![
            LayerShape {
                gcn_in: input_f,
                gcn_out: input_f + h,
                temporal_out: h,
            },
            LayerShape {
                gcn_in: h,
                gcn_out: 2 * h,
                temporal_out: h,
            },
        ],
    }
}

/// GCN compute time for one snapshot at one layer, µs (forward).
fn gcn_us(cfg: &PerfConfig, layer: usize, shape: &LayerShape, nnz: u64, rows: u64) -> f64 {
    let spec = &cfg.machine;
    let mut us = 0.0;
    // Sparse aggregation Â·X — skipped at layer 1 when pre-computed.
    if !(layer == 0 && cfg.precompute_first_layer) {
        us += spec.sparse_us(2.0 * nnz as f64 * shape.gcn_in as f64);
    }
    // Dense X·W.
    us += spec.dense_us(2.0 * rows as f64 * shape.gcn_in as f64 * cfg.hidden as f64);
    // Activation (+ concat copy for CD-GCN).
    us += spec.dense_us(rows as f64 * shape.gcn_out as f64);
    if cfg.model == ModelKind::CdGcn {
        us += spec.dense_us(rows as f64 * shape.gcn_out as f64);
    }
    us
}

/// EvolveGCN's weight-LSTM step on the tiny weight matrix (~10 small
/// kernels). The chain is *replicated*: every rank evolves all timesteps of
/// the block locally (paper §5.5), so this cost does not shrink with P.
fn egcn_chain_step_us(cfg: &PerfConfig, shape: &LayerShape) -> f64 {
    let spec = &cfg.machine;
    let wf = 8.0 * (shape.gcn_in * cfg.hidden * cfg.hidden) as f64;
    10.0 * spec.kernel_launch_us + wf / (spec.dense_gflops * 1e3)
}

/// Temporal compute time for one timestep on a vertex chunk, µs (forward).
fn temporal_us(cfg: &PerfConfig, shape: &LayerShape, chunk_rows: u64) -> f64 {
    let spec = &cfg.machine;
    let h = cfg.hidden as f64;
    let rows = chunk_rows as f64;
    match cfg.model {
        ModelKind::CdGcn => {
            // LSTM: two gate GEMMs + ~8 elementwise kernels.
            let flops =
                2.0 * rows * (shape.gcn_out as f64 * 4.0 * h + h * 4.0 * h) + 8.0 * rows * h;
            10.0 * spec.kernel_launch_us + flops / (spec.dense_gflops * 1e3)
        }
        ModelKind::TmGcn => {
            // Banded linear combination of up to `w` frames.
            let flops = 2.0 * rows * shape.gcn_out as f64 * cfg.mprod_window as f64;
            spec.dense_us(flops)
        }
        ModelKind::EvolveGcn => 0.0,
    }
}

/// Peak activation bytes per owned timestep of the GCN phases (both layers)
/// plus per-block-timestep temporal activations on the vertex chunk. The
/// 1.5 factor approximates the transient gradient copies of backprop.
fn activation_bytes_per_t(cfg: &PerfConfig, n: u64) -> (u64, u64) {
    let shapes = layer_shapes(cfg.model, cfg.input_f, cfg.hidden);
    let mut gcn: u64 = 0;
    for s in &shapes {
        // spmm out + linear out + activation out (+ concat for CD-GCN).
        let widths = s.gcn_in
            + cfg.hidden
            + s.gcn_out
            + if cfg.model == ModelKind::CdGcn {
                s.gcn_out
            } else {
                0
            };
        gcn += dense_bytes(n as usize, widths);
    }
    let chunk = n / cfg.p as u64;
    let temporal: u64 = match cfg.model {
        ModelKind::CdGcn => shapes
            .iter()
            .map(|s| dense_bytes(chunk as usize, 4 * cfg.hidden + 8 * cfg.hidden + s.gcn_out))
            .sum(),
        ModelKind::TmGcn => shapes
            .iter()
            .map(|s| dense_bytes(chunk as usize, s.gcn_out + cfg.hidden))
            .sum(),
        ModelKind::EvolveGcn => 0,
    };
    ((gcn as f64 * 1.5) as u64, (temporal as f64 * 1.5) as u64)
}

/// Per-block carry (π) bytes stored by checkpointing: LSTM states or the
/// M-product window on the vertex chunk, per layer.
fn carry_bytes(cfg: &PerfConfig, n: u64) -> u64 {
    let chunk = (n / cfg.p as u64) as usize;
    let layers = 2u64;
    match cfg.model {
        ModelKind::CdGcn => layers * 2 * dense_bytes(chunk, cfg.hidden),
        ModelKind::TmGcn => {
            layers * cfg.mprod_window.saturating_sub(1) as u64 * dense_bytes(chunk, cfg.hidden)
        }
        // EvolveGCN carries only the tiny weight-LSTM state.
        ModelKind::EvolveGcn => layers * 2 * dense_bytes(cfg.input_f.max(cfg.hidden), cfg.hidden),
    }
}

/// Naive snapshot transfer bytes: full COO payload.
fn naive_snapshot_bytes(cfg: &PerfConfig, t: usize) -> u64 {
    coo_bytes(cfg.stats.nnz[t])
}

/// Graph-difference transfer bytes of snapshot `t` given `t-1` is resident.
fn gd_snapshot_bytes(cfg: &PerfConfig, t: usize) -> u64 {
    debug_assert!(t > 0);
    let edits = cfg.stats.ext_prev[t - 1] + cfg.stats.ext_next[t - 1];
    edits * 16 + cfg.stats.nnz[t] * 4
}

/// Dense per-timestep feature payload (raw X or pre-aggregated Ã·X).
fn feature_bytes(cfg: &PerfConfig, n: u64) -> u64 {
    dense_bytes(n as usize, cfg.input_f)
}

/// Simulates one training epoch and reports the time breakdown and memory.
pub fn estimate_epoch(cfg: &PerfConfig) -> PerfReport {
    let spec = &cfg.machine;
    let t_total = cfg.stats.t;
    let n = cfg.stats.n;
    let p = cfg.p;
    let shapes = layer_shapes(cfg.model, cfg.input_f, cfg.hidden);
    let checkpointed = cfg.nb >= 1;
    let nb = cfg.nb.max(1);
    let part = SnapshotPartition::block_wise(t_total, p, nb);
    let blocks = dgnn_partition::balanced_ranges(t_total, nb);

    // Per-rank clocks for each component.
    let mut transfer = vec![0f64; p];
    let mut feature = vec![0f64; p];
    let mut compute = vec![0f64; p];
    let mut comm_total = 0f64;

    let vertex_units = match cfg.scheme {
        Scheme::Snapshot => None,
        Scheme::Vertex { spmm_units } => Some(spmm_units),
    };

    // --- Memory ---------------------------------------------------------
    let (gcn_act, temporal_act) = activation_bytes_per_t(cfg, n);
    let mut peak_mem: u64 = 0;
    for (bi, block) in blocks.iter().enumerate() {
        let _ = bi;
        let mut block_peak: u64 = 0;
        for rank in 0..p {
            let mut bytes: u64 = 0;
            let mut block_steps = 0u64;
            for ti in part.timesteps_of(rank) {
                if block.contains(&ti) {
                    let full = naive_snapshot_bytes(cfg, ti) + feature_bytes(cfg, n);
                    let owned_bytes = match vertex_units {
                        // Vertex scheme splits every snapshot's rows.
                        Some(_) => full / p as u64,
                        None => full,
                    };
                    bytes += owned_bytes + gcn_act;
                    block_steps += 1;
                }
            }
            if vertex_units.is_some() {
                // Every rank touches every block timestep (rows split).
                let all_steps = block.len() as u64;
                bytes += all_steps * (gcn_act / p as u64);
                bytes += all_steps * temporal_act;
                let _ = block_steps;
            } else {
                bytes += block.len() as u64 * temporal_act;
            }
            block_peak = block_peak.max(bytes);
        }
        peak_mem = peak_mem.max(block_peak);
    }
    if checkpointed {
        peak_mem += nb as u64 * carry_bytes(cfg, n);
    } else {
        // Baseline: all blocks resident simultaneously.
        let mut total: u64 = 0;
        for rank in 0..p {
            let mut bytes: u64 = 0;
            for ti in part.timesteps_of(rank) {
                bytes += naive_snapshot_bytes(cfg, ti) + feature_bytes(cfg, n) + gcn_act;
            }
            bytes += (t_total as u64) * temporal_act;
            total = total.max(bytes);
        }
        peak_mem = total;
    }
    let oom = peak_mem > spec.gpu_mem_bytes;

    // --- Time -----------------------------------------------------------
    // Transfer passes: checkpointing re-transfers during the backward rerun.
    let transfer_passes = if checkpointed { 2 } else { 1 };

    for block in &blocks {
        // Phase 1: snapshot transfer for this block, per rank.
        for rank in 0..p {
            let runs = part.runs_of(rank);
            for run in runs {
                // Restrict the run to this block.
                let start = run.start.max(block.start);
                let end = run.end.min(block.end);
                if start >= end {
                    continue;
                }
                for ti in start..end {
                    let (adj_bytes, feat_bytes) = match vertex_units {
                        Some(_) => (
                            naive_snapshot_bytes(cfg, ti) / p as u64,
                            feature_bytes(cfg, n) / p as u64,
                        ),
                        None => {
                            let adj = if cfg.gd && ti > start {
                                gd_snapshot_bytes(cfg, ti)
                            } else {
                                naive_snapshot_bytes(cfg, ti)
                            };
                            (adj, feature_bytes(cfg, n))
                        }
                    };
                    transfer[rank] += transfer_passes as f64 * spec.h2d_us(adj_bytes, cfg.pinned);
                    feature[rank] += transfer_passes as f64 * spec.h2d_us(feat_bytes, cfg.pinned);
                }
            }
        }

        // Phase 2: forward + backward compute and communication, per layer.
        // Backward re-runs the forward (checkpoint) and then propagates
        // gradients: compute ≈ 3x forward inside a block.
        let compute_factor = if checkpointed { 3.0 } else { 2.0 };
        match vertex_units {
            None => {
                for (li, shape) in shapes.iter().enumerate() {
                    // EvolveGCN's replicated weight chain: every rank walks
                    // every block timestep.
                    if cfg.model == ModelKind::EvolveGcn {
                        let chain = block.len() as f64 * egcn_chain_step_us(cfg, shape);
                        for c in compute.iter_mut() {
                            *c += compute_factor * chain;
                        }
                    }
                    // GCN phase: each rank computes its owned timesteps.
                    let mut layer_block_compute = 0.0f64;
                    for rank in 0..p {
                        let mut us = 0.0;
                        for ti in part.timesteps_of(rank) {
                            if block.contains(&ti) {
                                us += gcn_us(cfg, li, shape, cfg.stats.nnz[ti], n);
                            }
                        }
                        compute[rank] += compute_factor * us;
                        layer_block_compute = layer_block_compute.max(compute_factor * us);
                    }
                    if cfg.model.uses_redistribution() {
                        // Redistribution 1: GCN outputs to vertex chunks.
                        let local_t = block.len().div_ceil(p);
                        let chunk = (n as usize).div_ceil(p);
                        let pair1 = dense_bytes(chunk, shape.gcn_out) * local_t as u64;
                        // Temporal phase on vertex chunks, all block steps.
                        let mut us = 0.0;
                        for _ in block.clone() {
                            us += temporal_us(cfg, shape, (n / p as u64).max(1));
                        }
                        for c in compute.iter_mut() {
                            *c += compute_factor * us;
                        }
                        layer_block_compute += compute_factor * us;
                        // Redistribution 2: temporal outputs back.
                        let pair2 = dense_bytes(chunk, shape.temporal_out) * local_t as u64;
                        // Forward: 2 all-to-alls; the checkpointed backward
                        // re-runs the forward (2 more) before the 2 reverse
                        // redistributions; the non-checkpoint baseline skips
                        // the rerun.
                        let passes = if checkpointed { 3.0 } else { 2.0 };
                        let mut comm = passes
                            * (all_to_all_us(spec, p, pair1) + all_to_all_us(spec, p, pair2));
                        if cfg.overlap {
                            // Per-snapshot pipelining hides communication
                            // behind this layer-block's compute; only the
                            // excess stays on the critical path.
                            comm = (comm - layer_block_compute).max(comm * 0.1);
                        }
                        comm_total += comm;
                        let _ = li;
                    }
                }
            }
            Some(units) => {
                // Vertex partitioning: rows of every timestep are split, so
                // each rank runs a kernel per timestep per layer with 1/P of
                // the flops; the SpMM needs the irregular neighbor exchange.
                for (li, shape) in shapes.iter().enumerate() {
                    let mut us = 0.0;
                    if cfg.model == ModelKind::EvolveGcn {
                        us += block.len() as f64 * egcn_chain_step_us(cfg, shape);
                    }
                    for ti in block.clone() {
                        us += gcn_us(cfg, li, shape, cfg.stats.nnz[ti] / p as u64, n / p as u64);
                        us += temporal_us(cfg, shape, n / p as u64);
                    }
                    for c in compute.iter_mut() {
                        *c += compute_factor * us;
                    }
                    // Exchange volume for this block and layer, forward +
                    // backward.
                    let block_units = units as f64 * block.len() as f64 / t_total as f64;
                    let bytes = (block_units * shape.gcn_in as f64 * 4.0) as u64;
                    let pair_events = (block.len() * (p - 1)) as u64;
                    comm_total += 2.0 * irregular_exchange_us(spec, p, bytes, pair_events);
                }
            }
        }
    }

    // EvolveGCN (and vertex partitioning) aggregate parameter gradients at
    // epoch end; the payload is tiny.
    let param_floats = 8 * cfg.hidden * cfg.hidden * 2 + cfg.input_f * cfg.hidden;
    comm_total += all_reduce_us(spec, p, 4 * param_floats as u64);

    let transfer_us = transfer.iter().cloned().fold(0.0, f64::max);
    let feature_us = feature.iter().cloned().fold(0.0, f64::max);
    let compute_us = compute.iter().cloned().fold(0.0, f64::max);
    PerfReport {
        transfer_ms: transfer_us / 1e3,
        feature_ms: feature_us / 1e3,
        compute_ms: compute_us / 1e3,
        comm_ms: comm_total / 1e3,
        peak_mem_bytes: peak_mem,
        oom,
    }
}

/// Picks the block count with the best simulated epoch time that fits in
/// GPU memory (the paper tunes `nb` the same way, §3.1). Returns `None`
/// when no candidate fits.
pub fn tune_nb(cfg: &PerfConfig) -> Option<(usize, PerfReport)> {
    let mut best: Option<(usize, PerfReport)> = None;
    for nb in [1usize, 2, 4, 8, 16, 32, 64] {
        if nb > cfg.stats.t {
            break;
        }
        let mut c = cfg.clone();
        c.nb = nb;
        let report = estimate_epoch(&c);
        if report.oom {
            continue;
        }
        match &best {
            Some((_, b)) if b.total_ms() <= report.total_ms() => {}
            _ => best = Some((nb, report)),
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use dgnn_graph::stats::Smoothing;

    fn stats(t: usize, n: u64, m: f64, rho: f64, w: usize) -> TemporalStats {
        let smoothing = if w <= 1 {
            Smoothing::None
        } else {
            Smoothing::MProduct(w)
        };
        TemporalStats::churn_closed_form(n, t, m, rho, smoothing)
    }

    #[test]
    fn gd_reduces_transfer_time() {
        // P=1 so each block is one long run: 15 of 16 snapshots ship as
        // diffs.
        let st = stats(64, 100_000, 500_000.0, 0.2, 8);
        let base = PerfConfig {
            gd: false,
            ..PerfConfig::new(ModelKind::TmGcn, st.clone(), 1, 4)
        };
        let gd = PerfConfig {
            gd: true,
            ..PerfConfig::new(ModelKind::TmGcn, st, 1, 4)
        };
        let rb = estimate_epoch(&base);
        let rg = estimate_epoch(&gd);
        assert!(rg.transfer_ms < rb.transfer_ms);
        let speedup = rb.transfer_ms / rg.transfer_ms;
        assert!(speedup > 2.0 && speedup < 5.0, "speedup {speedup}");
    }

    #[test]
    fn gd_gains_shrink_with_p() {
        let st = stats(64, 100_000, 500_000.0, 0.2, 8);
        let ratio = |p: usize| {
            let base = PerfConfig {
                gd: false,
                ..PerfConfig::new(ModelKind::TmGcn, st.clone(), p, 4)
            };
            let gd = PerfConfig {
                gd: true,
                ..PerfConfig::new(ModelKind::TmGcn, st.clone(), p, 4)
            };
            estimate_epoch(&base).transfer_ms / estimate_epoch(&gd).transfer_ms
        };
        assert!(ratio(1) > ratio(8), "P=1 {} vs P=8 {}", ratio(1), ratio(8));
    }

    #[test]
    fn strong_scaling_improves_total_time() {
        // Each P tunes its own block count, as the paper does (§3.1).
        let st = stats(128, 500_000, 2_000_000.0, 0.2, 10);
        let time = |p: usize| {
            let cfg = PerfConfig::new(ModelKind::TmGcn, st.clone(), p, 1);
            tune_nb(&cfg).expect("feasible").1.total_ms()
        };
        assert!(time(8) < time(1));
        assert!(time(64) < time(8));
    }

    #[test]
    fn node_boundary_dip() {
        // Speedup per added GPU drops when crossing 8 GPUs (paper Fig. 5).
        let st = stats(128, 500_000, 2_000_000.0, 0.2, 10);
        let time = |p: usize| {
            estimate_epoch(&PerfConfig::new(ModelKind::TmGcn, st.clone(), p, 4)).total_ms()
        };
        let eff_8 = time(1) / time(8) / 8.0;
        let eff_16 = time(1) / time(16) / 16.0;
        assert!(eff_16 < eff_8, "efficiency should dip at the node boundary");
    }

    #[test]
    fn evolvegcn_has_negligible_comm() {
        let st = stats(64, 100_000, 500_000.0, 0.2, 1);
        let r = estimate_epoch(&PerfConfig::new(ModelKind::EvolveGcn, st, 16, 4));
        // Only the tiny parameter all-reduce: bounded in absolute terms and
        // a small fraction of the epoch.
        assert!(r.comm_ms < 2.0, "comm {}", r.comm_ms);
        assert!(
            r.comm_ms < 0.2 * r.total_ms(),
            "comm {} total {}",
            r.comm_ms,
            r.total_ms()
        );
    }

    #[test]
    fn baseline_ooms_where_checkpoint_fits() {
        // A large configuration: checkpointing fits, the baseline does not.
        let st = stats(200, 1_000_000, 5_500_000.0, 0.2, 40);
        let ck = estimate_epoch(&PerfConfig::new(ModelKind::TmGcn, st.clone(), 1, 16));
        let base = estimate_epoch(&PerfConfig {
            nb: 0,
            ..PerfConfig::new(ModelKind::TmGcn, st, 1, 0)
        });
        assert!(base.oom, "baseline should exceed 32 GiB");
        assert!(
            !ck.oom,
            "checkpointing should fit: {} GiB",
            ck.peak_mem_bytes >> 30
        );
    }

    #[test]
    fn more_blocks_less_memory_more_time() {
        let st = stats(128, 200_000, 1_000_000.0, 0.2, 8);
        let at = |nb: usize| estimate_epoch(&PerfConfig::new(ModelKind::TmGcn, st.clone(), 2, nb));
        let few = at(2);
        let many = at(32);
        assert!(many.peak_mem_bytes < few.peak_mem_bytes);
        assert!(many.total_ms() > few.total_ms());
    }

    #[test]
    fn vertex_scheme_costs_more_at_scale() {
        // Realistic λ−1 for this density at P=64 is ~16 (smoothed degree
        // ~22, parts mostly distinct).
        let st = stats(128, 500_000, 2_000_000.0, 0.2, 10);
        let snapshot = estimate_epoch(&PerfConfig::new(ModelKind::TmGcn, st.clone(), 64, 4));
        let vertex = estimate_epoch(&PerfConfig {
            scheme: Scheme::Vertex {
                spmm_units: 500_000 * 128 * 16,
            },
            gd: false,
            ..PerfConfig::new(ModelKind::TmGcn, st, 64, 4)
        });
        assert!(vertex.total_ms() > snapshot.total_ms());
    }

    #[test]
    fn tune_nb_returns_feasible_best() {
        let st = stats(200, 1_000_000, 5_500_000.0, 0.2, 40);
        let cfg = PerfConfig::new(ModelKind::TmGcn, st, 8, 1);
        let (nb, report) = tune_nb(&cfg).expect("some nb should fit");
        assert!(!report.oom);
        assert!(nb >= 1);
    }
}
