//! Cost models for the collective operations of the distributed trainers.
//!
//! The topology follows the paper's analysis (§6.3): nodes hold
//! `gpus_per_node` GPUs; with `P ≤ 8` ranks everything stays intra-node;
//! beyond one node, a fraction `(K−1)/K` of the all-to-all volume crosses
//! the interconnect (`K = P/8` nodes) whose per-node NIC is the bottleneck,
//! while bisection bandwidth grows with `K`. This is what produces the
//! paper's speedup dip when crossing the node boundary at `P = 16`.

use crate::machine::MachineSpec;

/// Time in microseconds for an all-to-all exchange where every rank sends
/// `bytes_per_pair` to each of the other `p − 1` ranks.
pub fn all_to_all_us(spec: &MachineSpec, p: usize, bytes_per_pair: u64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    let g = spec.gpus_per_node;
    let latency = (p - 1) as f64 * spec.msg_latency_us;
    if p <= g {
        // All traffic is intra-node; each GPU drains its egress at the
        // intra-node rate.
        let egress = (p - 1) as f64 * bytes_per_pair as f64;
        return latency + egress / (spec.intra_node_gbps * 1e3);
    }
    // Intra-node portion: g−1 peers per rank.
    let intra = (g - 1) as f64 * bytes_per_pair as f64 / (spec.intra_node_gbps * 1e3);
    // Inter-node portion: each node's g ranks send to the p−g ranks outside,
    // bottlenecked by the node NIC.
    let node_egress = g as f64 * (p - g) as f64 * bytes_per_pair as f64;
    let inter = node_egress / (spec.inter_node_gbps * 1e3);
    latency + intra.max(inter)
}

/// Time in microseconds for a ring all-reduce of `bytes` per rank.
pub fn all_reduce_us(spec: &MachineSpec, p: usize, bytes: u64) -> f64 {
    if p <= 1 {
        return 0.0;
    }
    // Ring moves 2·(p−1)/p · bytes over the slowest link on the ring.
    let link_gbps = if p <= spec.gpus_per_node {
        spec.intra_node_gbps
    } else {
        // One NIC carries the ring traffic of a node's worth of ranks.
        spec.inter_node_gbps / spec.gpus_per_node as f64
    };
    let moved = 2.0 * (p - 1) as f64 / p as f64 * bytes as f64;
    2.0 * (p - 1) as f64 * spec.msg_latency_us + moved / (link_gbps * 1e3)
}

/// Time in microseconds for the irregular neighbor exchange of vertex
/// partitioning moving `total_bytes` across all rank pairs over
/// `pair_events` (rank pair, timestep) combinations, including the
/// buffer-construction and GPU gather/scatter overheads (paper §6.4).
pub fn irregular_exchange_us(
    spec: &MachineSpec,
    p: usize,
    total_bytes: u64,
    pair_events: u64,
) -> f64 {
    if p <= 1 || (total_bytes == 0 && pair_events == 0) {
        return 0.0;
    }
    let per_rank = total_bytes as f64 / p as f64;
    let bw = if p <= spec.gpus_per_node {
        spec.intra_node_gbps
    } else {
        spec.inter_node_gbps / spec.gpus_per_node as f64
    };
    let wire = per_rank * spec.irregular_overhead_factor / (bw * 1e3);
    // Index gather/scatter on the GPU for every float moved.
    let gather = (total_bytes as f64 / 4.0 / p as f64) * spec.gather_ns_per_float * 1e-3;
    // Send/recv buffer construction per peer per timestep — the term that
    // grows with P and degrades vertex partitioning at scale.
    let buffers = pair_events as f64 * spec.irregular_pair_overhead_us;
    let latency = (p - 1) as f64 * spec.msg_latency_us;
    latency + wire + gather + buffers
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> MachineSpec {
        MachineSpec::aimos_like()
    }

    #[test]
    fn single_rank_is_free() {
        assert_eq!(all_to_all_us(&spec(), 1, 1 << 20), 0.0);
        assert_eq!(all_reduce_us(&spec(), 1, 1 << 20), 0.0);
        assert_eq!(irregular_exchange_us(&spec(), 1, 1 << 20, 4), 0.0);
    }

    #[test]
    fn node_boundary_slows_all_to_all() {
        // Fixed total volume: per-pair bytes shrink as p grows.
        let total: u64 = 1 << 30;
        let t = |p: usize| {
            let pair = total / (p as u64 * (p as u64 - 1));
            all_to_all_us(&spec(), p, pair)
        };
        // Within a node, more ranks with fixed total volume is faster.
        assert!(t(8) < t(4));
        // Crossing the node boundary costs: the paper's P=16 dip.
        assert!(t(16) > t(8), "t(16)={} t(8)={}", t(16), t(8));
        // Adding nodes grows bisection bandwidth again.
        assert!(t(128) < t(16));
    }

    #[test]
    fn all_to_all_scales_with_bytes() {
        let s = spec();
        let small = all_to_all_us(&s, 8, 1 << 20);
        let large = all_to_all_us(&s, 8, 1 << 24);
        assert!(large > small * 8.0);
    }

    #[test]
    fn all_reduce_grows_mildly_with_p() {
        let s = spec();
        let bytes = 1 << 20;
        let t8 = all_reduce_us(&s, 8, bytes);
        let t64 = all_reduce_us(&s, 64, bytes);
        assert!(t64 > t8);
        // Volume term is bounded by 2x bytes; growth is latency-driven.
        assert!(t64 < t8 * 40.0);
    }

    #[test]
    fn irregular_costs_more_than_regular() {
        let s = spec();
        let p = 16;
        let total: u64 = 1 << 28;
        let pair = total / (p as u64 * (p as u64 - 1));
        assert!(irregular_exchange_us(&s, p, total, 64) > all_to_all_us(&s, p, pair));
    }
}
