//! The communication layer: rank threads exchanging real data through
//! channels — the NCCL stand-in used by the distributed trainers.
//!
//! Since PR 10 the communicator is a *trait* ([`Comm`]) with two
//! transports behind it:
//!
//! * [`SimComm`] — the original mailbox communicator: every rank owns one
//!   inbox channel that all peers share, with an out-of-order buffer in
//!   front of it. This is the cost-model-friendly layout (one queue per
//!   rank, like a NIC RX ring).
//! * [`SharedMemComm`] — a real shared-memory transport: every *ordered
//!   pair* of ranks owns a dedicated lane, so rank threads exchange owned
//!   buffers peer-to-peer with no shared inbox contention.
//!
//! Both implement the same collectives (`all_to_all`, `all_reduce_sum`,
//! `broadcast`, `all_gather`, `barrier`) through one shared skeleton, so
//! the **determinism contract** holds on either transport: reductions
//! combine contributions in fixed rank order 0..P−1, collective matching
//! uses a per-rank monotone operation counter (out-of-order arrivals are
//! buffered and re-ordered), and volume accounting counts the same
//! payload bytes per send. Results — loss streams, transfer/comm
//! accounting, final parameters — are bit-identical across transports,
//! rank counts, and thread counts; `tests/transport_equivalence.rs` pins
//! this against the golden captures.
//!
//! Transport selection: [`run_ranks`] resolves a thread-local override
//! installed by [`scoped_transport`], then the `DGNN_COMM` environment
//! variable (`sim`/`shm`), defaulting to [`CommTransport::Sim`].
//!
//! Failure semantics: a rank panicking mid-collective must not strand its
//! peers in a blocking receive. Every blocked receive polls a shared
//! poison flag; when a rank unwinds, its peers abort with a [`RankAbort`]
//! payload, and [`try_run_ranks`] surfaces the *originating* rank's panic
//! as a typed [`RankPanic`] instead of deadlocking. [`run_ranks`] resumes
//! the original payload, so panics propagate to the caller exactly as a
//! plain `std::thread` join would — identically on both transports.

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use dgnn_telemetry::trace;
use dgnn_tensor::{Csr, Dense};

/// Message payloads the trainers exchange.
#[derive(Clone, Debug)]
pub enum Payload {
    /// A dense matrix (feature chunks).
    Dense(Dense),
    /// A flat float vector (gradient all-reduce).
    Floats(Vec<f32>),
    /// A sparse matrix (snapshot shipping in the hybrid scheme).
    Sparse(Csr),
    /// Synchronisation-only message.
    Empty,
}

impl Payload {
    fn bytes(&self) -> u64 {
        match self {
            Payload::Dense(d) => 4 * d.len() as u64,
            Payload::Floats(f) => 4 * f.len() as u64,
            Payload::Sparse(s) => 20 * s.nnz() as u64,
            Payload::Empty => 0,
        }
    }
}

struct Msg {
    from: usize,
    tag: u64,
    payload: Payload,
}

// Collective ops and point-to-point ops use disjoint tag spaces.
const COLLECTIVE_BIT: u64 = 1 << 63;

/// How long a blocked receive waits before re-checking the poison flag.
/// Purely a failure-detection latency: on the happy path a pending
/// message returns immediately.
const ABORT_POLL: Duration = Duration::from_millis(2);

/// Environment variable selecting the transport (`sim` or `shm`).
pub const ENV_COMM: &str = "DGNN_COMM";

/// Which communicator implementation `run_ranks` builds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommTransport {
    /// [`SimComm`]: one shared inbox per rank (the original communicator).
    Sim,
    /// [`SharedMemComm`]: a dedicated lane per ordered rank pair.
    SharedMem,
}

impl CommTransport {
    /// Both transports, for sweeping tests/benches.
    pub fn all() -> [CommTransport; 2] {
        [CommTransport::Sim, CommTransport::SharedMem]
    }

    /// Short name, matching the accepted `DGNN_COMM` values.
    pub fn name(self) -> &'static str {
        match self {
            CommTransport::Sim => "sim",
            CommTransport::SharedMem => "shm",
        }
    }

    /// Resolves the ambient transport: a [`scoped_transport`] override on
    /// this thread wins, then the `DGNN_COMM` environment variable (read
    /// once per process), then [`CommTransport::Sim`].
    ///
    /// # Panics
    /// On an unrecognised `DGNN_COMM` value (anything but `sim`/`shm`).
    pub fn from_env() -> Self {
        if let Some(t) = TRANSPORT_OVERRIDE.with(Cell::get) {
            return t;
        }
        static CACHE: OnceLock<Option<CommTransport>> = OnceLock::new();
        CACHE
            .get_or_init(|| match std::env::var(ENV_COMM) {
                Ok(v) => match v.trim() {
                    "" => None,
                    "sim" => Some(CommTransport::Sim),
                    "shm" => Some(CommTransport::SharedMem),
                    other => panic!("{ENV_COMM} must be `sim` or `shm`, got {other:?}"),
                },
                Err(_) => None,
            })
            .unwrap_or(CommTransport::Sim)
    }
}

thread_local! {
    static TRANSPORT_OVERRIDE: Cell<Option<CommTransport>> = const { Cell::new(None) };
}

/// RAII guard restoring the previous per-thread transport override on drop.
pub struct TransportGuard {
    prev: Option<CommTransport>,
}

/// Installs a per-thread transport override for the guard's lifetime:
/// [`run_ranks`] calls under the guard use `transport` regardless of
/// `DGNN_COMM`. The equivalence suites use this to run the same entry
/// point on both transports inside one process.
pub fn scoped_transport(transport: CommTransport) -> TransportGuard {
    TransportGuard {
        prev: TRANSPORT_OVERRIDE.with(|o| o.replace(Some(transport))),
    }
}

impl Drop for TransportGuard {
    fn drop(&mut self) {
        TRANSPORT_OVERRIDE.with(|o| o.set(self.prev));
    }
}

/// A mark taken by [`Comm::mark`]; scopes byte-volume and collective
/// busy/wait-time accounting to the strategy/epoch that holds it.
#[derive(Clone, Copy, Debug)]
pub struct CommMark {
    bytes: u64,
    busy_ns: u64,
    wait_ns: u64,
}

/// One rank's endpoint of the communicator: point-to-point sends plus the
/// SPMD collectives the distributed trainers are written against.
///
/// Every implementation upholds the determinism contract spelled out in
/// the [module docs](self): fixed rank-order reductions, counter-matched
/// collectives, and identical volume accounting — so a trainer produces
/// bit-identical results whichever transport backs it.
pub trait Comm {
    /// This rank's id.
    fn rank(&self) -> usize;

    /// World size.
    fn world(&self) -> usize;

    /// Total payload bytes sent by this rank so far (volume accounting).
    fn bytes_sent(&self) -> u64;

    /// Nanoseconds spent inside collectives (whole calls, including the
    /// local reduction arithmetic). Advances only while `DGNN_TRACE` is
    /// on — 0 otherwise, so untraced runs pay nothing.
    fn busy_ns(&self) -> u64;

    /// Nanoseconds spent *blocked on peer data* inside receives — the
    /// wait share of [`Comm::busy_ns`]. Advances only while tracing is on.
    fn wait_ns(&self) -> u64;

    /// Point-to-point send with a user tag (unique per sender until
    /// consumed).
    fn send_tagged(&mut self, to: usize, tag: u64, payload: Payload);

    /// Point-to-point receive matching [`Comm::send_tagged`].
    fn recv_tagged(&mut self, from: usize, tag: u64) -> Payload;

    /// All-to-all: `parts[q]` goes to rank `q`; returns the chunks
    /// received, indexed by source rank (the self slot passes through
    /// untouched).
    fn all_to_all(&mut self, parts: Vec<Payload>) -> Vec<Payload>;

    /// Sum all-reduce over a float vector. The reduction order is fixed
    /// (rank 0, 1, …, P−1) on every rank, so all replicas see
    /// bit-identical results regardless of message arrival order.
    fn all_reduce_sum(&mut self, data: &mut [f32]);

    /// Broadcast from `root` to every rank.
    fn broadcast(&mut self, root: usize, payload: Payload) -> Payload;

    /// Gathers one payload from every rank onto all ranks (all-gather).
    fn all_gather(&mut self, payload: Payload) -> Vec<Payload>;

    /// Opens an accounting scope: a mark whose `*_since` counterparts
    /// report bytes/busy/wait accumulated after the mark. The engine
    /// hands each `ParallelStrategy` a per-epoch mark so communication is
    /// attributed to the strategy (and epoch) that produced it.
    fn mark(&self) -> CommMark {
        CommMark {
            bytes: self.bytes_sent(),
            busy_ns: self.busy_ns(),
            wait_ns: self.wait_ns(),
        }
    }

    /// Bytes sent since `mark` was taken on this communicator.
    fn bytes_since(&self, mark: CommMark) -> u64 {
        self.bytes_sent() - mark.bytes
    }

    /// Microseconds this rank spent inside collectives since `mark`.
    /// Only advances while tracing is on; reports 0 otherwise.
    fn busy_us_since(&self, mark: CommMark) -> u64 {
        (self.busy_ns() - mark.busy_ns) / 1_000
    }

    /// Microseconds this rank spent blocked on peer data since `mark`.
    /// Only advances while tracing is on; reports 0 otherwise.
    fn wait_us_since(&self, mark: CommMark) -> u64 {
        (self.wait_ns() - mark.wait_ns) / 1_000
    }

    /// All-to-all specialised to dense chunks.
    fn all_to_all_dense(&mut self, parts: Vec<Dense>) -> Vec<Dense> {
        self.all_to_all(parts.into_iter().map(Payload::Dense).collect())
            .into_iter()
            .map(|p| match p {
                Payload::Dense(d) => d,
                other => panic!("expected dense payload, got {other:?}"),
            })
            .collect()
    }

    /// Barrier: completes only when every rank arrives.
    fn barrier(&mut self) {
        let _ = self.all_gather(Payload::Empty);
    }
}

/// State common to both endpoints: identity, accounting, the collective
/// op counter, and the shared poison flag.
struct EndpointState {
    rank: usize,
    world: usize,
    /// 0 while all ranks are healthy; `r + 1` once rank `r` has panicked.
    poison: Arc<AtomicUsize>,
    next_collective: u64,
    bytes_sent: u64,
    busy_ns: u64,
    wait_ns: u64,
}

impl EndpointState {
    fn new(rank: usize, world: usize, poison: Arc<AtomicUsize>) -> Self {
        EndpointState {
            rank,
            world,
            poison,
            next_collective: 0,
            bytes_sent: 0,
            busy_ns: 0,
            wait_ns: 0,
        }
    }

    /// Panics with a [`RankAbort`] if a peer rank has already panicked —
    /// called from receive loops so no rank blocks on a dead peer.
    fn check_abort(&self) {
        let flag = self.poison.load(Ordering::SeqCst);
        if flag != 0 && flag != self.rank + 1 {
            std::panic::panic_any(RankAbort { origin: flag - 1 });
        }
    }
}

/// The transport-specific plumbing under the shared collective skeleton:
/// raw enqueue/dequeue of messages. Accounting and abort handling live in
/// the blanket [`Comm`] implementation and [`EndpointState`].
trait Endpoint {
    fn state(&self) -> &EndpointState;
    fn state_mut(&mut self) -> &mut EndpointState;
    /// Raw enqueue of `(tag, payload)` to rank `to` (no accounting).
    fn push(&mut self, to: usize, tag: u64, payload: Payload);
    /// Blocking dequeue of the message from `from` carrying `tag`,
    /// buffering out-of-order arrivals and aborting if a peer panicked.
    fn pull(&mut self, from: usize, tag: u64) -> Payload;
}

fn send_counted<E: Endpoint + ?Sized>(ep: &mut E, to: usize, tag: u64, payload: Payload) {
    ep.state_mut().bytes_sent += payload.bytes();
    ep.push(to, tag, payload);
}

fn recv_counted<E: Endpoint + ?Sized>(ep: &mut E, from: usize, tag: u64) -> Payload {
    if !trace::enabled() {
        return ep.pull(from, tag);
    }
    let t0 = trace::now_ns();
    let payload = ep.pull(from, tag);
    let dt = trace::now_ns().saturating_sub(t0);
    ep.state_mut().wait_ns += dt;
    payload
}

/// The collectives, written once against the private `Endpoint` trait so
/// both transports share matching semantics, accounting, and reduction
/// order.
impl<E: Endpoint> Comm for E {
    fn rank(&self) -> usize {
        self.state().rank
    }

    fn world(&self) -> usize {
        self.state().world
    }

    fn bytes_sent(&self) -> u64 {
        self.state().bytes_sent
    }

    fn busy_ns(&self) -> u64 {
        self.state().busy_ns
    }

    fn wait_ns(&self) -> u64 {
        self.state().wait_ns
    }

    fn send_tagged(&mut self, to: usize, tag: u64, payload: Payload) {
        assert!(tag & COLLECTIVE_BIT == 0, "high bit is reserved");
        send_counted(self, to, tag, payload);
    }

    fn recv_tagged(&mut self, from: usize, tag: u64) -> Payload {
        assert!(tag & COLLECTIVE_BIT == 0, "high bit is reserved");
        recv_counted(self, from, tag)
    }

    fn all_to_all(&mut self, mut parts: Vec<Payload>) -> Vec<Payload> {
        let (rank, world) = (self.rank(), self.world());
        assert_eq!(parts.len(), world, "one part per rank required");
        let timer = trace::Timer::start();
        let tag = COLLECTIVE_BIT | self.state().next_collective;
        self.state_mut().next_collective += 1;
        let own = std::mem::replace(&mut parts[rank], Payload::Empty);
        for (q, part) in parts.into_iter().enumerate() {
            if q != rank {
                send_counted(self, q, tag, part);
            }
        }
        let mut out: Vec<Payload> = Vec::with_capacity(world);
        for q in 0..world {
            if q == rank {
                out.push(Payload::Empty);
            } else {
                let received = recv_counted(self, q, tag);
                out.push(received);
            }
        }
        out[rank] = own;
        self.state_mut().busy_ns += timer.stop_ns("comm", "collective");
        out
    }

    fn all_reduce_sum(&mut self, data: &mut [f32]) {
        let (rank, world) = (self.rank(), self.world());
        let timer = trace::Timer::start();
        let tag = COLLECTIVE_BIT | self.state().next_collective;
        self.state_mut().next_collective += 1;
        for q in 0..world {
            if q != rank {
                send_counted(self, q, tag, Payload::Floats(data.to_vec()));
            }
        }
        let mut contributions: Vec<Option<Vec<f32>>> = vec![None; world];
        contributions[rank] = Some(data.to_vec());
        for q in 0..world {
            if q != rank {
                match recv_counted(self, q, tag) {
                    Payload::Floats(f) => contributions[q] = Some(f),
                    other => panic!("expected floats, got {other:?}"),
                }
            }
        }
        for v in data.iter_mut() {
            *v = 0.0;
        }
        for c in contributions.into_iter().flatten() {
            assert_eq!(c.len(), data.len(), "all_reduce length mismatch");
            for (d, x) in data.iter_mut().zip(c) {
                *d += x;
            }
        }
        self.state_mut().busy_ns += timer.stop_ns("comm", "collective");
    }

    fn broadcast(&mut self, root: usize, payload: Payload) -> Payload {
        let (rank, world) = (self.rank(), self.world());
        let timer = trace::Timer::start();
        let tag = COLLECTIVE_BIT | self.state().next_collective;
        self.state_mut().next_collective += 1;
        let out = if rank == root {
            for q in 0..world {
                if q != root {
                    send_counted(self, q, tag, payload.clone());
                }
            }
            payload
        } else {
            recv_counted(self, root, tag)
        };
        self.state_mut().busy_ns += timer.stop_ns("comm", "collective");
        out
    }

    fn all_gather(&mut self, payload: Payload) -> Vec<Payload> {
        let (rank, world) = (self.rank(), self.world());
        let timer = trace::Timer::start();
        let tag = COLLECTIVE_BIT | self.state().next_collective;
        self.state_mut().next_collective += 1;
        for q in 0..world {
            if q != rank {
                send_counted(self, q, tag, payload.clone());
            }
        }
        let out = (0..world)
            .map(|q| {
                if q == rank {
                    payload.clone()
                } else {
                    recv_counted(self, q, tag)
                }
            })
            .collect();
        self.state_mut().busy_ns += timer.stop_ns("comm", "collective");
        out
    }
}

/// The mailbox transport (the original communicator): one inbox channel
/// per rank, shared by all peers, with an out-of-order buffer in front.
pub struct SimComm {
    st: EndpointState,
    txs: Vec<Sender<Msg>>,
    rx: Receiver<Msg>,
    pending: Vec<Msg>,
}

impl Endpoint for SimComm {
    fn state(&self) -> &EndpointState {
        &self.st
    }

    fn state_mut(&mut self) -> &mut EndpointState {
        &mut self.st
    }

    fn push(&mut self, to: usize, tag: u64, payload: Payload) {
        self.txs[to]
            .send(Msg {
                from: self.st.rank,
                tag,
                payload,
            })
            .expect("peer rank hung up");
    }

    fn pull(&mut self, from: usize, tag: u64) -> Payload {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.from == from && m.tag == tag)
        {
            return self.pending.swap_remove(pos).payload;
        }
        loop {
            match self.rx.recv_timeout(ABORT_POLL) {
                Ok(msg) => {
                    if msg.from == from && msg.tag == tag {
                        return msg.payload;
                    }
                    self.pending.push(msg);
                }
                Err(RecvTimeoutError::Timeout) => self.st.check_abort(),
                Err(RecvTimeoutError::Disconnected) => panic!("peer rank hung up"),
            }
        }
    }
}

/// The shared-memory transport: a dedicated lane (channel) per ordered
/// rank pair, so peers exchange owned buffers point-to-point with no
/// shared-inbox contention, plus a per-source out-of-order buffer.
pub struct SharedMemComm {
    st: EndpointState,
    /// `txs[to]`: this rank's outbound lane to rank `to`.
    txs: Vec<Sender<Msg>>,
    /// `rxs[from]`: the inbound lane from rank `from`.
    rxs: Vec<Receiver<Msg>>,
    /// Out-of-order buffer, indexed by source rank.
    pending: Vec<VecDeque<Msg>>,
}

impl Endpoint for SharedMemComm {
    fn state(&self) -> &EndpointState {
        &self.st
    }

    fn state_mut(&mut self) -> &mut EndpointState {
        &mut self.st
    }

    fn push(&mut self, to: usize, tag: u64, payload: Payload) {
        self.txs[to]
            .send(Msg {
                from: self.st.rank,
                tag,
                payload,
            })
            .expect("peer rank hung up");
    }

    fn pull(&mut self, from: usize, tag: u64) -> Payload {
        if let Some(pos) = self.pending[from].iter().position(|m| m.tag == tag) {
            return self.pending[from]
                .remove(pos)
                .expect("position in range")
                .payload;
        }
        loop {
            match self.rxs[from].recv_timeout(ABORT_POLL) {
                Ok(msg) => {
                    debug_assert_eq!(msg.from, from, "lane crossed between ranks");
                    if msg.tag == tag {
                        return msg.payload;
                    }
                    self.pending[from].push_back(msg);
                }
                Err(RecvTimeoutError::Timeout) => self.st.check_abort(),
                Err(RecvTimeoutError::Disconnected) => panic!("peer rank hung up"),
            }
        }
    }
}

fn build_sim(p: usize, poison: &Arc<AtomicUsize>) -> Vec<SimComm> {
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..p).map(|_| unbounded()).unzip();
    rxs.into_iter()
        .enumerate()
        .map(|(rank, rx)| SimComm {
            st: EndpointState::new(rank, p, Arc::clone(poison)),
            txs: txs.clone(),
            rx,
            pending: Vec::new(),
        })
        .collect()
}

fn build_shm(p: usize, poison: &Arc<AtomicUsize>) -> Vec<SharedMemComm> {
    // Lane (from, to) is created in `from`-major order, so `rx_grid[to]`
    // accumulates receivers indexed by source rank.
    let mut tx_rows: Vec<Vec<Sender<Msg>>> = Vec::with_capacity(p);
    let mut rx_grid: Vec<Vec<Receiver<Msg>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
    for _from in 0..p {
        let mut row = Vec::with_capacity(p);
        for to_grid in rx_grid.iter_mut() {
            let (tx, rx) = unbounded();
            row.push(tx);
            to_grid.push(rx);
        }
        tx_rows.push(row);
    }
    tx_rows
        .into_iter()
        .zip(rx_grid)
        .enumerate()
        .map(|(rank, (txs, rxs))| SharedMemComm {
            st: EndpointState::new(rank, p, Arc::clone(poison)),
            txs,
            rxs,
            pending: (0..p).map(|_| VecDeque::new()).collect(),
        })
        .collect()
}

/// A typed panic payload injected into ranks that must abandon a blocked
/// receive because peer rank `origin` panicked first. Only the origin's
/// own payload escapes `try_run_ranks`; aborts are collateral.
#[derive(Clone, Copy, Debug)]
pub struct RankAbort {
    /// The rank whose panic triggered the teardown.
    pub origin: usize,
}

/// The typed error [`try_run_ranks`] returns when a rank panics: which
/// rank failed first, carrying its original panic payload.
pub struct RankPanic {
    rank: usize,
    payload: Box<dyn Any + Send>,
}

impl RankPanic {
    /// The rank that panicked first.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Best-effort text of the panic payload (`&str`/`String` payloads;
    /// a placeholder otherwise).
    pub fn message(&self) -> String {
        if let Some(s) = self.payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = self.payload.downcast_ref::<String>() {
            s.clone()
        } else if let Some(a) = self.payload.downcast_ref::<RankAbort>() {
            format!("aborted: rank {} panicked first", a.origin)
        } else {
            "non-string panic payload".to_string()
        }
    }

    /// The original panic payload, for `resume_unwind` or downcasting.
    pub fn into_payload(self) -> Box<dyn Any + Send> {
        self.payload
    }
}

impl std::fmt::Debug for RankPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RankPanic {{ rank: {}, message: {:?} }}",
            self.rank,
            self.message()
        )
    }
}

impl std::fmt::Display for RankPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rank {} panicked: {}", self.rank, self.message())
    }
}

impl std::error::Error for RankPanic {}

/// Runs `f` on `p` rank threads over the ambient transport
/// ([`CommTransport::from_env`]) and returns their results in rank order.
///
/// This stands in for the MPI/NCCL process group of the original system.
/// Payload moves through channels by value, exactly like wire transfers.
///
/// While the ranks run they are registered with the intra-rank thread
/// pool ([`dgnn_tensor::pool::RankScope`]), so the default kernel thread
/// count becomes `available_parallelism / p` — rank-level and intra-rank
/// parallelism compose instead of oversubscribing the host. The calling
/// thread's explicit thread override (if any) is propagated into every
/// rank thread.
///
/// # Panics
/// If any rank panics, re-raises the first panicking rank's original
/// payload on the caller — identically on both transports (the other
/// ranks are unblocked and torn down first; see [`try_run_ranks`]).
pub fn run_ranks<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut dyn Comm) -> R + Sync,
{
    run_ranks_on(CommTransport::from_env(), p, f)
}

/// [`run_ranks`] pinned to an explicit transport.
pub fn run_ranks_on<R, F>(transport: CommTransport, p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut dyn Comm) -> R + Sync,
{
    match try_run_ranks_on(transport, p, f) {
        Ok(results) => results,
        Err(e) => resume_unwind(e.into_payload()),
    }
}

/// Fallible [`run_ranks`]: a rank panic tears the group down (no
/// deadlock — blocked peers abort via the poison flag) and is returned as
/// a typed [`RankPanic`] identifying the first failing rank.
pub fn try_run_ranks<R, F>(p: usize, f: F) -> Result<Vec<R>, RankPanic>
where
    R: Send,
    F: Fn(&mut dyn Comm) -> R + Sync,
{
    try_run_ranks_on(CommTransport::from_env(), p, f)
}

/// [`try_run_ranks`] pinned to an explicit transport.
pub fn try_run_ranks_on<R, F>(transport: CommTransport, p: usize, f: F) -> Result<Vec<R>, RankPanic>
where
    R: Send,
    F: Fn(&mut dyn Comm) -> R + Sync,
{
    assert!(p >= 1);
    let poison = Arc::new(AtomicUsize::new(0));
    match transport {
        CommTransport::Sim => drive(p, f, build_sim(p, &poison), &poison),
        CommTransport::SharedMem => drive(p, f, build_shm(p, &poison), &poison),
    }
}

fn drive<C, R, F>(
    p: usize,
    f: F,
    mut comms: Vec<C>,
    poison: &Arc<AtomicUsize>,
) -> Result<Vec<R>, RankPanic>
where
    C: Comm + Send,
    R: Send,
    F: Fn(&mut dyn Comm) -> R + Sync,
{
    let f = &f;
    let ambient_threads = dgnn_tensor::pool::thread_override();
    let _ranks = dgnn_tensor::pool::RankScope::enter(p);
    // `comms` outlives the scope, so every channel endpoint stays alive
    // until all rank threads have exited: sends cannot fail mid-teardown.
    let outcomes: Vec<Result<R, Box<dyn Any + Send>>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .iter_mut()
            .enumerate()
            .map(|(rank, comm)| {
                let poison = Arc::clone(poison);
                scope.spawn(move |_| {
                    let _threads = dgnn_tensor::pool::scoped_threads(ambient_threads);
                    // Tag the thread so spans export under this rank's pid
                    // lane; the tag dies with the scoped thread.
                    trace::set_rank(rank as u32);
                    let outcome = catch_unwind(AssertUnwindSafe(|| f(comm as &mut dyn Comm)));
                    if outcome.is_err() {
                        // First panicking rank wins the flag; peers blocked
                        // in receives see it and abort instead of hanging.
                        let _ = poison.compare_exchange(
                            0,
                            rank + 1,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        );
                    }
                    outcome
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread died outside catch_unwind"))
            .collect()
    })
    .expect("scope panicked");

    if outcomes.iter().all(Result::is_ok) {
        return Ok(outcomes
            .into_iter()
            .map(|o| o.unwrap_or_else(|_| unreachable!()))
            .collect());
    }
    let origin = poison.load(Ordering::SeqCst).saturating_sub(1);
    let mut fallback = None;
    for (rank, outcome) in outcomes.into_iter().enumerate() {
        if let Err(payload) = outcome {
            if rank == origin {
                return Err(RankPanic { rank, payload });
            }
            fallback.get_or_insert(RankPanic { rank, payload });
        }
    }
    Err(fallback.expect("at least one rank failed"))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f` over both transports and asserts their results agree —
    /// every routing/accounting test below holds transport-independently.
    fn on_both<R, F>(p: usize, f: F) -> Vec<R>
    where
        R: Send + PartialEq + std::fmt::Debug,
        F: Fn(&mut dyn Comm) -> R + Sync,
    {
        let sim = run_ranks_on(CommTransport::Sim, p, &f);
        let shm = run_ranks_on(CommTransport::SharedMem, p, &f);
        assert_eq!(sim, shm, "transports disagree");
        sim
    }

    #[test]
    fn all_to_all_routes_chunks() {
        let results = on_both(3, |comm| {
            let parts: Vec<Dense> = (0..3)
                .map(|q| Dense::full(1, 1, (comm.rank() * 10 + q) as f32))
                .collect();
            let got = comm.all_to_all_dense(parts);
            got.iter().map(|d| d.get(0, 0)).collect::<Vec<f32>>()
        });
        // Rank r receives from rank q the value q*10 + r.
        for (r, row) in results.iter().enumerate() {
            for (q, &v) in row.iter().enumerate() {
                assert_eq!(v, (q * 10 + r) as f32);
            }
        }
    }

    #[test]
    fn all_reduce_sums_identically() {
        let results = on_both(4, |comm| {
            let mut data = vec![comm.rank() as f32 + 1.0, 1.0];
            comm.all_reduce_sum(&mut data);
            data
        });
        for row in &results {
            assert_eq!(row, &vec![10.0, 4.0]);
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let results = on_both(3, |comm| {
            let payload = if comm.rank() == 1 {
                Payload::Floats(vec![7.0, 8.0])
            } else {
                Payload::Empty
            };
            match comm.broadcast(1, payload) {
                Payload::Floats(f) => f,
                other => panic!("unexpected {other:?}"),
            }
        });
        for row in &results {
            assert_eq!(row, &vec![7.0, 8.0]);
        }
    }

    #[test]
    fn tagged_p2p_delivery() {
        let results = on_both(2, |comm| {
            if comm.rank() == 0 {
                comm.send_tagged(1, 5, Payload::Floats(vec![3.0]));
                comm.send_tagged(1, 6, Payload::Floats(vec![4.0]));
                vec![0.0]
            } else {
                // Receive in reverse send order to exercise the buffer.
                let b = match comm.recv_tagged(0, 6) {
                    Payload::Floats(f) => f[0],
                    _ => panic!(),
                };
                let a = match comm.recv_tagged(0, 5) {
                    Payload::Floats(f) => f[0],
                    _ => panic!(),
                };
                vec![a, b]
            }
        });
        assert_eq!(results[1], vec![3.0, 4.0]);
    }

    #[test]
    fn volume_accounting_counts_bytes() {
        let results = on_both(2, |comm| {
            let parts = vec![Dense::zeros(4, 4), Dense::zeros(4, 4)];
            let _ = comm.all_to_all_dense(parts);
            comm.bytes_sent()
        });
        // Each rank sends one 4x4 f32 matrix to the other: 64 bytes —
        // identical volume accounting on both transports.
        assert_eq!(results, vec![64, 64]);
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let results = on_both(2, |comm| {
            let mut out = Vec::new();
            for round in 0..5 {
                let parts = vec![
                    Dense::full(1, 1, round as f32),
                    Dense::full(1, 1, round as f32 + 100.0),
                ];
                let got = comm.all_to_all_dense(parts);
                out.push(got[1 - comm.rank()].get(0, 0));
            }
            out
        });
        // Rank 0 receives rank 1's parts[0] (= round); rank 1 receives rank
        // 0's parts[1] (= round + 100).
        assert_eq!(results[0], vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(results[1], vec![100.0, 101.0, 102.0, 103.0, 104.0]);
    }

    #[test]
    fn sparse_payload_roundtrip() {
        let results = on_both(2, |comm| {
            if comm.rank() == 0 {
                let m = Csr::from_edges(3, &[(0, 1), (2, 0)]);
                comm.send_tagged(1, 1, Payload::Sparse(m));
                0
            } else {
                match comm.recv_tagged(0, 1) {
                    Payload::Sparse(m) => m.nnz(),
                    _ => panic!(),
                }
            }
        });
        assert_eq!(results[1], 2);
    }

    #[test]
    fn self_send_delivers_on_both_transports() {
        let results = on_both(2, |comm| {
            let me = comm.rank();
            comm.send_tagged(me, 9, Payload::Floats(vec![me as f32]));
            match comm.recv_tagged(me, 9) {
                Payload::Floats(f) => f[0],
                _ => panic!(),
            }
        });
        assert_eq!(results, vec![0.0, 1.0]);
    }

    #[test]
    fn world_of_one_runs_collectives() {
        let results = on_both(1, |comm| {
            let mut data = vec![2.5f32];
            comm.all_reduce_sum(&mut data);
            let gathered = comm.all_gather(Payload::Floats(vec![1.0]));
            comm.barrier();
            (data[0], gathered.len(), comm.bytes_sent())
        });
        assert_eq!(results, vec![(2.5, 1, 0)]);
    }

    #[test]
    fn scoped_transport_overrides_and_restores() {
        // The ambient transport may come from `DGNN_COMM` (the CI matrix
        // sets it), so assert override/restore relative to it.
        let ambient = CommTransport::from_env();
        {
            let _guard = scoped_transport(CommTransport::SharedMem);
            assert_eq!(CommTransport::from_env(), CommTransport::SharedMem);
            {
                let _inner = scoped_transport(CommTransport::Sim);
                assert_eq!(CommTransport::from_env(), CommTransport::Sim);
            }
            assert_eq!(CommTransport::from_env(), CommTransport::SharedMem);
        }
        assert_eq!(CommTransport::from_env(), ambient);
    }
}
