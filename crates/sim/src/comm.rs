//! The functional communication layer: rank threads exchanging real data
//! through channels — the NCCL stand-in used by the distributed trainers.
//!
//! Semantics follow SPMD collectives: every rank calls the same sequence of
//! collective operations; matching is done on a per-rank monotone operation
//! counter, so out-of-order channel arrivals are buffered and re-ordered.
//! Point-to-point sends take an explicit user tag in a separate tag space.

use crossbeam::channel::{unbounded, Receiver, Sender};
use dgnn_telemetry::trace;
use dgnn_tensor::{Csr, Dense};

/// Message payloads the trainers exchange.
#[derive(Clone, Debug)]
pub enum Payload {
    /// A dense matrix (feature chunks).
    Dense(Dense),
    /// A flat float vector (gradient all-reduce).
    Floats(Vec<f32>),
    /// A sparse matrix (snapshot shipping in the hybrid scheme).
    Sparse(Csr),
    /// Synchronisation-only message.
    Empty,
}

impl Payload {
    fn bytes(&self) -> u64 {
        match self {
            Payload::Dense(d) => 4 * d.len() as u64,
            Payload::Floats(f) => 4 * f.len() as u64,
            Payload::Sparse(s) => 20 * s.nnz() as u64,
            Payload::Empty => 0,
        }
    }
}

struct Msg {
    from: usize,
    tag: u64,
    payload: Payload,
}

// Collective ops and point-to-point ops use disjoint tag spaces.
const COLLECTIVE_BIT: u64 = 1 << 63;

/// A mark taken by [`Comm::mark`]; scopes both byte-volume and
/// collective-busy-time accounting to the strategy/epoch that holds it.
#[derive(Clone, Copy, Debug)]
pub struct CommMark {
    bytes: u64,
    busy_ns: u64,
}

/// One rank's endpoint of the communicator.
pub struct Comm {
    rank: usize,
    world: usize,
    txs: Vec<Sender<Msg>>,
    rx: Receiver<Msg>,
    pending: Vec<Msg>,
    next_collective: u64,
    bytes_sent: u64,
    /// Wall time spent inside collectives, accumulated only while
    /// `DGNN_TRACE` is on (0 otherwise, so untraced runs pay nothing).
    busy_ns: u64,
}

impl Comm {
    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn world(&self) -> usize {
        self.world
    }

    /// Total payload bytes sent by this rank so far (volume accounting).
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent
    }

    /// Opens a volume scope: a mark whose [`Comm::bytes_since`] reports the
    /// bytes this rank sent after the mark. The engine hands each
    /// `ParallelStrategy` a per-epoch mark so communication volume is
    /// attributed to the strategy (and epoch) that produced it.
    pub fn mark(&self) -> CommMark {
        CommMark {
            bytes: self.bytes_sent,
            busy_ns: self.busy_ns,
        }
    }

    /// Bytes sent since `mark` was taken on this communicator.
    pub fn bytes_since(&self, mark: CommMark) -> u64 {
        self.bytes_sent - mark.bytes
    }

    /// Microseconds this rank spent inside collectives since `mark`.
    /// Only advances while tracing is on; reports 0 otherwise.
    pub fn busy_us_since(&self, mark: CommMark) -> u64 {
        (self.busy_ns - mark.busy_ns) / 1_000
    }

    fn send(&mut self, to: usize, tag: u64, payload: Payload) {
        self.bytes_sent += payload.bytes();
        self.txs[to]
            .send(Msg {
                from: self.rank,
                tag,
                payload,
            })
            .expect("peer rank hung up");
    }

    fn recv(&mut self, from: usize, tag: u64) -> Payload {
        if let Some(pos) = self
            .pending
            .iter()
            .position(|m| m.from == from && m.tag == tag)
        {
            return self.pending.swap_remove(pos).payload;
        }
        loop {
            let msg = self.rx.recv().expect("peer rank hung up");
            if msg.from == from && msg.tag == tag {
                return msg.payload;
            }
            self.pending.push(msg);
        }
    }

    /// Point-to-point send with a user tag (unique per sender until consumed).
    pub fn send_tagged(&mut self, to: usize, tag: u64, payload: Payload) {
        assert!(tag & COLLECTIVE_BIT == 0, "high bit is reserved");
        self.send(to, tag, payload);
    }

    /// Point-to-point receive matching [`Comm::send_tagged`].
    pub fn recv_tagged(&mut self, from: usize, tag: u64) -> Payload {
        assert!(tag & COLLECTIVE_BIT == 0, "high bit is reserved");
        self.recv(from, tag)
    }

    /// All-to-all: `parts[q]` goes to rank `q`; returns the chunks received,
    /// indexed by source rank (the self slot passes through untouched).
    pub fn all_to_all(&mut self, mut parts: Vec<Payload>) -> Vec<Payload> {
        assert_eq!(parts.len(), self.world, "one part per rank required");
        let timer = trace::Timer::start();
        let tag = COLLECTIVE_BIT | self.next_collective;
        self.next_collective += 1;
        let own = std::mem::replace(&mut parts[self.rank], Payload::Empty);
        for (q, part) in parts.into_iter().enumerate() {
            if q != self.rank {
                self.send(q, tag, part);
            }
        }
        let mut out: Vec<Payload> = Vec::with_capacity(self.world);
        for q in 0..self.world {
            if q == self.rank {
                out.push(Payload::Empty);
            } else {
                let received = self.recv(q, tag);
                out.push(received);
            }
        }
        out[self.rank] = own;
        self.busy_ns += timer.stop_ns("comm", "collective");
        out
    }

    /// All-to-all specialised to dense chunks.
    pub fn all_to_all_dense(&mut self, parts: Vec<Dense>) -> Vec<Dense> {
        self.all_to_all(parts.into_iter().map(Payload::Dense).collect())
            .into_iter()
            .map(|p| match p {
                Payload::Dense(d) => d,
                other => panic!("expected dense payload, got {other:?}"),
            })
            .collect()
    }

    /// Sum all-reduce over a float vector. The reduction order is fixed
    /// (rank 0, 1, …, P−1) on every rank, so all replicas see bit-identical
    /// results regardless of message arrival order.
    pub fn all_reduce_sum(&mut self, data: &mut [f32]) {
        let timer = trace::Timer::start();
        let tag = COLLECTIVE_BIT | self.next_collective;
        self.next_collective += 1;
        for q in 0..self.world {
            if q != self.rank {
                self.send(q, tag, Payload::Floats(data.to_vec()));
            }
        }
        let mut contributions: Vec<Option<Vec<f32>>> = vec![None; self.world];
        contributions[self.rank] = Some(data.to_vec());
        for q in 0..self.world {
            if q != self.rank {
                match self.recv(q, tag) {
                    Payload::Floats(f) => contributions[q] = Some(f),
                    other => panic!("expected floats, got {other:?}"),
                }
            }
        }
        for v in data.iter_mut() {
            *v = 0.0;
        }
        for c in contributions.into_iter().flatten() {
            assert_eq!(c.len(), data.len(), "all_reduce length mismatch");
            for (d, x) in data.iter_mut().zip(c) {
                *d += x;
            }
        }
        self.busy_ns += timer.stop_ns("comm", "collective");
    }

    /// Broadcast from `root` to every rank.
    pub fn broadcast(&mut self, root: usize, payload: Payload) -> Payload {
        let timer = trace::Timer::start();
        let tag = COLLECTIVE_BIT | self.next_collective;
        self.next_collective += 1;
        let out = if self.rank == root {
            for q in 0..self.world {
                if q != root {
                    self.send(q, tag, payload.clone());
                }
            }
            payload
        } else {
            self.recv(root, tag)
        };
        self.busy_ns += timer.stop_ns("comm", "collective");
        out
    }

    /// Gathers one payload from every rank onto all ranks (all-gather).
    pub fn all_gather(&mut self, payload: Payload) -> Vec<Payload> {
        let timer = trace::Timer::start();
        let tag = COLLECTIVE_BIT | self.next_collective;
        self.next_collective += 1;
        for q in 0..self.world {
            if q != self.rank {
                self.send(q, tag, payload.clone());
            }
        }
        let out = (0..self.world)
            .map(|q| {
                if q == self.rank {
                    payload.clone()
                } else {
                    self.recv(q, tag)
                }
            })
            .collect();
        self.busy_ns += timer.stop_ns("comm", "collective");
        out
    }

    /// Barrier: completes only when every rank arrives.
    pub fn barrier(&mut self) {
        let _ = self.all_gather(Payload::Empty);
    }
}

/// Runs `f` on `p` rank threads and returns their results in rank order.
///
/// This stands in for the MPI/NCCL process group of the original system.
/// Payload moves through channels by value, exactly like wire transfers.
///
/// While the ranks run they are registered with the intra-rank thread
/// pool ([`dgnn_tensor::pool::RankScope`]), so the default kernel thread
/// count becomes `available_parallelism / p` — rank-level and intra-rank
/// parallelism compose instead of oversubscribing the host. The calling
/// thread's explicit thread override (if any) is propagated into every
/// rank thread.
pub fn run_ranks<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&mut Comm) -> R + Sync,
{
    assert!(p >= 1);
    let (txs, rxs): (Vec<_>, Vec<_>) = (0..p).map(|_| unbounded()).unzip();
    let mut comms: Vec<Comm> = rxs
        .into_iter()
        .enumerate()
        .map(|(rank, rx)| Comm {
            rank,
            world: p,
            txs: txs.clone(),
            rx,
            pending: Vec::new(),
            next_collective: 0,
            bytes_sent: 0,
            busy_ns: 0,
        })
        .collect();
    drop(txs);
    let f = &f;
    let ambient_threads = dgnn_tensor::pool::thread_override();
    let _ranks = dgnn_tensor::pool::RankScope::enter(p);
    crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .iter_mut()
            .map(|comm| {
                scope.spawn(move |_| {
                    let _threads = dgnn_tensor::pool::scoped_threads(ambient_threads);
                    // Tag the thread so spans export under this rank's pid
                    // lane; the tag dies with the scoped thread.
                    trace::set_rank(comm.rank() as u32);
                    f(comm)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panicked"))
            .collect()
    })
    .expect("scope panicked")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_to_all_routes_chunks() {
        let results = run_ranks(3, |comm| {
            let parts: Vec<Dense> = (0..3)
                .map(|q| Dense::full(1, 1, (comm.rank() * 10 + q) as f32))
                .collect();
            let got = comm.all_to_all_dense(parts);
            got.iter().map(|d| d.get(0, 0)).collect::<Vec<f32>>()
        });
        // Rank r receives from rank q the value q*10 + r.
        for (r, row) in results.iter().enumerate() {
            for (q, &v) in row.iter().enumerate() {
                assert_eq!(v, (q * 10 + r) as f32);
            }
        }
    }

    #[test]
    fn all_reduce_sums_identically() {
        let results = run_ranks(4, |comm| {
            let mut data = vec![comm.rank() as f32 + 1.0, 1.0];
            comm.all_reduce_sum(&mut data);
            data
        });
        for row in &results {
            assert_eq!(row, &vec![10.0, 4.0]);
        }
    }

    #[test]
    fn broadcast_reaches_everyone() {
        let results = run_ranks(3, |comm| {
            let payload = if comm.rank() == 1 {
                Payload::Floats(vec![7.0, 8.0])
            } else {
                Payload::Empty
            };
            match comm.broadcast(1, payload) {
                Payload::Floats(f) => f,
                other => panic!("unexpected {other:?}"),
            }
        });
        for row in &results {
            assert_eq!(row, &vec![7.0, 8.0]);
        }
    }

    #[test]
    fn tagged_p2p_delivery() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                comm.send_tagged(1, 5, Payload::Floats(vec![3.0]));
                comm.send_tagged(1, 6, Payload::Floats(vec![4.0]));
                vec![0.0]
            } else {
                // Receive in reverse send order to exercise the buffer.
                let b = match comm.recv_tagged(0, 6) {
                    Payload::Floats(f) => f[0],
                    _ => panic!(),
                };
                let a = match comm.recv_tagged(0, 5) {
                    Payload::Floats(f) => f[0],
                    _ => panic!(),
                };
                vec![a, b]
            }
        });
        assert_eq!(results[1], vec![3.0, 4.0]);
    }

    #[test]
    fn volume_accounting_counts_bytes() {
        let results = run_ranks(2, |comm| {
            let parts = vec![Dense::zeros(4, 4), Dense::zeros(4, 4)];
            let _ = comm.all_to_all_dense(parts);
            comm.bytes_sent()
        });
        // Each rank sends one 4x4 f32 matrix to the other: 64 bytes.
        assert_eq!(results, vec![64, 64]);
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        let results = run_ranks(2, |comm| {
            let mut out = Vec::new();
            for round in 0..5 {
                let parts = vec![
                    Dense::full(1, 1, round as f32),
                    Dense::full(1, 1, round as f32 + 100.0),
                ];
                let got = comm.all_to_all_dense(parts);
                out.push(got[1 - comm.rank()].get(0, 0));
            }
            out
        });
        // Rank 0 receives rank 1's parts[0] (= round); rank 1 receives rank
        // 0's parts[1] (= round + 100).
        assert_eq!(results[0], vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(results[1], vec![100.0, 101.0, 102.0, 103.0, 104.0]);
    }

    #[test]
    fn sparse_payload_roundtrip() {
        let results = run_ranks(2, |comm| {
            if comm.rank() == 0 {
                let m = Csr::from_edges(3, &[(0, 1), (2, 0)]);
                comm.send_tagged(1, 1, Payload::Sparse(m));
                0
            } else {
                match comm.recv_tagged(0, 1) {
                    Payload::Sparse(m) => m.nnz(),
                    _ => panic!(),
                }
            }
        });
        assert_eq!(results[1], 2);
    }
}
