//! Property tests on the partitioning invariants the trainers rely on.

use dgnn_graph::gen::churn;
use dgnn_partition::{
    balanced_ranges, contiguous_renaming, partition, vertex_spmm_units, Hypergraph,
    PartitionerConfig, SnapshotPartition, VertexChunks,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn balanced_ranges_partition_exactly(len in 0usize..200, parts in 1usize..17) {
        let ranges = balanced_ranges(len, parts);
        prop_assert_eq!(ranges.len(), parts);
        let mut covered = 0usize;
        for r in &ranges {
            prop_assert_eq!(r.start, covered);
            covered = r.end;
        }
        prop_assert_eq!(covered, len);
        let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        prop_assert!(max - min <= 1);
    }

    #[test]
    fn snapshot_partition_owners_consistent(t in 1usize..60, p in 1usize..9, nb in 1usize..7) {
        let part = SnapshotPartition::block_wise(t, p, nb.min(t));
        // Ownership from owner() matches timesteps_of().
        for rank in 0..p {
            for ti in part.timesteps_of(rank) {
                prop_assert_eq!(part.owner(ti), rank);
            }
        }
        // Runs cover exactly the owned set and are disjoint/ascending.
        for rank in 0..p {
            let owned = part.timesteps_of(rank);
            let from_runs: Vec<usize> =
                part.runs_of(rank).into_iter().flatten().collect();
            prop_assert_eq!(owned, from_runs);
        }
    }

    #[test]
    fn vertex_chunk_owner_matches_range(n in 1usize..300, p in 1usize..17) {
        let chunks = VertexChunks::new(n, p);
        let mut total = 0usize;
        for q in 0..p {
            let range = chunks.range(q);
            total += range.len();
            for v in range {
                prop_assert_eq!(chunks.owner_of(v), q);
            }
        }
        prop_assert_eq!(total, n);
    }

    #[test]
    fn renaming_is_bijective_and_sorted_by_part(
        parts in proptest::collection::vec(0usize..4, 1..80),
    ) {
        let p = 4;
        let (perm, inv) = contiguous_renaming(&parts, p);
        for v in 0..parts.len() {
            prop_assert_eq!(inv[perm[v] as usize] as usize, v);
        }
        // New ids are grouped by part, ascending.
        let seq: Vec<usize> = (0..parts.len())
            .map(|new| parts[inv[new] as usize])
            .collect();
        let mut sorted = seq.clone();
        sorted.sort_unstable();
        prop_assert_eq!(seq, sorted);
    }
}

#[test]
fn lambda_volume_brute_force_cross_check() {
    // vertex_spmm_units against a naive recount on a small graph.
    let g = churn(24, 3, 80, 0.3, 5);
    let p = 3;
    let partition: Vec<usize> = (0..24).map(|v| v % p).collect();
    let fast = vertex_spmm_units(&g, &partition, p);

    let mut slow = 0u64;
    for s in g.snapshots() {
        let adj = s.adj();
        let tr = adj.transpose();
        for v in 0..24 {
            let mut owners = std::collections::HashSet::new();
            owners.insert(partition[v]);
            for (u, _) in adj.row_iter(v).chain(tr.row_iter(v)) {
                owners.insert(partition[u as usize]);
            }
            slow += owners.len() as u64 - 1;
        }
    }
    assert_eq!(fast, slow);
}

#[test]
fn partitioner_beats_random_on_clustered_graphs() {
    use dgnn_graph::gen::{amlsim_like, AmlSimConfig};
    let g = amlsim_like(
        &AmlSimConfig {
            n: 240,
            t: 3,
            communities: 8,
            transactions_per_step: 900,
            ..Default::default()
        },
        9,
    );
    let hg = Hypergraph::column_net_model(&g);
    let p = 4;
    let smart = partition(&hg, &PartitionerConfig::new(p));
    let random: Vec<usize> = (0..240).map(|v| (v * 7 + 3) % p).collect();
    let smart_cost = hg.connectivity_cost(&smart, p);
    let random_cost = hg.connectivity_cost(&random, p);
    assert!(
        smart_cost < random_cost * 0.8,
        "partitioner ({smart_cost}) should clearly beat random ({random_cost})"
    );
}

#[test]
fn balanced_ranges_more_parts_than_items() {
    // Degenerate boundary the distributed trainers can hit when more
    // ranks than timesteps are configured: the first `len` parts get one
    // item each, the tail parts are empty ranges pinned at `len`.
    let ranges = balanced_ranges(3, 7);
    assert_eq!(ranges.len(), 7);
    assert_eq!(&ranges[..3], &[0..1, 1..2, 2..3]);
    for r in &ranges[3..] {
        assert!(r.is_empty(), "tail range {r:?} should be empty");
        assert_eq!((r.start, r.end), (3, 3));
    }
}

#[test]
fn balanced_ranges_zero_length() {
    // An empty timeline: every part is the empty range at 0.
    let ranges = balanced_ranges(0, 4);
    assert_eq!(ranges, vec![0..0, 0..0, 0..0, 0..0]);
    // And the two degeneracies combined with a single part.
    assert_eq!(balanced_ranges(0, 1), vec![0..0]);
}

#[test]
#[should_panic(expected = "need at least one part")]
fn balanced_ranges_zero_parts_panics() {
    let _ = balanced_ranges(5, 0);
}
